# repro: module=repro.runtime.scheduler
"""Interprocedural PROTO002: the counter write is laundered through a
helper whose parameter name gives the single-file heuristic nothing
to match - but the caller hands it the RunReport, so the caller's
layer (scheduler, which does not own `retries`) is the writer."""


def _account(out, n):
    out.retries = out.retries + n


def after_timeout(report, n):
    _account(report, n)

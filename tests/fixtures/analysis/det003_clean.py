"""Clean twin of det003_bad: sorted() normalizes the iteration order."""


def kick_all(sim, procs: set):
    for p in sorted(procs):
        sim.push(0.0, "kick", p)


def read_only(procs: set):
    # Iterating a set is fine when the body never reaches an event
    # sink: commutative accumulation is order-independent.
    total = 0
    for p in procs:
        total += p
    return total

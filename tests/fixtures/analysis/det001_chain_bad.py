# repro: module=repro.runtime.chainclock
"""Interprocedural DET001: a wall-clock read two helpers deep.  The
single-file rule flags the direct site; the transitive re-host flags
`helper` and `caller` with the propagation chain."""

import time


def _stamp():
    return time.time()


def helper():
    return _stamp()


def caller():
    return helper()

"""Golden violation: DET003's one-hop interprocedural case - the loop
body reaches the event sink through a same-module helper."""


def _kick(sim, p):
    sim.push(0.0, "kick", p)


def kick_all(sim):
    for p in {1, 2, 3}:
        _kick(sim, p)

# repro: module=repro.runtime.transientwindow
"""Clean via pragma: the uncovered attributes are marked transient -
rebuilt at composition time, deliberately outside the snapshot."""


def _tick(win):
    win.phase = win.phase + 1  # repro: transient


class Window:
    def __init__(self):
        self.acked = 0
        self.phase = 0
        self.rtt_ewma = 0.0

    def on_ack(self, now, seq):
        self.acked = seq
        self.rtt_ewma = 0.9 * self.rtt_ewma + 0.1 * now  # repro: transient

    def on_tick(self, now):
        _tick(self)

    def state_dict(self):
        return {"acked": self.acked}

    def load_state_dict(self, state):
        self.acked = state["acked"]

"""Clean twin of des001_bad: cost is booked on a Resource timeline and
outcomes land on the report; host I/O stays in the driver."""


def on_ack(uid, now, report):
    report.acks += 1


def retry_backoff(now: float, resource, dur: float):
    return resource.book(now, dur)


def driver_summary(report):
    # Not a simulated callback (no `now`, not `on_*`): printing the
    # final report from the driver is fine.
    print(report)

"""Suppressed twin of proto002_bad."""
# repro: module=repro.runtime.scheduler


def account(report):
    report.retries += 1  # repro: allow[PROTO002]

"""Golden violation: DET001 flags wall-clock reads."""

import time
from datetime import datetime


def stamp_run():
    started = time.time()
    tag = datetime.now()
    return started, tag

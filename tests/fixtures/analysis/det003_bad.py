"""Golden violation: DET003 flags set-order iteration that schedules
events - event order becomes a function of PYTHONHASHSEED."""


def kick_all(sim, procs: set):
    for p in procs:
        sim.push(0.0, "kick", p)

# repro: module=repro.runtime.badwindow
"""Golden violation: PERSIST002 flags mutable state that never makes
it into the state_dict round trip - one write directly in a method,
one laundered through a module-level helper (call-graph resolved)."""


def _tick(win):
    # pwrite: the helper mutates its parameter; the call graph turns
    # this into a self-write of Window when called as `_tick(self)`.
    win.phase = win.phase + 1


class Window:
    def __init__(self):
        self.acked = 0
        self.inflight = {}
        self.phase = 0
        self.rtt_ewma = 0.0

    def on_ack(self, now, seq):
        self.acked = seq
        self.rtt_ewma = 0.9 * self.rtt_ewma + 0.1 * now  # never persisted

    def on_tick(self, now):
        _tick(self)  # helper-mediated write of `phase`

    def state_dict(self):
        return {"acked": self.acked, "inflight": dict(self.inflight)}

    def load_state_dict(self, state):
        self.acked = state["acked"]
        self.inflight = dict(state["inflight"])

# repro: module=repro.runtime.deepset
"""Interprocedural DET003: set-order iteration reaching an event sink
two call hops away - past the single-file rule's one-hop lookup."""


class Fanout:
    def __init__(self, sim):
        self.sim = sim
        self.pending = set()

    def _emit(self, pid):
        self.sim.push(0.0, "deliver", pid)

    def _relay(self, pid):
        self._emit(pid)

    def flush(self):
        for pid in self.pending:
            self._relay(pid)

    def drain(self):
        while self.sim:
            now, kind, data = self.sim.pop()
            if kind == "deliver":
                return (now, data)
        return None

"""Golden violation: DES001 flags real I/O inside simulated callbacks."""

import time


def on_ack(uid, now):
    print("acked", uid)  # console I/O from virtual time


def retry_backoff(now: float):
    time.sleep(0.1)  # blocks the host, not the virtual clock

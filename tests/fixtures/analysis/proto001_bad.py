"""Golden violation: PROTO001 flags wire events scheduled outside the
transport layer - the message bypasses seq stamping, ack tracking and
the fault-injection hook."""


def sneak_delivery(sim, dst_proc, stream):
    sim.push(0.0, "msg_arrive", (dst_proc, stream, 0))

# repro: module=repro.runtime.badproto
"""Golden violation: PROTO004 flags all three exhaustiveness holes -
a pushed kind nobody dispatches, a dispatch branch for a kind nobody
pushes, and an hb record kind the HB checker does not understand."""


class MiniSim:
    def __init__(self):
        self.events = []

    def push(self, t, kind, data):
        self.events.append((t, kind, data))

    def pop(self):
        return self.events.pop(0)

    def note(self, t, kind, detail=None):
        return (t, kind, detail)


class MiniHbChecker:
    """Knows exactly one record kind: hb_send."""

    def _on_send(self, rec):
        return rec


def loop(sim):
    sim.push(0.0, "orphan", None)  # pushed, never handled
    now, kind, data = sim.pop()
    if kind == "ghost":  # handled, never pushed
        return None
    sim.note(now, "hb_warp")  # unknown to the HB checker
    return data

"""Suppressed twin of des001_bad."""


def on_ack(uid, now):
    print("acked", uid)  # repro: allow[DES001]

"""Golden violation: DET002 flags RNG that does not flow from a seed."""

import random

import numpy as np


def jitter():
    rng = np.random.default_rng()  # no seed: OS entropy
    legacy = np.random.uniform()  # global numpy state
    return rng.random() + legacy + random.random()  # global stdlib state

# repro: module=repro.runtime.chainclockok
"""Blessing the direct site kills the atom before it propagates: one
suppression at the source clears the entire caller cone."""

import time


def _stamp():
    return time.time()  # repro: allow[DET001]


def helper():
    return _stamp()


def caller():
    return helper()

"""Clean twin of det002_bad: all randomness flows from one seed."""

import numpy as np


def jitter(seed: int):
    rng = np.random.default_rng(seed)
    return rng.random()

"""Suppressed twin of det001_bad: the allow comment silences DET001."""

import time


def host_timestamp():
    # This module is driver-side reporting, outside the simulation.
    return time.time()  # repro: allow[DET001]

"""Clean twin of proto001_bad: the same push is legal from the module
that owns the wire (claimed via the module pragma)."""
# repro: module=repro.runtime.transport


def wire_push(sim, dst_proc, stream, wid):
    sim.push(0.0, "msg_arrive", (dst_proc, stream, wid))


def other_kinds_are_fine(sim, pid, stream):
    sim.push(0.0, "deliver", (pid, stream))

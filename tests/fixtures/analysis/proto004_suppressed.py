# repro: module=repro.runtime.okproto
"""Suppressed: allow[PROTO004] on every flagged protocol site."""


class MiniSim:
    def __init__(self):
        self.events = []

    def push(self, t, kind, data):
        self.events.append((t, kind, data))

    def pop(self):
        return self.events.pop(0)

    def note(self, t, kind, detail=None):
        return (t, kind, detail)


class MiniHbChecker:
    def _on_send(self, rec):
        return rec


def loop(sim):
    sim.push(0.0, "orphan", None)  # repro: allow[PROTO004]
    now, kind, data = sim.pop()
    if kind == "ghost":  # repro: allow[PROTO004]
        return None
    sim.note(now, "hb_warp")  # repro: allow[PROTO004]
    return data

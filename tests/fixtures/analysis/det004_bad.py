"""Golden violation: DET004 flags sort keys built on object identity."""


def stable_order(streams):
    return sorted(streams, key=id)


def worst(streams):
    return max(streams, key=lambda s: (s.items, id(s)))

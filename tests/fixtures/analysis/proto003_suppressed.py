"""Suppressed twin of proto003_bad."""
# repro: module=repro.service.rogue

# White-box test scaffolding that inspects the simulator on purpose.
# repro: allow[PROTO003]
from repro.runtime import Simulator


def peek():
    return Simulator

# repro: module=repro.persist.badsnap
"""Fixture: pickle bytes and hash-ordered sets in the snapshot path."""

import pickle


def snapshot_payload(state):
    return pickle.dumps(state)


class Layer:
    def __init__(self):
        self.dirty = set()

    def state_dict(self):
        return {"dirty": [pid for pid in self.dirty]}

# repro: module=repro.runtime.chainio
"""Interprocedural DES001: a simulated callback reaching host I/O
through a helper.  The helper itself is not a callback, so the
single-file rule cannot see it - only the effect re-host can."""


def _persist(data):
    with open("/tmp/out.bin", "wb") as fh:
        fh.write(data)


class Layer:
    def on_commit(self, now, data):
        _persist(data)

"""Golden violation: PROTO002 flags RunReport counter writes outside
the owning layer (this file claims to be the scheduler but writes
transport- and recovery-owned counters)."""
# repro: module=repro.runtime.scheduler


def account(report):
    report.retries += 1  # transport-owned
    report.crashes = 3  # recovery-owned

"""Suppressed twin of det002_bad."""

import numpy as np


def jitter():
    # repro: allow[DET002]
    rng = np.random.default_rng()
    return rng.random()

"""Suppressed twin of proto001_bad."""


def sneak_delivery(sim, dst_proc, stream):
    # Test scaffolding that injects a raw arrival on purpose.
    # repro: allow[PROTO001]
    sim.push(0.0, "msg_arrive", (dst_proc, stream, 0))

"""Clean twin of proto002_bad: the scheduler writes only the counters
it owns."""
# repro: module=repro.runtime.scheduler


def account(report, items):
    report.executions += 1
    report.stream_items += items

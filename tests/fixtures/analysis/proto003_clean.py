"""Clean twin of proto003_bad: the service talks to the runtime only
through facade entry points and pure data/config types."""
# repro: module=repro.service.polite

from repro.runtime import DataDrivenRuntime, FaultPlan, RecoveryConfig


def run(cores, progs, patch_proc):
    rt = DataDrivenRuntime(
        cores, faults=FaultPlan(seed=1), recovery=RecoveryConfig()
    )
    return rt.run(progs, patch_proc)

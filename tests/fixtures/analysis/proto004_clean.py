# repro: module=repro.runtime.goodproto
"""Clean: push and dispatch sides agree, hb kinds are known."""


class MiniSim:
    def __init__(self):
        self.events = []

    def push(self, t, kind, data):
        self.events.append((t, kind, data))

    def pop(self):
        return self.events.pop(0)

    def note(self, t, kind, detail=None):
        return (t, kind, detail)


class MiniHbChecker:
    def _on_send(self, rec):
        return rec


def loop(sim):
    sim.push(0.0, "tick", None)
    now, kind, data = sim.pop()
    if kind == "tick":
        sim.note(now, "hb_send")
    return data

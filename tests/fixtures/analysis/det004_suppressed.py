"""Suppressed twin of det004_bad."""


def stable_order(streams):
    return sorted(streams, key=id)  # repro: allow[DET004]

# repro: module=repro.runtime.goodwindow
"""Clean: every run-time write is covered by the snapshot round trip."""


def _tick(win):
    win.phase = win.phase + 1


class Window:
    def __init__(self):
        self.acked = 0
        self.inflight = {}
        self.phase = 0
        self.rtt_ewma = 0.0

    def on_ack(self, now, seq):
        self.acked = seq
        self.rtt_ewma = 0.9 * self.rtt_ewma + 0.1 * now

    def on_tick(self, now):
        _tick(self)

    def state_dict(self):
        return {
            "acked": self.acked,
            "inflight": dict(self.inflight),
            "phase": self.phase,
            "rtt_ewma": self.rtt_ewma,
        }

    def load_state_dict(self, state):
        self.acked = state["acked"]
        self.inflight = dict(state["inflight"])
        self.phase = state["phase"]
        self.rtt_ewma = state["rtt_ewma"]

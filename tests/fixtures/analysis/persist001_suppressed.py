# repro: module=repro.persist.oksnap
"""Fixture: explicit opt-outs silence PERSIST001."""

import pickle


def snapshot_payload(state):
    return pickle.dumps(state)  # repro: allow[PERSIST001]


class Layer:
    def __init__(self):
        self.dirty = set()

    def state_dict(self):
        # repro: allow[PERSIST001]
        return {"dirty": [pid for pid in self.dirty]}

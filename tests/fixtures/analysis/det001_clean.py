"""Clean twin of det001_bad: virtual time is passed down, not read."""


def stamp_run(now: float):
    return now

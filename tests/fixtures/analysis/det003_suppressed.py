"""Suppressed twin of det003_bad."""


def kick_all(sim, procs: set):
    # Order is provably irrelevant here (all events at one timestamp
    # commute for this consumer), reviewed 2026-08.
    # repro: allow[DET003]
    for p in procs:
        sim.push(0.0, "kick", p)

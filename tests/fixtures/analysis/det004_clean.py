"""Clean twin of det004_bad: sort on a stable domain key."""


def stable_order(streams):
    return sorted(streams, key=lambda s: (str(s.src), s.seq))

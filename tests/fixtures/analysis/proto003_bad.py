"""Golden violation: PROTO003 flags a service module reaching past the
DataDrivenRuntime facade - a runtime submodule import and an internal
layer name pulled out of the facade."""
# repro: module=repro.service.rogue

from repro.runtime import Simulator
from repro.runtime.transport import Transport


def hijack(nprocs):
    sim = Simulator(frozenset())
    return Transport, sim

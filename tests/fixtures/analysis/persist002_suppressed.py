# repro: module=repro.runtime.okwindow
"""Suppressed: allow[PERSIST002] on the flagged write lines."""


def _tick(win):
    win.phase = win.phase + 1  # repro: allow[PERSIST002]


class Window:
    def __init__(self):
        self.acked = 0
        self.phase = 0
        self.rtt_ewma = 0.0

    def on_ack(self, now, seq):
        self.acked = seq
        self.rtt_ewma = 0.9 * self.rtt_ewma + 0.1 * now  # repro: allow[PERSIST002]

    def on_tick(self, now):
        _tick(self)

    def state_dict(self):
        return {"acked": self.acked}

    def load_state_dict(self, state):
        self.acked = state["acked"]

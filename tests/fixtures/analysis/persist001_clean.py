# repro: module=repro.persist.goodsnap
"""Fixture: deterministic snapshot bytes via the versioned codec."""


def frame_payload(encode, frame, state):
    return frame(encode(state))


class Layer:
    def __init__(self):
        self.dirty = set()
        self.order = []

    def state_dict(self):
        return {
            "dirty": sorted(self.dirty),
            "order": [pid for pid in self.order],
        }

"""Tests for utilities, reporting helpers and remaining edge cases."""

import numpy as np
import pytest

from repro._util import ReproError, as_float_array, as_int_array, check, prod
from repro.runtime import CATEGORIES, Breakdown, CostModel, RunReport
from repro.sweep import SweepTopology, level_symmetric


class TestUtil:
    def test_check(self):
        check(True, "ok")
        with pytest.raises(ReproError):
            check(False, "boom")

    def test_as_int_array(self):
        a = as_int_array([[1, 2], [3, 4]], ndim=2)
        assert a.dtype == np.int64
        with pytest.raises(ReproError):
            as_int_array([1, 2], ndim=2)

    def test_as_float_array(self):
        a = as_float_array([1, 2, 3], ndim=1)
        assert a.dtype == np.float64
        with pytest.raises(ReproError):
            as_float_array([[1.0]], ndim=1)

    def test_prod(self):
        assert prod([]) == 1
        assert prod([2, 3, 4]) == 24


class TestBreakdownReporting:
    def test_add_and_fractions(self):
        bd = Breakdown()
        bd.add(("w", 0, 0), "kernel", 2.0)
        bd.add(("w", 0, 1), "comm", 1.0)
        bd.finalize_idle(3.0, [("w", 0, 0), ("w", 0, 1)])
        assert bd.by_category["idle"] == pytest.approx(3.0)
        fr = bd.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)
        assert fr["kernel"] == pytest.approx(2.0 / 6.0)

    def test_negative_time_rejected(self):
        bd = Breakdown()
        with pytest.raises(ValueError):
            bd.add(("w", 0, 0), "kernel", -1.0)

    def test_report_format_contains_all_categories(self):
        bd = Breakdown()
        bd.add(("w", 0, 0), "kernel", 1.0)
        bd.finalize_idle(1.0, [("w", 0, 0)])
        rep = RunReport(makespan=1.0, breakdown=bd, total_cores=1)
        text = rep.format_breakdown("hdr")
        for c in CATEGORIES:
            assert c in text

    def test_overhead_and_idle_fractions(self):
        bd = Breakdown()
        bd.add(("w", 0, 0), "graph_op", 1.0)
        bd.add(("w", 0, 0), "kernel", 1.0)
        bd.finalize_idle(4.0, [("w", 0, 0)])
        rep = RunReport(makespan=4.0, breakdown=bd, total_cores=1)
        assert rep.overhead_fraction() == pytest.approx(0.25)
        assert rep.idle_fraction() == pytest.approx(0.5)
        assert rep.core_seconds == pytest.approx(4.0)

    def test_empty_breakdown_fractions(self):
        bd = Breakdown()
        assert set(bd.fractions().values()) == {0.0}


class TestOnCyclePolicy:
    def test_unknown_policy_rejected(self, disk_patches):
        with pytest.raises(ReproError):
            SweepTopology(
                disk_patches, level_symmetric(2), on_cycle="ignore"
            )

    def test_acyclic_mesh_breaks_nothing(self, disk_patches):
        topo = SweepTopology(
            disk_patches, level_symmetric(2), on_cycle="break"
        )
        assert topo.broken_edges == 0

    def test_break_policy_completes_sweep(self, monkeypatch, disk_patches):
        """Force an artificial cycle into one angle's edges and check
        that the break policy yields runnable programs."""
        import repro.sweep.dag as dagmod

        real = dagmod.directed_edges

        def sabotaged(interfaces, direction, tol=1e-12):
            u, v = real(interfaces, direction, tol)
            # Append a 2-cycle between cells 0 and 1.
            u2 = np.concatenate([u, [0, 1]])
            v2 = np.concatenate([v, [1, 0]])
            return u2, v2

        monkeypatch.setattr(dagmod, "directed_edges", sabotaged)
        topo = dagmod.SweepTopology(
            disk_patches, level_symmetric(2), on_cycle="break"
        )
        assert topo.broken_edges >= 1

        # The resulting graphs still sweep to completion.
        from repro.core import SerialEngine
        from repro.sweep.priorities import apply_priorities
        from repro.sweep.sweep_program import SweepPatchProgram

        apply_priorities(topo, "fifo+fifo")
        eng = SerialEngine()
        for (p, a), g in topo.graphs.items():
            eng.add_program(
                SweepPatchProgram(
                    g, disk_patches.patches[p].cells, grain=32
                )
            )
        eng.run()  # termination check inside validates full workload

    def test_error_policy_raises_on_cycle(self, monkeypatch, disk_patches):
        import repro.sweep.dag as dagmod

        real = dagmod.directed_edges

        def sabotaged(interfaces, direction, tol=1e-12):
            u, v = real(interfaces, direction, tol)
            return (
                np.concatenate([u, [0, 1]]),
                np.concatenate([v, [1, 0]]),
            )

        monkeypatch.setattr(dagmod, "directed_edges", sabotaged)
        with pytest.raises(ReproError):
            dagmod.SweepTopology(
                disk_patches, level_symmetric(2), validate=True
            )


class TestCostModelDefaults:
    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(Exception):
            cm.t_vertex = 1.0

    def test_unpack_cost(self):
        cm = CostModel(groups=2)
        c = cm.unpack_cost(3, 10)
        assert c == pytest.approx(
            3 * cm.t_unpack_fixed + 10 * cm.t_unpack_item * 2
        )

"""Tests for reflecting (specular) boundary conditions.

Reflecting boundaries give the strongest analytic anchor in transport:
a reflecting box with a uniform source has the *exact* infinite-medium
solution phi = q / sigma_a, regardless of box size or quadrature.
"""

import numpy as np
import pytest

from repro._util import ReproError
from repro.framework import PatchSet
from repro.mesh import box_structured, cube_structured
from repro.sweep import (
    Material,
    MaterialMap,
    Quadrature,
    SnSolver,
    level_symmetric,
    product_quadrature,
)


def _reflecting_solver(mesh, material, sn=2, **kw):
    ps = PatchSet.from_structured(mesh, tuple(s // 2 or 1 for s in mesh.shape),
                                  nprocs=1)
    mm = MaterialMap.uniform(material, mesh.num_cells)
    return SnSolver(
        ps, level_symmetric(sn), mm, np.ones((mesh.num_cells, 1)),
        reflecting=True, fixup=False, **kw
    )


class TestInfiniteMediumExactness:
    @pytest.mark.parametrize("sigma,c", [(1.0, 0.0), (2.0, 0.5), (0.5, 0.8)])
    def test_phi_equals_q_over_sigma_a(self, sigma, c):
        mesh = cube_structured(4, length=2.0)
        s = _reflecting_solver(mesh, Material.isotropic(sigma, c))
        res = s.source_iteration(tol=1e-12, max_iterations=2000)
        assert res.converged
        exact = 1.0 / (sigma * (1.0 - c))
        np.testing.assert_allclose(res.phi, exact, rtol=1e-8)

    def test_exactness_independent_of_box_shape(self):
        mesh = box_structured((6, 3, 2), (3.0, 7.0, 1.0))
        s = _reflecting_solver(mesh, Material.isotropic(1.0, 0.4))
        res = s.source_iteration(tol=1e-12, max_iterations=2000)
        np.testing.assert_allclose(res.phi, 1.0 / 0.6, rtol=1e-8)

    def test_balance_with_reflection(self):
        mesh = cube_structured(4, length=2.0)
        s = _reflecting_solver(mesh, Material.isotropic(1.0, 0.5))
        res = s.source_iteration(tol=1e-12, max_iterations=2000)
        assert s.balance_residual(res) < 1e-9

    @pytest.mark.parametrize("quad", [level_symmetric(4),
                                      product_quadrature(2, 4)])
    def test_quadrature_sets_closed_under_reflection(self, quad):
        mesh = cube_structured(4, length=2.0)
        ps = PatchSet.single_patch(mesh)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.0), mesh.num_cells)
        s = SnSolver(ps, quad, mm, np.ones((mesh.num_cells, 1)),
                     reflecting=True, fixup=False)
        res = s.source_iteration(tol=1e-11, max_iterations=500)
        np.testing.assert_allclose(res.phi, 1.0, rtol=1e-7)


class TestSymmetryEquivalence:
    def test_half_problem_with_mirror_equals_full(self):
        """Vacuum full slab vs half slab with a reflecting... here we
        check the symmetric-source case: a reflecting box's flux is
        symmetric under coordinate reflection."""
        mesh = box_structured((8, 4, 4), (4.0, 2.0, 2.0))
        s = _reflecting_solver(mesh, Material.isotropic(1.0, 0.3), sn=4)
        res = s.source_iteration(tol=1e-10, max_iterations=1000)
        phi = res.phi[:, 0].reshape(mesh.shape)
        np.testing.assert_allclose(phi, phi[::-1, :, :], rtol=1e-6)
        np.testing.assert_allclose(phi, phi[:, ::-1, :], rtol=1e-6)


class TestModesAgree:
    def test_engine_matches_fast_over_iterations(self):
        mesh = cube_structured(4, length=2.0)
        ps = PatchSet.from_structured(mesh, (2, 2, 2), nprocs=2)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.3), mesh.num_cells)

        def fresh():
            return SnSolver(
                ps, level_symmetric(2), mm, np.ones((mesh.num_cells, 1)),
                reflecting=True, fixup=False,
            )

        r_fast = fresh().source_iteration(tol=1e-9, max_iterations=400)
        r_eng = fresh().source_iteration(
            tol=1e-9, max_iterations=400, mode="engine"
        )
        assert r_fast.iterations == r_eng.iterations
        np.testing.assert_array_equal(r_fast.phi, r_eng.phi)

    def test_fast_level_matches(self):
        mesh = cube_structured(4, length=2.0)
        ps = PatchSet.single_patch(mesh)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.3), mesh.num_cells)

        def fresh():
            return SnSolver(
                ps, level_symmetric(2), mm, np.ones((mesh.num_cells, 1)),
                reflecting=True, fixup=False,
            )

        r1 = fresh().source_iteration(tol=1e-9, max_iterations=400)
        r2 = fresh().source_iteration(
            tol=1e-9, max_iterations=400, mode="fast-level"
        )
        np.testing.assert_allclose(r2.phi, r1.phi, rtol=1e-10)


class TestValidation:
    def test_non_axis_aligned_boundary_rejected(self, disk):
        ps = PatchSet.single_patch(disk)
        mm = MaterialMap.uniform(Material.isotropic(1.0), disk.num_cells)
        with pytest.raises(ReproError):
            SnSolver(ps, level_symmetric(2), mm,
                     np.ones((disk.num_cells, 1)), reflecting=True)

    def test_non_closed_quadrature_rejected(self):
        mesh = cube_structured(4)
        ps = PatchSet.single_patch(mesh)
        mm = MaterialMap.uniform(Material.isotropic(1.0), mesh.num_cells)
        d = np.array([[0.6, 0.64, 0.48], [0.48, 0.6, 0.64]])
        d /= np.linalg.norm(d, axis=1)[:, None]
        quad = Quadrature(d, np.full(2, 2 * np.pi))
        with pytest.raises(ReproError):
            SnSolver(ps, quad, mm, np.ones((mesh.num_cells, 1)),
                     reflecting=True)

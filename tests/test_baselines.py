"""Tests for the KBA and BSP baselines."""

import numpy as np
import pytest

from repro._util import ReproError
from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.runtime import DataDrivenRuntime, Machine
from repro.sweep.baselines import BSPSweepRuntime, KBASchedule
from tests.conftest import make_solver


class TestKBA:
    def test_single_proc_is_serial(self):
        r = KBASchedule((16, 16, 16), 1, 1, k_blocks=4).simulate(8)
        assert r.efficiency(1) == pytest.approx(1.0, rel=0.01)

    def test_efficiency_decays_with_procs(self):
        effs = []
        for px in (2, 4, 8):
            r = KBASchedule((32, 32, 32), px, px, k_blocks=4).simulate(8)
            effs.append(r.efficiency(px * px))
        assert effs[0] > effs[1] > effs[2]

    def test_more_angles_improve_pipelining(self):
        """Deeper angle pipelines amortize the wavefront fill."""
        e_few = KBASchedule((32, 32, 32), 8, 8, k_blocks=4).simulate(8)
        e_many = KBASchedule((32, 32, 32), 8, 8, k_blocks=4).simulate(64)
        assert e_many.efficiency(64) > e_few.efficiency(64)

    def test_more_kblocks_improve_pipelining(self):
        e1 = KBASchedule((32, 32, 32), 8, 8, k_blocks=1).simulate(8)
        e8 = KBASchedule((32, 32, 32), 8, 8, k_blocks=8).simulate(8)
        assert e8.efficiency(64) > e1.efficiency(64)

    def test_task_count(self):
        r = KBASchedule((16, 16, 16), 2, 2, k_blocks=4).simulate(8)
        # 4 phases x 2 octants x 1 angle x 2 x 2 x 4 blocks.
        assert r.num_tasks == 4 * 2 * 1 * 2 * 2 * 4

    def test_validation(self):
        with pytest.raises(ReproError):
            KBASchedule((8, 8), 2, 2)
        with pytest.raises(ReproError):
            KBASchedule((8, 8, 8), 16, 2)
        with pytest.raises(ReproError):
            KBASchedule((8, 8, 8), 0, 2)

    def test_speedup_definition(self):
        r = KBASchedule((16, 16, 16), 4, 4, k_blocks=4).simulate(16)
        assert r.speedup == pytest.approx(r.serial_time / r.time)


def _bsp_setup(nprocs=4, sn=2, grain=16):
    machine = Machine(cores_per_proc=4)
    mesh = cube_structured(8, length=4.0)
    pset = PatchSet.from_structured(mesh, (2, 2, 4), nprocs=nprocs)
    solver = make_solver(pset, sn=sn, grain=grain)
    return machine, pset, solver


class TestBSPSweep:
    def test_completes_all_work(self):
        machine, pset, s = _bsp_setup()
        progs, _ = s.build_programs(compute=False)
        rep = BSPSweepRuntime(16, machine=machine).run(progs, pset.patch_proc)
        assert rep.supersteps > 1
        assert rep.time > 0

    def test_numerics_identical(self):
        machine, pset, s = _bsp_setup()
        ref, _, _ = s.sweep_once(mode="fast")
        progs, faces = s.build_programs()
        BSPSweepRuntime(16, machine=machine).run(progs, pset.patch_proc)
        phi, _ = s.accumulate(faces)
        np.testing.assert_array_equal(phi, ref)

    def test_supersteps_track_critical_path(self):
        """More patches along the sweep direction => more supersteps."""
        machine = Machine(cores_per_proc=4)
        mesh = cube_structured(8, length=4.0)
        steps = []
        for shape in ((4, 4, 4), (2, 2, 2)):
            pset = PatchSet.from_structured(mesh, shape, nprocs=4)
            s = make_solver(pset, sn=2)
            progs, _ = s.build_programs(compute=False)
            rep = BSPSweepRuntime(16, machine=machine).run(
                progs, pset.patch_proc
            )
            steps.append(rep.supersteps)
        assert steps[1] > steps[0]

    def test_barrier_cost_accumulates(self):
        machine, pset, s = _bsp_setup()
        progs, _ = s.build_programs(compute=False)
        rep = BSPSweepRuntime(16, machine=machine).run(progs, pset.patch_proc)
        assert rep.barrier_time > 0
        assert rep.time >= rep.compute_time + rep.barrier_time

    def test_data_driven_beats_bsp_when_sync_dominates(self):
        """At scale (many processes, fine patches) the per-super-step
        barrier and the wait-for-next-step delivery dominate BSP - the
        paper's motivation for the data-driven model."""
        machine = Machine(cores_per_proc=4, latency_inter=5e-5,
                          latency_intra=2e-5)
        cores = 64  # 16 procs
        mesh = cube_structured(8, length=4.0)
        pset = PatchSet.from_structured(mesh, (2, 2, 2), nprocs=16)
        s = make_solver(pset, sn=4)
        progs, _ = s.build_programs(compute=False)
        dd = DataDrivenRuntime(cores, machine=machine).run(
            progs, pset.patch_proc
        )
        progs2, _ = s.build_programs(compute=False)
        bsp = BSPSweepRuntime(cores, machine=machine).run(
            progs2, pset.patch_proc
        )
        assert dd.makespan < bsp.time

    def test_layout_mismatch(self):
        machine, pset, s = _bsp_setup(nprocs=8)
        progs, _ = s.build_programs(compute=False)
        with pytest.raises(ReproError):
            BSPSweepRuntime(16, machine=machine).run(progs, pset.patch_proc)

    def test_idle_fraction_bounded(self):
        machine, pset, s = _bsp_setup()
        progs, _ = s.build_programs(compute=False)
        rep = BSPSweepRuntime(16, machine=machine).run(progs, pset.patch_proc)
        assert 0.0 <= rep.idle_fraction(16) < 1.0

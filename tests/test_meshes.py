"""Tests for structured and unstructured meshes and their generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.mesh import (
    StructuredMesh,
    UnstructuredMesh,
    ball_tet_mesh,
    box_structured,
    cube_structured,
    cube_tet_mesh,
    disk_tri_mesh,
    reactor_mesh_2d,
    warped_quad_mesh,
)


class TestStructuredMesh:
    def test_basic_properties(self):
        m = StructuredMesh(shape=(4, 5, 6), spacing=(1.0, 2.0, 3.0))
        assert m.num_cells == 120
        assert m.cell_volume == 6.0
        assert m.lengths == (4.0, 10.0, 18.0)
        assert m.face_area(0) == 6.0
        assert m.face_area(1) == 3.0
        assert m.face_area(2) == 2.0

    def test_2d_supported(self):
        m = StructuredMesh(shape=(3, 3))
        assert m.ndim == 2
        assert m.num_cells == 9

    def test_invalid_shapes(self):
        with pytest.raises(ReproError):
            StructuredMesh(shape=(0, 3, 3))
        with pytest.raises(ReproError):
            StructuredMesh(shape=(3,))  # 1-D unsupported
        with pytest.raises(ReproError):
            StructuredMesh(shape=(3, 3), spacing=(1.0, -1.0))

    def test_indexing_roundtrip(self):
        m = StructuredMesh(shape=(3, 4, 5))
        for lin in range(m.num_cells):
            assert m.linear_index(m.multi_index(lin)) == lin

    def test_cell_centers_order_and_values(self):
        m = box_structured((2, 2), (2.0, 4.0))
        centers = m.cell_centers()
        assert centers.shape == (4, 2)
        np.testing.assert_allclose(centers[0], [0.5, 1.0])
        np.testing.assert_allclose(centers[-1], [1.5, 3.0])

    def test_neighbor(self):
        m = StructuredMesh(shape=(3, 3))
        assert m.neighbor((0, 0), 0, 1) == (1, 0)
        assert m.neighbor((0, 0), 0, -1) is None
        assert m.neighbor((2, 2), 1, 1) is None

    def test_assign_materials(self):
        m = cube_structured(4)
        m.assign_materials(lambda c: (c[:, 0] > 0.5).astype(int))
        assert set(np.unique(m.materials)) == {0, 1}
        assert m.materials.shape == (4, 4, 4)

    def test_material_shape_mismatch(self):
        with pytest.raises(ReproError):
            StructuredMesh(shape=(2, 2), materials=np.zeros((3, 3)))

    def test_node_coordinates(self):
        m = box_structured((2, 2), (1.0, 1.0))
        nodes = m.node_coordinates()
        assert nodes.shape == (9, 2)
        assert nodes.max() == 1.0


class TestUnstructuredInvariants:
    """Invariants every conforming mesh must satisfy."""

    @pytest.fixture(params=["disk", "ball", "reactor", "warped", "kuhn_cube"])
    def mesh(self, request):
        return request.getfixturevalue(request.param)

    def test_positive_volumes(self, mesh):
        assert np.all(mesh.cell_volumes > 0)

    def test_interior_faces_have_two_cells(self, mesh):
        fc = mesh.face_cells
        interior = fc[:, 1] >= 0
        assert np.all(fc[interior, 0] != fc[interior, 1])
        assert np.all(fc[:, 0] >= 0)

    def test_face_normals_unit(self, mesh):
        np.testing.assert_allclose(
            np.linalg.norm(mesh.face_normals, axis=1), 1.0, atol=1e-9
        )

    def test_normal_orientation(self, mesh):
        """Normals must point from face_cells[0] toward face_cells[1]."""
        away = mesh.face_centroids - mesh.cell_centroids[mesh.face_cells[:, 0]]
        dots = np.einsum("ij,ij->i", mesh.face_normals, away)
        assert np.all(dots > 0)

    def test_cell_faces_consistent(self, mesh):
        for c in range(0, mesh.num_cells, max(1, mesh.num_cells // 50)):
            for lf in range(mesh.faces_per_cell):
                fid = mesh.cell_faces[c, lf]
                assert c in mesh.face_cells[fid]

    def test_neighbors_symmetric(self, mesh):
        for c in range(0, mesh.num_cells, max(1, mesh.num_cells // 50)):
            for n in mesh.cell_neighbors[c]:
                if n >= 0:
                    assert c in mesh.cell_neighbors[n]

    def test_divergence_theorem(self, mesh):
        """Outward area vectors of every cell must sum to ~zero."""
        vec = (
            mesh.face_normals[mesh.cell_faces]
            * mesh.face_areas[mesh.cell_faces][..., None]
            * mesh.cell_face_signs[..., None]
        )
        closure = np.abs(vec.sum(axis=1)).max()
        scale = mesh.face_areas.mean()
        assert closure < 1e-9 * max(1.0, scale * mesh.faces_per_cell)

    def test_boundary_face_count_positive(self, mesh):
        assert len(mesh.boundary_faces) > 0

    def test_adjacency_graph_symmetric(self, mesh):
        indptr, indices = mesh.adjacency_graph()
        assert indptr[-1] == len(indices)
        # Every edge appears in both directions.
        edges = set()
        for v in range(mesh.num_cells):
            for u in indices[indptr[v] : indptr[v + 1]]:
                edges.add((v, int(u)))
        for v, u in edges:
            assert (u, v) in edges


class TestGenerators:
    def test_cube_tet_volume_exact(self):
        m = cube_tet_mesh((2, 3, 4), (2.0, 3.0, 4.0))
        assert m.num_cells == 2 * 3 * 4 * 6
        np.testing.assert_allclose(m.total_volume(), 24.0)

    def test_cube_tet_conforming(self):
        m = cube_tet_mesh((3, 3, 3))
        # Interior faces dominate in a conforming mesh; non-conforming
        # Kuhn splits would leave many orphan boundary faces inside.
        nb = len(m.boundary_faces)
        assert nb == 6 * 9 * 2  # each cube face splits into 2 triangles

    def test_ball_volume_converges(self):
        coarse = ball_tet_mesh(5).total_volume()
        fine = ball_tet_mesh(9).total_volume()
        exact = 4.0 / 3.0 * np.pi
        assert abs(fine - exact) < abs(coarse - exact)
        assert abs(fine - exact) / exact < 0.12

    def test_ball_deterministic(self):
        a = ball_tet_mesh(5, seed=3)
        b = ball_tet_mesh(5, seed=3)
        np.testing.assert_array_equal(a.cells, b.cells)

    def test_disk_area(self):
        m = disk_tri_mesh(10)
        assert abs(m.total_volume() - np.pi) / np.pi < 0.05

    def test_reactor_materials_regions(self):
        m = reactor_mesh_2d(14)
        mats = set(np.unique(m.materials).tolist())
        assert mats == {1, 2, 3, 4}
        # Vessel cells are the outermost ring.
        rad = np.linalg.norm(m.cell_centroids, axis=1)
        assert rad[m.materials == 4].min() > rad[m.materials == 1].max() - 1e-9

    def test_warped_quad_preserves_area(self):
        m = warped_quad_mesh((12, 8), (3.0, 2.0))
        np.testing.assert_allclose(m.total_volume(), 6.0, rtol=1e-9)

    def test_warped_quad_is_actually_warped(self):
        m = warped_quad_mesh((8, 8), amplitude=0.2)
        # Interior face normals should not all be axis-aligned.
        interior = m.face_cells[:, 1] >= 0
        n = np.abs(m.face_normals[interior])
        off_axis = np.minimum(n[:, 0], n[:, 1]) > 1e-6
        assert off_axis.mean() > 0.5

    def test_generators_reject_tiny(self):
        with pytest.raises(ReproError):
            ball_tet_mesh(1)
        with pytest.raises(ReproError):
            disk_tri_mesh(1)
        with pytest.raises(ReproError):
            reactor_mesh_2d(2)


class TestUnstructuredValidation:
    def test_bad_cell_indices(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ReproError):
            UnstructuredMesh(pts, np.array([[0, 1, 5]]), "tri")

    def test_unknown_cell_type(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ReproError):
            UnstructuredMesh(pts, np.array([[0, 1, 2]]), "pentagon")

    def test_degenerate_cell(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])  # collinear
        with pytest.raises(ReproError):
            UnstructuredMesh(pts, np.array([[0, 1, 2]]), "tri")

    def test_orientation_fixed(self):
        # Clockwise triangle is silently reordered to positive area.
        pts = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        m = UnstructuredMesh(pts, np.array([[0, 1, 2]]), "tri")
        assert m.cell_volumes[0] > 0

    def test_material_length_mismatch(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ReproError):
            UnstructuredMesh(
                pts, np.array([[0, 1, 2]]), "tri", materials=np.zeros(2)
            )


@given(n=st.integers(2, 5))
@settings(max_examples=8, deadline=None)
def test_kuhn_mesh_volume_property(n):
    m = cube_tet_mesh((n, n, n), (1.0, 1.0, 1.0))
    np.testing.assert_allclose(m.total_volume(), 1.0, rtol=1e-9)
    assert m.num_cells == 6 * n**3

"""Layered-runtime architecture tests.

Guards the decomposition of the DES runtime into its layer stack
(simulator < router < transport < scheduler < recovery < engine_des):
the import DAG must stay acyclic bottom-up, the scheduler policies own
their core layouts (no resource aliasing), and the simulator's trace
hook feeds the Chrome-trace exporter.
"""

import ast
import pathlib

import pytest

from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.runtime import (
    DataDrivenRuntime,
    HybridPolicy,
    Machine,
    MpiOnlyPolicy,
    Resource,
    Simulator,
)
from tests.conftest import make_solver

#: Bottom-up layer order: a module may import strictly-lower ones only.
LAYERS = [
    "simulator",
    "router",
    "transport",
    "scheduler",
    "recovery",
    "engine_des",
]

RUNTIME_DIR = (
    pathlib.Path(__file__).resolve().parent.parent
    / "src" / "repro" / "runtime"
)


def _runtime_imports(module: str) -> set[str]:
    """Names of repro.runtime modules imported by ``module``."""
    tree = ast.parse((RUNTIME_DIR / f"{module}.py").read_text())
    found = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            name = node.module
            if name.startswith("repro.runtime."):
                name = name.rsplit(".", 1)[-1]
            if node.level == 1:  # from .xxx import ...
                name = name.split(".")[0]
            if name in LAYERS:
                found.add(name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro.runtime."):
                    name = alias.name.rsplit(".", 1)[-1]
                    if name in LAYERS:
                        found.add(name)
    return found


class TestLayering:
    @pytest.mark.parametrize("module", LAYERS)
    def test_no_layer_imports_a_layer_above_it(self, module):
        rank = LAYERS.index(module)
        for imported in _runtime_imports(module):
            assert LAYERS.index(imported) < rank, (
                f"{module} imports {imported}, which sits above it "
                f"in the layer stack {LAYERS}"
            )

    def test_all_layer_modules_exist_with_docstrings(self):
        for module in LAYERS:
            path = RUNTIME_DIR / f"{module}.py"
            assert path.exists(), f"missing layer module {module}"
            assert ast.get_docstring(ast.parse(path.read_text())), (
                f"{module} lacks a module docstring"
            )

    def test_engine_is_a_thin_composition_root(self):
        n = len((RUNTIME_DIR / "engine_des.py").read_text().splitlines())
        assert n < 260, f"engine_des.py has {n} lines; should stay thin"


class TestSchedulerPolicies:
    def test_mpi_only_shares_one_core_per_rank(self):
        """No aliasing hack: the policy itself fuses master and worker
        on one timeline, labeled as the worker core."""
        machine = Machine(cores_per_proc=4)
        lay = machine.layout(4, "mpi_only")
        masters, workers = MpiOnlyPolicy().build_resources(lay.nprocs, lay)
        assert len(masters) == lay.nprocs
        for p, m in enumerate(masters):
            assert workers[p] == [m]
            assert m is workers[p][0]  # literally one shared timeline
            assert m.core == ("w", p, 0)

    def test_hybrid_separates_master_from_workers(self):
        machine = Machine(cores_per_proc=4)
        lay = machine.layout(16, "hybrid")
        masters, workers = HybridPolicy().build_resources(lay.nprocs, lay)
        for p, m in enumerate(masters):
            assert m.core == ("m", p)
            assert len(workers[p]) == lay.workers_per_proc
            for w, res in enumerate(workers[p]):
                assert res is not m
                assert res.core == ("w", p, w)


class TestSimulator:
    def test_event_order_time_then_fifo(self):
        sim = Simulator()
        sim.push(2.0, "b", 1)
        sim.push(1.0, "a", 2)
        sim.push(1.0, "a", 3)  # same time: FIFO by push sequence
        popped = [sim.pop() for _ in range(len(sim))]
        assert popped == [(1.0, "a", 2), (1.0, "a", 3), (2.0, "b", 1)]
        assert not sim

    def test_live_counts_progress_kinds_only(self):
        sim = Simulator(progress_kinds=frozenset({"work"}))
        sim.push(0.0, "work", None)
        sim.push(0.0, "timer", None)
        assert sim.live == 1
        sim.pop()  # pops "work" (pushed first)
        assert sim.live == 0
        sim.pop()
        assert sim.live == 0

    def test_next_seq_shared_with_pushes(self):
        sim = Simulator()
        first = sim.next_seq()
        sim.push(0.0, "x", None)
        assert sim.next_seq() == first + 2

    def test_observe_keeps_high_water_mark(self):
        sim = Simulator()
        sim.observe(3.0)
        sim.observe(1.0)
        assert sim.makespan == 3.0

    def test_resource_books_serially(self):
        r = Resource(("w", 0, 0))
        assert r.book(1.0, 2.0) == (1.0, 3.0)
        assert r.book(0.5, 1.0) == (3.0, 4.0)  # busy until 3.0
        assert r.core == ("w", 0, 0)

    def test_trace_hook_fires_per_pop(self):
        seen = []
        sim = Simulator(
            trace_hook=seen.append,
            trace_fields=lambda kind, data: (data, None, None),
        )
        sim.push(1.0, "k", 7)
        sim.pop()
        assert len(seen) == 1
        te = seen[0]
        assert (te.time, te.kind, te.proc) == (1.0, "k", 7)


def _small_run(trace: bool):
    machine = Machine(cores_per_proc=4)
    mesh = cube_structured(8, length=4.0)
    pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=4)
    s = make_solver(pset, grain=16)
    progs, _ = s.build_programs(compute=False)
    rt = DataDrivenRuntime(16, machine=machine, trace=trace)
    return rt.run(progs, pset.patch_proc)


class TestEventTrace:
    def test_trace_off_by_default(self):
        rep = _small_run(trace=False)
        assert rep.trace_events == []
        assert rep.to_chrome_trace() == {
            "traceEvents": [], "displayTimeUnit": "ms"
        }

    def test_structured_trace_and_chrome_export(self):
        rep = _small_run(trace=True)
        assert len(rep.trace_events) == rep.events
        kinds = {te.kind for te in rep.trace_events}
        assert {"run_start", "run_end", "deliver"} <= kinds
        starts = [te for te in rep.trace_events if te.kind == "run_start"]
        ends = [te for te in rep.trace_events if te.kind == "run_end"]
        assert len(starts) == len(ends) == rep.executions
        assert all(te.core[0] == "w" for te in starts)

        doc = rep.to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        evs = doc["traceEvents"]
        assert len(evs) == len(rep.trace_events)
        phs = {e["ph"] for e in evs}
        assert phs <= {"B", "E", "i"}
        slices = [e for e in evs if e["ph"] in ("B", "E")]
        assert len(slices) == 2 * rep.executions
        for e in evs:
            assert e["ts"] >= 0.0
            if e["ph"] == "i":
                assert e["args"]["kind"] not in ("run_start", "run_end")

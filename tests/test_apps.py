"""Tests for the application layer: Kobayashi, JSNT-S/U, particle trace."""

import numpy as np
import pytest

from repro._util import ReproError
from repro.apps import (
    JSNTS,
    JSNTU,
    kobayashi_materials,
    kobayashi_mesh,
    kobayashi_region,
    kobayashi_source,
    make_kobayashi_solver,
    trace_particles,
)
from repro.apps.kobayashi import MAT_SHIELD, MAT_SOURCE, MAT_VOID
from repro.framework import PatchSet
from repro.mesh import disk_tri_mesh
from repro.runtime import Machine


class TestKobayashiGeometry:
    def test_source_region(self):
        pts = np.array([[5.0, 5.0, 5.0], [15.0, 5.0, 5.0], [55.0, 55.0, 55.0]])
        for prob in (1, 2, 3):
            r = kobayashi_region(pts, prob)
            assert r[0] == MAT_SOURCE
            assert r[2] == MAT_SHIELD

    def test_problem2_straight_duct(self):
        pts = np.array([[5.0, 50.0, 5.0], [15.0, 50.0, 5.0]])
        r = kobayashi_region(pts, 2)
        assert r[0] == MAT_VOID
        assert r[1] == MAT_SHIELD

    def test_problem3_dogleg(self):
        # In the first leg, in the jog, in the second leg, outside.
        pts = np.array(
            [
                [5.0, 20.0, 5.0],
                [5.0, 25.0, 25.0],
                [5.0, 50.0, 35.0],
                [5.0, 50.0, 5.0],
            ]
        )
        r = kobayashi_region(pts, 3)
        assert r[0] == MAT_VOID
        assert r[1] == MAT_VOID
        assert r[2] == MAT_VOID
        assert r[3] == MAT_SHIELD

    def test_problem1_void_shell(self):
        pts = np.array([[30.0, 30.0, 30.0], [55.0, 30.0, 30.0]])
        r = kobayashi_region(pts, 1)
        assert r[0] == MAT_VOID
        assert r[1] == MAT_SHIELD

    def test_unknown_problem(self):
        with pytest.raises(ReproError):
            kobayashi_region(np.zeros((1, 3)), 4)

    def test_mesh_has_all_regions(self):
        m = kobayashi_mesh(12, problem=3)
        assert set(np.unique(m.materials)) == {MAT_SOURCE, MAT_VOID, MAT_SHIELD}

    def test_source_in_source_region_only(self):
        m = kobayashi_mesh(12)
        q = kobayashi_source(m)
        ids = m.material_flat()
        assert np.all(q[ids == MAT_SOURCE, 0] == 1.0)
        assert np.all(q[ids != MAT_SOURCE, 0] == 0.0)

    def test_materials_scattering_toggle(self):
        on = kobayashi_materials(True)
        off = kobayashi_materials(False)
        assert on[MAT_SHIELD].sigma_s.sum() > 0
        assert off[MAT_SHIELD].sigma_s.sum() == 0

    def test_min_resolution(self):
        with pytest.raises(ReproError):
            kobayashi_mesh(4)


class TestKobayashiSolve:
    def test_flux_decays_into_shield(self):
        s = make_kobayashi_solver(12, patch_shape=(6, 6, 6), scattering=False)
        res = s.source_iteration(tol=1e-6, max_iterations=50)
        assert res.converged
        mesh = s.mesh
        n = 12
        src = res.phi[mesh.linear_index((0, 0, 0)), 0]
        far = res.phi[mesh.linear_index((n - 1, n - 1, n - 1)), 0]
        assert src > 100 * far > 0

    def test_duct_streams_farther_than_shield(self):
        """The void duct carries flux much deeper than the shield does
        - the defining feature of the Kobayashi problems.  Needs an
        angle set dense enough to resolve the duct solid angle (the
        paper's 320-direction set); coarse S4 suffers ray effects."""
        from repro.sweep import product_quadrature

        s = make_kobayashi_solver(
            12, patch_shape=(6, 6, 6), problem=2, scattering=False,
            quadrature=product_quadrature(6, 24),
        )
        res = s.source_iteration(tol=1e-6, max_iterations=3)
        mesh = s.mesh
        n = 12
        j = n - 1  # far end in y
        in_duct = res.phi[mesh.linear_index((0, j, 0)), 0]
        in_shield = res.phi[mesh.linear_index((n // 2, j, 0)), 0]
        assert in_duct > 10 * in_shield

    def test_scattering_increases_flux(self):
        r0 = make_kobayashi_solver(
            10, patch_shape=(5, 5, 5), scattering=False
        ).source_iteration(tol=1e-6, max_iterations=80)
        r1 = make_kobayashi_solver(
            10, patch_shape=(5, 5, 5), scattering=True
        ).source_iteration(tol=1e-6, max_iterations=80)
        assert r1.phi.sum() > r0.phi.sum()


class TestJSNTApps:
    def test_jsnts_sweep_report(self):
        machine = Machine(cores_per_proc=4)
        app = JSNTS.kobayashi(
            12, total_cores=8, machine=machine, patch_shape=(4, 4, 4)
        )
        rep = app.sweep_report(8)
        assert rep.makespan > 0
        assert rep.vertices_solved == 12**3 * 24  # S4 default

    def test_jsnts_coarsened_fewer_executions(self):
        machine = Machine(cores_per_proc=4)
        app = JSNTS.kobayashi(
            12, total_cores=8, machine=machine, patch_shape=(4, 4, 4),
            grain=20,
        )
        dag = app.sweep_report(8)
        cg = app.sweep_report(8, coarsened=True)
        assert cg.executions < dag.executions

    def test_layout_mismatch_detected(self):
        machine = Machine(cores_per_proc=4)
        app = JSNTS.kobayashi(
            12, total_cores=8, machine=machine, patch_shape=(4, 4, 4)
        )
        with pytest.raises(ReproError):
            app.sweep_report(16)

    def test_jsntu_reactor(self):
        machine = Machine(cores_per_proc=4)
        app = JSNTU.reactor(
            12, total_cores=8, machine=machine, patch_size=100, groups=2
        )
        rep = app.sweep_report(8)
        assert rep.vertices_solved > 0

    def test_jsntu_ball_solves(self):
        machine = Machine(cores_per_proc=4)
        app = JSNTU.ball(
            4, total_cores=4, machine=machine, patch_size=120, groups=1,
        )
        res = app.solve(tol=1e-4, max_iterations=60)
        assert res.converged
        assert np.all(res.phi >= 0)

    def test_jsntu_mpi_only_mode(self):
        machine = Machine(cores_per_proc=4)
        app = JSNTU.reactor(
            12, total_cores=8, mode="mpi_only", machine=machine,
            patch_size=60, groups=1,
        )
        rep = app.sweep_report(8, mode="mpi_only")
        assert rep.total_cores == 8


class TestParticleTrace:
    def test_paths_match_circle_chords(self):
        mesh = disk_tri_mesh(10)
        ps = PatchSet.from_unstructured(mesh, 50, nprocs=2)
        rng = np.random.default_rng(0)
        n = 100
        pos = rng.uniform(-0.3, 0.3, size=(n, 2))
        th = rng.uniform(0, 2 * np.pi, n)
        dirs = np.stack([np.cos(th), np.sin(th)], axis=1)
        parts = trace_particles(ps, pos, dirs)
        assert len(parts) == n
        errs = []
        for p, p0, d in zip(parts, pos, dirs):
            b = p0 @ d
            t = -b + np.sqrt(b * b - (p0 @ p0 - 1))
            errs.append(abs(p.path_length - t))
        assert np.median(errs) < 0.01
        assert np.mean(errs) < 0.05

    def test_all_particles_exit(self):
        mesh = disk_tri_mesh(6)
        ps = PatchSet.from_unstructured(mesh, 30, nprocs=3)
        pos = np.zeros((16, 2))
        th = np.linspace(0, 2 * np.pi, 16, endpoint=False)
        dirs = np.stack([np.cos(th), np.sin(th)], axis=1)
        parts = trace_particles(ps, pos, dirs)
        assert all(not p.alive for p in parts)
        assert sorted(p.id for p in parts) == list(range(16))

    def test_crossings_counted(self):
        mesh = disk_tri_mesh(6)
        ps = PatchSet.from_unstructured(mesh, 1000, nprocs=1)
        parts = trace_particles(
            ps, np.zeros((1, 2)), np.array([[1.0, 0.0]])
        )
        assert parts[0].crossings >= 6  # must cross several cells

    def test_zero_direction_rejected(self):
        mesh = disk_tri_mesh(6)
        ps = PatchSet.from_unstructured(mesh, 50, nprocs=1)
        with pytest.raises(ReproError):
            trace_particles(ps, np.zeros((1, 2)), np.zeros((1, 2)))

    def test_runs_on_des_runtime(self):
        """The trace component is runtime-agnostic (same PatchProgram
        contract), including the consensus-termination path."""
        from repro.apps.particle_trace import Particle, ParticleTraceProgram
        from repro.runtime import DataDrivenRuntime

        mesh = disk_tri_mesh(8)
        machine = Machine(cores_per_proc=4)
        ps = PatchSet.from_unstructured(mesh, 40, nprocs=2)
        rng = np.random.default_rng(3)
        pos = rng.uniform(-0.2, 0.2, size=(30, 2))
        th = rng.uniform(0, 2 * np.pi, 30)
        dirs = np.stack([np.cos(th), np.sin(th)], axis=1)

        from scipy.spatial import cKDTree

        tree = cKDTree(mesh.cell_centroids)
        _, cells = tree.query(pos)
        seeds = {}
        for i, (x, d, c) in enumerate(zip(pos, dirs, cells)):
            patch = int(ps.cell_patch[int(c)])
            seeds.setdefault(patch, []).append(
                Particle(i, x.copy(), d.copy(), int(c))
            )
        progs = [
            ParticleTraceProgram(ps, p.id, seeds.get(p.id, []))
            for p in ps.patches
        ]
        rep = DataDrivenRuntime(
            8, machine=machine, termination="consensus"
        ).run(progs, ps.patch_proc)
        done = sum(len(p.finished) for p in progs)
        assert done == 30
        assert rep.termination_hops > 0

"""Tests for the patch-centric data-driven abstraction (repro.core)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.core import (
    MisraMarkerRing,
    PatchProgram,
    ProgramId,
    ProgramState,
    SerialEngine,
    Stream,
    WorkloadTracker,
)


class Relay(PatchProgram):
    """Forwards a token along a ring/chain; used to probe Alg. 1 semantics."""

    def __init__(self, patch, nxt=None, hops=0):
        super().__init__(patch, "relay")
        self.nxt = nxt
        self.hops = hops  # tokens this node should emit at init
        self.received = []
        self._out = []

    def init(self):
        for _ in range(self.hops):
            self._emit(0)

    def _emit(self, value):
        if self.nxt is not None:
            self._out.append(
                Stream(
                    self.id,
                    ProgramId(self.nxt, "relay"),
                    payload=value,
                    items=1,
                    nbytes=8,
                )
            )

    def input(self, s):
        self.received.append(s.payload)
        self._pending = s.payload

    def compute(self):
        while self.received and self.nxt is not None:
            v = self.received[-1]
            if v < 20:  # bounded forwarding
                self._emit(v + 1)
            self.received.pop()

    def output(self):
        return self._out.pop(0) if self._out else None

    def vote_to_halt(self):
        return True


class TestStream:
    def test_program_id_ordering_and_repr(self):
        a = ProgramId(1, 0)
        b = ProgramId(1, 1)
        assert a < b
        assert repr(a) == "(1,0)"

    def test_stream_validation(self):
        with pytest.raises(ValueError):
            Stream(ProgramId(0, 0), ProgramId(1, 0), items=-1)

    def test_program_id_hashable(self):
        assert len({ProgramId(0, "a"), ProgramId(0, "a"), ProgramId(1, "a")}) == 2


class TestSerialEngine:
    def test_chain_forwarding(self):
        eng = SerialEngine()
        progs = [Relay(i, nxt=i + 1 if i < 4 else None) for i in range(5)]
        progs[0].hops = 1
        for p in progs:
            eng.add_program(p)
        stats = eng.run()
        # Token visits every node once.
        assert stats.streams == 4
        assert all(
            eng.state(p.id) is ProgramState.INACTIVE for p in progs
        )

    def test_duplicate_program_rejected(self):
        eng = SerialEngine()
        eng.add_program(Relay(0))
        with pytest.raises(ReproError):
            eng.add_program(Relay(0))

    def test_stream_to_unknown_program_rejected(self):
        eng = SerialEngine()
        eng.add_program(Relay(0, nxt=99))
        progs = eng.programs[ProgramId(0, "relay")]
        progs.hops = 1
        with pytest.raises(ReproError):
            eng.run()

    def test_wrong_src_rejected(self):
        class Liar(Relay):
            def init(self):
                self._out.append(
                    Stream(ProgramId(42, "relay"), ProgramId(1, "relay"))
                )

        eng = SerialEngine()
        eng.add_program(Liar(0))
        eng.add_program(Relay(1))
        with pytest.raises(ReproError):
            eng.run()

    def test_priority_order(self):
        executed = []

        class P(PatchProgram):
            def __init__(self, patch, prio):
                super().__init__(patch, "t")
                self.prio = prio

            def input(self, s):
                pass

            def compute(self):
                executed.append(self.patch)

            def output(self):
                return None

            def vote_to_halt(self):
                return True

            def priority(self):
                return self.prio

        eng = SerialEngine()
        for i, prio in enumerate([1.0, 5.0, 3.0]):
            eng.add_program(P(i, prio))
        eng.run()
        assert executed == [1, 2, 0]  # by descending priority

    def test_reactivation_counted(self):
        eng = SerialEngine()
        a = Relay(0, nxt=1)
        b = Relay(1)
        a.hops = 1
        eng.add_program(a)
        eng.add_program(b)
        # Force b to halt before a's stream arrives by executing b first.
        # both priorities default to 0 -> insertion order is a, then b
        stats = eng.run()
        assert stats.executions >= 2

    def test_livelock_guard(self):
        class Spinner(PatchProgram):
            def __init__(self):
                super().__init__(0, "spin")

            def input(self, s):
                pass

            def compute(self):
                pass

            def output(self):
                return None

            def vote_to_halt(self):
                return False  # never halts

        eng = SerialEngine(max_executions=100)
        eng.add_program(Spinner())
        with pytest.raises(ReproError):
            eng.run()

    def test_remaining_workload_enforced(self):
        class Sloppy(Relay):
            def remaining_workload(self):
                return 3  # lies about unfinished work

        eng = SerialEngine()
        eng.add_program(Sloppy(0))
        with pytest.raises(ReproError):
            eng.run()

    def test_self_stream(self):
        """A program may stream to itself and must reactivate."""

        class SelfPing(PatchProgram):
            def __init__(self):
                super().__init__(0, "self")
                self.rounds = 0
                self._out = []

            def init(self):
                self._out.append(
                    Stream(self.id, self.id, payload=None, items=1)
                )

            def input(self, s):
                self.rounds += 1

            def compute(self):
                if 0 < self.rounds < 3:
                    self._out.append(
                        Stream(self.id, self.id, payload=None, items=1)
                    )

            def output(self):
                return self._out.pop(0) if self._out else None

            def vote_to_halt(self):
                return True

        eng = SerialEngine()
        p = SelfPing()
        eng.add_program(p)
        eng.run()
        assert p.rounds == 3


class TestWorkloadTracker:
    def test_commit_and_done(self):
        t = WorkloadTracker()
        t.commit("a", 5)
        t.commit("b", 3)
        assert t.total() == 8
        assert not t.is_done()
        t.commit("a", 0)
        t.commit("b", 0)
        assert t.is_done()

    def test_negative_rejected(self):
        t = WorkloadTracker()
        with pytest.raises(ReproError):
            t.commit("a", -1)

    def test_pending_keys(self):
        t = WorkloadTracker()
        t.commit("x", 1)
        assert t.pending_keys() == ["x"]


class TestMisraMarker:
    def test_simple_termination(self):
        ring = MisraMarkerRing(3)
        for p in range(3):
            ring.on_idle(p)
        hops = ring.run_to_completion()
        # All start black: whitening pass + clean round.
        assert ring.finished
        assert hops >= 3

    def test_busy_process_blocks_marker(self):
        ring = MisraMarkerRing(2)
        ring.on_idle(0)
        ring.on_busy(1)
        assert not ring.step()  # holder 0 idle, advances or whitens
        # Run a few steps; must never finish while 1 is busy.
        for _ in range(10):
            assert not ring.step()
        assert not ring.finished

    def test_message_blackens(self):
        ring = MisraMarkerRing(2)
        for p in range(2):
            ring.on_idle(p)
        # Whiten both with a couple of steps first.
        ring.step()
        ring.step()
        ring.on_receive(0)  # also marks busy
        assert not ring.finished
        ring.on_idle(0)
        ring.run_to_completion()
        assert ring.finished

    def test_run_to_completion_requires_idle(self):
        ring = MisraMarkerRing(2)
        ring.on_idle(0)
        with pytest.raises(ReproError):
            ring.run_to_completion()

    def test_single_process(self):
        ring = MisraMarkerRing(1)
        ring.on_idle(0)
        ring.run_to_completion()
        assert ring.finished


@given(n=st.integers(1, 12), events=st.integers(0, 30), seed=st.integers(0, 999))
@settings(max_examples=40, deadline=None)
def test_marker_always_terminates_once_quiet(n, events, seed):
    """Property: after arbitrary send/receive activity, once every
    process idles the marker terminates in a bounded number of hops."""
    rng = np.random.default_rng(seed)
    ring = MisraMarkerRing(n)
    for _ in range(events):
        p = int(rng.integers(n))
        if rng.random() < 0.5:
            ring.on_send(p)
        else:
            ring.on_receive(p)
        ring.step()
    for p in range(n):
        ring.on_idle(p)
    hops = ring.run_to_completion()
    assert ring.finished
    assert hops <= 2 * n + 1


class TestWorkloadTrackerEpochs:
    """Idempotent commits under re-execution (crash recovery)."""

    def test_stale_epoch_commit_ignored(self):
        t = WorkloadTracker()
        assert t.commit("a", 7, epoch=1)  # migrated program's commit
        assert not t.commit("a", 0, epoch=0)  # lost execution's late commit
        assert t.total() == 7  # the stale zero did not win
        assert not t.is_done()

    def test_same_epoch_recommit_applied(self):
        t = WorkloadTracker()
        assert t.commit("a", 5, epoch=2)
        assert t.commit("a", 3, epoch=2)  # re-delivered commit: last wins
        assert t.total() == 3

    def test_newer_epoch_overrides(self):
        t = WorkloadTracker()
        t.commit("a", 0, epoch=0)  # finished... on the crashed proc
        assert t.is_done()
        assert t.commit("a", 4, epoch=1)  # re-executed from checkpoint
        assert not t.is_done()
        t.commit("a", 0, epoch=1)
        assert t.is_done()

    def test_epoch_of(self):
        t = WorkloadTracker()
        assert t.epoch_of("a") is None
        t.commit("a", 1, epoch=3)
        assert t.epoch_of("a") == 3
        t.commit("a", 1, epoch=2)  # ignored
        assert t.epoch_of("a") == 3


class TestMisraMarkerUnderFaults:
    """The ring must stay sound when messages are duplicated, retried
    or reordered - every duplicate delivery blackens the receiver, so
    termination can only be delayed, never declared early."""

    def test_duplicate_receive_after_whitening_forces_extra_round(self):
        ring = MisraMarkerRing(2)
        for p in range(2):
            ring.on_idle(p)
        ring.step()
        ring.step()  # both whitened by now
        ring.on_receive(1)  # late duplicate (retransmission) arrives
        ring.on_idle(1)
        hops_before = ring.hops
        assert not ring.finished
        ring.run_to_completion()
        assert ring.finished
        assert ring.hops > hops_before  # the dup cost at least one hop

    def test_duplicates_never_terminate_early(self):
        ring = MisraMarkerRing(3)
        for p in range(3):
            ring.on_idle(p)
        # A retry storm: the same logical message delivered repeatedly
        # to proc 2 while the marker circulates.
        for _ in range(10):
            ring.on_receive(2)
            assert not ring.step()  # proc 2 is black: no clean circuit
            ring.on_idle(2)
        assert not ring.finished  # still black from the last duplicate
        ring.run_to_completion()
        assert ring.finished

    def test_reordered_send_receive_pairs(self):
        """Acks/data arriving out of order: receive reported before the
        matching send event is observed locally."""
        ring = MisraMarkerRing(2)
        for p in range(2):
            ring.on_idle(p)
        ring.on_receive(1)  # arrival observed first
        ring.on_send(0)  # ... then the send
        for p in range(2):
            ring.on_idle(p)
        ring.run_to_completion()
        assert ring.finished


@given(n=st.integers(2, 8), msgs=st.integers(0, 20), seed=st.integers(0, 999))
@settings(max_examples=40, deadline=None)
def test_marker_sound_under_duplication_and_reordering(n, msgs, seed):
    """Property: deliver every message 1-3 times in shuffled order with
    marker steps interleaved; termination is reached once quiet and is
    never declared while a delivery is still outstanding."""
    rng = np.random.default_rng(seed)
    ring = MisraMarkerRing(n)
    deliveries = []
    for _ in range(msgs):
        src, dst = int(rng.integers(n)), int(rng.integers(n))
        copies = int(rng.integers(1, 4))  # retries / injected duplicates
        deliveries.extend([(src, dst)] * copies)
    order = rng.permutation(len(deliveries)) if deliveries else []
    for i in order:
        src, dst = deliveries[int(i)]
        ring.on_send(src)
        ring.on_receive(dst)
        ring.step()  # marker circulates between deliveries
        ring.on_idle(dst)
        ring.on_idle(src)
    for p in range(n):
        ring.on_idle(p)
    hops = ring.run_to_completion()
    assert ring.finished
    assert hops <= 2 * n + 1

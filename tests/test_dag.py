"""Tests for sweep DAG construction (repro.sweep.dag)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.framework import PatchSet, build_interfaces
from repro.mesh import cube_structured, disk_tri_mesh
from repro.sweep import (
    SweepTopology,
    check_acyclic,
    directed_edges,
    level_symmetric,
)


def _unit(v):
    v = np.asarray(v, dtype=float)
    return v / np.linalg.norm(v)


class TestDirectedEdges:
    def test_structured_axis_direction(self, cube8):
        it = build_interfaces(cube8)
        u, v = directed_edges(it, np.array([1.0, 0.0, 0.0]))
        # Only x-interfaces active: n*n*(n-1) of them.
        assert len(u) == 8 * 8 * 7
        mi_u = np.array(np.unravel_index(u, cube8.shape)).T
        mi_v = np.array(np.unravel_index(v, cube8.shape)).T
        assert np.all(mi_v[:, 0] - mi_u[:, 0] == 1)

    def test_direction_reversal_flips_edges(self, disk):
        it = build_interfaces(disk)
        d = _unit([0.3, 0.8, 0.5])
        u1, v1 = directed_edges(it, d)
        u2, v2 = directed_edges(it, -d)
        assert sorted(zip(u1.tolist(), v1.tolist())) == sorted(
            zip(v2.tolist(), u2.tolist())
        )

    def test_diagonal_direction_has_all_interfaces(self, cube8):
        it = build_interfaces(cube8)
        u, v = directed_edges(it, _unit([1.0, 1.0, 1.0]))
        assert len(u) == it.num_interfaces

    def test_every_edge_is_an_interface(self, ball):
        it = build_interfaces(ball)
        u, v = directed_edges(it, _unit([0.2, -0.5, 0.9]))
        pairs = {
            (min(a, b), max(a, b))
            for a, b in zip(it.cell_a.tolist(), it.cell_b.tolist())
        }
        for a, b in zip(u.tolist(), v.tolist()):
            assert (min(a, b), max(a, b)) in pairs


class TestAcyclicity:
    @pytest.mark.parametrize(
        "meshname", ["cube8", "disk", "ball", "warped", "kuhn_cube"]
    )
    def test_all_meshes_acyclic_for_sample_directions(self, meshname, request):
        mesh = request.getfixturevalue(meshname)
        it = build_interfaces(mesh)
        rng = np.random.default_rng(7)
        for _ in range(5):
            d = _unit(rng.standard_normal(3))
            u, v = directed_edges(it, d)
            assert check_acyclic(mesh.num_cells, u, v)

    def test_cycle_detected(self):
        # 3-cycle.
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 0])
        assert not check_acyclic(3, u, v)

    def test_empty_graph_acyclic(self):
        assert check_acyclic(5, np.zeros(0, np.int64), np.zeros(0, np.int64))


class TestSweepTopology:
    @pytest.fixture(scope="class")
    def topo(self):
        mesh = cube_structured(6)
        pset = PatchSet.from_structured(mesh, (3, 3, 3), nprocs=2)
        return SweepTopology(pset, level_symmetric(2), validate=True)

    def test_graph_per_patch_angle(self, topo):
        assert len(topo.graphs) == topo.pset.num_patches * 8
        assert topo.num_vertices == 6**3 * 8

    def test_counts_match_edges(self, topo):
        """Sum of init counts == total edges, per angle."""
        for a in range(topo.num_angles):
            total_counts = sum(
                topo.graphs[(p, a)].init_counts.sum()
                for p in range(topo.pset.num_patches)
            )
            total_edges = sum(
                topo.graphs[(p, a)].num_local_edges
                + topo.graphs[(p, a)].num_remote_edges
                for p in range(topo.pset.num_patches)
            )
            assert total_counts == total_edges

    def test_remote_edges_cross_patches(self, topo):
        for (p, a), g in topo.graphs.items():
            assert np.all(g.dr_patch != p)

    def test_sources_exist_somewhere(self, topo):
        """Every angle has at least one globally ready vertex."""
        for a in range(topo.num_angles):
            srcs = sum(
                len(topo.graphs[(p, a)].source_vertices)
                for p in range(topo.pset.num_patches)
            )
            assert srcs > 0

    def test_corner_cell_is_source(self, topo):
        """The most-upwind corner cell has zero in-degree for S2 angle
        pointing into the domain from that corner."""
        q = topo.quadrature
        for a in range(q.num_angles):
            d = q.directions[a]
            # Corner at the upwind extreme of the domain.
            corner = tuple(0 if d[ax] > 0 else 5 for ax in range(3))
            lin = topo.pset.mesh.linear_index(corner)
            p = int(topo.pset.cell_patch[lin])
            loc = int(topo.pset.cell_local[lin])
            assert topo.graphs[(p, a)].init_counts[loc] == 0

    def test_patch_dag_nonempty(self, topo):
        for a in range(topo.num_angles):
            assert len(topo.patch_dag[a]) > 0

    def test_adjacency_lists_cached(self, topo):
        g = topo.graphs[(0, 0)]
        l1 = g.adjacency_lists()
        l2 = g.adjacency_lists()
        assert l1 is l2

    def test_boundary_vertices(self, topo):
        g = topo.graphs[(0, 0)]
        bnd = g.boundary_vertices()
        deg = np.diff(g.dr_indptr)
        np.testing.assert_array_equal(bnd, np.nonzero(deg > 0)[0])


class TestTopologyUnstructured:
    def test_disk_topology_counts(self, disk_patches):
        topo = SweepTopology(disk_patches, level_symmetric(2))
        total_local = sum(
            g.n_local for (p, a), g in topo.graphs.items() if a == 0
        )
        assert total_local == disk_patches.mesh.num_cells

    def test_interleaved_dependency_possible(self):
        """Fig. 4: cross-patch edges both ways for some angle on an
        irregular decomposition (the reason reentrancy is needed)."""
        mesh = disk_tri_mesh(8)
        pset = PatchSet.from_unstructured(mesh, 30, nprocs=1)
        topo = SweepTopology(pset, level_symmetric(2))
        found = False
        for a in range(topo.num_angles):
            pairs = set(map(tuple, topo.patch_dag[a].tolist()))
            if any((b, x) in pairs for (x, b) in pairs):
                found = True
        assert found


@given(seed=st.integers(0, 500))
@settings(max_examples=25, deadline=None)
def test_sweep_dag_acyclic_random_directions(seed, ):
    """Property: any direction induces an acyclic dependency graph on a
    Delaunay disk mesh."""
    mesh = disk_tri_mesh(6)
    it = build_interfaces(mesh)
    rng = np.random.default_rng(seed)
    d = rng.standard_normal(3)
    d[2] = 0.0
    if np.linalg.norm(d) < 1e-6:
        d = np.array([1.0, 0.0, 0.0])
    d = d / np.linalg.norm(d)
    u, v = directed_edges(it, d)
    assert check_acyclic(mesh.num_cells, u, v)

"""Tests for the analytic sweep performance model."""

import numpy as np
import pytest

from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.runtime import (
    DataDrivenRuntime,
    Machine,
    SweepPerformanceModel,
)
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric

MACHINE = Machine(cores_per_proc=4)


def _solver(nprocs, n=12, patch=4):
    mesh = cube_structured(n, float(n))
    pset = PatchSet.from_structured(mesh, (patch,) * 3, nprocs=nprocs)
    mm = MaterialMap.uniform(Material.isotropic(1.0, 0.5), mesh.num_cells)
    return pset, SnSolver(
        pset, level_symmetric(2), mm, np.ones((mesh.num_cells, 1))
    )


class TestModelStructure:
    def test_prediction_fields(self):
        _, s = _solver(2)
        model = SweepPerformanceModel(s.topology, machine=MACHINE)
        pred = model.predict(8)
        assert pred.time == max(pred.work_term, pred.pipeline_term)
        assert pred.total_vertices == s.topology.num_vertices
        assert pred.critical_path_patches >= 3  # at least the diagonal

    def test_work_term_scales_inversely(self):
        _, s = _solver(2)
        model = SweepPerformanceModel(s.topology, machine=MACHINE)
        p1 = model.predict(8)
        p2 = model.predict(16)
        assert p2.work_term == pytest.approx(p1.work_term / 2, rel=1e-9)

    def test_pipeline_term_core_independent(self):
        _, s = _solver(2)
        model = SweepPerformanceModel(s.topology, machine=MACHINE)
        assert model.predict(8).pipeline_term == pytest.approx(
            model.predict(64).pipeline_term
        )

    def test_knee_exists_and_is_consistent(self):
        _, s = _solver(2)
        model = SweepPerformanceModel(s.topology, machine=MACHINE)
        knee = model.knee_cores()
        assert model.predict(knee).pipeline_bound
        assert not model.predict(max(4, knee // 4)).pipeline_bound

    def test_unstructured_supported(self, disk_patches):
        from tests.conftest import make_solver

        s = make_solver(disk_patches, sn=2)
        model = SweepPerformanceModel(s.topology, machine=MACHINE)
        pred = model.predict(8)
        assert pred.time > 0
        assert pred.critical_path_patches >= 1


class TestModelVsDES:
    def test_model_tracks_des_within_factor_two(self):
        """The closed form is an optimistic bound; it must stay within
        2x of the DES and below it (it ignores contention/overheads)."""
        for cores in (8, 16, 32):
            nprocs = MACHINE.layout(cores, "hybrid").nprocs
            pset, s = _solver(nprocs, n=16)
            model = SweepPerformanceModel(s.topology, machine=MACHINE)
            pred = model.predict(cores)
            progs, _ = s.build_programs(compute=False)
            rep = DataDrivenRuntime(cores, machine=MACHINE).run(
                progs, pset.patch_proc
            )
            assert pred.time <= rep.makespan * 1.15
            assert pred.time >= rep.makespan / 2.5

    def test_model_predicts_scaling_trend(self):
        """Model speedups and DES speedups agree in ordering."""
        times_m, times_d = [], []
        for cores in (8, 32):
            nprocs = MACHINE.layout(cores, "hybrid").nprocs
            pset, s = _solver(nprocs, n=16)
            model = SweepPerformanceModel(s.topology, machine=MACHINE)
            times_m.append(model.predict(cores).time)
            progs, _ = s.build_programs(compute=False)
            rep = DataDrivenRuntime(cores, machine=MACHINE).run(
                progs, pset.patch_proc
            )
            times_d.append(rep.makespan)
        sp_m = times_m[0] / times_m[1]
        sp_d = times_d[0] / times_d[1]
        assert sp_m == pytest.approx(sp_d, rel=0.5)

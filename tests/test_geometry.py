"""Tests for the geometric primitives in repro.mesh.geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.mesh import geometry as geo


class TestTriangles:
    def test_unit_right_triangle_area(self):
        p0 = np.array([[0.0, 0.0]])
        p1 = np.array([[1.0, 0.0]])
        p2 = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(geo.triangle_areas(p0, p1, p2), [0.5])

    def test_3d_triangle_area(self):
        p0 = np.array([[0.0, 0.0, 0.0]])
        p1 = np.array([[2.0, 0.0, 0.0]])
        p2 = np.array([[0.0, 0.0, 3.0]])
        np.testing.assert_allclose(geo.triangle_areas(p0, p1, p2), [3.0])

    def test_face_normal_direction(self):
        p0 = np.array([[0.0, 0.0, 0.0]])
        p1 = np.array([[1.0, 0.0, 0.0]])
        p2 = np.array([[0.0, 1.0, 0.0]])
        n = geo.tri_face_normals(p0, p1, p2)
        np.testing.assert_allclose(n, [[0.0, 0.0, 1.0]])

    def test_degenerate_normal_raises(self):
        p = np.array([[0.0, 0.0, 0.0]])
        with pytest.raises(ReproError):
            geo.tri_face_normals(p, p, p)


class TestPolygons:
    def test_square_area_and_centroid(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 2.0], [0.0, 2.0]])
        cells = np.array([[0, 1, 2, 3]])
        np.testing.assert_allclose(geo.polygon_areas_2d(pts, cells), [4.0])
        np.testing.assert_allclose(
            geo.polygon_centroids_2d(pts, cells), [[1.0, 1.0]]
        )

    def test_clockwise_negative_area(self):
        pts = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 1.0], [1.0, 0.0]])
        cells = np.array([[0, 1, 2, 3]])
        assert geo.polygon_areas_2d(pts, cells)[0] < 0

    def test_centroid_of_asymmetric_triangle(self):
        pts = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 3.0]])
        cells = np.array([[0, 1, 2]])
        np.testing.assert_allclose(
            geo.polygon_centroids_2d(pts, cells), [[1.0, 1.0]]
        )


class TestEdges:
    def test_edge_normal_right_of_direction(self):
        p0 = np.array([[0.0, 0.0]])
        p1 = np.array([[0.0, 2.0]])  # pointing +y
        n, L = geo.edge_normals_2d(p0, p1)
        np.testing.assert_allclose(n, [[1.0, 0.0]])  # right of +y is +x
        np.testing.assert_allclose(L, [2.0])

    def test_zero_edge_raises(self):
        p = np.array([[1.0, 1.0]])
        with pytest.raises(ReproError):
            geo.edge_normals_2d(p, p)


class TestTetsAndHexes:
    def test_unit_tet_volume(self):
        p0 = np.array([[0.0, 0.0, 0.0]])
        p1 = np.array([[1.0, 0.0, 0.0]])
        p2 = np.array([[0.0, 1.0, 0.0]])
        p3 = np.array([[0.0, 0.0, 1.0]])
        np.testing.assert_allclose(geo.tet_volumes(p0, p1, p2, p3), [1.0 / 6])

    def test_tet_volume_signed(self):
        p0 = np.array([[0.0, 0.0, 0.0]])
        p1 = np.array([[1.0, 0.0, 0.0]])
        p2 = np.array([[0.0, 1.0, 0.0]])
        p3 = np.array([[0.0, 0.0, -1.0]])
        assert geo.tet_volumes(p0, p1, p2, p3)[0] < 0

    def test_unit_hex_volume(self):
        pts = np.array(
            [
                [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0],
                [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1],
            ],
            dtype=float,
        )
        cells = np.array([[0, 1, 2, 3, 4, 5, 6, 7]])
        np.testing.assert_allclose(geo.hex_volumes(pts, cells), [1.0])

    def test_quad_face_normal_area(self):
        p = [
            np.array([[0.0, 0.0, 0.0]]),
            np.array([[2.0, 0.0, 0.0]]),
            np.array([[2.0, 3.0, 0.0]]),
            np.array([[0.0, 3.0, 0.0]]),
        ]
        n, a = geo.quad_face_normals_areas(*p)
        np.testing.assert_allclose(np.abs(n), [[0.0, 0.0, 1.0]])
        np.testing.assert_allclose(a, [6.0])


@given(
    scale=st.floats(0.1, 10.0),
    rot=st.floats(0, 2 * np.pi),
)
@settings(max_examples=40, deadline=None)
def test_triangle_area_invariant_under_rotation(scale, rot):
    c, s = np.cos(rot), np.sin(rot)
    R = np.array([[c, -s], [s, c]])
    tri = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]) * scale
    tri_r = tri @ R.T
    a = geo.triangle_areas(tri[None, 0], tri[None, 1], tri[None, 2])
    b = geo.triangle_areas(tri_r[None, 0], tri_r[None, 1], tri_r[None, 2])
    np.testing.assert_allclose(a, b, rtol=1e-9)
    np.testing.assert_allclose(a, 0.5 * scale**2, rtol=1e-9)

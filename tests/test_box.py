"""Unit tests for repro.mesh.box."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.mesh.box import Box, box_union_covers, split_box


class TestBoxBasics:
    def test_shape_and_size(self):
        b = Box((1, 2, 3), (4, 6, 9))
        assert b.shape == (3, 4, 6)
        assert b.size == 72
        assert b.ndim == 3

    def test_empty_box(self):
        b = Box((0, 0), (0, 5))
        assert b.is_empty()
        assert b.size == 0

    def test_degenerate_raises(self):
        with pytest.raises(ReproError):
            Box((2, 0), (1, 5))

    def test_rank_mismatch_raises(self):
        with pytest.raises(ReproError):
            Box((0, 0), (1, 1, 1))

    def test_contains(self):
        b = Box((0, 0), (3, 3))
        assert b.contains((0, 0))
        assert b.contains((2, 2))
        assert not b.contains((3, 0))
        assert not b.contains((-1, 0))

    def test_contains_box(self):
        outer = Box((0, 0), (10, 10))
        inner = Box((2, 3), (5, 7))
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_frozen(self):
        b = Box((0,), (1,))
        with pytest.raises(Exception):
            b.lo = (5,)


class TestBoxOps:
    def test_intersection(self):
        a = Box((0, 0), (5, 5))
        b = Box((3, 3), (8, 8))
        assert a.intersection(b) == Box((3, 3), (5, 5))

    def test_disjoint_intersection_is_empty(self):
        a = Box((0, 0), (2, 2))
        b = Box((5, 5), (8, 8))
        assert a.intersection(b).is_empty()

    def test_shift(self):
        assert Box((0, 0), (2, 2)).shift((3, -1)) == Box((3, -1), (5, 1))

    def test_grow_scalar_and_clip(self):
        b = Box((2, 2), (4, 4)).grow(1)
        assert b == Box((1, 1), (5, 5))
        assert b.clip(Box((0, 0), (4, 4))) == Box((1, 1), (4, 4))

    def test_grow_per_axis(self):
        assert Box((2, 2), (4, 4)).grow((0, 2)) == Box((2, 0), (4, 6))


class TestBoxIndexing:
    def test_linear_index_roundtrip(self):
        b = Box((1, 2, 3), (4, 5, 7))
        for lin, idx in enumerate(b.cells()):
            assert b.linear_index(idx) == lin
            assert b.multi_index(lin) == idx

    def test_all_indices_matches_cells(self):
        b = Box((0, 1), (3, 4))
        arr = b.all_indices()
        assert arr.shape == (9, 2)
        assert [tuple(r) for r in arr] == list(b.cells())

    def test_slices_relative(self):
        outer = Box((0, 0), (10, 10))
        inner = Box((2, 3), (5, 7))
        a = np.zeros(outer.shape)
        a[inner.slices(outer)] = 1
        assert a.sum() == inner.size


class TestSplitBox:
    def test_exact_tiling(self):
        b = Box((0, 0, 0), (8, 8, 8))
        parts = split_box(b, (4, 4, 4))
        assert len(parts) == 8
        assert box_union_covers(parts, b)

    def test_ragged_tiling(self):
        b = Box((0, 0), (7, 5))
        parts = split_box(b, (3, 2))
        assert box_union_covers(parts, b)
        assert sum(p.size for p in parts) == b.size

    def test_patch_bigger_than_box(self):
        b = Box((0,), (3,))
        assert split_box(b, (10,)) == [b]

    def test_bad_patch_shape(self):
        with pytest.raises(ReproError):
            split_box(Box((0,), (3,)), (0,))
        with pytest.raises(ReproError):
            split_box(Box((0, 0), (3, 3)), (2,))


@given(
    lo=st.tuples(st.integers(-5, 5), st.integers(-5, 5)),
    shape=st.tuples(st.integers(1, 7), st.integers(1, 7)),
    patch=st.tuples(st.integers(1, 4), st.integers(1, 4)),
)
@settings(max_examples=60, deadline=None)
def test_split_box_always_tiles(lo, shape, patch):
    b = Box(lo, tuple(l + s for l, s in zip(lo, shape)))
    parts = split_box(b, patch)
    assert box_union_covers(parts, b)


@given(
    st.tuples(st.integers(0, 4), st.integers(0, 4), st.integers(0, 4)),
    st.tuples(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5)),
)
@settings(max_examples=60, deadline=None)
def test_linear_multi_roundtrip_property(lo, shape):
    b = Box(lo, tuple(l + s for l, s in zip(lo, shape)))
    for lin in range(b.size):
        assert b.linear_index(b.multi_index(lin)) == lin

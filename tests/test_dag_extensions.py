"""Tests for cycle breaking, topological levels and the vectorized kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.framework import PatchSet, build_interfaces
from repro.sweep import (
    Material,
    MaterialMap,
    SnSolver,
    check_acyclic,
    directed_edges,
    level_symmetric,
)
from repro.sweep.dag import break_cycles, topological_levels


class TestBreakCycles:
    def test_acyclic_untouched(self):
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 3])
        keep = break_cycles(4, u, v)
        assert keep.all()

    def test_simple_cycle_cut_once(self):
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 0])
        keep = break_cycles(3, u, v)
        assert keep.sum() == 2
        assert check_acyclic(3, u[keep], v[keep])

    def test_two_disjoint_cycles(self):
        u = np.array([0, 1, 2, 3])
        v = np.array([1, 0, 3, 2])
        keep = break_cycles(4, u, v)
        assert keep.sum() == 2
        assert check_acyclic(4, u[keep], v[keep])

    def test_weights_prefer_light_edges(self):
        # Cycle 0->1->2->0 where edge 2->0 is the lightest.
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 0])
        w = np.array([10.0, 10.0, 1.0])
        keep = break_cycles(3, u, v, weight=w)
        assert not keep[2]
        assert keep[0] and keep[1]

    def test_figure_eight(self):
        # Two cycles sharing vertex 0.
        u = np.array([0, 1, 0, 2])
        v = np.array([1, 0, 2, 0])
        keep = break_cycles(3, u, v)
        assert check_acyclic(3, u[keep], v[keep])
        assert keep.sum() >= 2


@given(n=st.integers(2, 20), m=st.integers(1, 60), seed=st.integers(0, 500))
@settings(max_examples=60, deadline=None)
def test_break_cycles_always_yields_dag(n, m, seed):
    rng = np.random.default_rng(seed)
    u = rng.integers(0, n, m)
    v = rng.integers(0, n, m)
    mask = u != v  # no self loops
    u, v = u[mask], v[mask]
    if len(u) == 0:
        return
    keep = break_cycles(n, u, v)
    assert check_acyclic(n, u[keep], v[keep])


class TestTopologicalLevels:
    def test_chain(self):
        u = np.array([0, 1, 2])
        v = np.array([1, 2, 3])
        levels = topological_levels(4, u, v)
        assert [l.tolist() for l in levels] == [[0], [1], [2], [3]]

    def test_levels_are_independent(self, disk):
        it = build_interfaces(disk)
        d = np.array([0.6, 0.8, 0.0])
        u, v = directed_edges(it, d)
        levels = topological_levels(disk.num_cells, u, v)
        assert sum(len(l) for l in levels) == disk.num_cells
        edges = set(zip(u.tolist(), v.tolist()))
        for level in levels:
            s = set(level.tolist())
            for a in s:
                for b in s:
                    assert (a, b) not in edges

    def test_levels_respect_order(self, cube8):
        it = build_interfaces(cube8)
        u, v = directed_edges(it, np.array([1.0, 0, 0]))
        levels = topological_levels(cube8.num_cells, u, v)
        assert len(levels) == 8  # one level per x-plane
        rank = {}
        for i, level in enumerate(levels):
            for c in level:
                rank[int(c)] = i
        for a, b in zip(u.tolist(), v.tolist()):
            assert rank[a] < rank[b]

    def test_cycle_raises(self):
        u = np.array([0, 1])
        v = np.array([1, 0])
        with pytest.raises(ReproError):
            topological_levels(2, u, v)


class TestFastLevelMode:
    @pytest.mark.parametrize("meshname,scheme", [
        ("cube8", "dd"), ("cube8", "step"), ("disk", "step"),
        ("warped", "step"),
    ])
    def test_matches_fast_mode(self, meshname, scheme, request):
        mesh = request.getfixturevalue(meshname)
        pset = PatchSet.single_patch(mesh)
        mm = MaterialMap.uniform(
            Material.isotropic(1.0, 0.4, groups=2), mesh.num_cells
        )
        s = SnSolver(
            pset, level_symmetric(2), mm,
            np.ones((mesh.num_cells, 2)), scheme=scheme,
        )
        pf, lf, _ = s.sweep_once(mode="fast")
        pl, ll, _ = s.sweep_once(mode="fast-level")
        np.testing.assert_allclose(pl, pf, rtol=1e-13, atol=1e-15)
        np.testing.assert_allclose(ll, lf, rtol=1e-12)

    def test_source_iteration_fast_level(self, cube8):
        pset = PatchSet.single_patch(cube8)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.6), cube8.num_cells)
        s = SnSolver(pset, level_symmetric(2), mm,
                     np.ones((cube8.num_cells, 1)))
        r1 = s.source_iteration(tol=1e-8, mode="fast")
        r2 = s.source_iteration(tol=1e-8, mode="fast-level")
        assert r1.iterations == r2.iterations
        np.testing.assert_allclose(r2.phi, r1.phi, rtol=1e-10)

    def test_dd_fixup_active_in_level_mode(self):
        """The set-to-zero fixup must clamp in the vectorized path too."""
        from repro.mesh import box_structured

        mesh = box_structured((20, 4, 4), (20.0, 4.0, 4.0))
        ids = (mesh.cell_centers()[:, 0] > 3.0).astype(np.int64)
        mesh.materials = ids.reshape(mesh.shape)
        mats = {0: Material.isotropic(5.0, 0.0), 1: Material.isotropic(0.01)}
        q = np.zeros((mesh.num_cells, 1))
        q[ids == 0] = 10.0
        pset = PatchSet.single_patch(mesh)
        s = SnSolver(pset, level_symmetric(4), MaterialMap(mats, ids), q,
                     scheme="dd", fixup=True)
        phi, _, _ = s.sweep_once(mode="fast-level")
        assert phi.min() >= 0

    def test_levels_cached(self, cube8):
        pset = PatchSet.single_patch(cube8)
        mm = MaterialMap.uniform(Material.isotropic(1.0), cube8.num_cells)
        s = SnSolver(pset, level_symmetric(2), mm,
                     np.ones((cube8.num_cells, 1)))
        l1 = s.topo_levels(0)
        l2 = s.topo_levels(0)
        assert l1 is l2

    def test_empty_level_call_is_noop(self, cube8):
        pset = PatchSet.single_patch(cube8)
        mm = MaterialMap.uniform(Material.isotropic(1.0), cube8.num_cells)
        s = SnSolver(pset, level_symmetric(2), mm,
                     np.ones((cube8.num_cells, 1)))
        k = s.kernel(0)
        pf = k.new_face_array(1)
        pc = np.zeros((cube8.num_cells, 1))
        k.solve_level(np.zeros(0, dtype=np.int64),
                      s._angle_source_v(np.zeros((cube8.num_cells, 1))),
                      s.sigma_t_v, pf, pc)
        assert pc.sum() == 0

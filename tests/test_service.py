"""Sweep-as-a-service unit tests: specs and content identity,
admission credits, circuit breakers, the executor's outcome taxonomy,
and the service loop end to end (fair share, dedup, retries,
deadlines, degradation, exactly-once commit, determinism).

All jobs use the tiny size=4 structured scenario; one module-level
executor shares the built scenario across tests.
"""

import json
import math

import pytest

from repro._util import ReproError
from repro.runtime import FaultPlan, LinkPartition
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    FailureReason,
    JobExecutor,
    JobRejected,
    JobSpec,
    JobStatus,
    RejectReason,
    ServiceConfig,
    SweepService,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN


def _spec(tenant="t", **kw):
    kw.setdefault("size", 4)
    return JobSpec(tenant=tenant, **kw)


def _poison(seed=1):
    """A plan that can never finish: the 0->1 link never heals."""
    return FaultPlan(
        partitions=(LinkPartition(0, 1, 0.0, math.inf),), seed=seed
    )


@pytest.fixture(scope="module")
def executor():
    return JobExecutor()


def _service(executor, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("tenant_slots", 8)
    kw.setdefault("global_slots", 16)
    return SweepService(ServiceConfig(**kw), executor=executor)


# -- specs and content identity --------------------------------------------------


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ReproError, match="tenant"):
            JobSpec(tenant="")
        with pytest.raises(ReproError, match="kind"):
            JobSpec(tenant="t", kind="moebius")
        with pytest.raises(ReproError, match="mode"):
            JobSpec(tenant="t", mode="openmp")
        with pytest.raises(ReproError, match="sn"):
            JobSpec(tenant="t", sn=3)
        with pytest.raises(ReproError, match="deadline"):
            JobSpec(tenant="t", deadline=0.0)

    def test_key_ignores_tenant_and_deadline(self):
        a = _spec("alice", deadline=1e-3)
        b = _spec("bob", deadline=9e-3)
        assert a.key() == b.key()

    def test_key_covers_content_fields(self):
        base = _spec()
        assert base.key() != _spec(seed=1).key()
        assert base.key() != _spec(grain=32).key()
        assert base.key() != _spec(faults=_poison()).key()
        assert _spec(faults=_poison(1)).key() != _spec(
            faults=_poison(2)).key()

    def test_demoted_only_coarsens(self):
        d = _spec(grain=16, patch=2).demoted(64, 4)
        assert (d.grain, d.patch) == (64, 4)
        # Already-coarse specs never get *finer*.
        d2 = _spec(grain=128, patch=8).demoted(64, 4)
        assert (d2.grain, d2.patch) == (128, 8)

    def test_rejection_is_structured(self):
        r = JobRejected(RejectReason.BREAKER_OPEN, 2e-3, "t", detail="x")
        d = r.to_dict()
        assert d["reason"] == RejectReason.BREAKER_OPEN
        assert d["retry_after"] == 2e-3
        assert "retry in" in str(r)


# -- admission credits -----------------------------------------------------------


class TestAdmission:
    def test_tenant_bound_sheds_with_hint(self):
        ac = AdmissionController(2, 8, est_job_time=1e-3)
        ac.admit("a", 0.0)
        ac.admit("a", 0.0)
        with pytest.raises(JobRejected) as ei:
            ac.admit("a", 0.0)
        assert ei.value.reason == RejectReason.TENANT_QUEUE_FULL
        assert ei.value.retry_after == 2 * 1e-3  # backlog of 2 ahead
        # Another tenant still has its own window.
        ac.admit("b", 0.0)

    def test_global_bound_sheds_everyone(self):
        ac = AdmissionController(2, 3, est_job_time=1e-3)
        ac.admit("a", 0.0)
        ac.admit("a", 0.0)
        ac.admit("b", 0.0)
        with pytest.raises(JobRejected) as ei:
            ac.admit("c", 0.0)
        assert ei.value.reason == RejectReason.SERVICE_OVERLOADED
        assert ac.shed() == 1 and ac.shed_rate() == 0.25

    def test_release_frees_capacity_and_guards_underflow(self):
        ac = AdmissionController(1, 8, est_job_time=1e-3)
        ac.admit("a", 0.0)
        ac.release("a")
        ac.admit("a", 1.0)  # credit came back
        with pytest.raises(ReproError, match="holds none"):
            ac.release("ghost")


# -- circuit breaker -------------------------------------------------------------


class TestBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        br = CircuitBreaker(threshold=3, open_for=1.0)
        for t in range(2):
            br.on_failure(float(t))
            assert br.state == CLOSED
        br.on_success(2.0)  # resets the count
        br.on_failure(3.0)
        br.on_failure(4.0)
        assert br.state == CLOSED
        br.on_failure(5.0)
        assert br.state == OPEN and br.trips == 1
        assert not br.allow(5.5)
        assert br.retry_after(5.5) == pytest.approx(0.5)

    def test_half_open_probe_closes_on_success(self):
        br = CircuitBreaker(threshold=1, open_for=1.0, probes=1)
        br.on_failure(0.0)
        assert br.allow(1.0)  # cool-down elapsed: one canary admitted
        assert br.state == HALF_OPEN
        assert not br.allow(1.0)  # probe budget spent
        br.on_success(1.5)
        assert br.state == CLOSED and br.allow(1.5)

    def test_half_open_probe_failure_reopens(self):
        br = CircuitBreaker(threshold=1, open_for=1.0)
        br.on_failure(0.0)
        assert br.allow(1.0)
        br.on_failure(1.5)
        assert br.state == OPEN and br.trips == 2
        assert not br.allow(2.0)  # new cool-down runs from t=1.5


# -- executor outcomes -----------------------------------------------------------


class TestExecutor:
    def test_clean_run_is_exact(self, executor):
        o = executor.execute(_spec(), None)
        assert o.status == "ok" and o.exact is True
        assert o.flux_crc is not None and o.duration == o.makespan > 0

    def test_scenario_cache_shares_builds(self, executor):
        before = executor.scenario_builds
        executor.execute(_spec(seed=7), None)
        executor.execute(_spec(seed=8), None)
        assert executor.scenario_builds == before  # same scenario_fields

    def test_deadline_cancels_with_consumed_slice(self, executor):
        full = executor.execute(_spec(), None).makespan
        o = executor.execute(_spec(), full / 2)
        assert o.status == "deadline"
        assert o.duration == full / 2  # the whole budget was consumed
        assert "cancelled" in o.detail

    def test_stall_attaches_structured_report(self, executor):
        o = executor.execute(_spec(faults=_poison()), None)
        assert o.status == "stall"
        assert o.stall is not None and o.stall["pending_events"] >= 0
        assert o.stall["lost"], "never-healing cut must show lost edges"


# -- the service loop ------------------------------------------------------------


class TestService:
    def test_jobs_complete_exact_with_latency(self, executor):
        svc = _service(executor)
        svc.submit(_spec(seed=1), at=0.0)
        svc.submit(_spec(seed=2), at=1e-5)
        res = svc.run_until_idle()
        assert [r.status for r in res] == [JobStatus.COMPLETED] * 2
        assert all(r.exact and r.latency > 0 for r in res)

    def test_fair_share_interleaves_tenants(self, executor):
        svc = _service(executor, workers=1)
        for i in range(3):
            svc.submit(_spec("hog", seed=10 + i), at=0.0)
        for i in range(3):
            svc.submit(_spec("meek", seed=20 + i), at=0.0)
        order = [r.tenant for r in svc.run_until_idle()]
        # The first hog job dispatched before meek existed; from then
        # on the single worker alternates tenants round-robin, even
        # though every hog job was submitted first.
        assert order == ["hog", "hog", "meek", "hog", "meek", "meek"]

    def test_duplicate_in_flight_coalesces(self, executor):
        svc = _service(executor)
        svc.submit(_spec("a", seed=30), at=0.0)
        svc.submit(_spec("b", seed=30), at=0.0)  # same content hash
        res = svc.run_until_idle()
        assert len(res) == 2 and len(svc.committed) == 1
        primary, follower = res
        assert not primary.cached and follower.cached
        assert follower.flux_crc == primary.flux_crc
        assert svc.coalesced == 1

    def test_repeat_after_commit_hits_cache(self, executor):
        svc = _service(executor)
        svc.submit(_spec(seed=31), at=0.0)
        svc.run_until_idle()
        svc.submit(_spec("other", seed=31), at=svc.now)
        res = svc.run_until_idle()
        hit = res[-1]
        assert hit.cached and hit.latency == 0.0 and svc.cache_hits == 1

    def test_worker_crash_retries_with_backoff(self, executor):
        # seed chosen so the first draws crash, later ones don't.
        svc = _service(executor, workers=1, worker_crash_rate=0.6,
                       seed=2, max_attempts=5)
        svc.submit(_spec(seed=32), at=0.0)
        res = svc.run_until_idle()
        assert res[0].status == JobStatus.COMPLETED
        assert res[0].attempts > 1 and svc.worker_crashes >= 1

    def test_retry_budget_exhaustion_fails_structured(self, executor):
        svc = _service(executor, workers=1, worker_crash_rate=0.999,
                       seed=0, max_attempts=3)
        svc.submit(_spec(seed=33), at=0.0)
        res = svc.run_until_idle()
        assert res[0].status == JobStatus.FAILED
        assert res[0].reason == FailureReason.WORKER_CRASH
        assert res[0].attempts == 3

    def test_deadline_failure_is_terminal_not_retried(self, executor):
        svc = _service(executor, default_deadline=5e-5)  # < makespan
        svc.submit(_spec(seed=34), at=0.0)
        res = svc.run_until_idle()
        assert res[0].status == JobStatus.FAILED
        assert res[0].reason == FailureReason.DEADLINE
        assert res[0].attempts == 1  # deterministic failure: fail fast

    def test_stall_failure_carries_report(self, executor):
        # Budget beyond the shared executor's 5ms watchdog horizon, so
        # the stall is *diagnosed* rather than deadline-cancelled.
        svc = _service(executor, default_deadline=20e-3)
        svc.submit(_spec(seed=35, faults=_poison()), at=0.0)
        res = svc.run_until_idle()
        assert res[0].reason == FailureReason.STALL
        assert res[0].stall is not None and res[0].stall["lost"]

    def test_breaker_quarantines_failing_tenant(self, executor):
        svc = _service(executor, breaker_threshold=2,
                       breaker_open_for=50e-3)
        # Two failures spaced out, then a submission while open.
        svc.submit(_spec("evil", seed=36, faults=_poison()), at=0.0)
        svc.submit(_spec("evil", seed=37, faults=_poison()), at=5e-3)
        svc.submit(_spec("good", seed=38), at=12e-3)
        svc.submit(_spec("evil", seed=39), at=12e-3)
        res = svc.run_until_idle()
        assert [r for r in res if r.tenant == "good"][0].status == (
            JobStatus.COMPLETED
        )
        assert len(svc.rejections) == 1
        rej = svc.rejections[0]
        assert rej["reason"] == RejectReason.BREAKER_OPEN
        assert rej["tenant"] == "evil" and rej["retry_after"] > 0

    def test_degradation_past_watermark(self, executor):
        # demote_patch stays at the spec's own patch: the size=4 mesh
        # cannot split into 4x4x4-cell patches across 4 processes.
        svc = _service(executor, workers=1, degrade_at=0.25,
                       tenant_slots=8, global_slots=8, demote_patch=2)
        for i in range(6):
            svc.submit(_spec(seed=40 + i), at=0.0)
        res = svc.run_until_idle()
        demoted = [r for r in res if r.demoted]
        assert demoted and all("grain" in r.demote_note for r in demoted)
        assert all(r.status == JobStatus.COMPLETED for r in res)
        # Demotion changes fidelity, never identity: results commit
        # under the *submitted* spec's key.
        assert len(svc.committed) == 6

    def test_replay_is_bitwise_identical(self, executor):
        def run():
            svc = _service(executor, worker_crash_rate=0.3, seed=5,
                           tenant_slots=2, global_slots=4)
            for i in range(8):
                svc.submit(_spec(f"t{i % 3}", seed=50 + i), at=i * 1e-4)
            svc.run_until_idle()
            return json.dumps(
                {"r": [r.to_dict() for r in svc.results],
                 "rej": svc.rejections},
                sort_keys=True,
            )

        assert run() == run()

    def test_submit_in_the_past_rejected(self, executor):
        svc = _service(executor)
        svc.submit(_spec(seed=60), at=1e-3)
        svc.run_until_idle()
        with pytest.raises(ReproError, match="service time"):
            svc.submit(_spec(seed=61), at=0.0)

    def test_metrics_ledger_balances(self, executor):
        svc = _service(executor, tenant_slots=2, global_slots=4)
        for i in range(7):
            svc.submit(_spec(seed=70 + i), at=0.0)
        svc.run_until_idle()
        m = svc.metrics()
        assert m["submissions"] == 7
        assert len(svc.arrivals_seen) == (
            len(svc.results) + len(svc.rejections)
        )
        assert m["completed"] == len(svc.committed)

"""Elastic-membership tests: incarnations, heartbeat detection, rejoin.

The contract under test (DESIGN.md §14): with membership armed there
is *no* detection oracle - crashes are discovered only through missed
heartbeats - and every path through the failure detector (true
detection, false suspicion of a slow-but-alive rank, restart + rejoin
via state transfer, re-promotion of a healed demotee) preserves the
strongest oracle the repo has: bitwise-identical flux to the
fault-free reference, sanitizer-clean, happens-before-race-free.
"""

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro._util import ReproError
from repro.analysis.hb import check_report
from repro.chaos import ChaosSpace, random_fault_plan, run_campaign
from repro.core.stream import ProgramId, Stream
from repro.runtime import (
    AdaptiveConfig,
    CrashFault,
    DataDrivenRuntime,
    FaultPlan,
    InvariantSanitizer,
    Machine,
    MembershipConfig,
    RecoveryConfig,
    Router,
    RunReport,
    SanitizerError,
    Simulator,
    StallError,
    StallReport,
    StragglerWindow,
    Transport,
)
from repro.runtime.metrics import Breakdown
from tests.test_chaos import _reference_phi, _run, _setup

CORES = 16  # 4 procs x (1 master + 3 workers) on the small machine

MCFG = MembershipConfig.all_on()


def _mrun(plan, mcfg=MCFG, **kw):
    return _run(plan, recovery=RecoveryConfig(membership=mcfg), **kw)


# -- config and plan validation --------------------------------------------------


class TestMembershipConfig:
    def test_defaults_off(self):
        m = MembershipConfig()
        assert not m.enabled
        assert RecoveryConfig().membership is None

    def test_all_on_enables(self):
        assert MCFG.enabled
        assert MCFG.heartbeat_interval > 0

    def test_validation(self):
        with pytest.raises(ReproError):
            MembershipConfig(heartbeat_interval=-1e-6)
        with pytest.raises(ReproError):
            MembershipConfig.all_on(min_timeout=0.0)
        with pytest.raises(ReproError):
            MembershipConfig.all_on(min_timeout=1e-3, max_timeout=1e-4)
        with pytest.raises(ReproError):
            MembershipConfig.all_on(rejoin_probes=0)
        with pytest.raises(ReproError):
            MembershipConfig.all_on(rebalance_budget=-1)
        with pytest.raises(ReproError):
            # A timeout shorter than the probe period always fires.
            MembershipConfig(heartbeat_interval=1e-3, min_timeout=1e-4)

    def test_watchdog_must_outlast_suspicion(self):
        with pytest.raises(ReproError, match="watchdog"):
            RecoveryConfig(
                watchdog_horizon=1e-3,
                membership=MembershipConfig.all_on(max_timeout=2e-3),
            )

    def test_membership_requires_resilient_programs(self):
        machine, pset, solver = _setup()
        progs, _ = solver.build_programs(resilient=False)
        rt = DataDrivenRuntime(
            CORES, machine=machine,
            recovery=RecoveryConfig(membership=MCFG),
            faults=FaultPlan(seed=1),
        )
        with pytest.raises(ReproError, match="resilient"):
            rt.run(progs, pset.patch_proc)


class TestRestartPlanValidation:
    def test_restart_after_negative_rejected(self):
        with pytest.raises(ReproError):
            CrashFault(0, 1.0, restart_after=-1.0)

    def test_double_crash_needs_earlier_restart(self):
        with pytest.raises(ReproError, match="never restarts"):
            FaultPlan(crashes=(CrashFault(1, 1.0), CrashFault(1, 2.0)))

    def test_second_crash_must_follow_the_restart(self):
        with pytest.raises(ReproError, match="restart"):
            FaultPlan(crashes=(
                CrashFault(1, 1.0, restart_after=2.0),
                CrashFault(1, 2.5),  # lands inside the down window
            ))

    def test_flapping_plan_accepted(self):
        plan = FaultPlan(crashes=(
            CrashFault(1, 1.0, restart_after=0.5),
            CrashFault(1, 2.0, restart_after=0.5),
        ))
        assert plan.permanent_procs() == set()
        assert plan.restart_delay(1, 1.0) == 0.5
        assert plan.restart_delay(1, 1.5) == 0.0

    def test_total_loss_counts_only_permanent_crashes(self):
        # Every proc dies, but one comes back: still survivors.
        plan = FaultPlan(crashes=(
            CrashFault(0, 1.0, restart_after=0.5),
            CrashFault(1, 1.0),
        ))
        assert plan.permanent_procs() == {1}
        plan.validate(2, [])
        with pytest.raises(ReproError, match="every process"):
            FaultPlan(crashes=(
                CrashFault(0, 1.0), CrashFault(1, 1.0),
            )).validate(2, [])


# -- incarnation fencing (transport + sanitizer units) ---------------------------


def _mini_router(nprocs=2):
    class _Prog:
        def __init__(self, patch):
            self.id = ProgramId(patch, 0)

    progs = [_Prog(p) for p in range(nprocs)]
    return Router(progs, np.arange(nprocs), nprocs)


def _mtransport():
    machine = Machine(cores_per_proc=4)
    layout = machine.layout(8, "hybrid")  # 2 procs
    sim = Simulator(frozenset({"msg_arrive"}))
    report = RunReport(makespan=0.0, breakdown=Breakdown(), total_cores=8)
    router = _mini_router()
    tr = Transport(
        sim, router, machine, layout, report,
        rcfg=RecoveryConfig(membership=MCFG),
    )
    return sim, router, tr


class TestIncarnationFencing:
    def test_send_stamps_current_incarnation(self):
        _, router, tr = _mtransport()
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
        tr.send(s, s.src, 0, 0.0, 0, 1)
        assert s.inc == (0, 0)
        router.fence(0)
        router.announce(0)
        s2 = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
        tr.send(s2, s2.src, 0, 1e-6, 0, 1)
        assert s2.inc == (0, 1)

    def test_stale_incarnation_rejected_and_counted(self):
        _, router, tr = _mtransport()
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
        tr.send(s, s.src, 0, 0.0, 0, 1)
        router.fence(0)  # sender's old life is fenced off
        assert not tr.receive(s, 1, 1e-6)
        assert tr.report.fenced_messages == 1
        # A fenced message is dropped silently: no ack, and the uid is
        # not marked seen, so the *new* incarnation can redeliver it.
        router.announce(0)
        s2 = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
        tr.send(s2, s2.src, 0, 2e-6, 0, 1)
        assert tr.receive(s2, 1, 3e-6)
        assert tr.report.fenced_messages == 1

    def test_incarnation_survives_checksum(self):
        # s.inc is metadata, not payload: stamping it must not change
        # the end-to-end checksum (goldens with membership off depend
        # on the byte layout staying put).
        from repro.runtime import stream_checksum

        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
        base = stream_checksum(s)
        s.inc = (0, 3)
        assert stream_checksum(s) == base

    def test_fence_idempotent_per_life(self):
        router = _mini_router()
        assert router.fence(0) == 1
        assert router.fence(0) == 1  # second fence of one life: no-op
        assert router.announce(0) == 1  # adopts the pre-bump
        assert router.fence(0) == 2  # next life fences afresh

    def test_sanitizer_rejects_stale_incarnation_delivery(self):
        router = _mini_router()
        san = InvariantSanitizer(router)
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
        s.seq = 0
        s.inc = (0, 0)
        router.fence(0)
        with pytest.raises(SanitizerError, match="stale incarnation"):
            san.on_delivery(s, 1)

    def test_sanitizer_rejects_delivery_on_fenced_proc(self):
        router = _mini_router()
        san = InvariantSanitizer(router)
        router.fence(1)
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
        s.seq = 0
        s.inc = (0, router.inc[0])
        with pytest.raises(SanitizerError, match="fenced proc"):
            san.on_delivery(s, 1)


# -- rebalance unit --------------------------------------------------------------


class TestRebalance:
    def test_moves_bounded_and_deterministic(self):
        router = _mini_router(4)
        # Pile everything onto proc 0: [p0: 4 patches, others: 0].
        for p in range(1, 4):
            for pid in list(router.owned[p]):
                router.owned[p].remove(pid)
                router.owned[0].append(pid)
                router.proc_of[pid] = 0
                router.proc_idx[router.index_of[pid]] = 0
                router.patch_owner[pid.patch] = 0
        moved, srcs = router.rebalance_to(3, budget=1)
        assert len({pid.patch for pid in moved}) == 1
        assert all(srcs[pid] == 0 for pid in moved)
        # Ceil-mean target (4 patches / 4 procs = 1) reached: a second
        # rebalance, whatever its budget, is a no-op.
        assert len(router.owned[3]) == 1
        assert router.rebalance_to(3, budget=8) == ([], {})

    def test_refuses_dead_or_fenced_target(self):
        router = _mini_router(4)
        router.mark_dead(2)
        assert router.rebalance_to(2, budget=4) == ([], {})
        router.fence(3)
        assert router.rebalance_to(3, budget=4) == ([], {})

    def test_zero_budget_is_noop(self):
        router = _mini_router(4)
        assert router.rebalance_to(0, budget=0) == ([], {})


# -- end-to-end: detection without the oracle ------------------------------------


class TestHeartbeatDetection:
    def test_crash_detected_by_missed_beats_bitwise_exact(self):
        ref = _reference_phi()
        plan = FaultPlan(crashes=(CrashFault(1, 150e-6),), seed=7)
        rep, phi = _mrun(plan, trace=True)
        assert_array_equal(phi, ref)
        m = rep.membership_summary()
        assert m["heartbeats"] > 0
        assert m["suspicions"] >= 1
        assert m["false_suspicions"] == 0
        assert rep.crashes == 1
        assert rep.failover_time > 0
        assert check_report(rep) == []

    def test_detection_is_slower_than_the_oracle(self):
        # The whole point of removing the oracle: detection now costs
        # at least one heartbeat interval + the suspicion timeout,
        # where the oracle path paid only detection_delay.
        plan = FaultPlan(crashes=(CrashFault(1, 150e-6),), seed=7)
        rep_oracle, _ = _run(plan, recovery=RecoveryConfig())
        rep_hb, _ = _mrun(plan)
        assert rep_hb.failover_time > rep_oracle.failover_time

    def test_heartbeats_are_makespan_invisible(self):
        # Membership armed on a fault-free plan: probes tick, nothing
        # else changes - same makespan, same events, zero suspicions.
        base, phi_base = _run(FaultPlan(seed=3), recovery=RecoveryConfig())
        rep, phi = _mrun(FaultPlan(seed=3))
        assert rep.makespan == base.makespan
        assert rep.events == base.events
        m = rep.membership_summary()
        assert m["heartbeats"] > 0
        assert m["suspicions"] == m["fenced_messages"] == 0
        assert_array_equal(phi, phi_base)

    def test_false_suspicion_of_straggler_is_safe(self):
        # A rank slowed 60x answers probes far past the suspicion
        # timeout: it gets fenced and drained (false positive), then
        # heals and rejoins once its replies come back under the bound.
        ref = _reference_phi()
        plan = FaultPlan(
            stragglers=(StragglerWindow(2, 50e-6, 450e-6, 60.0),), seed=5
        )
        rep, phi = _mrun(plan, trace=True)
        assert_array_equal(phi, ref)
        m = rep.membership_summary()
        assert m["suspicions"] >= 1
        assert m["false_suspicions"] >= 1
        assert m["rejoins"] >= 1
        assert rep.crashes == 0
        assert check_report(rep) == []


class TestRestartRejoin:
    def test_restart_rejoins_and_takes_work_back(self):
        ref = _reference_phi()
        plan = FaultPlan(
            crashes=(CrashFault(1, 150e-6, restart_after=400e-6),), seed=7
        )
        rep, phi = _mrun(plan, trace=True)
        assert_array_equal(phi, ref)
        m = rep.membership_summary()
        assert m["restarts"] == 1
        assert m["rejoins"] == 1
        assert m["rebalanced_patches"] >= 1
        assert check_report(rep) == []
        # The rejoined incarnation really executes: commits on rank 1
        # strictly after the restart announcement.
        t_restart = [e.time for e in rep.hb_events if e.kind == "hb_restart"]
        assert len(t_restart) == 1
        post = [
            e for e in rep.hb_events
            if e.kind == "hb_commit" and e.detail[1] == 1
            and e.time > t_restart[0]
        ]
        assert post, "restarted rank never committed after rejoining"

    def test_rejoin_without_membership_restart_is_inert(self):
        # restart_after on the legacy (oracle) path: the proc restarts
        # into an empty role - no rejoin machinery exists - and the run
        # must still be exact.  The restart event is simply absorbed.
        ref = _reference_phi()
        plan = FaultPlan(
            crashes=(CrashFault(1, 150e-6, restart_after=400e-6),), seed=7
        )
        rep, phi = _run(plan, recovery=RecoveryConfig())
        assert_array_equal(phi, ref)
        assert rep.restarts == 0  # counted only when membership adopts it

    def test_flapping_rank_double_crash(self):
        ref = _reference_phi()
        plan = FaultPlan(crashes=(
            CrashFault(1, 120e-6, restart_after=350e-6),
            CrashFault(1, 700e-6),
        ), seed=7)
        rep, phi = _mrun(plan, trace=True)
        assert_array_equal(phi, ref)
        m = rep.membership_summary()
        assert rep.crashes >= 1
        assert m["restarts"] <= 1
        assert check_report(rep) == []

    def test_demoted_rank_repromoted_after_healthy_probes(self):
        ref = _reference_phi()
        plan = FaultPlan(
            stragglers=(StragglerWindow(2, 30e-6, 300e-6, 8.0),), seed=5
        )
        acfg = AdaptiveConfig(
            demotion=True, demotion_factor=2.0, demotion_patience=2
        )
        rep, phi = _mrun(plan, adaptive=acfg, trace=True)
        assert_array_equal(phi, ref)
        m = rep.membership_summary()
        if rep.demotions:  # the probe cadence decides; when it fires:
            assert m["promotions"] >= 1
            assert check_report(rep) == []


# -- watchdog interaction (satellite: re-arm after demotion migration) -----------


class TestWatchdogRearm:
    def _stall_report(self, sim):
        return lambda now: StallReport(
            now=now, last_progress=sim.last_progress,
            horizon=1e-3, pending_events=len(sim),
        )

    def test_demotion_migration_refreshes_progress_clock(self):
        sim = Simulator(frozenset({"deliver", "requeue"}))
        sim.arm_watchdog(1e-3, self._stall_report(sim))
        sim.push(0.0, "deliver", None)
        # The demotion migration's requeue is a progress event: the
        # timer at 1.5ms sits within one horizon of it.
        sim.push(0.8e-3, "requeue", None)
        sim.push(1.5e-3, "timer", None)
        while sim:
            sim.pop()  # must not raise

    def test_without_requeue_the_same_timer_trips(self):
        sim = Simulator(frozenset({"deliver", "requeue"}))
        sim.arm_watchdog(1e-3, self._stall_report(sim))
        sim.push(0.0, "deliver", None)
        sim.push(1.5e-3, "timer", None)
        with pytest.raises(StallError):
            while sim:
                sim.pop()

    def test_run_with_demotion_and_tight_watchdog_completes(self):
        # Integration regression: a severe straggler under a tight
        # watchdog horizon - the demotion migration must re-arm the
        # liveness clock, or the post-demotion catch-up would be
        # declared a stall.
        ref = _reference_phi()
        plan = FaultPlan(
            stragglers=(StragglerWindow(0, 0.0, 1.2e-3, 12.0),), seed=9
        )
        acfg = AdaptiveConfig(
            demotion=True, demotion_factor=2.0, demotion_patience=2
        )
        rep, phi = _run(
            plan, recovery=RecoveryConfig(watchdog_horizon=1.5e-3),
            adaptive=acfg,
        )
        assert_array_equal(phi, ref)


# -- the flapping chaos campaign -------------------------------------------------


class TestFlappingCampaign:
    def test_legacy_plans_bitwise_stable_with_flapping_off(self):
        for seed in range(8):
            assert random_fault_plan(seed, 4) == random_fault_plan(
                seed, 4, ChaosSpace(flapping=False)
            )

    def test_flapping_draws_do_not_shift_legacy_draws(self):
        for seed in range(8):
            base = random_fault_plan(seed, 4)
            flap = random_fault_plan(seed, 4, ChaosSpace(flapping=True))
            assert flap.seed == base.seed
            assert flap.stragglers == base.stragglers
            assert flap.partitions == base.partitions
            assert {(c.proc, c.time) for c in base.crashes} <= {
                (c.proc, c.time) for c in flap.crashes
            }
            flap.validate(4, [])

    def test_flapping_campaign_20_seeds_exact_and_race_free(self):
        res = run_campaign(
            seeds=range(20), kinds=("structured",), modes=("hybrid",),
            space=ChaosSpace(flapping=True), membership=MCFG, hb=True,
        )
        bad = res.failures()
        assert not bad, "; ".join(
            f"seed {c.seed}: {c.error or 'inexact'}" for c in bad
        )
        assert res.total == 20
        # The campaign must actually exercise the new machinery.
        assert sum(c.membership.get("restarts", 0) for c in res.cases) > 0
        assert sum(c.membership.get("rejoins", 0) for c in res.cases) > 0

"""Whole-program analysis: call graph, effect inference, the
interprocedural rules (transitive DET/DES/PROTO re-hosts, PERSIST002
snapshot completeness, PROTO004 event-protocol exhaustiveness), the
single-parse engine contract, and the meta-check that the shipped
repo is clean under the full interprocedural rule set."""

import json
from pathlib import Path

import pytest

from repro.analysis import LintEngine
from repro.analysis.callgraph import Program, extract_summary
from repro.analysis.effects import EffectDB, effect_db
from repro.analysis.engine import load_module, parse_count, render_sarif
from repro.analysis.rules import ALL_RULES, INTERPROC_RULES, rules_for

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
SRC = Path(__file__).parent.parent / "src" / "repro"


def _lint(name: str):
    eng = LintEngine(interprocedural=True)
    return eng.lint_paths([FIXTURES / name])


#: fixture -> exactly the rule ids it must fire interprocedurally.
INTERPROC_FIXTURES = {
    "persist002_bad.py": {"PERSIST002"},
    "persist002_clean.py": set(),
    "persist002_suppressed.py": set(),
    "persist002_transient.py": set(),
    "proto004_bad.py": {"PROTO004"},
    "proto004_clean.py": set(),
    "proto004_suppressed.py": set(),
    "det001_chain_bad.py": {"DET001"},
    "det001_chain_suppressed.py": set(),
    "des001_chain_bad.py": {"DES001"},
    "proto002_launder_bad.py": {"PROTO002"},
    "det003_deep_bad.py": {"DET003"},
}


class TestInterprocFixtures:
    @pytest.mark.parametrize("name", sorted(INTERPROC_FIXTURES))
    def test_fixture_fires_exactly_its_rules(self, name):
        got = {v.rule for v in _lint(name)}
        assert got == INTERPROC_FIXTURES[name], f"{name}: {got}"

    def test_persist002_catches_unpersisted_field(self):
        vs = _lint("persist002_bad.py")
        attrs = {v.message.split("`")[1] for v in vs}
        assert attrs == {"Window.phase", "Window.rtt_ewma"}

    def test_persist002_resolves_helper_mediated_write(self):
        """`phase` is only assigned in a module-level helper: the
        finding must exist and carry the call chain through it."""
        vs = _lint("persist002_bad.py")
        phase = [v for v in vs if "Window.phase" in v.message]
        assert phase and any("._tick" in link for link in phase[0].chain)

    def test_chain_rides_in_the_finding(self):
        vs = _lint("det001_chain_bad.py")
        deepest = max(vs, key=lambda v: len(v.chain))
        assert len(deepest.chain) == 3  # caller -> helper -> _stamp
        assert "caller" in deepest.chain[0]
        assert "_stamp" in deepest.chain[-1]

    def test_blessing_the_direct_site_clears_the_cone(self):
        assert _lint("det001_chain_suppressed.py") == []

    def test_proto004_reports_all_three_hole_kinds(self):
        msgs = [v.message for v in _lint("proto004_bad.py")]
        assert any("pushed but no dispatch" in m for m in msgs)
        assert any("but nothing pushes" in m for m in msgs)
        assert any("unknown to the HB checker" in m for m in msgs)

    def test_counter_laundering_names_the_owner(self):
        vs = _lint("proto002_launder_bad.py")
        assert len(vs) == 1
        assert "retries" in vs[0].message
        assert "repro.runtime.transport" in vs[0].message

    def test_det003_two_hops_past_the_single_file_rule(self):
        vs = _lint("det003_deep_bad.py")
        assert len(vs) == 1 and vs[0].rule == "DET003"
        # The single-file rule must NOT fire on this fixture by itself.
        assert LintEngine(ALL_RULES).lint_paths(
            [FIXTURES / "det003_deep_bad.py"]
        ) == []


# -- call graph mechanics --------------------------------------------------------


class TestCallGraph:
    def _program(self, tmp_path, source, name="m.py"):
        f = tmp_path / name
        f.write_text(source)
        mod = load_module(f)
        return Program([extract_summary(mod)])

    def test_method_resolution_through_hierarchy(self, tmp_path):
        prog = self._program(tmp_path, (
            "# repro: module=m\n"
            "class Base:\n"
            "    def ping(self):\n"
            "        return 1\n"
            "class Child(Base):\n"
            "    def pong(self):\n"
            "        return self.ping()\n"
        ))
        assert prog.resolve_method("m.Child", "ping") == "m.Base.ping"
        edges = prog.calls["m.Child.pong"]
        assert edges[0][1] == ("m.Base.ping",)

    def test_receiver_typing_from_constructor_assignment(self, tmp_path):
        prog = self._program(tmp_path, (
            "# repro: module=m\n"
            "class Sim:\n"
            "    def push(self, t, kind, data):\n"
            "        return None\n"
            "class Layer:\n"
            "    def __init__(self):\n"
            "        self.sim = Sim()\n"
            "    def go(self):\n"
            "        self.sim.push(0.0, 'x', None)\n"
        ))
        edges = prog.calls["m.Layer.go"]
        assert edges[0][1] == ("m.Sim.push",)

    def test_dynamic_fallback_is_bounded(self, tmp_path):
        classes = "\n".join(
            f"class C{i}:\n    def frob(self):\n        return {i}"
            for i in range(5)
        )
        prog = self._program(tmp_path, (
            "# repro: module=m\n"
            f"{classes}\n"
            "def use(obj):\n"
            "    return obj.frob()\n"
        ))
        # 5 same-name candidates > bound of 3: the edge is dropped and
        # counted instead of fanning out wrongly.
        assert prog.calls["m.use"][0][1] == ()
        assert prog.unresolved_dynamic == 1

    def test_effects_fixed_point_propagates_and_chains(self, tmp_path):
        f = tmp_path / "m.py"
        f.write_text(
            "# repro: module=m\n"
            "import time\n"
            "def a():\n"
            "    return time.time()\n"
            "def b():\n"
            "    return a()\n"
            "def c():\n"
            "    return b()\n"
        )
        mod = load_module(f)
        db = EffectDB(Program([extract_summary(mod)]))
        eff = db.with_kind("m.c", "wall")
        assert len(eff) == 1
        assert len(eff[0].chain) == 3 and not eff[0].direct
        assert db.with_kind("m.a", "wall")[0].direct


# -- engine contracts ------------------------------------------------------------


class TestEngineContracts:
    def test_single_parse_per_file_interprocedural(self, tmp_path):
        """One lint run parses each file exactly once, even with the
        call graph, effect inference, and every rule enabled."""
        for i in range(3):
            (tmp_path / f"m{i}.py").write_text(
                f"# repro: module=m{i}\n"
                "def f():\n"
                "    return 0\n"
            )
        before = parse_count()
        LintEngine(interprocedural=True).lint_paths([tmp_path])
        assert parse_count() - before == 3

    def test_allow_on_decorated_def_header_covers_body(self, tmp_path):
        f = tmp_path / "deco.py"
        f.write_text(
            "import time\n"
            "import functools\n"
            "@functools.lru_cache  # repro: allow[DET001]\n"
            "def stamp():\n"
            "    return time.time()\n"
            "def naked():\n"
            "    return time.time()\n"
        )
        vs = LintEngine().lint_paths([f])
        assert [v.line for v in vs] == [7]  # only the uncovered def

    def test_allow_on_class_header_covers_methods(self, tmp_path):
        f = tmp_path / "cls.py"
        f.write_text(
            "import time\n"
            "class Stamps:  # repro: allow[DET001]\n"
            "    def stamp(self):\n"
            "        return time.time()\n"
        )
        assert LintEngine().lint_paths([f]) == []

    def test_sarif_rendering(self):
        eng = LintEngine(interprocedural=True)
        vs = eng.lint_paths([FIXTURES / "det001_chain_bad.py"])
        doc = json.loads(render_sarif(vs, rules=rules_for(True)))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        ids = {r["ruleId"] for r in run["results"]}
        assert ids == {"DET001"}
        chained = [
            r for r in run["results"] if "via:" in r["message"]["text"]
        ]
        assert chained, "chains must surface in SARIF messages"
        for r in run["results"]:
            region = r["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_interproc_rules_have_distinct_registry(self):
        assert {r.id for r in INTERPROC_RULES} == {
            "DET001", "DET002", "DET003", "DES001",
            "PROTO001", "PROTO002", "PERSIST002", "PROTO004",
        }
        assert rules_for(False) == ALL_RULES
        assert rules_for(True) == ALL_RULES + INTERPROC_RULES


# -- the effects explain command on the real repo --------------------------------


@pytest.fixture(scope="module")
def src_db():
    eng = LintEngine(rules=[], interprocedural=True)
    mods = eng.load_modules([SRC])
    return effect_db(mods[0].program)


class TestEffectsOnShippedRepo:
    def test_transport_on_timer_has_multi_hop_sink_chain(self, src_db):
        """A real multi-hop chain in shipped code: the retransmit path
        `on_timer -> transmit -> _wire_push` pushes into the wire."""
        q = "repro.runtime.transport.Transport.on_timer"
        sinks = src_db.with_kind(q, "sink")
        assert sinks, "on_timer must carry sink effects"
        deep = max(sinks, key=lambda e: len(e.chain))
        assert len(deep.chain) >= 3  # at least two hops
        assert "on_timer" in deep.chain[0]

    def test_explain_renders_the_chain(self, src_db):
        text = src_db.explain("repro.runtime.transport.Transport.on_timer")
        assert "simulated callback" in text
        assert "->" in text and "transmit" in text

    def test_lookup_by_suffix(self, src_db):
        matches = src_db.lookup("Transport.on_timer")
        assert matches == ["repro.runtime.transport.Transport.on_timer"]

    def test_state_dict_coverage_resolved_for_simulator(self, src_db):
        covered = src_db.class_covered("repro.runtime.simulator.Simulator")
        assert "_events" in covered
        transient = src_db.class_transient(
            "repro.runtime.simulator.Simulator"
        )
        assert {"_wd_horizon", "_wd_snapshot", "_wd_kinds"} <= transient


# -- meta: the shipped repo is clean under the interprocedural rules -------------


def test_shipped_repo_clean_interprocedural():
    from repro.analysis.engine import render

    vs = LintEngine(interprocedural=True).lint_paths([SRC])
    assert vs == [], "\n" + render(vs)


def test_effects_cli_explains_a_real_chain(capsys):
    from repro.analysis.__main__ import main

    rc = main(["effects", "Transport.on_timer", "--paths", str(SRC)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "on_timer" in out and "->" in out and "hop(s)" in out

"""End-to-end integration tests across the whole stack.

Each test exercises a realistic pipeline: generate mesh -> decompose ->
build solver -> run under several execution backends -> check physics
and scheduling invariants together.
"""

import numpy as np
import pytest

from repro import (
    BSPSweepRuntime,
    DataDrivenRuntime,
    JSNTS,
    JSNTU,
    Machine,
    Material,
    MaterialMap,
    PatchSet,
    SnSolver,
    coarsened_is_acyclic,
    cube_structured,
    cube_tet_mesh,
    level_symmetric,
    reactor_mesh_2d,
)


MACHINE = Machine(cores_per_proc=4)


class TestFourBackendsAgree:
    """fast / serial-engine / DES / BSP must produce identical flux."""

    def test_structured(self):
        mesh = cube_structured(8, length=4.0)
        pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=4)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.4), mesh.num_cells)
        solver = SnSolver(
            pset, level_symmetric(2), mm, np.ones((mesh.num_cells, 1)),
            grain=16,
        )
        ref, _, _ = solver.sweep_once(mode="fast")

        phi_eng, _, _ = solver.sweep_once(mode="engine")
        np.testing.assert_array_equal(phi_eng, ref)

        progs, faces = solver.build_programs()
        DataDrivenRuntime(16, machine=MACHINE).run(progs, pset.patch_proc)
        phi_des, _ = solver.accumulate(faces)
        np.testing.assert_array_equal(phi_des, ref)

        progs, faces = solver.build_programs()
        BSPSweepRuntime(16, machine=MACHINE).run(progs, pset.patch_proc)
        phi_bsp, _ = solver.accumulate(faces)
        np.testing.assert_array_equal(phi_bsp, ref)

    def test_unstructured_multigroup(self):
        mesh = reactor_mesh_2d(10)
        pset = PatchSet.from_unstructured(mesh, 60, nprocs=2)
        mm = MaterialMap.uniform(
            Material.isotropic(1.0, 0.3, groups=2), mesh.num_cells
        )
        q = np.ones((mesh.num_cells, 2))
        solver = SnSolver(pset, level_symmetric(2), mm, q, grain=8)
        ref, _, _ = solver.sweep_once(mode="fast")
        progs, faces = solver.build_programs()
        DataDrivenRuntime(8, machine=MACHINE).run(progs, pset.patch_proc)
        phi, _ = solver.accumulate(faces)
        np.testing.assert_array_equal(phi, ref)


class TestCGUnderDES:
    def test_cg_des_full_equivalence(self):
        mesh = cube_structured(8, length=4.0)
        pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=4)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.0), mesh.num_cells)
        solver = SnSolver(
            pset, level_symmetric(2), mm, np.ones((mesh.num_cells, 1)),
            grain=10,
        )
        ref, _, _ = solver.sweep_once(mode="fast")
        cgs = solver.record_coarsened()
        assert coarsened_is_acyclic(cgs)
        progs, faces = solver.build_coarsened_programs(cgs)
        rep = DataDrivenRuntime(16, machine=MACHINE).run(
            progs, pset.patch_proc
        )
        phi, _ = solver.accumulate(faces)
        np.testing.assert_array_equal(phi, ref)
        assert rep.vertices_solved == mesh.num_cells * 8


class TestSameProblemTwoMeshFamilies:
    """The same physical problem on a structured cube and on its
    tetrahedralization must give comparable integral quantities -
    the mesh-family abstraction must not change the physics class."""

    def test_absorption_rate_agrees(self):
        sigma, q0 = 1.0, 1.0
        hexm = cube_structured(8, length=2.0)
        ps_h = PatchSet.single_patch(hexm)
        mm_h = MaterialMap.uniform(Material.isotropic(sigma, 0.0), hexm.num_cells)
        s_h = SnSolver(
            ps_h, level_symmetric(4), mm_h,
            q0 * np.ones((hexm.num_cells, 1)), scheme="step",
        )
        r_h = s_h.source_iteration(tol=1e-10, max_iterations=3)

        tetm = cube_tet_mesh((8, 8, 8), (2.0, 2.0, 2.0))
        ps_t = PatchSet.single_patch(tetm)
        mm_t = MaterialMap.uniform(Material.isotropic(sigma, 0.0), tetm.num_cells)
        s_t = SnSolver(
            ps_t, level_symmetric(4), mm_t,
            q0 * np.ones((tetm.num_cells, 1)),
        )
        r_t = s_t.source_iteration(tol=1e-10, max_iterations=3)

        absorb_h = float((r_h.phi[:, 0] * s_h.volumes).sum()) * sigma
        absorb_t = float((r_t.phi[:, 0] * s_t.volumes).sum()) * sigma
        assert absorb_h == pytest.approx(absorb_t, rel=0.12)
        # Both conserve particles exactly.
        assert s_h.balance_residual(r_h) < 1e-10
        assert s_t.balance_residual(r_t) < 1e-10


class TestAppsEndToEnd:
    def test_jsnts_full_pipeline(self):
        app = JSNTS.kobayashi(
            12, total_cores=8, machine=MACHINE, patch_shape=(4, 4, 4),
            grain=50,
        )
        res = app.solve(tol=1e-4, max_iterations=40)
        assert res.converged
        dag = app.sweep_report(8)
        cg = app.sweep_report(8, coarsened=True)
        assert cg.executions < dag.executions
        assert dag.vertices_solved == cg.vertices_solved

    def test_jsntu_strategies_same_vertex_count(self):
        counts = set()
        for strat in ("bfs", "slbd"):
            app = JSNTU.reactor(
                10, total_cores=8, machine=MACHINE, patch_size=60,
                groups=1, strategy=strat,
            )
            rep = app.sweep_report(8)
            counts.add(rep.vertices_solved)
        assert len(counts) == 1  # identical work, different order

    def test_solver_reuse_across_iterations(self):
        """Topology / kernels built once must serve many source
        iterations without rebuilding (the caching contract)."""
        app = JSNTS.kobayashi(
            10, total_cores=8, machine=MACHINE, patch_shape=(5, 5, 5)
        )
        s = app.solver
        _ = s.topology
        topo_id = id(s._topology)
        res = s.source_iteration(tol=1e-4, max_iterations=10, mode="engine")
        assert id(s._topology) == topo_id
        assert len(res.engine_stats) == res.iterations


class TestDeterminismAcrossRuns:
    def test_full_pipeline_deterministic(self):
        def run():
            app = JSNTU.ball(
                5, total_cores=8, machine=MACHINE, patch_size=100,
                groups=1, seed=7,
            )
            rep = app.sweep_report(8)
            return rep.makespan, rep.executions, rep.messages

        assert run() == run()

"""Tests for the transport kernels: discrete recurrences and physics."""

import numpy as np
import pytest

from repro._util import ReproError
from repro.framework import PatchSet, build_boundary, build_interfaces
from repro.mesh import box_structured, cube_structured
from repro.sweep import (
    AngleKernel,
    Material,
    MaterialMap,
    Quadrature,
    SnSolver,
    level_symmetric,
)


def _beam_quadrature(direction):
    d = np.asarray(direction, dtype=float)
    d = d / np.linalg.norm(d)
    return Quadrature(d[None, :], np.array([4 * np.pi]), name="beam")


def _slab_solver(n, sigma, scheme, fixup=False, direction=(1, 0, 0)):
    mesh = box_structured((n, 2, 2), (float(n), 2.0, 2.0))  # dx = 1
    ps = PatchSet.single_patch(mesh)
    mm = MaterialMap.uniform(Material.isotropic(sigma, 0.0), mesh.num_cells)

    def bc(cent, d):
        return np.where(np.abs(cent[:, 0]) < 1e-12, 1.0, 0.0)

    return mesh, SnSolver(
        ps,
        _beam_quadrature(direction),
        mm,
        np.zeros((mesh.num_cells, 1)),
        scheme=scheme,
        fixup=fixup,
        boundary_flux=bc,
    )


class TestDiscreteRecurrences:
    """The kernels must match their textbook per-cell recurrences exactly."""

    def test_step_slab_recurrence(self):
        sigma, n = 0.7, 12
        mesh, s = _slab_solver(n, sigma, "step")
        phi, _, _ = s.sweep_once(mode="fast")
        # Step: psi_out = psi_in / (1 + sigma dx); psi_cell = psi_out.
        expected_face = 1.0
        for i in range(n):
            expected_cell = expected_face / (1 + sigma)
            got = phi[mesh.linear_index((i, 0, 0)), 0] / (4 * np.pi)
            assert got == pytest.approx(expected_cell, rel=1e-12)
            expected_face = expected_cell

    def test_dd_slab_recurrence(self):
        sigma, n = 0.4, 10
        mesh, s = _slab_solver(n, sigma, "dd", fixup=False)
        phi, _, _ = s.sweep_once(mode="fast")
        # DD: psi_c = psi_in / (1 + sigma dx / 2); psi_out = 2 psi_c - psi_in.
        face = 1.0
        for i in range(n):
            cell = face / (1 + sigma / 2)
            got = phi[mesh.linear_index((i, 1, 1)), 0] / (4 * np.pi)
            assert got == pytest.approx(cell, rel=1e-12)
            face = 2 * cell - face

    def test_dd_converges_to_exponential(self):
        """DD is 2nd order: halving h reduces the attenuation error ~4x."""
        sigma, L = 1.0, 4.0
        errs = []
        for n in (8, 16, 32):
            mesh = box_structured((n, 2, 2), (L, 1.0, 1.0))
            ps = PatchSet.single_patch(mesh)
            mm = MaterialMap.uniform(
                Material.isotropic(sigma, 0.0), mesh.num_cells
            )
            s = SnSolver(
                ps,
                _beam_quadrature((1, 0, 0)),
                mm,
                np.zeros((mesh.num_cells, 1)),
                scheme="dd",
                fixup=False,
                boundary_flux=lambda c, d: np.where(
                    np.abs(c[:, 0]) < 1e-12, 1.0, 0.0
                ),
            )
            phi, _, _ = s.sweep_once(mode="fast")
            x_last = L * (1 - 0.5 / n)
            got = phi[mesh.linear_index((n - 1, 0, 0)), 0] / (4 * np.pi)
            errs.append(abs(got - np.exp(-sigma * x_last)))
        assert errs[1] < errs[0] / 3
        assert errs[2] < errs[1] / 3

    def test_oblique_beam_attenuation(self):
        """Beam at 45 degrees: path length is x / mu."""
        sigma, n = 0.5, 16
        d = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        mesh = box_structured((n, n, 2), (4.0, 4.0, 1.0))
        ps = PatchSet.single_patch(mesh)
        mm = MaterialMap.uniform(Material.isotropic(sigma, 0.0), mesh.num_cells)
        s = SnSolver(
            ps,
            _beam_quadrature(d),
            mm,
            np.zeros((mesh.num_cells, 1)),
            scheme="dd",
            fixup=False,
            boundary_flux=1.0,  # incident on all inflow faces
        )
        phi, _, _ = s.sweep_once(mode="fast")
        # Along the diagonal the path length from the inflow corner is
        # sqrt(2) * x; attenuation exp(-sigma * sqrt(2) * x).
        i = n // 2
        x = 4.0 * (i + 0.5) / n
        got = phi[mesh.linear_index((i, i, 0)), 0] / (4 * np.pi)
        expect = np.exp(-sigma * np.sqrt(2) * x)
        assert got == pytest.approx(expect, rel=0.08)


class TestKernelStructure:
    def test_dd_requires_structured(self, disk):
        it = build_interfaces(disk)
        bt = build_boundary(disk)
        with pytest.raises(ReproError):
            AngleKernel(disk, it, bt, np.array([1.0, 0, 0]), scheme="dd")

    def test_unknown_scheme(self, cube8):
        it = build_interfaces(cube8)
        bt = build_boundary(cube8)
        with pytest.raises(ReproError):
            AngleKernel(cube8, it, bt, np.array([1.0, 0, 0]), scheme="magic")

    def test_every_cell_has_inflow_and_outflow(self, cube8):
        it = build_interfaces(cube8)
        bt = build_boundary(cube8)
        d = np.array([1.0, 1.0, 1.0]) / np.sqrt(3)
        k = AngleKernel(cube8, it, bt, d, scheme="dd")
        assert np.all(np.diff(k.in_indptr) == 3)  # 3 axes active
        assert np.all(np.diff(k.out_indptr) == 3)
        assert k.out_pair is not None
        assert np.all(k.out_pair >= 0)

    def test_axis_direction_single_face(self, cube8):
        it = build_interfaces(cube8)
        bt = build_boundary(cube8)
        k = AngleKernel(cube8, it, bt, np.array([1.0, 0.0, 0.0]), scheme="dd")
        assert np.all(np.diff(k.in_indptr) == 1)

    def test_leakage_nonnegative(self, cube8):
        it = build_interfaces(cube8)
        bt = build_boundary(cube8)
        d = np.array([1.0, 2.0, 3.0])
        d = d / np.linalg.norm(d)
        k = AngleKernel(cube8, it, bt, d, scheme="step")
        pf = k.new_face_array(1)
        k.apply_boundary(pf, 0.0)
        # a full sweep needs topological order: use the solver
        from repro.framework import PatchSet
        from repro.sweep import SnSolver, MaterialMap, Material, Quadrature
        ps = PatchSet.single_patch(cube8)
        s = SnSolver(ps, _beam_quadrature(d), MaterialMap.uniform(
            Material.isotropic(1.0, 0.0), cube8.num_cells),
            np.ones((cube8.num_cells, 1)), scheme="step")
        phi, leak, _ = s.sweep_once(mode="fast")
        assert leak[0] > 0


class TestBalance:
    """Particle conservation: production = absorption + leakage."""

    @pytest.mark.parametrize("scheme,mesh_kind", [
        ("step", "structured"), ("dd", "structured"), ("step", "disk"),
    ])
    def test_balance_pure_absorber(self, scheme, mesh_kind, disk):
        if mesh_kind == "structured":
            mesh = cube_structured(6, length=3.0)
            ps = PatchSet.single_patch(mesh)
        else:
            mesh = disk
            ps = PatchSet.single_patch(mesh)
        if scheme == "dd" and mesh_kind != "structured":
            pytest.skip("dd needs structured")
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.0), mesh.num_cells)
        s = SnSolver(
            ps, level_symmetric(4), mm, np.ones((mesh.num_cells, 1)),
            scheme=scheme, fixup=False,
        )
        res = s.source_iteration(tol=1e-12, max_iterations=3)
        assert s.balance_residual(res) < 1e-10

    def test_balance_with_scattering(self, cube8):
        ps = PatchSet.single_patch(cube8)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.6), cube8.num_cells)
        s = SnSolver(
            ps, level_symmetric(2), mm, np.ones((cube8.num_cells, 1)),
            scheme="dd", fixup=False,
        )
        res = s.source_iteration(tol=1e-10, max_iterations=300)
        assert res.converged
        assert s.balance_residual(res) < 1e-6

    def test_fixup_keeps_flux_nonnegative(self):
        """Coarse DD on a sharp void/absorber interface goes negative
        without the fixup and stays nonnegative with it."""
        mesh = box_structured((20, 4, 4), (20.0, 4.0, 4.0))
        ids = (mesh.cell_centers()[:, 0] > 3.0).astype(np.int64)
        mesh.materials = ids.reshape(mesh.shape)
        mats = {
            0: Material.isotropic(5.0, 0.0, name="hot"),
            1: Material.isotropic(0.01, 0.0, name="thin"),
        }
        q = np.zeros((mesh.num_cells, 1))
        q[ids == 0] = 10.0
        ps = PatchSet.single_patch(mesh)
        s_fix = SnSolver(
            ps, level_symmetric(4), MaterialMap(mats, ids), q,
            scheme="dd", fixup=True,
        )
        res = s_fix.source_iteration(tol=1e-10, max_iterations=3)
        assert res.phi.min() >= 0

    def test_infinite_medium_limit(self):
        """Large scattering domain: center flux approaches q / sigma_a."""
        mesh = cube_structured(10, length=50.0)
        ps = PatchSet.single_patch(mesh)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.9), mesh.num_cells)
        s = SnSolver(
            ps, level_symmetric(2), mm, np.ones((mesh.num_cells, 1)),
            scheme="dd",
        )
        res = s.source_iteration(tol=1e-9, max_iterations=500)
        center = res.phi[mesh.linear_index((5, 5, 5)), 0]
        assert center == pytest.approx(1.0 / 0.1, rel=0.05)


class TestMultigroup:
    def test_group_decoupled_equals_two_single_group(self, cube8):
        ps = PatchSet.single_patch(cube8)
        st1 = Material(np.array([1.0]), np.array([[0.5]]))
        st2 = Material(np.array([2.0]), np.array([[0.4]]))
        both = Material(
            np.array([1.0, 2.0]), np.diag([0.5, 0.4])
        )
        q = np.ones((cube8.num_cells, 1))
        r1 = SnSolver(
            ps, level_symmetric(2),
            MaterialMap.uniform(st1, cube8.num_cells), q,
        ).source_iteration(tol=1e-10)
        r2 = SnSolver(
            ps, level_symmetric(2),
            MaterialMap.uniform(st2, cube8.num_cells), q,
        ).source_iteration(tol=1e-10)
        r12 = SnSolver(
            ps, level_symmetric(2),
            MaterialMap.uniform(both, cube8.num_cells),
            np.ones((cube8.num_cells, 2)),
        ).source_iteration(tol=1e-10)
        np.testing.assert_allclose(r12.phi[:, 0], r1.phi[:, 0], rtol=1e-6)
        np.testing.assert_allclose(r12.phi[:, 1], r2.phi[:, 0], rtol=1e-6)

    def test_downscatter_feeds_group_two(self, cube8):
        ps = PatchSet.single_patch(cube8)
        # Source only in group 0; group 1 fed purely by downscatter.
        mat = Material(
            np.array([1.0, 1.0]),
            np.array([[0.2, 0.3], [0.0, 0.2]]),
        )
        q = np.zeros((cube8.num_cells, 2))
        q[:, 0] = 1.0
        s = SnSolver(
            ps, level_symmetric(2), MaterialMap.uniform(mat, cube8.num_cells), q
        )
        res = s.source_iteration(tol=1e-9, max_iterations=400)
        assert res.converged
        assert np.all(res.phi[:, 1] > 0)
        assert res.phi[:, 1].max() < res.phi[:, 0].max()

"""Tests for Sn angular quadrature sets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.sweep import Quadrature, level_symmetric, product_quadrature

FOUR_PI = 4 * np.pi


class TestLevelSymmetric:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10, 12, 14, 16])
    def test_counts_and_normalization(self, n):
        q = level_symmetric(n)
        assert q.num_angles == n * (n + 2)
        assert q.weights.sum() == pytest.approx(FOUR_PI, rel=1e-9)
        assert np.all(q.weights > 0)

    @pytest.mark.parametrize("n", [4, 8, 16])
    def test_even_moments_exact(self, n):
        q = level_symmetric(n)
        w = q.weights / q.weights.sum()
        for ax in range(3):
            mu = q.directions[:, ax]
            assert np.sum(w * mu**2) == pytest.approx(1 / 3, rel=1e-6)
            assert np.sum(w * mu**4) == pytest.approx(1 / 5, rel=1e-5)

    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_odd_moments_vanish(self, n):
        q = level_symmetric(n)
        for ax in range(3):
            assert abs(np.sum(q.weights * q.directions[:, ax])) < 1e-10

    def test_octant_symmetry(self, ):
        q = level_symmetric(4)
        per_octant = {}
        for a in range(q.num_angles):
            per_octant.setdefault(q.octant_of(a), 0)
            per_octant[q.octant_of(a)] += 1
        assert set(per_octant.values()) == {3}  # N(N+2)/8 = 3 each

    def test_s2_is_diagonal(self):
        q = level_symmetric(2)
        np.testing.assert_allclose(np.abs(q.directions), 1 / np.sqrt(3))

    def test_s4_matches_published_mu1(self):
        q = level_symmetric(4)
        mus = np.unique(np.round(np.abs(q.directions[:, 0]), 6))
        assert 0.350021 in mus.tolist()

    def test_unavailable_order(self):
        with pytest.raises(ReproError):
            level_symmetric(18)
        with pytest.raises(ReproError):
            level_symmetric(3)


class TestProductQuadrature:
    def test_count_and_normalization(self):
        q = product_quadrature(8, 40)
        assert q.num_angles == 320  # the paper's Kobayashi angle count
        assert q.weights.sum() == pytest.approx(FOUR_PI, rel=1e-12)

    @pytest.mark.parametrize("npol,nazi", [(2, 4), (4, 8), (8, 16)])
    def test_moments(self, npol, nazi):
        q = product_quadrature(npol, nazi)
        w = q.weights / q.weights.sum()
        assert np.sum(w * q.directions[:, 2] ** 2) == pytest.approx(
            1 / 3, rel=1e-10
        )
        for ax in range(3):
            assert abs(np.sum(w * q.directions[:, ax])) < 1e-10

    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            product_quadrature(0, 4)


class TestQuadratureValidation:
    def test_non_unit_directions_rejected(self):
        with pytest.raises(ReproError):
            Quadrature(np.array([[1.0, 1.0, 0.0]]), np.array([1.0]))

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ReproError):
            Quadrature(np.array([[1.0, 0.0, 0.0]]), np.array([0.0]))

    def test_octant_of(self):
        q = Quadrature(
            np.array([[1.0, 0, 0], [-1.0, 0, 0]]) / 1.0, np.array([1.0, 1.0])
        )
        assert q.octant_of(0) == 0
        assert q.octant_of(1) == 1


@given(npol=st.integers(1, 10), nazi=st.integers(1, 24))
@settings(max_examples=40, deadline=None)
def test_product_quadrature_properties(npol, nazi):
    q = product_quadrature(npol, nazi)
    assert q.num_angles == npol * nazi
    assert q.weights.sum() == pytest.approx(FOUR_PI, rel=1e-9)
    np.testing.assert_allclose(
        np.linalg.norm(q.directions, axis=1), 1.0, atol=1e-12
    )

"""Fault injection & fault-tolerant runtime tests.

The headline invariant: a faulty run (crashes + message drops +
duplications) with recovery enabled produces *bitwise-identical*
numerics to the fault-free reference sweep, and a zero-fault run with
the recovery machinery armed stays within the checkpoint overhead
budget of the fault-free makespan.
"""

import warnings

import pytest
from numpy.testing import assert_array_equal

from repro._util import ReproError
from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.runtime import (
    CrashFault,
    DataDrivenRuntime,
    FaultInjector,
    FaultPlan,
    LinkPartition,
    Machine,
    RecoveryConfig,
    StragglerWindow,
)
from tests.conftest import make_solver

CORES = 16  # 4 procs x (1 master + 3 workers) on the small machine


def _setup(nprocs=4, **solver_kw):
    machine = Machine(cores_per_proc=4)
    mesh = cube_structured(8, length=4.0)
    pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=nprocs)
    solver = make_solver(pset, grain=16, **solver_kw)
    return machine, pset, solver


def _reference_phi():
    _, _, s = _setup()
    ref, _, _ = s.sweep_once(mode="fast")
    return ref


# -- fault plan / injector / config ----------------------------------------------


class TestFaultPlan:
    def test_crash_validation(self):
        with pytest.raises(ReproError):
            CrashFault(proc=-1, time=0.0)
        with pytest.raises(ReproError):
            CrashFault(proc=0, time=-1.0)

    def test_straggler_validation(self):
        with pytest.raises(ReproError):
            StragglerWindow(0, 2.0, 1.0, 2.0)  # start >= end
        with pytest.raises(ReproError):
            StragglerWindow(0, 0.0, 1.0, 0.5)  # speeds things up
        with pytest.raises(ReproError):
            StragglerWindow(-1, 0.0, 1.0, 2.0)

    def test_probability_validation(self):
        with pytest.raises(ReproError):
            FaultPlan(p_drop=1.0)
        with pytest.raises(ReproError):
            FaultPlan(p_duplicate=-0.1)

    def test_needs_recovery(self):
        assert not FaultPlan().needs_recovery()
        assert not FaultPlan(
            stragglers=(StragglerWindow(0, 0.0, 1.0, 2.0),)
        ).needs_recovery()
        assert FaultPlan(p_drop=0.1).needs_recovery()
        assert FaultPlan(p_duplicate=0.1).needs_recovery()
        assert FaultPlan(crashes=(CrashFault(0, 1.0),)).needs_recovery()

    def test_crashed_procs(self):
        plan = FaultPlan(crashes=(CrashFault(2, 1.0), CrashFault(0, 2.0)))
        assert plan.crashed_procs() == {0, 2}

    def test_lists_normalized_to_tuples(self):
        plan = FaultPlan(crashes=[CrashFault(0, 1.0)],
                         stragglers=[StragglerWindow(0, 0.0, 1.0, 2.0)])
        assert isinstance(plan.crashes, tuple)
        assert isinstance(plan.stragglers, tuple)

    def test_validate_warns_when_window_starts_past_horizon(self):
        # A straggler or partition window that only opens at or beyond
        # the armed watchdog horizon silently tests nothing: the run
        # quiesces or is declared stalled before the fault fires.
        late = FaultPlan(
            stragglers=(StragglerWindow(0, 5.0, 6.0, 2.0),),
            partitions=(LinkPartition(0, 1, 5.0, 6.0),),
        )
        with pytest.warns(UserWarning, match="straggler window"):
            with pytest.warns(UserWarning, match="partition of link"):
                late.validate(4, [], horizon=1.0)
        # Windows inside the horizon - or no horizon armed at all -
        # must stay silent.
        early = FaultPlan(
            stragglers=(StragglerWindow(0, 0.0, 1.0, 2.0),),
            partitions=(LinkPartition(0, 1, 0.0, 0.5),),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            early.validate(4, [], horizon=1.0)
            late.validate(4, [])


class TestFaultInjector:
    def test_slowdown_windows_multiply(self):
        inj = FaultInjector(FaultPlan(stragglers=(
            StragglerWindow(1, 0.0, 2.0, 3.0),
            StragglerWindow(1, 1.0, 3.0, 2.0),
        )))
        assert inj.slowdown(1, 0.5) == 3.0
        assert inj.slowdown(1, 1.5) == 6.0  # overlap multiplies
        assert inj.slowdown(1, 2.5) == 2.0
        assert inj.slowdown(1, 3.5) == 1.0  # window closed
        assert inj.slowdown(0, 1.5) == 1.0  # other procs unaffected

    def test_zero_rate_injector_is_inert(self):
        inj = FaultInjector(FaultPlan(seed=5))
        assert all(inj.message_fate() == "deliver" for _ in range(50))
        assert not any(inj.ack_dropped() for _ in range(50))

    def test_fates_deterministic_under_seed(self):
        a = FaultInjector(FaultPlan(p_drop=0.3, p_duplicate=0.3, seed=9))
        b = FaultInjector(FaultPlan(p_drop=0.3, p_duplicate=0.3, seed=9))
        assert [a.message_fate() for _ in range(200)] == [
            b.message_fate() for _ in range(200)
        ]

    def test_all_fates_occur(self):
        inj = FaultInjector(FaultPlan(p_drop=0.3, p_duplicate=0.3, seed=0))
        fates = {inj.message_fate() for _ in range(200)}
        assert fates == {"deliver", "drop", "duplicate"}


class TestRecoveryConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            RecoveryConfig(ack_timeout=0.0)
        with pytest.raises(ReproError):
            RecoveryConfig(checkpoint_interval=-1.0)
        with pytest.raises(ReproError):
            RecoveryConfig(backoff=0.5)
        with pytest.raises(ReproError):
            RecoveryConfig(max_retries=0)
        with pytest.raises(ReproError):
            RecoveryConfig(detection_delay=-1e-6)


# -- program checkpoint/restore --------------------------------------------------


class TestCheckpointRestore:
    def test_restore_rewinds_local_context(self):
        _, pset, s = _setup()
        progs, _ = s.build_programs(compute=False, resilient=True)
        for p in progs:
            p.init()
        prog = max(progs, key=lambda p: len(p._heap))  # has ready work
        snap = prog.checkpoint()
        before = prog.remaining_workload()
        prog.compute()  # consumes ready vertices
        assert prog.remaining_workload() < before
        prog.restore(snap)
        assert prog.remaining_workload() == before
        # Snapshot is reusable (second failure): restore again.
        prog.compute()
        prog.restore(snap)
        assert prog.remaining_workload() == before

    def test_shared_attrs_not_copied(self):
        _, pset, s = _setup()
        progs, _ = s.build_programs(compute=False, resilient=True)
        prog = progs[0]
        prog.init()
        snap = prog.checkpoint()
        g, cg = prog.graph, prog.cells_global
        prog.compute()
        prog.restore(snap)
        assert prog.graph is g  # topology stays shared, not deep-copied
        assert prog.cells_global is cg
        assert "graph" not in snap

    def test_resilient_input_dedupes_edges(self):
        """Duplicate stream content (same edge ids) must be a no-op."""
        _, pset, s = _setup()
        progs, _ = s.build_programs(compute=False, resilient=True)
        # Find a program with a remote upwind dependency and feed it a
        # synthetic duplicated stream via a real sender's emissions.
        by_id = {p.id: p for p in progs}
        for p in progs:
            p.init()
        sender = max(progs, key=lambda p: len(p._heap))
        sender.compute()
        outs = []
        while (o := sender.output()) is not None:
            outs.append(o)
        remote = [o for o in outs if o.dst != sender.id]
        if not remote:  # pragma: no cover - mesh-dependent
            pytest.skip("no remote stream emitted")
        s0 = remote[0]
        dst = by_id[s0.dst]
        before = dst.remaining_workload()
        dst.input(s0)
        counts_after_one = list(dst._counts)
        dst.input(s0)  # exact duplicate: must change nothing
        assert dst._counts == counts_after_one
        assert dst.remaining_workload() == before  # input never solves


# -- fault-tolerant runtime integration ------------------------------------------


class TestFaultTolerantRun:
    def test_crash_recovery_bitwise_identical_numerics(self):
        """Headline: crash + drops + duplicates, same flux bit-for-bit."""
        ref = _reference_phi()
        machine, pset, s = _setup()
        plan = FaultPlan(
            crashes=(CrashFault(proc=1, time=150e-6),),
            p_drop=0.05, p_duplicate=0.05, seed=7,
        )
        progs, faces = s.build_programs(resilient=True)
        rep = DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
            progs, pset.patch_proc
        )
        phi, _ = s.accumulate(faces)
        assert_array_equal(phi, ref)
        assert rep.crashes == 1
        assert rep.reexecutions > 0
        assert rep.failover_time > 0
        assert rep.checkpoints > 0
        assert rep.breakdown.by_category["recovery"] > 0

    def test_crash_failover_completes_all_work(self):
        machine, pset, s = _setup()
        plan = FaultPlan(crashes=(CrashFault(proc=2, time=100e-6),), seed=1)
        progs, _ = s.build_programs(compute=False, resilient=True)
        rep = DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
            progs, pset.patch_proc
        )
        # Every program drained its workload (checked by the runtime,
        # which raises otherwise) and all vertices were solved at least
        # once; re-execution means possibly more runs, never fewer.
        assert rep.vertices_solved >= s.topology.num_vertices
        assert all(p.remaining_workload() == 0 for p in progs)
        assert rep.crashes == 1

    def test_drops_and_duplicates_without_crash(self):
        """Lossy network alone (no replay): uid dedup + retries suffice,
        even for non-resilient programs."""
        ref = _reference_phi()
        machine, pset, s = _setup()
        plan = FaultPlan(p_drop=0.1, p_duplicate=0.05, seed=3)
        progs, faces = s.build_programs()  # resilient NOT required
        rep = DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
            progs, pset.patch_proc
        )
        phi, _ = s.accumulate(faces)
        assert_array_equal(phi, ref)
        assert rep.drops > 0
        assert rep.retries > 0
        assert rep.timeouts >= rep.retries
        assert rep.reexecutions == 0

    def test_double_crash_recovers(self):
        ref = _reference_phi()
        machine, pset, s = _setup()
        plan = FaultPlan(
            crashes=(CrashFault(1, 120e-6), CrashFault(2, 400e-6)),
            p_drop=0.08, p_duplicate=0.04, seed=3,
        )
        progs, faces = s.build_programs(resilient=True)
        rep = DataDrivenRuntime(
            CORES, machine=machine, faults=plan, termination="consensus"
        ).run(progs, pset.patch_proc)
        phi, _ = s.accumulate(faces)
        assert_array_equal(phi, ref)
        assert rep.crashes == 2
        assert rep.termination_hops > 0

    def test_crash_under_mpi_only_mode(self):
        ref = _reference_phi()
        machine, pset, s = _setup()
        plan = FaultPlan(crashes=(CrashFault(3, 200e-6),), seed=11)
        progs, faces = s.build_programs(resilient=True)
        DataDrivenRuntime(
            CORES, machine=machine, mode="mpi_only", faults=plan
        ).run(progs, pset.patch_proc)
        phi, _ = s.accumulate(faces)
        assert_array_equal(phi, ref)

    def test_zero_fault_overhead_within_budget(self):
        """Recovery machinery armed but no faults: makespan within the
        checkpoint overhead budget of the plain run, counters all zero."""
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False)
        base = DataDrivenRuntime(CORES, machine=machine).run(
            progs, pset.patch_proc
        )
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False)
        rep = DataDrivenRuntime(
            CORES, machine=machine,
            faults=FaultPlan(seed=1), recovery=RecoveryConfig(),
        ).run(progs, pset.patch_proc)
        assert rep.makespan <= base.makespan * 1.10
        assert rep.drops == rep.duplicates == rep.retries == 0
        assert rep.crashes == rep.reexecutions == 0
        assert rep.checkpoints > 0
        assert rep.failover_time == 0.0
        assert rep.recovery_fraction() > 0

    def test_faulty_run_deterministic(self):
        """Same plan + seed => identical report, event for event."""
        reports = []
        for _ in range(2):
            machine, pset, s = _setup()
            plan = FaultPlan(
                crashes=(CrashFault(1, 150e-6),),
                p_drop=0.05, p_duplicate=0.05, seed=7,
            )
            progs, _ = s.build_programs(resilient=True)
            reports.append(
                DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
                    progs, pset.patch_proc
                )
            )
        a, b = reports
        for f in ("makespan", "events", "executions", "drops", "duplicates",
                  "retries", "timeouts", "reexecutions", "checkpoints",
                  "crashes", "failover_time", "vertices_solved", "messages",
                  "message_bytes", "local_streams", "stream_items"):
            assert getattr(a, f) == getattr(b, f), f
        assert a.breakdown.by_category == b.breakdown.by_category

    def test_straggler_slows_run_without_recovery(self):
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False)
        base = DataDrivenRuntime(CORES, machine=machine).run(
            progs, pset.patch_proc
        )
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False)
        plan = FaultPlan(stragglers=(StragglerWindow(0, 0.0, 300e-6, 4.0),))
        rep = DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
            progs, pset.patch_proc
        )
        assert rep.makespan > base.makespan
        # Stragglers need no recovery machinery: none was armed.
        assert rep.checkpoints == 0
        assert rep.breakdown.by_category["recovery"] == 0.0

    def test_crash_after_quiescence_is_ignored(self):
        ref = _reference_phi()
        machine, pset, s = _setup()
        plan = FaultPlan(crashes=(CrashFault(0, 10.0),), seed=2)  # way late
        progs, faces = s.build_programs(resilient=True)
        rep = DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
            progs, pset.patch_proc
        )
        phi, _ = s.accumulate(faces)
        assert_array_equal(phi, ref)
        assert rep.crashes == 0
        assert rep.reexecutions == 0

    def test_fault_summary_shape(self):
        machine, pset, s = _setup()
        plan = FaultPlan(crashes=(CrashFault(1, 150e-6),), p_drop=0.02, seed=4)
        progs, _ = s.build_programs(compute=False, resilient=True)
        rep = DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
            progs, pset.patch_proc
        )
        summary = rep.fault_summary()
        assert set(summary) == {
            "drops", "duplicates", "retries", "timeouts", "reexecutions",
            "checkpoints", "crashes", "failover_time", "partition_drops",
            "corruptions", "nacks", "cascade_crashes", "recovery_time",
        }
        assert summary["crashes"] == 1
        assert summary["recovery_time"] > 0

    # -- plan validation against the layout --------------------------------------

    def test_crash_requires_resilient_programs(self):
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False)  # not resilient
        plan = FaultPlan(crashes=(CrashFault(1, 1e-4),))
        with pytest.raises(ReproError, match="resilient"):
            DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
                progs, pset.patch_proc
            )

    def test_crash_proc_out_of_range(self):
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False, resilient=True)
        plan = FaultPlan(crashes=(CrashFault(99, 1e-4),))
        with pytest.raises(ReproError):
            DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
                progs, pset.patch_proc
            )

    def test_all_procs_crashing_rejected(self):
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False, resilient=True)
        plan = FaultPlan(
            crashes=tuple(CrashFault(p, 1e-4) for p in range(4))
        )
        with pytest.raises(ReproError, match="survivor"):
            DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
                progs, pset.patch_proc
            )

    def test_straggler_proc_out_of_range(self):
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False)
        plan = FaultPlan(stragglers=(StragglerWindow(99, 0.0, 1.0, 2.0),))
        with pytest.raises(ReproError):
            DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
                progs, pset.patch_proc
            )


class TestMpiOnlyFaultParity:
    """Scheduler-policy parity: the ``mpi_only`` layout (master and the
    single worker fused on one core per rank) survives the same fault
    plans as ``hybrid`` with bitwise-identical flux."""

    MPI_CORES = 4  # one rank per core; 4 procs, matching _setup()

    def test_crash_and_drops_bitwise_identical_numerics(self):
        """Mirror of the hybrid headline test under mpi_only."""
        ref = _reference_phi()
        machine, pset, s = _setup()
        plan = FaultPlan(
            crashes=(CrashFault(proc=1, time=150e-6),),
            p_drop=0.05, p_duplicate=0.05, seed=7,
        )
        progs, faces = s.build_programs(resilient=True)
        rep = DataDrivenRuntime(
            self.MPI_CORES, machine=machine, mode="mpi_only", faults=plan
        ).run(progs, pset.patch_proc)
        phi, _ = s.accumulate(faces)
        assert_array_equal(phi, ref)
        assert rep.crashes == 1
        assert rep.reexecutions > 0
        assert rep.failover_time > 0
        assert rep.checkpoints > 0
        assert rep.breakdown.by_category["recovery"] > 0

    def test_drops_and_duplicates_without_crash(self):
        ref = _reference_phi()
        machine, pset, s = _setup()
        plan = FaultPlan(p_drop=0.1, p_duplicate=0.05, seed=3)
        progs, faces = s.build_programs()  # resilient NOT required
        rep = DataDrivenRuntime(
            self.MPI_CORES, machine=machine, mode="mpi_only", faults=plan
        ).run(progs, pset.patch_proc)
        phi, _ = s.accumulate(faces)
        assert_array_equal(phi, ref)
        assert rep.drops > 0
        assert rep.retries > 0
        assert rep.reexecutions == 0

    def test_faulty_mpi_only_run_deterministic(self):
        """Same plan + seed => identical report under mpi_only."""
        reports = []
        for _ in range(2):
            machine, pset, s = _setup()
            plan = FaultPlan(
                crashes=(CrashFault(1, 150e-6),),
                p_drop=0.05, p_duplicate=0.05, seed=7,
            )
            progs, _ = s.build_programs(resilient=True)
            reports.append(
                DataDrivenRuntime(
                    self.MPI_CORES, machine=machine, mode="mpi_only",
                    faults=plan,
                ).run(progs, pset.patch_proc)
            )
        a, b = reports
        for f in ("makespan", "events", "executions", "drops", "duplicates",
                  "retries", "timeouts", "reexecutions", "checkpoints",
                  "crashes", "failover_time", "vertices_solved", "messages",
                  "message_bytes", "local_streams", "stream_items"):
            assert getattr(a, f) == getattr(b, f), f
        assert a.breakdown.by_category == b.breakdown.by_category

"""The lint engine: every rule demonstrated on golden fixtures, the
suppression syntax, the module pragma, and the meta-check that the
shipped repo itself lints clean."""

import json
from pathlib import Path

import pytest

from repro.analysis import LintEngine, Violation, lint_paths
from repro.analysis.engine import load_module, render
from repro.analysis.rules import ALL_RULES, rule_table

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
SRC = Path(__file__).parent.parent / "src" / "repro"

RULE_IDS = [r.id for r in ALL_RULES]

#: rule id -> fixture stem (bad/clean/suppressed triples).
FIXTURE_STEM = {
    "DET001": "det001",
    "DET002": "det002",
    "DET003": "det003",
    "DET004": "det004",
    "DES001": "des001",
    "PROTO001": "proto001",
    "PROTO002": "proto002",
    "PROTO003": "proto003",
    "PERSIST001": "persist001",
}


def _lint(name: str) -> list[Violation]:
    return LintEngine().lint_file(FIXTURES / name)


# -- every rule fires on its golden-violation fixture ----------------------------


class TestRulesTrigger:
    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_triggers_the_rule(self, rule_id):
        vs = _lint(f"{FIXTURE_STEM[rule_id]}_bad.py")
        assert any(v.rule == rule_id for v in vs), (
            f"{rule_id} did not fire on its bad fixture: {vs}"
        )

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_bad_fixture_triggers_nothing_else(self, rule_id):
        """Fixtures are surgical: exactly one rule id per bad file."""
        vs = _lint(f"{FIXTURE_STEM[rule_id]}_bad.py")
        assert {v.rule for v in vs} == {rule_id}

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_clean_fixture_is_clean(self, rule_id):
        assert _lint(f"{FIXTURE_STEM[rule_id]}_clean.py") == []

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_suppression_silences_the_rule(self, rule_id):
        assert _lint(f"{FIXTURE_STEM[rule_id]}_suppressed.py") == []

    def test_det003_interprocedural_one_hop(self):
        vs = _lint("det003_hop_bad.py")
        assert [v.rule for v in vs] == ["DET003"]
        # The message names the call chain into the sink.
        assert "_kick" in vs[0].message and "push" in vs[0].message

    def test_violations_carry_hint_and_position(self):
        vs = _lint("det001_bad.py")
        assert vs, "expected findings"
        for v in vs:
            assert v.line > 0 and v.hint
            assert str(FIXTURES / "det001_bad.py") == v.path


# -- engine mechanics ------------------------------------------------------------


class TestEngine:
    def test_wildcard_allow_suppresses_everything(self, tmp_path):
        f = tmp_path / "wild.py"
        f.write_text(
            "import time\n"
            "t = time.time()  # repro: allow[*]\n"
        )
        assert LintEngine().lint_file(f) == []

    def test_standalone_allow_covers_next_code_line(self, tmp_path):
        f = tmp_path / "standalone.py"
        f.write_text(
            "import time\n"
            "# repro: allow[DET001]\n"
            "t = time.time()\n"
            "u = time.time()\n"  # NOT covered
        )
        vs = LintEngine().lint_file(f)
        assert [v.line for v in vs] == [4]

    def test_allow_for_a_different_rule_does_not_suppress(self, tmp_path):
        f = tmp_path / "wrong.py"
        f.write_text("import time\nt = time.time()  # repro: allow[DET002]\n")
        assert [v.rule for v in LintEngine().lint_file(f)] == ["DET001"]

    def test_module_pragma_overrides_path_module(self):
        mod = load_module(FIXTURES / "proto002_bad.py")
        assert mod.module == "repro.runtime.scheduler"

    def test_logical_module_inferred_from_src_path(self):
        mod = load_module(SRC / "runtime" / "transport.py")
        assert mod.module == "repro.runtime.transport"

    def test_render_human_and_json(self):
        vs = _lint("det004_bad.py")
        text = render(vs)
        assert "DET004" in text and "violation(s)" in text
        doc = json.loads(render(vs, as_json=True))
        assert doc["count"] == len(vs) >= 1
        assert doc["violations"][0]["rule"] == "DET004"
        assert render([]) == "repro.analysis: clean"

    def test_rule_table_covers_all_rules(self):
        assert [row["id"] for row in rule_table()] == RULE_IDS


# -- the CLI ---------------------------------------------------------------------


class TestCli:
    def test_lint_bad_fixture_exits_nonzero(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["lint", str(FIXTURES / "det001_bad.py")])
        assert rc == 1
        assert "DET001" in capsys.readouterr().out

    def test_lint_clean_fixture_exits_zero(self, capsys):
        from repro.analysis.__main__ import main

        rc = main(["lint", str(FIXTURES / "det001_clean.py"), "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["count"] == 0


# -- the shipped repo lints clean (the CI gate, in-process) ----------------------


def test_shipped_repo_lints_clean():
    vs = lint_paths([SRC])
    assert vs == [], "\n" + render(vs)

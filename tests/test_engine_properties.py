"""Property-based tests of the execution engines' core invariants.

Random sweep configurations (mesh, decomposition, quadrature, grain)
must satisfy, under every backend: full workload completion, identical
numerics, and stream-item conservation (every dependency edge crossing
a patch boundary is communicated exactly once).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SerialEngine
from repro.framework import PatchSet
from repro.mesh import cube_structured, disk_tri_mesh
from repro.runtime import DataDrivenRuntime, Machine
from repro.sweep import (
    Material,
    MaterialMap,
    SnSolver,
    SweepTopology,
    apply_priorities,
    level_symmetric,
)
from repro.sweep.sweep_program import SweepPatchProgram

MACHINE = Machine(cores_per_proc=4)


@st.composite
def sweep_configs(draw):
    mesh_kind = draw(st.sampled_from(["cube", "disk"]))
    nprocs = draw(st.integers(1, 4))
    grain = draw(st.integers(1, 200))
    strategy = draw(
        st.sampled_from(["fifo", "bfs", "ldcp", "slbd", "bfs+slbd"])
    )
    seed = draw(st.integers(0, 100))
    return mesh_kind, nprocs, grain, strategy, seed


_MESHES = {}


def _mesh(kind):
    if kind not in _MESHES:
        _MESHES[kind] = (
            cube_structured(6, 3.0) if kind == "cube" else disk_tri_mesh(6)
        )
    return _MESHES[kind]


def _pset(kind, nprocs, seed):
    mesh = _mesh(kind)
    if kind == "cube":
        return PatchSet.from_structured(mesh, (3, 3, 3), nprocs=min(nprocs, 8))
    return PatchSet.from_unstructured(
        mesh, 20 + seed % 30, nprocs=min(nprocs, 4)
    )


@given(cfg=sweep_configs())
@settings(max_examples=25, deadline=None)
def test_any_configuration_sweeps_to_completion(cfg):
    kind, nprocs, grain, strategy, seed = cfg
    pset = _pset(kind, nprocs, seed)
    topo = SweepTopology(pset, level_symmetric(2))
    apply_priorities(topo, strategy)
    progs = [
        SweepPatchProgram(g, pset.patches[p].cells, grain=grain)
        for (p, a), g in topo.graphs.items()
    ]
    eng = SerialEngine()
    for prog in progs:
        eng.add_program(prog)
    stats = eng.run()
    assert all(p.remaining_workload() == 0 for p in progs)
    # Stream-item conservation: every cross-patch edge communicated once.
    expected = sum(g.num_remote_edges for g in topo.graphs.values())
    assert stats.stream_items == expected


@given(cfg=sweep_configs())
@settings(max_examples=12, deadline=None)
def test_des_numerics_invariant_under_configuration(cfg):
    kind, nprocs, grain, strategy, seed = cfg
    pset = _pset(kind, nprocs, seed)
    mesh = pset.mesh
    mm = MaterialMap.uniform(Material.isotropic(1.0, 0.3), mesh.num_cells)
    solver = SnSolver(
        pset, level_symmetric(2), mm, np.ones((mesh.num_cells, 1)),
        grain=grain, strategy=strategy,
    )
    ref, _, _ = solver.sweep_once(mode="fast")
    progs, faces = solver.build_programs()
    cores = 4 * pset.num_procs
    DataDrivenRuntime(cores, machine=MACHINE).run(progs, pset.patch_proc)
    phi, _ = solver.accumulate(faces)
    np.testing.assert_array_equal(phi, ref)


@given(
    grain=st.integers(1, 100),
    seed=st.integers(0, 50),
)
@settings(max_examples=15, deadline=None)
def test_des_conserves_messages(grain, seed):
    """Total stream items (local + remote) equal cross-patch edges,
    independent of scheduling nondeterminism knobs."""
    pset = _pset("disk", 2, seed)
    topo = SweepTopology(pset, level_symmetric(2))
    apply_priorities(topo, "slbd+slbd")
    progs = [
        SweepPatchProgram(g, pset.patches[p].cells, grain=grain)
        for (p, a), g in topo.graphs.items()
    ]
    rep = DataDrivenRuntime(8, machine=MACHINE).run(progs, pset.patch_proc)
    assert rep.vertices_solved == topo.num_vertices
    # Every cross-patch dependency edge is communicated exactly once,
    # regardless of grain or interleaving.
    expected_edges = sum(g.num_remote_edges for g in topo.graphs.values())
    assert rep.stream_items == expected_edges
    assert rep.executions >= len(progs)

"""Tests for multigroup materials and material maps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.sweep import Material, MaterialMap


class TestMaterial:
    def test_isotropic_factory(self):
        m = Material.isotropic(2.0, 0.5, groups=3)
        np.testing.assert_allclose(m.sigma_t, 2.0)
        np.testing.assert_allclose(np.diag(m.sigma_s), 1.0)
        np.testing.assert_allclose(m.sigma_a, 1.0)

    def test_void(self):
        v = Material.void(groups=2)
        assert v.sigma_t.sum() == 0.0
        assert v.num_groups == 2

    def test_scatter_exceeding_total_rejected(self):
        with pytest.raises(ReproError):
            Material(np.array([1.0]), np.array([[1.5]]))

    def test_negative_xs_rejected(self):
        with pytest.raises(ReproError):
            Material(np.array([-1.0]), np.array([[0.0]]))

    def test_bad_scatter_shape(self):
        with pytest.raises(ReproError):
            Material(np.array([1.0, 1.0]), np.zeros((3, 3)))

    def test_scatter_ratio_bounds(self):
        with pytest.raises(ReproError):
            Material.isotropic(1.0, 1.2)

    def test_sigma_a_with_transfer(self):
        m = Material(
            np.array([2.0, 1.0]),
            np.array([[0.5, 0.5], [0.0, 0.3]]),
        )
        np.testing.assert_allclose(m.sigma_a, [1.0, 0.7])


class TestMaterialMap:
    def test_uniform(self):
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.5), 10)
        assert mm.num_cells == 10
        assert mm.sigma_t_cell.shape == (10, 1)

    def test_heterogeneous_lookup(self):
        mats = {
            0: Material.isotropic(1.0, 0.0),
            1: Material.isotropic(3.0, 0.5),
        }
        ids = np.array([0, 1, 1, 0])
        mm = MaterialMap(mats, ids)
        np.testing.assert_allclose(mm.sigma_t_cell[:, 0], [1.0, 3.0, 3.0, 1.0])

    def test_undefined_id_rejected(self):
        with pytest.raises(ReproError):
            MaterialMap({0: Material.isotropic(1.0)}, np.array([0, 2]))

    def test_mixed_group_counts_rejected(self):
        with pytest.raises(ReproError):
            MaterialMap(
                {
                    0: Material.isotropic(1.0, groups=1),
                    1: Material.isotropic(1.0, groups=2),
                },
                np.array([0, 1]),
            )

    def test_scatter_source_within_group(self):
        mm = MaterialMap.uniform(Material.isotropic(2.0, 0.5), 3)
        phi = np.array([[1.0], [2.0], [3.0]])
        np.testing.assert_allclose(mm.scatter_source(phi), phi * 1.0)

    def test_scatter_source_transfer_matrix(self):
        mat = Material(
            np.array([2.0, 2.0]),
            np.array([[0.5, 0.25], [0.0, 1.0]]),
        )
        mm = MaterialMap.uniform(mat, 2)
        phi = np.array([[1.0, 1.0], [2.0, 0.0]])
        s = mm.scatter_source(phi)
        # S[c, g] = sum_g' phi[c, g'] * ss[g', g]
        np.testing.assert_allclose(s[0], [0.5, 1.25])
        np.testing.assert_allclose(s[1], [1.0, 0.5])

    def test_phi_shape_checked(self):
        mm = MaterialMap.uniform(Material.isotropic(1.0), 3)
        with pytest.raises(ReproError):
            mm.scatter_source(np.zeros((2, 1)))

    def test_sigma_a_cell(self):
        mm = MaterialMap.uniform(Material.isotropic(2.0, 0.5), 4)
        np.testing.assert_allclose(mm.sigma_a_cell(), 1.0)


@given(
    sigma=st.floats(0.01, 10.0),
    ratio=st.floats(0.0, 1.0),
    groups=st.integers(1, 4),
)
@settings(max_examples=50, deadline=None)
def test_material_invariants(sigma, ratio, groups):
    m = Material.isotropic(sigma, ratio, groups=groups)
    assert np.all(m.sigma_a >= -1e-12)
    np.testing.assert_allclose(
        m.sigma_s.sum(axis=1) + m.sigma_a, m.sigma_t, rtol=1e-12
    )

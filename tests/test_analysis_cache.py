"""Incremental analysis cache: full-hit byte identity, reverse-
dependency cone invalidation observed through the parse counter, and
signature-based self-invalidation when the rule set changes."""

import shutil
from pathlib import Path

import pytest

from repro.analysis.cache import cached_lint
from repro.analysis.engine import lint_paths, parse_count

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def _write_tree(root: Path) -> dict[str, Path]:
    """A three-module import chain: top -> mid -> leaf, plus an
    unrelated island module.  Touching `leaf` must invalidate the
    whole chain but never the island."""
    files = {}
    files["leaf"] = root / "leaf.py"
    files["leaf"].write_text(
        "# repro: module=pkg.leaf\n"
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n"
    )
    files["mid"] = root / "mid.py"
    files["mid"].write_text(
        "# repro: module=pkg.mid\n"
        "from pkg.leaf import stamp\n"
        "def relay():\n"
        "    return stamp()\n"
    )
    files["top"] = root / "top.py"
    files["top"].write_text(
        "# repro: module=pkg.top\n"
        "from pkg.mid import relay\n"
        "def entry():\n"
        "    return relay()\n"
    )
    files["island"] = root / "island.py"
    files["island"].write_text(
        "# repro: module=pkg.island\n"
        "def alone():\n"
        "    return 42\n"
    )
    return files


@pytest.fixture
def tree(tmp_path):
    return _write_tree(tmp_path)


def _run(tmp_path, cache):
    return cached_lint([tmp_path], cache, interprocedural=True)


class TestCacheHit:
    def test_warm_hit_is_byte_identical_and_parse_free(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        cold = _run(tmp_path, cache)
        assert cold, "the tree seeds DET001 findings"

        before = parse_count()
        warm = _run(tmp_path, cache)
        assert parse_count() - before == 0, "full hit must not parse"
        assert [v.to_dict() for v in warm] == [v.to_dict() for v in cold]

    def test_cached_equals_uncached(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        cached = _run(tmp_path, cache)
        plain = lint_paths([tmp_path], interprocedural=True)
        assert [v.to_dict() for v in cached] == [v.to_dict() for v in plain]

    def test_fixture_findings_survive_the_cache_verbatim(self, tmp_path):
        for name in ("det001_chain_bad.py", "persist002_bad.py"):
            shutil.copy(FIXTURES / name, tmp_path / name)
        cache = tmp_path / "cache.json"
        cold = _run(tmp_path, cache)
        warm = _run(tmp_path, cache)
        assert [v.to_dict() for v in warm] == [v.to_dict() for v in cold]
        assert {v.rule for v in warm} == {"DET001", "PERSIST002"}


class TestConeInvalidation:
    def test_touch_leaf_reparses_only_its_cone(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        _run(tmp_path, cache)

        tree["leaf"].write_text(
            "# repro: module=pkg.leaf\n"
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"
            "def extra():\n"
            "    return 0\n"
        )
        before = parse_count()
        _run(tmp_path, cache)
        # leaf + mid + top re-parse; the island stays cached.
        assert parse_count() - before == 3

    def test_touch_island_reparses_one_file(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        _run(tmp_path, cache)

        tree["island"].write_text(
            "# repro: module=pkg.island\n"
            "def alone():\n"
            "    return 43\n"
        )
        before = parse_count()
        _run(tmp_path, cache)
        assert parse_count() - before == 1

    def test_touch_top_does_not_reparse_leaf(self, tmp_path, tree):
        """Dependencies flow one way: editing a downstream consumer
        never invalidates what it imports."""
        cache = tmp_path / "cache.json"
        _run(tmp_path, cache)

        tree["top"].write_text(
            "# repro: module=pkg.top\n"
            "from pkg.mid import relay\n"
            "def entry():\n"
            "    return relay() + 1\n"
        )
        before = parse_count()
        _run(tmp_path, cache)
        assert parse_count() - before == 1

    def test_findings_update_after_edit(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        cold = _run(tmp_path, cache)
        n_cold = len(cold)

        # The direct-site blessing clears the transitive cone too.
        tree["leaf"].write_text(
            "# repro: module=pkg.leaf\n"
            "import time\n"
            "def stamp():\n"
            "    return time.time()  # repro: allow[DET001]\n"
        )
        warm = _run(tmp_path, cache)
        assert warm == []
        assert n_cold > 0

    def test_deleted_file_drops_from_results(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        _run(tmp_path, cache)
        tree["island"].unlink()
        warm = _run(tmp_path, cache)
        assert not any("island" in v.path for v in warm)


class TestSignature:
    def test_rule_set_change_invalidates(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        _run(tmp_path, cache)

        before = parse_count()
        # Single-file mode has a different signature: full re-run.
        cached_lint([tmp_path], cache, interprocedural=False)
        assert parse_count() - before == 4

    def test_corrupt_cache_falls_back_to_cold(self, tmp_path, tree):
        cache = tmp_path / "cache.json"
        cache.write_text("{not json")
        vs = _run(tmp_path, cache)
        plain = lint_paths([tmp_path], interprocedural=True)
        assert [v.to_dict() for v in vs] == [v.to_dict() for v in plain]

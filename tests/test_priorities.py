"""Tests for the multi-level priority strategies (Sec. V-D)."""

import numpy as np
import pytest

from repro._util import ReproError
from repro.framework import PatchSet
from repro.mesh import cube_structured, disk_tri_mesh
from repro.sweep import (
    ANGLE_FACTOR,
    PriorityStrategy,
    SweepTopology,
    apply_priorities,
    level_symmetric,
    patch_priorities,
    vertex_priorities,
)


@pytest.fixture(scope="module")
def topo():
    mesh = cube_structured(6)
    pset = PatchSet.from_structured(mesh, (3, 3, 3), nprocs=2)
    return SweepTopology(pset, level_symmetric(2))


@pytest.fixture(scope="module")
def disk_topo():
    mesh = disk_tri_mesh(7)
    pset = PatchSet.from_unstructured(mesh, 30, nprocs=2)
    return SweepTopology(pset, level_symmetric(2))


class TestStrategyParsing:
    def test_parse_pair(self):
        s = PriorityStrategy.parse("LDCP+SLBD")
        assert s.patch == "ldcp" and s.vertex == "slbd"
        assert str(s) == "LDCP+SLBD"

    def test_parse_single_applies_both(self):
        s = PriorityStrategy.parse("bfs")
        assert s.patch == "bfs" and s.vertex == "bfs"

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            PriorityStrategy.parse("random")
        with pytest.raises(ReproError):
            PriorityStrategy.parse("a+b+c")


class TestVertexPriorities:
    def test_fifo_all_zero(self, topo):
        g = topo.graphs[(0, 0)]
        np.testing.assert_array_equal(vertex_priorities(g, "fifo"), 0.0)

    def test_bfs_levels_respect_edges(self, topo):
        g = topo.graphs[(0, 0)]
        level = vertex_priorities(g, "bfs")
        for v in range(g.n_local):
            for i in range(g.dl_indptr[v], g.dl_indptr[v + 1]):
                assert level[g.dl_target[i]] >= level[v] + 1

    def test_ldcp_heights_respect_edges(self, topo):
        g = topo.graphs[(0, 0)]
        key = vertex_priorities(g, "ldcp")  # key = -height
        h = -key
        for v in range(g.n_local):
            for i in range(g.dl_indptr[v], g.dl_indptr[v + 1]):
                assert h[v] >= h[g.dl_target[i]] + 1

    def test_slbd_zero_on_boundary(self, topo):
        g = topo.graphs[(0, 0)]
        d = vertex_priorities(g, "slbd")
        bnd = g.boundary_vertices()
        np.testing.assert_array_equal(d[bnd], 0.0)

    def test_slbd_triangle_inequality(self, disk_topo):
        for key in [(0, 0), (1, 3)]:
            g = disk_topo.graphs[key]
            d = vertex_priorities(g, "slbd")
            for v in range(g.n_local):
                for i in range(g.dl_indptr[v], g.dl_indptr[v + 1]):
                    w = g.dl_target[i]
                    assert d[v] <= d[w] + 1 + 1e-9

    def test_unknown_strategy(self, topo):
        with pytest.raises(ReproError):
            vertex_priorities(topo.graphs[(0, 0)], "xxx")


class TestPatchPriorities:
    def test_bfs_upwind_higher(self, topo):
        pr = patch_priorities(topo, "bfs")
        # For each angle, source patches (level 0) get priority 0 >=
        # downwind patches (negative).
        for a in range(topo.num_angles):
            vals = [pr[(p, a)] for p in range(topo.pset.num_patches)]
            assert max(vals) == 0.0
            assert min(vals) < 0.0

    def test_ldcp_respects_patch_dag(self, topo):
        pr = patch_priorities(topo, "ldcp")
        for a in range(topo.num_angles):
            pairs = set(map(tuple, topo.patch_dag[a].tolist()))
            cyclic_pairs = {(u, v) for (u, v) in pairs if (v, u) in pairs}
            for u, v in pairs - cyclic_pairs:
                assert pr[(u, a)] >= pr[(v, a)]

    def test_slbd_and_fifo_are_flat(self, topo):
        for strat in ("slbd", "fifo"):
            pr = patch_priorities(topo, strat)
            assert set(pr.values()) == {0.0}

    def test_handles_cyclic_patch_graph(self, disk_topo):
        # The disk decomposition has interleaved patch deps; must not raise.
        pr = patch_priorities(disk_topo, "ldcp")
        assert len(pr) == disk_topo.pset.num_patches * disk_topo.num_angles


class TestCombinedPriorities:
    def test_angle_dominates(self, topo):
        static = apply_priorities(topo, "ldcp+ldcp")
        np_ = topo.pset.num_patches
        for a in range(topo.num_angles - 1):
            lo_next = min(static[(p, a)] for p in range(np_))
            hi_next = max(static[(p, a + 1)] for p in range(np_))
            assert lo_next > hi_next  # angle a strictly before a+1

    def test_vertex_keys_installed(self, topo):
        apply_priorities(topo, "slbd+slbd")
        for g in topo.graphs.values():
            assert g.vertex_prio is not None
            assert len(g.vertex_prio) == g.n_local

    def test_formula(self, topo):
        patch_term = patch_priorities(topo, "ldcp")
        static = apply_priorities(topo, "ldcp+bfs")
        na = topo.num_angles
        for (p, a), v in static.items():
            assert v == pytest.approx(
                (na - a) * ANGLE_FACTOR + patch_term[(p, a)]
            )

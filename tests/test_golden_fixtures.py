"""Golden determinism fixtures for the runtime substrate.

The layered runtime refactor (simulator / transport / router /
scheduler / recovery) must be behavior-preserving **to the bit**: event
ordering, virtual-time makespans, breakdown categories, fault counters
and flux must be identical to the pre-refactor monolith.  This module
pins a small scenario matrix — {structured, unstructured} x
{hybrid, mpi_only} x {fault-free, faulty} — plus the BSP and KBA
baselines, and asserts every run's fingerprint against
``tests/golden_fingerprints.json``.

The fingerprints were recorded on the pre-refactor monolithic
``DataDrivenRuntime.run`` and the pre-refactor ad-hoc baseline
substrate; they must survive any future refactor of the runtime
layers.  Floats are stored as ``float.hex()`` (exact), flux as a
SHA-256 over the raw array bytes (bitwise).

Regenerate (only when *intentionally* changing runtime semantics)::

    PYTHONPATH=src:. python tests/test_golden_fixtures.py --regen
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.framework import PatchSet
from repro.mesh import cube_structured, disk_tri_mesh
from repro.runtime import CrashFault, DataDrivenRuntime, FaultPlan, Machine
from repro.sweep.baselines import BSPSweepRuntime, KBASchedule
from tests.conftest import make_solver

GOLDEN_PATH = Path(__file__).parent / "golden_fingerprints.json"

#: scenario name -> (mesh kind, runtime mode, faults on)
RUNTIME_SCENARIOS = {
    f"{kind}-{mode}-{'faulty' if faulty else 'clean'}": (kind, mode, faulty)
    for kind in ("structured", "unstructured")
    for mode in ("hybrid", "mpi_only")
    for faulty in (False, True)
}


def _machine():
    return Machine(cores_per_proc=4)


def _solver(kind, nprocs):
    if kind == "structured":
        mesh = cube_structured(8, length=4.0)
        pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=nprocs)
        return pset, make_solver(pset, grain=16)
    mesh = disk_tri_mesh(8)
    pset = PatchSet.from_unstructured(mesh, 20, nprocs=nprocs)
    return pset, make_solver(pset, sn=4, grain=16)


def _fault_plan():
    return FaultPlan(
        crashes=(CrashFault(proc=1, time=150e-6),),
        p_drop=0.05,
        p_duplicate=0.05,
        seed=7,
    )


def _flux_hash(phi) -> str:
    return hashlib.sha256(np.ascontiguousarray(phi).tobytes()).hexdigest()


def run_runtime_scenario(kind: str, mode: str, faulty: bool):
    machine = _machine()
    cores = 16 if mode == "hybrid" else 8
    nprocs = machine.layout(cores, mode).nprocs
    pset, s = _solver(kind, nprocs)
    plan = _fault_plan() if faulty else None
    progs, faces = s.build_programs(resilient=faulty)
    rep = DataDrivenRuntime(cores, machine=machine, mode=mode, faults=plan).run(
        progs, pset.patch_proc
    )
    phi, _ = s.accumulate(faces)
    return rep, phi


def runtime_fingerprint(rep, phi) -> dict:
    fp = {
        "makespan": rep.makespan.hex(),
        "failover_time": rep.failover_time.hex(),
        "breakdown": {
            c: v.hex() for c, v in sorted(rep.breakdown.by_category.items())
        },
        "flux": _flux_hash(phi),
    }
    for f in (
        "events", "executions", "messages", "message_bytes", "local_streams",
        "stream_items", "vertices_solved", "drops", "duplicates", "retries",
        "timeouts", "reexecutions", "checkpoints", "crashes",
    ):
        fp[f] = getattr(rep, f)
    return fp


def run_bsp_scenario(kind: str):
    machine = _machine()
    nprocs = machine.layout(16, "hybrid").nprocs
    pset, s = _solver(kind, nprocs)
    progs, faces = s.build_programs()
    res = BSPSweepRuntime(16, machine=machine).run(progs, pset.patch_proc)
    phi, _ = s.accumulate(faces)
    return res, phi


def bsp_fingerprint(res, phi) -> dict:
    return {
        "time": res.time.hex(),
        "compute_time": res.compute_time.hex(),
        "barrier_time": res.barrier_time.hex(),
        "comm_time": res.comm_time.hex(),
        "idle_core_seconds": res.idle_core_seconds.hex(),
        "supersteps": res.supersteps,
        "executions": res.executions,
        "flux": _flux_hash(phi),
    }


def run_kba_scenario():
    return KBASchedule(
        (24, 24, 24), px=4, py=4, k_blocks=6, machine=_machine()
    ).simulate(num_angles=24)


def kba_fingerprint(res) -> dict:
    return {
        "time": res.time.hex(),
        "serial_time": res.serial_time.hex(),
        "num_tasks": res.num_tasks,
        "stages": res.stages,
    }


def compute_all_fingerprints() -> dict:
    out = {}
    for name, (kind, mode, faulty) in RUNTIME_SCENARIOS.items():
        out[name] = runtime_fingerprint(*run_runtime_scenario(kind, mode, faulty))
    for kind in ("structured", "unstructured"):
        out[f"bsp-{kind}"] = bsp_fingerprint(*run_bsp_scenario(kind))
    out["kba-structured"] = kba_fingerprint(run_kba_scenario())
    return out


def _golden() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - setup error
        pytest.fail(
            f"golden fixture file missing: {GOLDEN_PATH} "
            "(regenerate with `python tests/test_golden_fixtures.py --regen`)"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("name", sorted(RUNTIME_SCENARIOS))
def test_runtime_scenario_matches_golden(name):
    kind, mode, faulty = RUNTIME_SCENARIOS[name]
    fp = runtime_fingerprint(*run_runtime_scenario(kind, mode, faulty))
    assert fp == _golden()[name]


@pytest.mark.parametrize("kind", ["structured", "unstructured"])
def test_bsp_scenario_matches_golden(kind):
    fp = bsp_fingerprint(*run_bsp_scenario(kind))
    assert fp == _golden()[f"bsp-{kind}"]


def test_kba_scenario_matches_golden():
    fp = kba_fingerprint(run_kba_scenario())
    assert fp == _golden()["kba-structured"]


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("pass --regen to overwrite the golden fixture file")
    GOLDEN_PATH.write_text(json.dumps(compute_all_fingerprints(), indent=1))
    print(f"wrote {GOLDEN_PATH}")

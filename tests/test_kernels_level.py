"""fast-level regression: the vectorized wavefront path is bitwise-
identical to the scalar ``fast`` sweep on both mesh families.

``AngleKernel.solve_level`` batches each topological level through one
``(1,k) @ (k,ng)`` matmul per in-degree group, which runs the same
BLAS dot per cell as ``solve_cells``'s ``in_coeff @ psi_faces[isl]``.
These tests pin that equivalence - ``np.array_equal``, no tolerance -
because ``fast-level`` is the default ``sweep_once`` mode and any
float-order drift would silently change every solver result.
"""

import numpy as np
import pytest

from repro.apps import JSNTS, JSNTU
from repro.sweep import product_quadrature


def _parts_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y)
        else:
            assert x == y


@pytest.fixture(scope="module")
def koba():
    return JSNTS.kobayashi(
        12,
        total_cores=24,
        quadrature=product_quadrature(2, 4),
        patch_shape=(6, 6, 6),
    )


@pytest.fixture(scope="module")
def ball():
    return JSNTU.ball(10, total_cores=24, patch_size=120)


class TestFastLevelBitwise:
    def test_structured_dd_fixup_sweep(self, koba):
        s = koba.solver
        _parts_equal(
            s.sweep_once(mode="fast"), s.sweep_once(mode="fast-level")
        )

    def test_unstructured_step_sweep(self, ball):
        s = ball.solver
        _parts_equal(
            s.sweep_once(mode="fast"), s.sweep_once(mode="fast-level")
        )

    def test_with_scatter_source(self, koba):
        s = koba.solver
        ng = s.num_groups
        rng = np.random.default_rng(7)
        scatter = rng.random((s.mesh.num_cells, ng))
        _parts_equal(
            s.sweep_once(scatter, mode="fast"),
            s.sweep_once(scatter, mode="fast-level"),
        )

    def test_source_iteration_default_is_fast_level(self, ball):
        s = ball.solver
        res_default = s.source_iteration(tol=1e-5, max_iterations=8)
        res_fast = s.source_iteration(
            tol=1e-5, max_iterations=8, mode="fast"
        )
        assert np.array_equal(res_default.phi, res_fast.phi)
        assert res_default.iterations == res_fast.iterations

    def test_batched_matmul_matches_blas_dot(self):
        # The micro-fact the kernel relies on: a batched (1,k)@(k,ng)
        # matmul reproduces the per-cell 1-D @ 2-D dot bit for bit.
        rng = np.random.default_rng(3)
        for k in range(1, 8):
            coeff = rng.standard_normal((64, k))
            flux = rng.standard_normal((64, k, 3))
            batched = np.matmul(coeff[:, None, :], flux)[:, 0]
            for i in range(64):
                assert np.array_equal(batched[i], coeff[i] @ flux[i])

"""Cross-family consistency: structured box vs identical hex mesh.

A regular box represented as a StructuredMesh and as an unstructured
hex mesh describes the *same* geometry cell-for-cell (both use C-order
cell numbering), so the step-upwind sweep must produce **identical**
flux on both.  This is the sharpest test of the mesh-family
abstraction: connectivity extraction, DAG building, patching and
kernels all differ, the physics must not.
"""

import numpy as np
import pytest

from repro.framework import PatchSet, build_boundary, build_interfaces
from repro.mesh import box_hex_mesh, box_structured
from repro.sweep import (
    Material,
    MaterialMap,
    SnSolver,
    check_acyclic,
    directed_edges,
    level_symmetric,
)

SHAPE = (5, 4, 3)
LENGTHS = (5.0, 4.0, 3.0)


@pytest.fixture(scope="module")
def pair():
    return box_structured(SHAPE, LENGTHS), box_hex_mesh(SHAPE, LENGTHS)


class TestGeometryMatches:
    def test_cell_count_and_order(self, pair):
        sm, hm = pair
        assert sm.num_cells == hm.num_cells
        np.testing.assert_allclose(sm.cell_centers(), hm.cell_centroids)

    def test_volumes(self, pair):
        sm, hm = pair
        np.testing.assert_allclose(hm.cell_volumes, sm.cell_volume)

    def test_interfaces_match(self, pair):
        sm, hm = pair
        its = build_interfaces(sm)
        ith = build_interfaces(hm)
        assert its.num_interfaces == ith.num_interfaces
        # Same (a, b) adjacency set.
        key_s = {
            (min(a, b), max(a, b))
            for a, b in zip(its.cell_a.tolist(), its.cell_b.tolist())
        }
        key_h = {
            (min(a, b), max(a, b))
            for a, b in zip(ith.cell_a.tolist(), ith.cell_b.tolist())
        }
        assert key_s == key_h

    def test_boundary_matches(self, pair):
        sm, hm = pair
        bs = build_boundary(sm)
        bh = build_boundary(hm)
        assert bs.num_faces == bh.num_faces
        np.testing.assert_allclose(sorted(bs.area), sorted(bh.area))


class TestSweepIdentical:
    def test_dags_identical(self, pair):
        sm, hm = pair
        its, ith = build_interfaces(sm), build_interfaces(hm)
        d = np.array([0.3, -0.8, 0.52])
        d /= np.linalg.norm(d)
        es = set(zip(*(x.tolist() for x in directed_edges(its, d))))
        eh = set(zip(*(x.tolist() for x in directed_edges(ith, d))))
        assert es == eh
        assert check_acyclic(sm.num_cells, *directed_edges(ith, d))

    def test_flux_identical_step_scheme(self, pair):
        sm, hm = pair
        q = np.ones((sm.num_cells, 1))

        def solve(mesh):
            ps = PatchSet.single_patch(mesh)
            mm = MaterialMap.uniform(
                Material.isotropic(1.0, 0.4), mesh.num_cells
            )
            s = SnSolver(ps, level_symmetric(2), mm, q, scheme="step",
                         fixup=False)
            return s.source_iteration(tol=1e-11, max_iterations=300)

        rs = solve(sm)
        rh = solve(hm)
        assert rs.iterations == rh.iterations
        np.testing.assert_allclose(rh.phi, rs.phi, rtol=1e-12)

    def test_flux_identical_under_decomposition(self, pair):
        sm, hm = pair
        q = np.ones((sm.num_cells, 1))
        ps_s = PatchSet.from_structured(sm, (3, 2, 2), nprocs=2)
        ps_h = PatchSet.from_unstructured(hm, 10, nprocs=2)
        mm = MaterialMap.uniform(Material.isotropic(1.0, 0.0), sm.num_cells)
        ss = SnSolver(ps_s, level_symmetric(2), mm, q, scheme="step",
                      fixup=False)
        sh = SnSolver(ps_h, level_symmetric(2), mm, q, scheme="step",
                      fixup=False)
        phis, _, _ = ss.sweep_once(mode="engine")
        phih, _, _ = sh.sweep_once(mode="engine")
        np.testing.assert_allclose(phih, phis, rtol=1e-12)

    def test_dd_vs_step_same_thick_limit(self, pair):
        """On an optically thick uniform box both schemes approach the
        same interior solution (q / sigma_a away from boundaries)."""
        sm, hm = pair
        mm = MaterialMap.uniform(Material.isotropic(5.0, 0.0), sm.num_cells)
        q = np.ones((sm.num_cells, 1))
        ps = PatchSet.single_patch(sm)
        dd = SnSolver(ps, level_symmetric(2), mm, q, scheme="dd",
                      fixup=False).source_iteration(tol=1e-10, max_iterations=5)
        ph = PatchSet.single_patch(hm)
        st = SnSolver(ph, level_symmetric(2), mm, q, scheme="step",
                      fixup=False).source_iteration(tol=1e-10, max_iterations=5)
        center = sm.linear_index((2, 2, 1))
        assert dd.phi[center, 0] == pytest.approx(1 / 5.0, rel=0.08)
        assert st.phi[center, 0] == pytest.approx(1 / 5.0, rel=0.08)

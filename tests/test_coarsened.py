"""Tests for the coarsened graph (Sec. V-E, Theorem 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.core import SerialEngine
from repro.framework import PatchSet
from repro.mesh import disk_tri_mesh
from repro.sweep.coarsened import build_coarsened, coarsened_is_acyclic
from tests.conftest import make_solver


def _run(progs):
    eng = SerialEngine()
    for p in progs:
        eng.add_program(p)
    return eng.run()


@pytest.fixture()
def cube_cgs(cube8_patches):
    s = make_solver(cube8_patches, grain=10)
    return s, s.record_coarsened()


class TestBuild:
    def test_covers_all_vertices(self, cube_cgs):
        s, cgs = cube_cgs
        for (p, a), cg in cgs.items():
            assert cg.n_vertices == s.topology.graphs[(p, a)].n_local
            covered = np.concatenate(cg.clusters)
            assert len(np.unique(covered)) == cg.n_vertices

    def test_theorem1_acyclic(self, cube_cgs):
        _, cgs = cube_cgs
        assert coarsened_is_acyclic(cgs)

    def test_coarsening_reduces_vertices(self, cube_cgs):
        s, cgs = cube_cgs
        ncv = sum(cg.n_cv for cg in cgs.values())
        nv = sum(cg.n_vertices for cg in cgs.values())
        assert ncv < nv / 2  # grain 10 -> ratio well above 2

    def test_incomplete_recording_rejected(self, cube8_patches):
        s = make_solver(cube8_patches, grain=10)
        programs, _ = s.build_programs(compute=False, record_clusters=True)
        # Do not run: clusters empty.
        with pytest.raises(ReproError):
            build_coarsened(s.topology, programs)

    def test_grain_one_cg_equals_dag(self, cube8_patches):
        """With grain 1 every cluster is a single vertex: CG == DAG."""
        s = make_solver(cube8_patches, grain=1)
        cgs = s.record_coarsened()
        for (p, a), cg in cgs.items():
            g = s.topology.graphs[(p, a)]
            assert cg.n_cv == g.n_local
            assert all(len(c) == 1 for c in cg.clusters)


class TestCGExecution:
    def test_numerics_identical_to_dag(self, cube_cgs):
        s, cgs = cube_cgs
        ref, _, _ = s.sweep_once(mode="fast")
        progs, faces = s.build_coarsened_programs(cgs)
        _run(progs)
        phi, _ = s.accumulate(faces)
        np.testing.assert_array_equal(phi, ref)

    def test_unstructured_numerics(self, disk_patches):
        s = make_solver(disk_patches, sn=2, grain=8)
        cgs = s.record_coarsened()
        assert coarsened_is_acyclic(cgs)
        ref, _, _ = s.sweep_once(mode="fast")
        progs, faces = s.build_coarsened_programs(cgs)
        _run(progs)
        phi, _ = s.accumulate(faces)
        np.testing.assert_array_equal(phi, ref)

    def test_bookkeeping_shrinks(self, cube_cgs):
        """Total graph-op work (pops) drops by the mean cluster size."""
        s, cgs = cube_cgs
        dag_progs, _ = s.build_programs(compute=False)
        _run(dag_progs)
        dag_pops = sum(p.graph.n_local for p in dag_progs)

        cg_progs, _ = s.build_coarsened_programs(cgs, compute=False)
        _run(cg_progs)
        cg_pops = sum(p.cg.n_cv for p in cg_progs)
        assert cg_pops < dag_pops / 2

    def test_workload_complete(self, cube_cgs):
        s, cgs = cube_cgs
        progs, _ = s.build_coarsened_programs(cgs, compute=False)
        _run(progs)
        assert all(p.remaining_workload() == 0 for p in progs)

    def test_stream_bytes_preserved(self, cube_cgs):
        """Coarsening saves bookkeeping, not bandwidth: total stream
        bytes equal the DAG sweep's."""
        s, cgs = cube_cgs
        dag_progs, _ = s.build_programs(compute=False)
        dag_stats = _run(dag_progs)
        cg_progs, _ = s.build_coarsened_programs(cgs, compute=False)
        cg_stats = _run(cg_progs)
        assert cg_stats.stream_items == dag_stats.stream_items
        assert cg_stats.streams <= dag_stats.streams


@given(grain=st.integers(1, 40), seed=st.integers(0, 20))
@settings(max_examples=15, deadline=None)
def test_theorem1_property(grain, seed):
    """Theorem 1 as a property: any grain, any decomposition seed,
    the derived coarsened graph is acyclic."""
    mesh = disk_tri_mesh(6)
    pset = PatchSet.from_unstructured(
        mesh, 20 + seed, nprocs=2, method="rcb"
    )
    s = make_solver(pset, sn=2, grain=grain)
    cgs = s.record_coarsened()
    assert coarsened_is_acyclic(cgs)

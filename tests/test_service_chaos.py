"""Service-level chaos: seeded adversarial traffic campaigns.

Each campaign cell throws arrival bursts, worker-pool crashes, poison
specs and racing duplicates at one service instance and holds it to
the full contract at once: drained, one terminal record per accepted
submission, exactly-once commit, bitwise-exact completions, poison
containment, and bit-for-bit replay (see
:func:`repro.service.chaos.check_service_invariants`).
"""

import dataclasses

import pytest

from repro._util import ReproError
from repro.service import (
    JobExecutor,
    ServiceChaosSpace,
    check_service_invariants,
    random_service_workload,
    run_service_campaign,
    run_service_case,
)
from repro.service.chaos import _run_once

SPACE = ServiceChaosSpace(jobs=12, tenants=3)


@pytest.fixture(scope="module")
def executor():
    return JobExecutor()


def test_workload_is_pure_function_of_seed():
    a = random_service_workload(3, SPACE)
    b = random_service_workload(3, SPACE)
    assert a.config == b.config
    assert [(t, s.key()) for t, s in a.arrivals] == (
        [(t, s.key()) for t, s in b.arrivals]
    )
    assert a.poison_keys == b.poison_keys
    assert random_service_workload(4, SPACE).arrivals != a.arrivals


def test_workload_mixes_the_fault_space():
    wl = random_service_workload(0, ServiceChaosSpace(jobs=40))
    specs = [s for _, s in wl.arrivals]
    assert wl.poison_keys, "no poison specs drawn"
    assert any(
        s.faults is not None and s.key() not in wl.poison_keys
        for s in specs
    ), "no recoverable chaos specs drawn"
    assert len(specs) > 40, "no duplicate submissions appended"
    assert len({s.tenant for s in specs}) > 1


def test_campaign_seeds_pass_every_invariant(executor):
    for seed in range(3):
        case = run_service_case(seed, SPACE, executor)
        assert case.ok, (
            f"seed {seed} violated: {case.violations}"
        )
        assert case.deterministic


def test_campaign_summary_aggregates(executor):
    out = run_service_campaign(range(2), SPACE, check_determinism=False)
    assert out["total"] == 2 and out["passed"] == 2
    assert out["aggregate"]["completed"] > 0
    assert not out["failures"]


def test_oracle_catches_a_lying_service(executor):
    """The invariant checker must actually reject corrupted outcomes -
    an oracle that cannot fail proves nothing."""
    wl = random_service_workload(1, SPACE)
    svc = _run_once(wl, executor)
    assert check_service_invariants(svc, wl) == []
    # Tamper: drop a terminal record (a starved submission).
    dropped = svc.results.pop()
    bad = check_service_invariants(svc, wl)
    assert any("terminal records" in v for v in bad)
    svc.results.append(dropped)
    # Tamper: complete a poison job.
    poisoned = [r for r in svc.results if r.key in wl.poison_keys]
    if poisoned:
        r = poisoned[0]
        old = r.status
        r.status = "completed"
        assert any(
            "poison" in v for v in check_service_invariants(svc, wl)
        )
        r.status = old
    # Tamper: leak an admission credit.
    svc.admission.total += 1
    assert any(
        "credits leaked" in v for v in check_service_invariants(svc, wl)
    )
    svc.admission.total -= 1


def test_space_validation():
    with pytest.raises(ReproError):
        ServiceChaosSpace(jobs=0)
    with pytest.raises(ReproError):
        ServiceChaosSpace(poison_frac=1.5)
    with pytest.raises(ReproError):
        ServiceChaosSpace(worker_crash_rate=1.0)
    assert dataclasses.is_dataclass(SPACE)

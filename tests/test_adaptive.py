"""Adaptive-resilience tests: RTT estimation with Karn's rule, capped
adaptive RTO, hedging, speculation, backpressure, demotion.

Two tiers: Hypothesis properties pin the estimator and timer algebra
(the RTO clamp holds for *any* sample sequence; Karn's rule excludes
*every* ambiguous ack), and integration runs hold the whole adaptive
stack to the chaos oracle - flux bitwise-identical to the fault-free
reference, because adaptivity that changes a bit is a bug.  A final
neutrality test pins the opt-in contract: an all-off
:class:`AdaptiveConfig` must be event-for-event identical to no config
at all.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.chaos import run_case
from repro.core.stream import ProgramId, Stream
from repro.runtime import (
    AdaptiveConfig,
    DataDrivenRuntime,
    FaultPlan,
    Machine,
    RecoveryConfig,
    Router,
    RunReport,
    Simulator,
    StragglerWindow,
    Transport,
)
from repro.runtime.metrics import Breakdown
from repro.runtime.scheduler import _percentile
from repro.runtime.transport import RttEstimator


# -- harness --------------------------------------------------------------------


def _mini_router(nprocs=2):
    class _Prog:
        def __init__(self, patch):
            self.id = ProgramId(patch, 0)

    progs = [_Prog(p) for p in range(nprocs)]
    return Router(progs, np.arange(nprocs), nprocs)


def _transport(rcfg):
    machine = Machine(cores_per_proc=4)
    layout = machine.layout(8, "hybrid")  # 2 procs
    sim = Simulator(frozenset({"msg_arrive"}))
    report = RunReport(makespan=0.0, breakdown=Breakdown(), total_cores=8)
    tr = Transport(sim, _mini_router(), machine, layout, report, rcfg=rcfg)
    return sim, tr


def _send(tr, now=0.0):
    s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), nbytes=64)
    tr.send(s, s.src, 0, now, 0, 1)
    return s


ADAPTIVE_RTO = AdaptiveConfig(adaptive_rto=True)


# -- estimator properties --------------------------------------------------------


@given(
    samples=st.lists(st.floats(1e-7, 1e-2), min_size=1, max_size=40),
    k=st.floats(1.0, 8.0),
)
@settings(max_examples=100, deadline=None)
def test_rto_always_within_configured_bounds(samples, k):
    min_rto, max_rto = 20e-6, 10e-3
    est = RttEstimator()
    for r in samples:
        est.sample(r, 0.125, 0.25)
        assert min_rto <= est.rto(k, min_rto, max_rto) <= max_rto
        # SRTT is a convex combination of the samples seen so far.
        assert min(samples) <= est.srtt <= max(samples)


def test_first_sample_seeds_rfc6298(rtt=4e-6):
    est = RttEstimator()
    est.sample(rtt, 0.125, 0.25)
    assert est.srtt == rtt
    assert est.rttvar == rtt / 2
    with pytest.raises(ReproError):
        RttEstimator().rto(4.0, 0.0, 1.0)


@given(
    flags=st.lists(
        st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=25
    ),
    rtt=st.floats(1e-6, 1e-4),
)
@settings(max_examples=60, deadline=None)
def test_karn_rule_excludes_every_ambiguous_ack(flags, rtt):
    """Only acks of exactly-once transmissions reach the estimator: a
    retransmitted or hedged send has two copies in flight, and its ack
    cannot be matched to either."""
    _, tr = _transport(RecoveryConfig(adaptive=ADAPTIVE_RTO))
    clean = 0
    for retransmitted, hedged in flags:
        s = _send(tr, now=0.0)
        ps = tr.pending[s.uid]
        if retransmitted:
            ps.retries = 1
        if hedged:
            ps.hedged = True
        clean += not (retransmitted or hedged)
        tr.on_ack(s.uid, rtt)
    assert tr.report.rtt_samples == clean
    est = tr.rtt.get((0, 1))
    assert (est.samples if est is not None else 0) == clean


def test_failover_rearm_is_karn_ambiguous():
    """A send re-armed by failover lost its launch timestamp, so its
    eventual ack must never be sampled."""
    _, tr = _transport(RecoveryConfig(adaptive=ADAPTIVE_RTO))
    s = _send(tr)
    tr.pending[s.uid].sent_at = None  # what rearm_after_failover does
    tr.on_ack(s.uid, 5e-6)
    assert tr.report.rtt_samples == 0


def test_warmed_estimator_arms_new_sends():
    _, tr = _transport(RecoveryConfig(adaptive=ADAPTIVE_RTO))
    s = _send(tr)
    tr.on_ack(s.uid, 5e-6)  # SRTT=5us, RTTVAR=2.5us -> RTO=min_rto clamp
    a = ADAPTIVE_RTO
    expect = tr.rtt[(0, 1)].rto(a.rto_k, a.min_rto, tr.rcfg.max_rto)
    s2 = _send(tr)
    assert tr.pending[s2.uid].timeout == expect
    assert expect == a.min_rto  # 15us raw estimate clamps up to min_rto


@given(
    backoff=st.floats(1.1, 8.0),
    ack_timeout=st.floats(1e-5, 1e-3),
    factor=st.floats(1.0, 50.0),
)
@settings(max_examples=60, deadline=None)
def test_backoff_never_escalates_past_max_rto(backoff, ack_timeout, factor):
    rcfg = RecoveryConfig(
        ack_timeout=ack_timeout, backoff=backoff,
        max_rto=ack_timeout * factor,
    )
    _, tr = _transport(rcfg)
    s = _send(tr)
    ps = tr.pending[s.uid]
    for _ in range(rcfg.max_retries):
        tr.on_timer((s.uid, ps.attempt), ps.timeout)
        assert ps.timeout <= rcfg.max_rto


# -- config validation -----------------------------------------------------------


def test_config_validation():
    with pytest.raises(ReproError, match="max_rto"):
        RecoveryConfig(ack_timeout=1e-3, max_rto=1e-4)
    with pytest.raises(ReproError, match="min_rto"):
        RecoveryConfig(
            adaptive=AdaptiveConfig(adaptive_rto=True, min_rto=1.0)
        )
    with pytest.raises(ReproError):
        AdaptiveConfig(hedge_factor=1.5)
    with pytest.raises(ReproError):
        AdaptiveConfig(spec_percentile=101.0)
    with pytest.raises(ReproError):
        AdaptiveConfig(inbox_credits=0)
    with pytest.raises(ReproError):
        AdaptiveConfig(demotion_patience=0)
    assert not AdaptiveConfig().any_enabled()
    assert AdaptiveConfig.all_on().any_enabled()


def test_demotion_requires_resilient_programs():
    from tests.test_chaos import _setup

    machine, pset, solver = _setup()
    progs, _ = solver.build_programs(resilient=False)
    rt = DataDrivenRuntime(
        16, machine=machine, adaptive=AdaptiveConfig(demotion=True),
    )
    with pytest.raises(ReproError, match="resilient"):
        rt.run(progs, pset.patch_proc)


def test_nearest_rank_percentile():
    assert _percentile([3.0, 1.0, 2.0], 50.0) == 2.0
    assert _percentile([3.0, 1.0, 2.0], 100.0) == 3.0
    assert _percentile([5.0], 90.0) == 5.0


# -- integration: the adaptive stack is invisible to the numerics ----------------


@pytest.mark.parametrize("kind,mode", [
    ("structured", "hybrid"), ("unstructured", "mpi_only"),
])
def test_adaptive_stack_is_bitwise_exact_under_chaos(kind, mode):
    """Speculation, hedging, adaptive RTO, backpressure and demotion
    all armed, on a seeded random fault plan: the flux must still be
    bitwise-identical to the fault-free reference."""
    acfg = AdaptiveConfig.all_on(inbox_credits=2)
    res = run_case(kind, mode, seed=5, adaptive=acfg)
    assert res.ok and res.exact and not res.stalled, res.error


def test_speculation_fires_and_wins_on_stragglers():
    from tests.test_chaos import _reference_phi, _run

    plan = FaultPlan(
        stragglers=(StragglerWindow(0, 0.0, 9e-4, 5.0),
                    StragglerWindow(3, 1e-4, 9e-4, 4.0)),
        p_drop=0.05, seed=7,
    )
    acfg = AdaptiveConfig(adaptive_rto=True, hedging=True, speculation=True)
    rep, phi = _run(plan, recovery=RecoveryConfig(), adaptive=acfg)
    a = rep.adaptive_summary()
    assert a["rtt_samples"] > 0
    assert a["hedged_sends"] > 0
    assert a["speculative_launches"] >= a["speculative_wins"] > 0
    np.testing.assert_array_equal(phi, _reference_phi())


def test_backpressure_stalls_are_booked():
    from tests.test_chaos import _reference_phi, _run

    acfg = AdaptiveConfig(backpressure=True, inbox_credits=1)
    rep, phi = _run(
        FaultPlan(p_drop=0.02, seed=3),
        recovery=RecoveryConfig(), adaptive=acfg,
    )
    a = rep.adaptive_summary()
    assert a["backpressure_stalls"] > 0
    assert a["backpressure_time"] > 0  # visible in the breakdown stack
    np.testing.assert_array_equal(phi, _reference_phi())


def test_parked_sends_drain_fifo_per_destination():
    """Flow control must be fair: when arrivals free inbox credits, the
    parked backlog drains strictly oldest-first, even while newer sends
    keep arriving and parking in between the receives."""
    acfg = AdaptiveConfig(backpressure=True, inbox_credits=1)
    sim, tr = _transport(RecoveryConfig(adaptive=acfg))
    # One credit: the first send launches, the next two park in order.
    a, b, c = (_send(tr, now=i * 1e-6) for i in range(3))
    assert tr.pending[a.uid].parked is None
    assert tr._parked == [b.uid, c.uid]
    # A verified arrival frees the credit and launches the *oldest*
    # parked send only.
    assert tr.receive(a, 1, 3e-6)
    assert tr.pending[b.uid].parked is None
    assert tr.pending[c.uid].parked is not None
    # Credit churn: fresh sends must queue behind the existing backlog,
    # never jump it.
    d, e = (_send(tr, now=4e-6 + i * 1e-6) for i in range(2))
    assert tr._parked == [c.uid, d.uid, e.uid]
    for launched, arriving in ((c, b), (d, c), (e, d)):
        assert tr.receive(arriving, 1, 6e-6)
        assert tr.pending[launched.uid].parked is None, (
            "drain skipped the head of the parked queue"
        )
    assert tr._parked == []
    assert tr.report.backpressure_stalls == 4


def test_all_off_config_is_event_identical_to_none():
    """The opt-in contract: AdaptiveConfig() (everything off) must not
    perturb a single event - same makespan, same flux, no adaptive
    counters - versus running with no adaptive config at all."""
    from tests.test_chaos import _reference_phi, _run

    plan = FaultPlan(p_drop=0.05, p_duplicate=0.03, seed=11)
    rep_none, phi_none = _run(plan)
    rep_off, phi_off = _run(plan, adaptive=AdaptiveConfig())
    assert rep_off.makespan == rep_none.makespan
    assert rep_off.events == rep_none.events
    assert all(v == 0 for v in rep_off.adaptive_summary().values())
    np.testing.assert_array_equal(phi_off, phi_none)
    np.testing.assert_array_equal(phi_off, _reference_phi())

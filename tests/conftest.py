"""Shared fixtures: small meshes, patch sets and machines.

Session-scoped where construction is expensive; tests must not mutate
fixture objects (build your own if you need to).
"""

import numpy as np
import pytest

from repro.framework import PatchSet
from repro.mesh import (
    ball_tet_mesh,
    cube_structured,
    cube_tet_mesh,
    disk_tri_mesh,
    reactor_mesh_2d,
    warped_quad_mesh,
)
from repro.runtime import CostModel, Machine
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric


@pytest.fixture(scope="session")
def cube8():
    return cube_structured(8, length=4.0)


@pytest.fixture(scope="session")
def disk():
    return disk_tri_mesh(8)


@pytest.fixture(scope="session")
def ball():
    return ball_tet_mesh(5)


@pytest.fixture(scope="session")
def reactor():
    return reactor_mesh_2d(12)


@pytest.fixture(scope="session")
def warped():
    return warped_quad_mesh((10, 10))


@pytest.fixture(scope="session")
def kuhn_cube():
    return cube_tet_mesh((3, 3, 3))


@pytest.fixture(scope="session")
def cube8_patches(cube8):
    return PatchSet.from_structured(cube8, (4, 4, 4), nprocs=2)


@pytest.fixture(scope="session")
def disk_patches(disk):
    return PatchSet.from_unstructured(disk, 40, nprocs=2)


@pytest.fixture(scope="session")
def small_machine():
    return Machine(cores_per_proc=4)


@pytest.fixture(scope="session")
def fast_cost():
    return CostModel()


def make_solver(pset, scatter=0.5, sn=2, groups=1, **kw):
    mesh = pset.mesh
    mm = MaterialMap.uniform(
        Material.isotropic(1.0, scatter, groups=groups), mesh.num_cells
    )
    q = np.ones((mesh.num_cells, groups))
    return SnSolver(pset, level_symmetric(sn), mm, q, **kw)


@pytest.fixture()
def cube_solver(cube8_patches):
    return make_solver(cube8_patches, grain=16)


@pytest.fixture()
def disk_solver(disk_patches):
    return make_solver(disk_patches, sn=4, grain=16)

"""Property tests for the transport ack/timer algebra (Hypothesis).

Where :mod:`tests.test_adaptive` pins the estimator *math* (RTO clamp,
RFC 6298 seeding) by setting Karn flags directly, these properties
drive the actual control-plane handlers - :meth:`Transport.on_ack`,
:meth:`Transport.on_timer`, :meth:`Transport.on_hedge` - with
adversarial event streams: duplicated acks, acks reordered against
their own retransmit timers, stale timers arriving after the ack, and
arbitrary interleavings across messages.  The invariant under every
ordering is the same: exactly the unambiguous acks (first ack of a
never-retransmitted, never-hedged send) feed the estimator, and a
stale control event is a no-op, never a crash or a double count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import AdaptiveConfig, RecoveryConfig
from tests.test_adaptive import _send, _transport

ADAPTIVE_RTO = AdaptiveConfig(adaptive_rto=True)


def _tr():
    _, tr = _transport(RecoveryConfig(adaptive=ADAPTIVE_RTO))
    return tr


# -- duplicated and stale control events -----------------------------------------


@given(dups=st.integers(1, 6), rtt=st.floats(1e-6, 1e-4))
@settings(max_examples=50, deadline=None)
def test_duplicated_acks_sample_exactly_once(dups, rtt):
    """A wire-duplicated ack pops the pending entry once; every further
    copy finds nothing and must neither re-sample nor raise."""
    tr = _tr()
    s = _send(tr, now=0.0)
    for _ in range(dups):
        tr.on_ack(s.uid, rtt)
    assert tr.report.rtt_samples == 1
    assert tr.rtt[(0, 1)].samples == 1


@given(rtt=st.floats(1e-6, 1e-4), lateness=st.floats(1e-6, 1e-2))
@settings(max_examples=50, deadline=None)
def test_stale_timer_and_hedge_after_ack_are_inert(rtt, lateness):
    """Ack first, timer later (the reordering the attempt counter
    exists for): the expired timer and hedge are lazily cancelled -
    no timeout, no retry, no hedge is booked."""
    tr = _tr()
    s = _send(tr, now=0.0)
    ps = tr.pending[s.uid]
    attempt = ps.attempt
    tr.on_ack(s.uid, rtt)
    tr.on_timer((s.uid, attempt), rtt + lateness)
    tr.on_hedge((s.uid, attempt), rtt + lateness)
    assert tr.report.timeouts == 0
    assert tr.report.retries == 0
    assert tr.report.hedged_sends == 0
    assert tr.report.rtt_samples == 1


def test_superseded_attempt_timer_is_inert():
    """A timer from attempt N arriving after the retransmit bumped the
    send to attempt N+1 is cancelled by the attempt mismatch."""
    tr = _tr()
    s = _send(tr, now=0.0)
    ps = tr.pending[s.uid]
    old = ps.attempt
    tr.on_timer((s.uid, old), 1e-4)  # real expiry: retransmits
    assert ps.attempt == old + 1
    tr.on_timer((s.uid, old), 2e-4)  # stale duplicate of the same timer
    assert tr.report.timeouts == 1
    assert tr.report.retries == 1


# -- Karn's rule through the handlers --------------------------------------------


@given(
    plans=st.lists(
        st.lists(st.sampled_from(["timer", "hedge", "dup_ack"]), max_size=3),
        min_size=1,
        max_size=12,
    ),
    rtt=st.floats(1e-6, 1e-4),
)
@settings(max_examples=80, deadline=None)
def test_interleaved_streams_sample_only_unambiguous_acks(plans, rtt):
    """For every message, run an arbitrary prefix of timer expiries,
    hedge expiries and duplicated acks before the ack itself.  However
    the copies interleave, the estimator sees exactly the messages
    whose ack was unambiguous (no retransmission, no hedge copy)."""
    tr = _tr()
    clean = 0
    for i, prefix in enumerate(plans):
        t0 = i * 1e-3  # separate each message's timeline
        s = _send(tr, now=t0)
        ps = tr.pending[s.uid]
        for ev in prefix:
            if ev == "timer":
                tr.on_timer((s.uid, ps.attempt), t0 + rtt / 2)
            elif ev == "hedge":
                tr.on_hedge((s.uid, ps.attempt), t0 + rtt / 2)
            else:  # premature duplicate ack: consumes the send
                tr.on_ack(s.uid, t0 + rtt)
        ambiguous = ps.retries > 0 or ps.hedged
        if not ambiguous:
            clean += 1
        tr.on_ack(s.uid, t0 + rtt)  # duplicate if a dup_ack already hit
    assert tr.report.rtt_samples == clean
    est = tr.rtt.get((0, 1))
    assert (est.samples if est is not None else 0) == clean


@given(
    n=st.integers(2, 10),
    rtt=st.floats(1e-6, 1e-4),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_ack_order_across_messages_never_changes_sample_count(n, rtt, data):
    """Acks reordered *across* messages (any permutation of n clean
    sends) always yield exactly n samples: sampling is per-message
    state, not arrival-order state."""
    tr = _tr()
    uids = []
    for i in range(n):
        s = _send(tr, now=i * 1e-5)
        uids.append((s.uid, i * 1e-5))
    order = data.draw(st.permutations(range(n)))
    for j in order:
        uid, t0 = uids[j]
        tr.on_ack(uid, t0 + rtt)
    assert tr.report.rtt_samples == n
    assert tr.rtt[(0, 1)].samples == n


def test_hedge_after_retransmit_does_not_fire():
    """Karn interaction of the two ambiguity sources: a retransmitted
    send is already ambiguous, so the hedge path refuses to add a third
    copy (and the eventual ack still never samples)."""
    tr = _tr()
    s = _send(tr, now=0.0)
    ps = tr.pending[s.uid]
    tr.on_timer((s.uid, ps.attempt), 1e-4)  # retransmit
    tr.on_hedge((s.uid, ps.attempt), 1.5e-4)
    assert not ps.hedged
    assert tr.report.hedged_sends == 0
    tr.on_ack(s.uid, 2e-4)
    assert tr.report.rtt_samples == 0


# -- estimator stability under a steady link -------------------------------------


@given(
    r=st.floats(1e-6, 1e-3),
    n=st.integers(2, 30),
    k=st.floats(1.0, 8.0),
)
@settings(max_examples=60, deadline=None)
def test_constant_rtt_stream_converges_monotonically(r, n, k):
    """A steady link must never destabilise the timer: with identical
    samples SRTT stays pinned at the sample and the RTO sequence is
    nonincreasing (RTTVAR only decays)."""
    from repro.runtime.transport import RttEstimator

    est = RttEstimator()
    prev = None
    for _ in range(n):
        est.sample(r, 0.125, 0.25)
        assert est.srtt == r
        rto = est.rto(k, 0.0, float("inf"))
        if prev is not None:
            assert rto <= prev
        prev = rto

"""Tests for the patch framework: patches, connectivity, halos, BSP."""

import numpy as np
import pytest

from repro._util import ReproError
from repro.framework import (
    BSPExecutor,
    CellField,
    InitializeComponent,
    NumericalComponent,
    PatchField,
    PatchSet,
    ReductionComponent,
    build_boundary,
    build_interfaces,
    ghost_maps,
    halo_exchange,
    patch_adjacency,
)
from repro.mesh import cube_structured


class TestPatchSet:
    def test_structured_cover(self, cube8_patches):
        cube8_patches.validate()
        assert cube8_patches.num_patches == 8
        assert cube8_patches.num_procs == 2

    def test_unstructured_cover(self, disk_patches):
        disk_patches.validate()
        total = sum(p.num_cells for p in disk_patches.patches)
        assert total == disk_patches.mesh.num_cells

    def test_single_patch(self, cube8):
        ps = PatchSet.single_patch(cube8)
        ps.validate()
        assert ps.num_patches == 1
        assert ps.patches[0].box is not None

    def test_structured_local_order_is_box_order(self, cube8_patches):
        p = cube8_patches.patches[0]
        lin = np.ravel_multi_index(
            p.box.all_indices().T, cube8_patches.mesh.shape
        )
        np.testing.assert_array_equal(p.cells, lin)

    def test_patches_of_proc_partition(self, cube8_patches):
        all_ids = set()
        for proc in range(cube8_patches.num_procs):
            for p in cube8_patches.patches_of_proc(proc):
                assert p.proc == proc
                all_ids.add(p.id)
        assert all_ids == {p.id for p in cube8_patches.patches}

    def test_too_many_procs_rejected(self, cube8):
        with pytest.raises(ReproError):
            PatchSet.from_structured(cube8, (8, 8, 8), nprocs=2)

    @pytest.mark.parametrize("method", ["rcb", "multilevel"])
    def test_unstructured_methods(self, disk, method):
        ps = PatchSet.from_unstructured(disk, 50, nprocs=2, method=method)
        ps.validate()


class TestInterfaces:
    def test_structured_counts(self, cube8):
        it = build_interfaces(cube8)
        n = 8
        assert it.num_interfaces == 3 * n * n * (n - 1)
        bt = build_boundary(cube8)
        assert bt.num_faces == 6 * n * n

    def test_structured_areas(self):
        mesh = cube_structured(4, length=2.0)  # h = 0.5
        it = build_interfaces(mesh)
        np.testing.assert_allclose(it.area, 0.25)

    def test_structured_normals_axis_aligned(self, cube8):
        it = build_interfaces(cube8)
        np.testing.assert_allclose(np.abs(it.normal).max(axis=1), 1.0)

    def test_unstructured_matches_mesh_faces(self, disk):
        it = build_interfaces(disk)
        interior = (disk.face_cells[:, 1] >= 0).sum()
        assert it.num_interfaces == interior
        bt = build_boundary(disk)
        assert bt.num_faces == len(disk.boundary_faces)

    def test_boundary_centroids_on_boundary(self, cube8):
        bt = build_boundary(cube8)
        L = 4.0
        on_face = (
            (np.abs(bt.centroid) < 1e-12) | (np.abs(bt.centroid - L) < 1e-12)
        ).any(axis=1)
        assert np.all(on_face)

    def test_interfaces_reference_adjacent_cells(self, cube8):
        it = build_interfaces(cube8)
        mi_a = np.array(np.unravel_index(it.cell_a, cube8.shape)).T
        mi_b = np.array(np.unravel_index(it.cell_b, cube8.shape)).T
        assert np.all(np.abs(mi_a - mi_b).sum(axis=1) == 1)


class TestPatchConnectivity:
    def test_adjacency_symmetric(self, cube8_patches):
        adj = patch_adjacency(cube8_patches)
        for p, nbrs in adj.items():
            for q in nbrs:
                assert p in adj[int(q)]

    def test_structured_adjacency_count(self, cube8_patches):
        # 2x2x2 patch lattice: every patch has exactly 3 face neighbours.
        adj = patch_adjacency(cube8_patches)
        assert all(len(v) == 3 for v in adj.values())

    def test_ghost_maps_cells_owned_by_neighbor(self, disk_patches):
        gm = ghost_maps(disk_patches)
        for p, per_nbr in gm.items():
            for q, cells in per_nbr.items():
                assert np.all(disk_patches.cell_patch[cells] == q)

    def test_ghost_maps_are_face_adjacent(self, cube8_patches):
        gm = ghost_maps(cube8_patches)
        mesh = cube8_patches.mesh
        for p, per_nbr in gm.items():
            own = set(cube8_patches.patches[p].cells.tolist())
            for cells in per_nbr.values():
                for c in cells:
                    mi = np.array(np.unravel_index(int(c), mesh.shape))
                    touch = False
                    for ax in range(3):
                        for d in (-1, 1):
                            nb = mi.copy()
                            nb[ax] += d
                            if (
                                np.all(nb >= 0)
                                and np.all(nb < mesh.shape)
                                and int(np.ravel_multi_index(nb, mesh.shape))
                                in own
                            ):
                                touch = True
                    assert touch


class TestFields:
    def test_cellfield_patch_roundtrip(self, cube8_patches):
        f = CellField.zeros(cube8_patches)
        vals = np.arange(cube8_patches.patches[1].num_cells, dtype=float)
        f.set_patch(1, vals)
        np.testing.assert_array_equal(f.patch_view(1), vals)

    def test_patchfield_global_roundtrip(self, disk_patches):
        f = PatchField(disk_patches)
        data = np.arange(disk_patches.mesh.num_cells, dtype=float)
        f.from_global(data)
        np.testing.assert_array_equal(f.to_global(), data)

    def test_patchfield_groups(self, disk_patches):
        f = PatchField(disk_patches, groups=3)
        data = np.random.default_rng(0).random(
            (disk_patches.mesh.num_cells, 3)
        )
        f.from_global(data)
        np.testing.assert_array_equal(f.to_global(), data)

    def test_ghost_slot_unknown_cell_raises(self, disk_patches):
        f = PatchField(disk_patches)
        own = disk_patches.patches[0].cells[0]
        with pytest.raises(ReproError):
            f.ghost_slot(0, int(own))


class TestHaloExchange:
    def test_ghosts_match_owner_values(self, cube8_patches):
        f = PatchField(cube8_patches)
        data = np.random.default_rng(1).random(cube8_patches.mesh.num_cells)
        f.from_global(data)
        stats = halo_exchange(f)
        for p in cube8_patches.patches:
            gc = f.ghost_cells[p.id]
            np.testing.assert_array_equal(f.ghost[p.id], data[gc])
        assert stats.messages > 0
        assert stats.bytes == stats.values * 8

    def test_inter_proc_subset(self, cube8_patches):
        f = PatchField(cube8_patches)
        stats = halo_exchange(f)
        assert 0 < stats.inter_proc_messages <= stats.messages
        assert stats.inter_proc_bytes <= stats.bytes

    def test_value_accessor(self, cube8_patches):
        f = PatchField(cube8_patches)
        data = np.arange(cube8_patches.mesh.num_cells, dtype=float)
        f.from_global(data)
        halo_exchange(f)
        gm = ghost_maps(cube8_patches)
        p = 0
        some_q = next(iter(gm[p]))
        ghost_cell = int(gm[p][some_q][0])
        assert f.value(p, ghost_cell) == data[ghost_cell]
        own_cell = int(cube8_patches.patches[p].cells[5])
        assert f.value(p, own_cell) == data[own_cell]


class TestBSPComponents:
    def test_initialize_component(self, disk_patches):
        f = PatchField(disk_patches)
        InitializeComponent(lambda c: c[:, 0] ** 2).apply(f)
        g = f.to_global()
        np.testing.assert_allclose(
            g, disk_patches.mesh.cell_centroids[:, 0] ** 2
        )

    def test_reduction(self, disk_patches):
        f = PatchField(disk_patches)
        f.from_global(np.full(disk_patches.mesh.num_cells, 2.0))
        assert ReductionComponent("sum").apply(f) == pytest.approx(
            2.0 * disk_patches.mesh.num_cells
        )
        assert ReductionComponent("max").apply(f) == 2.0
        with pytest.raises(ReproError):
            ReductionComponent("median")

    def test_jacobi_smoothing_converges_to_constant(self, cube8_patches):
        """BSP Jacobi averaging over mesh neighbours flattens any field."""
        pset = cube8_patches
        it = build_interfaces(pset.mesh)
        nbrs: dict[int, list[int]] = {}
        for a, b in zip(it.cell_a.tolist(), it.cell_b.tolist()):
            nbrs.setdefault(a, []).append(b)
            nbrs.setdefault(b, []).append(a)

        def kernel(patch, local, gcells, ghost):
            slot = {int(c): i for i, c in enumerate(gcells)}
            out = np.empty_like(local)
            for i, c in enumerate(patch.cells):
                acc, cnt = local[i], 1
                for nb in nbrs[int(c)]:
                    if pset.cell_patch[nb] == patch.id:
                        acc += local[pset.cell_local[nb]]
                    else:
                        acc += ghost[slot[nb]]
                    cnt += 1
                out[i] = acc / cnt
            return out

        f = PatchField(pset)
        InitializeComponent(lambda c: c[:, 0]).apply(f)
        mean_before = f.to_global().mean()
        rep = BSPExecutor(tol=1e-7, max_steps=5000).run(
            NumericalComponent(kernel), f
        )
        g = f.to_global()
        assert rep.converged
        assert g.max() - g.min() < 1e-4
        # Jacobi averaging with uniform-degree preserves... only checks
        # the mean stays in the initial range.
        assert g.mean() == pytest.approx(mean_before, abs=1.0)

    def test_bsp_kernel_shape_violation(self, disk_patches):
        f = PatchField(disk_patches)
        comp = NumericalComponent(lambda p, l, gc, g: np.zeros(3))
        with pytest.raises(ReproError):
            comp.apply_superstep(f)

    def test_bsp_non_convergence_reported(self, disk_patches):
        f = PatchField(disk_patches)
        InitializeComponent(lambda c: c[:, 0]).apply(f)
        comp = NumericalComponent(lambda p, l, gc, g: l + 1.0)  # diverges
        rep = BSPExecutor(tol=1e-12, max_steps=5).run(comp, f)
        assert not rep.converged
        assert rep.supersteps == 5

"""Tests for SnSolver: execution-mode equivalence and solver behaviour."""

import numpy as np
import pytest

from repro._util import ReproError
from repro.framework import PatchSet
from repro.sweep import (
    Material,
    MaterialMap,
    PriorityStrategy,
    SnSolver,
    level_symmetric,
)
from tests.conftest import make_solver


class TestModeEquivalence:
    """fast / engine / DES execution must agree bitwise (same kernel,
    same per-cell arithmetic, different schedules)."""

    def test_structured_fast_vs_engine(self, cube_solver):
        pf, lf, _ = cube_solver.sweep_once(mode="fast")
        pe, le, stats = cube_solver.sweep_once(mode="engine")
        np.testing.assert_array_equal(pf, pe)
        np.testing.assert_array_equal(lf, le)
        assert stats.executions > 0

    def test_unstructured_fast_vs_engine(self, disk_solver):
        pf, lf, _ = disk_solver.sweep_once(mode="fast")
        pe, le, _ = disk_solver.sweep_once(mode="engine")
        np.testing.assert_array_equal(pf, pe)

    @pytest.mark.parametrize("strategy", ["fifo", "bfs", "ldcp", "slbd",
                                          "ldcp+slbd", "bfs+slbd"])
    def test_priorities_do_not_change_numerics(self, cube8_patches, strategy):
        base = make_solver(cube8_patches, strategy="fifo")
        other = make_solver(cube8_patches, strategy=strategy)
        p0, _, _ = base.sweep_once(mode="engine")
        p1, _, _ = other.sweep_once(mode="engine")
        np.testing.assert_array_equal(p0, p1)

    @pytest.mark.parametrize("grain", [1, 7, 64, 100000])
    def test_grain_does_not_change_numerics(self, cube8_patches, grain):
        s = make_solver(cube8_patches, grain=grain)
        p, _, _ = s.sweep_once(mode="engine")
        ref, _, _ = s.sweep_once(mode="fast")
        np.testing.assert_array_equal(p, ref)

    def test_decomposition_does_not_change_numerics(self, cube8):
        mm_kw = dict(scatter=0.3, sn=2)
        s1 = make_solver(PatchSet.single_patch(cube8), **mm_kw)
        s2 = make_solver(
            PatchSet.from_structured(cube8, (2, 4, 8), nprocs=2), **mm_kw
        )
        s3 = make_solver(
            PatchSet.from_structured(cube8, (3, 3, 3), nprocs=4), **mm_kw
        )
        ref, _, _ = s1.sweep_once(mode="fast")
        for s in (s2, s3):
            got, _, _ = s.sweep_once(mode="engine")
            np.testing.assert_array_equal(got, ref)

    def test_source_iteration_engine_equals_fast(self, cube8_patches):
        s = make_solver(cube8_patches)
        rf = s.source_iteration(tol=1e-8, mode="fast")
        re_ = s.source_iteration(tol=1e-8, mode="engine")
        assert rf.iterations == re_.iterations
        np.testing.assert_array_equal(rf.phi, re_.phi)
        assert len(re_.engine_stats) == re_.iterations


class TestSolverValidation:
    def test_source_shape_checked(self, cube8_patches):
        mm = MaterialMap.uniform(
            Material.isotropic(1.0), cube8_patches.mesh.num_cells
        )
        with pytest.raises(ReproError):
            SnSolver(cube8_patches, level_symmetric(2), mm, np.ones(3))

    def test_1d_source_promoted(self, cube8_patches):
        mm = MaterialMap.uniform(
            Material.isotropic(1.0), cube8_patches.mesh.num_cells
        )
        s = SnSolver(
            cube8_patches,
            level_symmetric(2),
            mm,
            np.ones(cube8_patches.mesh.num_cells),
        )
        assert s.source.shape == (cube8_patches.mesh.num_cells, 1)

    def test_default_scheme_by_mesh(self, cube8_patches, disk_patches):
        s1 = make_solver(cube8_patches)
        assert s1.scheme == "dd"
        s2 = make_solver(disk_patches)
        assert s2.scheme == "step"

    def test_unknown_mode(self, cube_solver):
        with pytest.raises(ReproError):
            cube_solver.sweep_once(mode="warp")

    def test_strategy_object_accepted(self, cube8_patches):
        s = make_solver(cube8_patches, strategy=PriorityStrategy("bfs", "slbd"))
        assert s.strategy.patch == "bfs"


class TestConvergence:
    def test_iterations_grow_with_scattering_ratio(self, cube8_patches):
        iters = []
        for c in (0.0, 0.5, 0.9):
            s = make_solver(cube8_patches, scatter=c)
            r = s.source_iteration(tol=1e-8, max_iterations=600)
            assert r.converged
            iters.append(r.iterations)
        assert iters[0] < iters[1] < iters[2]

    def test_residuals_monotone_tail(self, cube8_patches):
        s = make_solver(cube8_patches, scatter=0.8)
        r = s.source_iteration(tol=1e-9, max_iterations=500)
        tail = r.residuals[3:]
        assert all(b <= a * 1.01 for a, b in zip(tail, tail[1:]))

    def test_spectral_radius_matches_scatter_ratio(self, cube8_patches):
        """Source iteration converges like c = sigma_s/sigma_t per
        iteration in the thick limit; ratios must be below 1 and near c."""
        s = make_solver(cube8_patches, scatter=0.7)
        r = s.source_iteration(tol=1e-11, max_iterations=800)
        ratios = [
            b / a for a, b in zip(r.residuals[5:-1], r.residuals[6:]) if a > 0
        ]
        est = np.median(ratios)
        assert est < 0.75  # leakage makes it < c = 0.7

    def test_non_convergence_flagged(self, cube8_patches):
        s = make_solver(cube8_patches, scatter=0.99)
        r = s.source_iteration(tol=1e-14, max_iterations=3)
        assert not r.converged
        assert r.iterations == 3

    def test_zero_source_zero_flux(self, cube8_patches):
        mm = MaterialMap.uniform(
            Material.isotropic(1.0, 0.5), cube8_patches.mesh.num_cells
        )
        s = SnSolver(
            cube8_patches,
            level_symmetric(2),
            mm,
            np.zeros(cube8_patches.mesh.num_cells),
        )
        r = s.source_iteration(tol=1e-12)
        assert r.iterations == 1
        np.testing.assert_array_equal(r.phi, 0.0)

    def test_linearity_in_source(self, cube8_patches):
        s1 = make_solver(cube8_patches, scatter=0.4)
        mm = MaterialMap.uniform(
            Material.isotropic(1.0, 0.4), cube8_patches.mesh.num_cells
        )
        s2 = SnSolver(
            cube8_patches,
            level_symmetric(2),
            mm,
            3.0 * np.ones((cube8_patches.mesh.num_cells, 1)),
            fixup=False,
        )
        s1.fixup = False
        s1._kernels.clear()
        r1 = s1.source_iteration(tol=1e-12, max_iterations=400)
        r2 = s2.source_iteration(tol=1e-12, max_iterations=400)
        np.testing.assert_allclose(r2.phi, 3.0 * r1.phi, rtol=1e-6)


class TestWarpedMesh:
    """Deforming-structured meshes: the case KBA cannot handle."""

    def test_sweep_and_balance(self, warped):
        pset = PatchSet.from_unstructured(warped, 25, nprocs=2)
        s = make_solver(pset, scatter=0.3, sn=2)
        r = s.source_iteration(tol=1e-10, max_iterations=200)
        assert r.converged
        assert s.balance_residual(r) < 1e-8

    def test_engine_equivalence_on_warped(self, warped):
        pset = PatchSet.from_unstructured(warped, 25, nprocs=2)
        s = make_solver(pset, scatter=0.0, sn=2)
        pf, _, _ = s.sweep_once(mode="fast")
        pe, _, _ = s.sweep_once(mode="engine")
        np.testing.assert_array_equal(pf, pe)

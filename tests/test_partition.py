"""Tests for the partition package: SFC, RCB and graph partitioners."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import ReproError
from repro.mesh import cube_structured, reactor_mesh_2d
from repro.partition import (
    CSRGraph,
    assign_patches_sfc,
    chunk_by_weight,
    decompose_unstructured,
    edge_cut,
    greedy_partition,
    hilbert_decode,
    hilbert_encode,
    morton_decode,
    morton_encode,
    multilevel_partition,
    patchify_structured,
    rcb_partition,
    sfc_order,
    spectral_bisection,
)
from repro.mesh.box import box_union_covers


class TestMorton:
    def test_known_2d_values(self):
        coords = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        keys = morton_encode(coords, 1)
        assert sorted(keys.tolist()) == [0, 1, 2, 3]

    def test_roundtrip_3d(self):
        coords = np.array(list(itertools.product(range(4), repeat=3)))
        keys = morton_encode(coords, 2)
        assert len(set(keys.tolist())) == len(coords)
        np.testing.assert_array_equal(morton_decode(keys, 2, 3), coords)

    def test_out_of_range_rejected(self):
        with pytest.raises(ReproError):
            morton_encode(np.array([[8, 0]]), 3)
        with pytest.raises(ReproError):
            morton_encode(np.array([[-1, 0]]), 3)

    def test_locality_prefix_property(self):
        """Cells in the same 2^k-aligned block share key prefixes."""
        coords = np.array(list(itertools.product(range(8), repeat=2)))
        keys = morton_encode(coords, 3)
        blocks = (coords // 4)[:, 0] * 2 + (coords // 4)[:, 1]
        for b in range(4):
            ks = np.sort(keys[blocks == b])
            assert ks.max() - ks.min() < 16  # contiguous 16-key block


class TestHilbert:
    def test_order1_2d_path(self):
        coords = hilbert_decode(np.arange(4), 1, 2)
        assert coords.tolist() == [[0, 0], [0, 1], [1, 1], [1, 0]]

    @pytest.mark.parametrize("bits,dim", [(2, 2), (3, 2), (2, 3), (3, 3)])
    def test_bijective(self, bits, dim):
        coords = np.array(list(itertools.product(range(2**bits), repeat=dim)))
        keys = hilbert_encode(coords, bits)
        assert len(set(keys.tolist())) == len(coords)
        np.testing.assert_array_equal(hilbert_decode(keys, bits, dim), coords)

    @pytest.mark.parametrize("bits,dim", [(3, 2), (2, 3), (3, 3)])
    def test_unit_steps(self, bits, dim):
        """Consecutive Hilbert keys differ by exactly one lattice step."""
        n = 2**bits
        coords = np.array(list(itertools.product(range(n), repeat=dim)))
        keys = hilbert_encode(coords, bits)
        seq = coords[np.argsort(keys)]
        steps = np.abs(np.diff(seq, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_better_locality_than_morton(self):
        """Mean jump distance along Hilbert <= along Morton."""
        n = 16
        coords = np.array(list(itertools.product(range(n), repeat=2)))
        hk = hilbert_encode(coords, 4)
        mk = morton_encode(coords, 4)
        hj = np.abs(np.diff(coords[np.argsort(hk)], axis=0)).sum(axis=1).mean()
        mj = np.abs(np.diff(coords[np.argsort(mk)], axis=0)).sum(axis=1).mean()
        assert hj < mj


class TestChunking:
    def test_equal_weights_balanced(self):
        w = np.ones(10)
        part = chunk_by_weight(np.arange(10), w, 3)
        counts = np.bincount(part)
        assert counts.min() >= 3 and counts.max() <= 4

    def test_all_parts_nonempty_when_n_equals_parts(self):
        part = chunk_by_weight(np.arange(4), np.ones(4), 4)
        assert sorted(part.tolist()) == [0, 1, 2, 3]

    def test_weighted_balance(self):
        w = np.array([10.0, 1, 1, 1, 1, 1, 1, 1, 1, 1])
        part = chunk_by_weight(np.arange(10), w, 2)
        s0 = w[part == 0].sum()
        s1 = w[part == 1].sum()
        assert abs(s0 - s1) <= 10.0  # no better split exists than +-the big item

    def test_zero_weights_fall_back_to_counts(self):
        part = chunk_by_weight(np.arange(9), np.zeros(9), 3)
        assert np.bincount(part).tolist() == [3, 3, 3]

    def test_too_many_parts_rejected(self):
        with pytest.raises(ReproError):
            chunk_by_weight(np.arange(3), np.ones(3), 4)

    def test_contiguous_in_order(self):
        order = np.random.default_rng(0).permutation(20)
        part = chunk_by_weight(order, np.ones(20), 4)
        seq = part[order]
        assert np.all(np.diff(seq) >= 0)  # part ids non-decreasing along order


@given(
    n=st.integers(4, 60),
    nparts=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_chunk_by_weight_properties(n, nparts, seed):
    if nparts > n:
        return
    rng = np.random.default_rng(seed)
    w = rng.uniform(0.1, 5.0, n)
    order = rng.permutation(n)
    part = chunk_by_weight(order, w, nparts)
    counts = np.bincount(part, minlength=nparts)
    assert np.all(counts > 0)
    assert part.min() == 0 and part.max() == nparts - 1


class TestRCB:
    def test_balance_unit_weights(self):
        pts = np.random.default_rng(1).random((100, 3))
        part = rcb_partition(pts, 8)
        counts = np.bincount(part)
        assert counts.min() >= 100 // 8 - 1

    def test_non_power_of_two(self):
        pts = np.random.default_rng(2).random((90, 2))
        part = rcb_partition(pts, 5)
        counts = np.bincount(part, minlength=5)
        assert np.all(counts > 0)
        assert counts.max() - counts.min() <= 3

    def test_weighted_balance(self):
        rng = np.random.default_rng(3)
        pts = rng.random((200, 2))
        w = rng.uniform(0.5, 2.0, 200)
        part = rcb_partition(pts, 4, weights=w)
        sums = np.bincount(part, weights=w)
        assert sums.max() / sums.min() < 1.6

    def test_spatial_compactness(self):
        """RCB parts are axis-aligned slabs: disjoint bounding boxes
        along the first cut axis for a 1-D point cloud."""
        pts = np.stack([np.linspace(0, 1, 64), np.zeros(64)], axis=1)
        part = rcb_partition(pts, 4)
        maxes = [pts[part == p, 0].max() for p in range(4)]
        mins = [pts[part == p, 0].min() for p in range(4)]
        order = np.argsort(mins)
        for a, b in zip(order[:-1], order[1:]):
            assert maxes[a] <= mins[b] + 1e-12

    def test_errors(self):
        pts = np.zeros((3, 2))
        with pytest.raises(ReproError):
            rcb_partition(pts, 0)
        with pytest.raises(ReproError):
            rcb_partition(pts, 5)
        with pytest.raises(ReproError):
            rcb_partition(pts, 2, weights=np.ones(2))


@given(
    n=st.integers(8, 120),
    nparts=st.integers(1, 8),
    dim=st.integers(2, 3),
    seed=st.integers(0, 1000),
)
@settings(max_examples=50, deadline=None)
def test_rcb_covers_all_points(n, nparts, dim, seed):
    if nparts > n:
        return
    pts = np.random.default_rng(seed).random((n, dim))
    part = rcb_partition(pts, nparts)
    assert part.shape == (n,)
    counts = np.bincount(part, minlength=nparts)
    assert np.all(counts > 0)
    assert counts.sum() == n


def _mesh_graph(mesh):
    indptr, indices = mesh.adjacency_graph()
    return CSRGraph.from_adjacency(indptr, indices)


class TestGraphPartitioning:
    @pytest.fixture(scope="class")
    def graph(self):
        return _mesh_graph(reactor_mesh_2d(14))

    @pytest.mark.parametrize("nparts", [2, 5, 8])
    def test_greedy_covers_balanced(self, graph, nparts):
        part = greedy_partition(graph, nparts)
        counts = np.bincount(part, minlength=nparts)
        assert np.all(counts > 0)
        n = graph.num_vertices
        assert counts.max() < 2.0 * n / nparts

    @pytest.mark.parametrize("nparts", [2, 5, 8])
    def test_multilevel_covers_balanced(self, graph, nparts):
        part = multilevel_partition(graph, nparts)
        counts = np.bincount(part, minlength=nparts)
        assert np.all(counts > 0)
        n = graph.num_vertices
        assert counts.max() < 2.0 * n / nparts

    def test_multilevel_beats_random_cut(self, graph):
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 8, graph.num_vertices)
        ml = multilevel_partition(graph, 8)
        assert edge_cut(graph, ml) < 0.5 * edge_cut(graph, rand)

    def test_spectral_bisection_balanced(self, graph):
        half = spectral_bisection(graph)
        counts = np.bincount(half, minlength=2)
        assert np.all(counts > 0)
        assert counts.max() / counts.min() < 1.5

    def test_spectral_respects_fraction(self, graph):
        part = spectral_bisection(graph, frac=0.25)
        f = (part == 0).mean()
        assert 0.1 < f < 0.45

    def test_edge_cut_zero_for_single_part(self, graph):
        part = np.zeros(graph.num_vertices, dtype=np.int64)
        assert edge_cut(graph, part) == 0.0

    def test_too_many_parts(self, graph):
        with pytest.raises(ReproError):
            multilevel_partition(graph, graph.num_vertices + 1)

    def test_disconnected_graph_greedy(self):
        # Two disjoint paths of 4 vertices.
        indptr = np.array([0, 1, 3, 5, 6, 7, 9, 11, 12])
        indices = np.array([1, 0, 2, 1, 3, 2, 5, 4, 6, 5, 7, 6])
        g = CSRGraph.from_adjacency(indptr, indices)
        part = greedy_partition(g, 2)
        assert np.bincount(part, minlength=2).min() > 0


class TestStructuredDecomposition:
    def test_patchify_covers(self):
        mesh = cube_structured(10)
        boxes = patchify_structured(mesh, (4, 4, 4))
        assert box_union_covers(boxes, mesh.domain_box)

    def test_assign_balances_cells(self):
        mesh = cube_structured(12)
        boxes = patchify_structured(mesh, (3, 3, 3))
        procs = assign_patches_sfc(boxes, 4)
        loads = np.zeros(4)
        for b, p in zip(boxes, procs):
            loads[p] += b.size
        assert loads.max() / loads.min() < 1.3

    @pytest.mark.parametrize("curve", ["morton", "hilbert"])
    def test_both_curves_work(self, curve):
        mesh = cube_structured(8)
        boxes = patchify_structured(mesh, (4, 4, 4))
        procs = assign_patches_sfc(boxes, 2, curve=curve)
        assert set(procs.tolist()) == {0, 1}

    def test_rank_mismatch(self):
        mesh = cube_structured(8)
        with pytest.raises(ReproError):
            patchify_structured(mesh, (4, 4))


class TestUnstructuredDecomposition:
    @pytest.mark.parametrize("method", ["rcb", "greedy", "multilevel"])
    def test_all_methods(self, method):
        mesh = reactor_mesh_2d(12)
        dec = decompose_unstructured(mesh, 80, 3, method=method)
        sizes = np.bincount(dec.cell_patch)
        assert np.all(sizes > 0)
        assert sizes.sum() == mesh.num_cells
        assert set(dec.patch_proc.tolist()) == {0, 1, 2}

    def test_patch_size_respected(self):
        mesh = reactor_mesh_2d(12)
        dec = decompose_unstructured(mesh, 50, 2)
        sizes = np.bincount(dec.cell_patch)
        assert sizes.max() <= 2 * 50

    def test_more_procs_than_patches_rejected(self):
        mesh = reactor_mesh_2d(12)
        # patch_size so big there is 1 patch per proc minimum; nprocs
        # drives patch count up, which must stay feasible.
        dec = decompose_unstructured(mesh, mesh.num_cells, 4)
        assert dec.num_patches >= 4

    def test_unknown_method(self):
        mesh = reactor_mesh_2d(12)
        with pytest.raises(ReproError):
            decompose_unstructured(mesh, 50, 2, method="magic")

    def test_sfc_order_on_centroid_lattice(self):
        pts = np.array(list(itertools.product(range(4), repeat=2)))
        order = sfc_order(pts, curve="hilbert")
        assert sorted(order.tolist()) == list(range(16))

"""Property tests: the slab event heap is observationally identical
to a plain ``heapq`` of ``(t, seq, kind, data)`` tuples.

The simulator stores events in struct-of-arrays slabs with recycled
slots, interns kinds to dense ids, drains same-timestamp batches in
one call, and lets pushes landing at exactly the in-flight batch's
timestamp join it without touching the heap (same-time turnaround).
Every one of those mechanics is an *optimization* of the reference
semantics - pop strictly by ``(t, seq)``, sequence numbers handed out
one per push (or per :meth:`next_seq` consumer) - so randomized
schedules with timestamp ties, interleaved external sequence
consumers, and mid-batch pushes must pop in exactly the reference
order, payload for payload.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.simulator import Simulator

# Small delta pool so schedules collide on identical timestamps often;
# 0.0 lands mid-batch pushes on the in-flight batch's own time.
DELTAS = (0.0, 0.25, 1.0, 3.0)
KINDS = ("advance", "aux")  # progress / non-progress
PROGRESS = frozenset(("advance",))


class RefHeap:
    """The reference: one heap of (t, seq, kind, data) 4-tuples."""

    def __init__(self):
        self.h = []
        self.seq = 0

    def push(self, t, kind, data):
        self.seq += 1
        heapq.heappush(self.h, (t, self.seq, kind, data))

    def next_seq(self):
        self.seq += 1
        return self.seq


# One push op: (time delta from "now", kind, burn-a-seq-first flag).
# The flag models external queues sharing the tie-break sequence via
# next_seq between pushes - renumbering must never reorder.
_op = st.tuples(
    st.sampled_from(DELTAS), st.sampled_from(KINDS), st.booleans()
)


@st.composite
def schedules(draw):
    pre = draw(st.lists(_op, min_size=1, max_size=12))
    rounds = draw(st.lists(st.lists(_op, max_size=4), max_size=10))
    return pre, rounds


def _push_both(sim, ref, now, ops, start):
    n = start
    for delta, kind, burn in ops:
        if burn:
            sim.next_seq()
            ref.next_seq()
        sim.push(now + delta, kind, n)
        ref.push(now + delta, kind, n)
        n += 1
    return n


@given(sched=schedules())
@settings(max_examples=80, deadline=None)
def test_single_pop_matches_reference(sched):
    pre, rounds = sched
    sim = Simulator(progress_kinds=PROGRESS)
    ref = RefHeap()
    n = _push_both(sim, ref, 0.0, pre, 0)
    rit = iter(rounds)
    while sim:
        t, kind, data = sim.pop()
        rt, _, rkind, rdata = heapq.heappop(ref.h)
        assert (t, kind, data) == (rt, rkind, rdata)
        # Pushes between pops happen at or after the current time.
        n = _push_both(sim, ref, t, next(rit, []), n)
    assert not ref.h
    assert sim.live == 0


@given(sched=schedules())
@settings(max_examples=80, deadline=None)
def test_pop_batch_matches_reference(sched):
    """Batch drains, including same-time turnaround joins, pop in
    reference order: mid-batch pushes carry strictly larger sequence
    numbers, so they sort after every drained event even at the same
    timestamp."""
    pre, rounds = sched
    sim = Simulator(progress_kinds=PROGRESS)
    ref = RefHeap()
    n = _push_both(sim, ref, 0.0, pre, 0)
    rit = iter(rounds)
    sim_order, ref_order = [], []
    names = sim._kind_names
    while sim:
        t0, batch = sim.pop_batch()
        # Mid-batch pushes: a 0.0 delta lands at exactly t0 and must
        # join the in-flight batch (the list grows in push order).
        n = _push_both(sim, ref, t0, next(rit, []), n)
        sim_order.extend((t0, names[kid], data) for kid, data in batch)
        while ref.h and ref.h[0][0] == t0:
            rt, _, rkind, rdata = heapq.heappop(ref.h)
            ref_order.append((rt, rkind, rdata))
    assert sim_order == ref_order
    assert not ref.h
    assert sim.live == 0
    if sim_order:
        assert sim.makespan == max(t for t, _, _ in sim_order)


@given(sched=schedules())
@settings(max_examples=40, deadline=None)
def test_slot_recycling_preserves_payloads(sched):
    """Popping then pushing reuses slab slots; payloads must never
    cross-contaminate between recycled slots."""
    pre, rounds = sched
    sim = Simulator(progress_kinds=PROGRESS)
    ref = RefHeap()
    n = _push_both(sim, ref, 0.0, pre, 0)
    rit = iter(rounds)
    seen_sim, seen_ref = [], []
    while sim:
        t, kind, data = sim.pop()
        seen_sim.append(data)
        seen_ref.append(heapq.heappop(ref.h)[3])
        n = _push_both(sim, ref, t, next(rit, []), n)
    # Every payload delivered exactly once, in the same order.
    assert seen_sim == seen_ref
    assert sorted(seen_sim) == list(range(n))

"""Tests for Lyusternik-accelerated source iteration."""

import numpy as np

from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.sweep import Material, MaterialMap, SnSolver, level_symmetric


def _solver(mesh, c, groups=1):
    ps = PatchSet.single_patch(mesh)
    mm = MaterialMap.uniform(
        Material.isotropic(1.0, c, groups=groups), mesh.num_cells
    )
    return SnSolver(
        ps, level_symmetric(2), mm, np.ones((mesh.num_cells, groups)),
        fixup=False,
    )


class TestLyusternik:
    def test_fewer_iterations_high_c(self):
        mesh = cube_structured(8, length=8.0)
        plain = _solver(mesh, 0.95).source_iteration(
            tol=1e-8, max_iterations=2000
        )
        accel = _solver(mesh, 0.95).source_iteration(
            tol=1e-8, max_iterations=2000, accelerate=True
        )
        assert plain.converged and accel.converged
        assert accel.iterations < 0.7 * plain.iterations

    def test_same_solution(self):
        mesh = cube_structured(8, length=8.0)
        plain = _solver(mesh, 0.9).source_iteration(
            tol=1e-10, max_iterations=3000
        )
        accel = _solver(mesh, 0.9).source_iteration(
            tol=1e-10, max_iterations=3000, accelerate=True
        )
        np.testing.assert_allclose(accel.phi, plain.phi, rtol=1e-7)

    def test_harmless_on_low_c(self):
        """With little scattering the iteration converges before the
        ratio stabilizes; acceleration must not break anything."""
        mesh = cube_structured(6, length=3.0)
        plain = _solver(mesh, 0.1).source_iteration(tol=1e-10)
        accel = _solver(mesh, 0.1).source_iteration(
            tol=1e-10, accelerate=True
        )
        assert accel.converged
        np.testing.assert_allclose(accel.phi, plain.phi, rtol=1e-8)

    def test_unstructured(self, disk):
        plain = _solver(disk, 0.85).source_iteration(
            tol=1e-9, max_iterations=2000
        )
        accel = _solver(disk, 0.85).source_iteration(
            tol=1e-9, max_iterations=2000, accelerate=True
        )
        assert accel.converged
        assert accel.iterations <= plain.iterations
        np.testing.assert_allclose(accel.phi, plain.phi, rtol=1e-6)

    def test_multigroup(self):
        mesh = cube_structured(6, length=6.0)
        accel = _solver(mesh, 0.9, groups=2).source_iteration(
            tol=1e-9, max_iterations=2000, accelerate=True
        )
        assert accel.converged
        # Groups are identical here, so fluxes must match across groups.
        np.testing.assert_allclose(
            accel.phi[:, 0], accel.phi[:, 1], rtol=1e-10
        )

"""Durable execution: kill-resume exactness, snapshot fallback, WAL replay.

The durability contract of ``repro.persist``:

* a run cut dead at *any* popped-event index and restarted from disk
  finishes **bitwise-identical** to the uninterrupted run (makespan,
  breakdown, every fault counter, and the host-owned flux arrays);
* a snapshot generation torn by the crash falls back to the previous
  generation, still bitwise-exact;
* the service write-ahead journal replays to exactly one terminal
  record per submission and never commits a content hash twice, even
  with a torn journal tail.

The kill-resume matrix below runs 30 seeded host crashes across six
runtime cells (structured/unstructured x hybrid/mpi_only x
clean/faulty, plus the all-on adaptive configuration) at five cut
fractions each - the ISSUE's ">= 25 seeded kill-resume runs".
Reference fingerprints (uninterrupted, snapshotting off) are computed
once per cell and cached for the module.
"""

import collections

import pytest

from repro.persist import SnapshotManager, kill_and_resume, report_fingerprint
from repro.persist.snapshot import FluxArrayState
from repro.runtime import (
    AdaptiveConfig, DataDrivenRuntime, HostKilled, Machine,
)
from repro.runtime.metrics import Breakdown, RunReport
from repro.service import (
    JobExecutor, JobSpec, JobStatus, ServiceConfig, SweepService,
    WriteAheadLog, replay_wal,
)
from tests.test_golden_fixtures import _fault_plan, _machine, _solver

#: cell name -> (mesh kind, runtime mode, faults on, adaptive on)
CELLS = {
    "structured-hybrid-clean": ("structured", "hybrid", False, False),
    "structured-hybrid-faulty": ("structured", "hybrid", True, False),
    "structured-mpi_only-faulty": ("structured", "mpi_only", True, False),
    "unstructured-hybrid-clean": ("unstructured", "hybrid", False, False),
    "unstructured-mpi_only-faulty": ("unstructured", "mpi_only", True, False),
    "structured-hybrid-adaptive": ("structured", "hybrid", True, True),
}

#: Seeded cut points as fractions of the cell's data-plane event count.
#: The first lands before the first snapshot cadence (degenerate
#: re-run-from-scratch resume); the rest cut mid-flight.
CUT_FRACS = (0.02, 0.25, 0.5, 0.75, 0.95)


def _factory(name):
    """A process-restart factory for one matrix cell.

    Each call rebuilds the *entire* world - solver, programs, flux
    arrays, runtime - exactly as a restarted process re-executing its
    setup code would; nothing but the snapshot directory survives a
    kill.  ``factory.extra`` carries the latest (solver, faces) pair so
    the test can accumulate flux after the run.
    """
    kind, mode, faulty, adaptive = CELLS[name]
    machine = _machine()
    cores = 16 if mode == "hybrid" else 8
    nprocs = machine.layout(cores, mode).nprocs
    plan = _fault_plan() if faulty else None

    def factory():
        pset, s = _solver(kind, nprocs)
        progs, faces = s.build_programs(resilient=faulty)
        rt = DataDrivenRuntime(
            cores, machine=machine, mode=mode, faults=plan,
            adaptive=AdaptiveConfig.all_on() if adaptive else None,
        )
        factory.extra = (s, faces)
        return rt, progs, pset.patch_proc, FluxArrayState(faces)

    return factory


def _fingerprint(factory, report) -> str:
    s, faces = factory.extra
    phi, _ = s.accumulate(faces)
    return report_fingerprint(report, flux=phi)


#: cell name -> (reference fingerprint, reference event count), filled
#: lazily; the reference run has no persist hook at all.
_REFERENCE: dict = {}


def _reference(name):
    if name not in _REFERENCE:
        f = _factory(name)
        rt, progs, pp, _app = f()
        rep = rt.run(progs, pp)
        assert rep.snapshots == 0 and rep.snapshot_bytes == 0
        _REFERENCE[name] = (_fingerprint(f, rep), rep.events)
    return _REFERENCE[name]


# -- the kill-resume matrix (>= 25 seeded host crashes) --------------------------


@pytest.mark.parametrize("frac", CUT_FRACS)
@pytest.mark.parametrize("cell", sorted(CELLS))
def test_kill_resume_is_bitwise_exact(cell, frac, tmp_path):
    ref_fp, events = _reference(cell)
    kill_at = max(1, int(frac * events))
    every = max(20, events // 6)
    f = _factory(cell)
    rep, mgr, killed = kill_and_resume(
        f, kill_at=kill_at, every=every, workdir=tmp_path
    )
    assert killed, (
        f"{cell}: kill at {kill_at} never fired ({events} events)"
    )
    assert _fingerprint(f, rep) == ref_fp, (
        f"{cell}: resume from cut {kill_at} diverged from the "
        "uninterrupted run"
    )


def test_snapshot_armed_run_matches_unsnapshotted(tmp_path):
    """Arming the snapshot hook (without killing) must not perturb the
    simulation: the general loop with persist on equals the reference."""
    cell = "structured-hybrid-faulty"
    ref_fp, events = _reference(cell)
    f = _factory(cell)
    rt, progs, pp, app = f()
    mgr = SnapshotManager(
        tmp_path, every=max(20, events // 5), app_state=app, fsync=False
    )
    rep = rt.run(progs, pp, persist=mgr)
    assert rep.snapshots >= 2 and rep.snapshot_bytes > 0
    assert _fingerprint(f, rep) == ref_fp


def test_corrupt_latest_snapshot_falls_back_a_generation(tmp_path):
    """A snapshot torn by the crash is skipped: the resume loads the
    previous generation and still finishes bitwise-exact."""
    cell = "structured-hybrid-faulty"
    ref_fp, events = _reference(cell)
    every = max(20, events // 8)
    kill_at = 6 * every  # several generations exist by the kill point
    f = _factory(cell)
    rt, progs, pp, app = f()
    mgr = SnapshotManager(
        tmp_path, every=every, keep=3, kill_at=kill_at,
        app_state=app, fsync=False,
    )
    with pytest.raises(HostKilled):
        rt.run(progs, pp, persist=mgr)
    snaps = sorted(tmp_path.glob("snap-*.rsnap"))
    assert len(snaps) >= 2
    # Tear the newest generation in half, as a mid-write crash would.
    data = snaps[-1].read_bytes()
    snaps[-1].write_bytes(data[: len(data) // 2])
    # Fresh process: the manager must skip the torn file.
    rt2, progs2, pp2, app2 = f()
    mgr2 = SnapshotManager(tmp_path, every=every, app_state=app2, fsync=False)
    state = mgr2.load_latest()
    assert state is not None
    assert state["popped"] < kill_at  # an *earlier* generation loaded
    rep = rt2.resume(progs2, pp2, state, persist=mgr2)
    assert _fingerprint(f, rep) == ref_fp


def test_every_generation_corrupt_means_rerun_from_scratch(tmp_path):
    """With no decodable generation left the resume degenerates to a
    plain re-run - still exact, never wedged."""
    cell = "structured-hybrid-clean"
    ref_fp, events = _reference(cell)
    f = _factory(cell)
    rt, progs, pp, app = f()
    mgr = SnapshotManager(
        tmp_path, every=max(20, events // 4), kill_at=events // 2,
        app_state=app, fsync=False,
    )
    with pytest.raises(HostKilled):
        rt.run(progs, pp, persist=mgr)
    for p in tmp_path.glob("snap-*.rsnap"):
        p.write_bytes(b"not a snapshot")
    rt2, progs2, pp2, app2 = f()
    mgr2 = SnapshotManager(tmp_path, every=10**9, app_state=app2, fsync=False)
    assert mgr2.load_latest() is None
    rep = rt2.run(progs2, pp2, persist=mgr2)
    assert _fingerprint(f, rep) == ref_fp


def test_snapshot_rejects_foreign_configuration(tmp_path):
    """A snapshot only restores into a structurally identical
    composition: a different mode/layout is refused up front."""
    from repro._util import ReproError

    f = _factory("structured-hybrid-clean")
    rt, progs, pp, app = f()
    mgr = SnapshotManager(tmp_path, every=50, kill_at=200,
                          app_state=app, fsync=False)
    with pytest.raises(HostKilled):
        rt.run(progs, pp, persist=mgr)
    state = SnapshotManager(tmp_path, app_state=app).load_latest()
    assert state is not None
    machine = _machine()
    nprocs = machine.layout(8, "mpi_only").nprocs
    pset2, s2 = _solver("structured", nprocs)
    progs2, _ = s2.build_programs()
    other = DataDrivenRuntime(8, machine=machine, mode="mpi_only")
    with pytest.raises(ReproError, match="different runtime configuration"):
        other.restore(progs2, pset2.patch_proc, state)


# -- service WAL: mid-campaign kill, torn tail, exactly-once ---------------------


def _submissions(n=10, tenants=3, seed=11):
    """Seeded specs with deliberate duplicate content (same tenant+seed
    -> same content hash) to exercise cache hits and coalescing."""
    import numpy as np

    rng = np.random.default_rng(seed)
    out = []
    for j in range(n):
        tenant = f"tenant-{int(rng.integers(0, tenants))}"
        spec = JobSpec(tenant=tenant, seed=int(rng.integers(0, 4)))
        out.append((j * 0.4e-3, spec))
    return out


def _ledger(svc) -> collections.Counter:
    c = collections.Counter((r.key, r.tenant) for r in svc.results)
    for d in svc.rejections:
        c[("<shed>", d["tenant"])] += 1
    return c


@pytest.mark.parametrize("cut", [1, 3, 6, 9, 14])
def test_service_wal_replay_is_exactly_once(tmp_path, cut):
    """Kill the service mid-campaign (with a torn journal tail), recover
    from the WAL, drain - every submission gets exactly one terminal
    record and no content hash commits twice."""
    wal_path = tmp_path / "service.wal"
    cfg = ServiceConfig(workers=2, tenant_slots=8, global_slots=64,
                        worker_crash_rate=0.2, seed=5)
    subs = _submissions()
    expected = collections.Counter(
        (spec.key(), spec.tenant) for _, spec in subs
    )
    svc = SweepService(cfg, executor=JobExecutor(),
                       wal=WriteAheadLog(wal_path, fsync=False))
    for at, spec in subs:
        svc.submit(spec, at=at)
    svc.run_until_idle(max_events=cut)  # the host dies here
    committed_before = dict(svc.committed)
    # A crash mid-append leaves a torn tail: half a frame header.
    with open(wal_path, "ab") as fh:
        fh.write(b"RPRS\x00\x01")
    svc2 = SweepService.recover(cfg, wal_path, executor=JobExecutor(),
                                fsync=False)
    results = svc2.run_until_idle()
    # Exactly one terminal record per submission, none shed.
    assert svc2.rejections == []
    assert _ledger(svc2) == expected
    # No duplicate commits: one primary (non-cached) COMPLETED record
    # per committed content hash, and pre-kill commits survive as-is.
    primaries = [r for r in results
                 if r.status == JobStatus.COMPLETED and not r.cached]
    assert len(primaries) == len({r.key for r in primaries})
    assert {r.key for r in primaries} == set(svc2.committed)
    for key, r in committed_before.items():
        assert svc2.committed[key].flux_crc == r.flux_crc
    # Job ids never collide across the crash.
    ids = [r.job_id for r in results]
    assert len(ids) == len(set(ids))


def test_service_wal_journals_rejections(tmp_path):
    """Shed submissions are journaled too: the replayed ledger still
    adds up to one record per submission."""
    wal_path = tmp_path / "service.wal"
    cfg = ServiceConfig(workers=1, tenant_slots=1, global_slots=2, seed=3)
    specs = [JobSpec(tenant="t0", seed=i) for i in range(6)]
    svc = SweepService(cfg, executor=JobExecutor(),
                       wal=WriteAheadLog(wal_path, fsync=False))
    for spec in specs:
        svc.submit(spec, at=0.0)
    svc.run_until_idle(max_events=8)
    svc2 = SweepService.recover(cfg, wal_path, executor=JobExecutor(),
                                fsync=False)
    svc2.run_until_idle()
    assert len(svc2.results) + len(svc2.rejections) == len(specs)
    assert sum(
        1 for r in svc2.results if r.status == JobStatus.COMPLETED
    ) == len(svc2.committed) > 0


def test_service_wal_clean_replay_matches_uninterrupted(tmp_path):
    """A full (never-killed) campaign replayed from its journal carries
    the same committed store - the WAL is a faithful history."""
    wal_path = tmp_path / "service.wal"
    cfg = ServiceConfig(workers=2, tenant_slots=8, global_slots=64, seed=9)
    subs = _submissions(n=8, seed=21)
    svc = SweepService(cfg, executor=JobExecutor(),
                       wal=WriteAheadLog(wal_path, fsync=False))
    for at, spec in subs:
        svc.submit(spec, at=at)
    svc.run_until_idle()
    records, good = replay_wal(wal_path)
    assert good > 0 and len(records) >= len(subs)
    svc2 = SweepService.recover(cfg, wal_path, executor=JobExecutor(),
                                fsync=False)
    assert svc2.run_until_idle() == svc2.results
    assert set(svc2.committed) == set(svc.committed)
    for key, r in svc.committed.items():
        assert svc2.committed[key].flux_crc == r.flux_crc
        assert svc2.committed[key].makespan == r.makespan
    assert _ledger(svc2) == _ledger(svc)


# -- satellite: degenerate-report guards -----------------------------------------


def test_zero_report_summaries_do_not_divide_by_zero():
    """A degenerate report (no cores, no events, no wall time) renders
    and summarizes to zeros instead of raising ZeroDivisionError."""
    rep = RunReport(makespan=0.0, breakdown=Breakdown(), total_cores=0)
    assert rep.perf_summary()["events_per_sec"] == 0.0
    avg = rep.avg_seconds_per_core()
    assert avg and all(v == 0.0 for v in avg.values())
    assert "makespan" in rep.format_breakdown("degenerate")
    assert rep.overhead_fraction() == 0.0
    assert rep.idle_fraction() == 0.0

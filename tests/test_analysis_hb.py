"""The happens-before checker: golden runtime scenarios are race-free,
the racy fixture is flagged with the offending commit named, and every
race kind is demonstrated on a synthetic record stream.

The BSP and KBA baselines bypass the transport entirely (no message
records, no commits), so the HB stream is empty for them by
construction - the checker's coverage boundary is the data-driven
runtime.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import check_report, check_trace, dump_hb_json, load_hb_json
from repro.analysis.hb import CTL, HbChecker, _leq
from repro.runtime import DataDrivenRuntime
from tests.test_golden_fixtures import (
    RUNTIME_SCENARIOS,
    _fault_plan,
    _machine,
    _solver,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def _traced_run(kind: str, mode: str, faulty: bool):
    machine = _machine()
    cores = 16 if mode == "hybrid" else 8
    nprocs = machine.layout(cores, mode).nprocs
    pset, s = _solver(kind, nprocs)
    plan = _fault_plan() if faulty else None
    progs, _ = s.build_programs(resilient=faulty)
    return DataDrivenRuntime(
        cores, machine=machine, mode=mode, faults=plan, trace=True
    ).run(progs, pset.patch_proc)


def _races(events):
    return check_trace(events)


def _feed_all(events):
    chk = HbChecker()
    for t, kind, detail in events:
        chk.feed(t, kind, detail)
    return chk.finish()


# -- golden matrix: the shipped runtime is race-free -----------------------------


@pytest.mark.parametrize("name", sorted(RUNTIME_SCENARIOS))
def test_golden_scenario_is_race_free(name):
    kind, mode, faulty = RUNTIME_SCENARIOS[name]
    rep = _traced_run(kind, mode, faulty)
    races = check_report(rep)
    assert races == [], "\n".join(r.format() for r in races)
    assert rep.hb_events, "tracing armed but no HB records emitted"
    # HB records ride a separate stream and never pollute the
    # Chrome-export trace.
    assert not any(e.kind.startswith("hb_") for e in rep.trace_events)


def test_adaptive_speculation_run_is_race_free():
    """Speculation + hedging armed under stragglers: first-completion
    -wins handoffs and hedged duplicate wires must all check out."""
    from repro.runtime import (
        AdaptiveConfig,
        FaultPlan,
        RecoveryConfig,
        StragglerWindow,
    )
    from tests.test_chaos import _run

    plan = FaultPlan(
        stragglers=(StragglerWindow(0, 0.0, 9e-4, 5.0),
                    StragglerWindow(3, 1e-4, 9e-4, 4.0)),
        p_drop=0.05, seed=7,
    )
    acfg = AdaptiveConfig(adaptive_rto=True, hedging=True, speculation=True)
    rep, _ = _run(plan, recovery=RecoveryConfig(), adaptive=acfg, trace=True)
    assert rep.adaptive_summary()["speculative_wins"] > 0
    races = check_report(rep)
    assert races == [], "\n".join(r.format() for r in races)
    assert rep.hb_events


def test_adaptive_all_on_run_is_race_free():
    """Backpressure stalls and demotion migrations layered on chaos."""
    from repro.runtime import AdaptiveConfig, FaultPlan, RecoveryConfig, StragglerWindow
    from tests.test_chaos import _run

    plan = FaultPlan(
        stragglers=(StragglerWindow(1, 0.0, 9e-4, 6.0),),
        p_drop=0.03, seed=3,
    )
    acfg = AdaptiveConfig.all_on(inbox_credits=2)
    rep, _ = _run(plan, recovery=RecoveryConfig(), adaptive=acfg, trace=True)
    races = check_report(rep)
    assert races == [], "\n".join(r.format() for r in races)
    assert rep.hb_events


# -- fixture traces --------------------------------------------------------------


def test_racy_fixture_is_flagged_naming_the_commit():
    races = check_trace(load_hb_json(FIXTURES / "racy_trace.json"))
    kinds = {r.kind for r in races}
    assert "concurrent-commit" in kinds
    assert "duplicate-delivery" in kinds
    cc = next(r for r in races if r.kind == "concurrent-commit")
    # The diagnosis names the offending commit: program, proc, serial.
    assert cc.subject == "(3,0)"
    assert "proc 1" in cc.message and "serial 8" in cc.message
    assert "proc 0" in cc.message and "serial 7" in cc.message


def test_clean_fixture_is_race_free():
    assert check_trace(load_hb_json(FIXTURES / "clean_trace.json")) == []


def test_dump_load_roundtrip(tmp_path):
    rep = _traced_run("structured", "mpi_only", False)
    path = tmp_path / "hb.json"
    n = dump_hb_json(rep.hb_events, str(path))
    assert n == len(rep.hb_events) > 0
    loaded = load_hb_json(str(path))
    assert len(loaded) == n
    assert check_trace(loaded) == []
    doc = json.loads(path.read_text())
    assert doc["hb_version"] == 1


def test_cli_check_trace_exit_codes(capsys):
    from repro.analysis.__main__ import main

    assert main(["check-trace", str(FIXTURES / "clean_trace.json")]) == 0
    assert "race-free" in capsys.readouterr().out
    assert main(["check-trace", str(FIXTURES / "racy_trace.json")]) == 1
    assert "concurrent-commit" in capsys.readouterr().out


# -- synthetic unit streams: one per race kind -----------------------------------


class TestRaceKinds:
    def test_orphan_delivery(self):
        races = _feed_all([(1e-6, "hb_recv", (99, 0, True, "u"))])
        assert [r.kind for r in races] == ["orphan-delivery"]

    def test_duplicate_delivery(self):
        races = _feed_all([
            (1e-6, "hb_send", (1, 0, 1, "u")),
            (2e-6, "hb_send", (2, 0, 1, "u")),  # retry copy, same uid
            (3e-6, "hb_recv", (1, 1, True, "u")),
            (4e-6, "hb_recv", (2, 1, True, "u")),
        ])
        assert [r.kind for r in races] == ["duplicate-delivery"]

    def test_discarded_duplicate_is_not_a_race(self):
        races = _feed_all([
            (1e-6, "hb_send", (1, 0, 1, "u")),
            (2e-6, "hb_send", (2, 0, 1, "u")),
            (3e-6, "hb_recv", (1, 1, True, "u")),
            (4e-6, "hb_recv", (2, 1, False, "u")),  # dedup'd on arrival
        ])
        assert races == []

    def test_unanchored_epoch_commit(self):
        races = _feed_all([(1e-6, "hb_commit", ("(0,0)", 1, 1, 5))])
        assert [r.kind for r in races] == ["unanchored-epoch-commit"]

    def test_commit_not_after_migration(self):
        # Proc 1 commits in epoch 1 without ever observing the control
        # plane's migration (no requeue/migrate join for proc 1: the
        # migration re-homes onto proc 2, proc 1 is a bystander).
        races = _feed_all([
            (1e-6, "hb_crash", (0,)),
            (2e-6, "hb_migrate", ("(0,0)", 0, 2, 1)),
            (3e-6, "hb_commit", ("(0,0)", 1, 1, 5)),
        ])
        assert [r.kind for r in races] == ["commit-not-after-migration"]

    def test_migration_without_cause(self):
        races = _feed_all([(1e-6, "hb_migrate", ("(0,0)", 0, 1, 1))])
        assert [r.kind for r in races] == ["migration-without-cause"]

    def test_demotion_is_a_valid_migration_cause(self):
        races = _feed_all([
            (1e-6, "hb_demote", (0,)),
            (2e-6, "hb_migrate", ("(0,0)", 0, 1, 1)),
            (3e-6, "hb_commit", ("(0,0)", 1, 1, 5)),
        ])
        assert races == []

    def test_concurrent_commit(self):
        races = _feed_all([
            (1e-6, "hb_commit", ("(0,0)", 0, 0, 1)),
            (2e-6, "hb_commit", ("(0,0)", 1, 0, 2)),
        ])
        assert [r.kind for r in races] == ["concurrent-commit"]

    def test_delivery_edge_orders_commits(self):
        # Same program, same epoch, two procs - but a delivery edge
        # carries proc 0's commit into proc 1's past.
        races = _feed_all([
            (1e-6, "hb_commit", ("(0,0)", 0, 0, 1)),
            (2e-6, "hb_send", (1, 0, 1, "u")),
            (3e-6, "hb_recv", (1, 1, True, "u")),
            (4e-6, "hb_commit", ("(0,0)", 1, 0, 2)),
        ])
        assert races == []

    def test_speculative_pair_same_serial_is_not_concurrent(self):
        races = _feed_all([
            (1e-6, "hb_spec", (5, 0, 1)),
            (2e-6, "hb_complete", ("(0,0)", 1, 5, 1, 1)),  # backup wins
            (3e-6, "hb_commit", ("(0,0)", 1, 0, 5)),
            # owner's next run happens-after the handoff join:
            (4e-6, "hb_commit", ("(0,0)", 0, 0, 6)),
        ])
        assert races == []

    def test_double_commit(self):
        races = _feed_all([
            (1e-6, "hb_spec", (5, 0, 1)),
            (2e-6, "hb_complete", ("(0,0)", 1, 5, 1, 1)),
            (3e-6, "hb_complete", ("(0,0)", 0, 5, 0, 1)),  # loser commits too
        ])
        assert "double-commit" in {r.kind for r in races}

    def test_late_commit(self):
        races = _feed_all([
            (1e-6, "hb_spec", (5, 0, 1)),
            (2e-6, "hb_complete", ("(0,0)", 1, 5, 1, 0)),  # first, discarded
            (3e-6, "hb_complete", ("(0,0)", 0, 5, 0, 1)),  # later one wins
        ])
        assert [r.kind for r in races] == ["late-commit"]

    def test_first_completion_wins_clean(self):
        races = _feed_all([
            (1e-6, "hb_spec", (5, 0, 1)),
            (2e-6, "hb_complete", ("(0,0)", 0, 5, 0, 1)),  # primary first
            (3e-6, "hb_complete", ("(0,0)", 1, 5, 1, 0)),  # backup discarded
        ])
        assert races == []


# -- model plumbing --------------------------------------------------------------


class TestClockModel:
    def test_leq(self):
        assert _leq({}, {})
        assert _leq({"a": 1}, {"a": 2, "b": 1})
        assert not _leq({"a": 2}, {"a": 1})
        assert not _leq({"a": 1}, {})

    def test_non_hb_records_are_ignored(self):
        chk = HbChecker()
        chk.feed(1e-6, "run_end", ())
        chk.feed(2e-6, "msg_arrive", ())
        assert chk.records == 0 and chk.finish() == []

    def test_control_plane_is_a_clock_node(self):
        chk = HbChecker()
        chk.feed(1e-6, "hb_crash", (0,))
        assert chk._clocks[CTL][CTL] == 1


# -- baseline boundary -----------------------------------------------------------


def test_baselines_have_no_hb_stream():
    """BSP/KBA results carry no transport records: coverage is vacuous
    there by design, and check_trace on nothing is race-free."""
    from repro.sweep.baselines import BSPSweepResult, KBAResult

    assert not hasattr(BSPSweepResult, "hb_events")
    assert not hasattr(KBAResult, "hb_events")
    assert check_trace([]) == []

"""Tests for the DES runtime: cluster model, cost model, scheduling."""

import numpy as np
import pytest

from repro._util import ReproError
from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.runtime import (
    CATEGORIES,
    CostModel,
    DataDrivenRuntime,
    Machine,
    TIANHE2,
)
from tests.conftest import make_solver


class TestMachine:
    def test_hybrid_layout(self):
        m = Machine(cores_per_proc=12)
        lay = m.layout(24, "hybrid")
        assert lay.nprocs == 2
        assert lay.workers_per_proc == 11  # master core reserved

    def test_mpi_only_layout(self):
        lay = TIANHE2.layout(24, "mpi_only")
        assert lay.nprocs == 24
        assert lay.workers_per_proc == 1

    def test_hybrid_requires_multiple(self):
        with pytest.raises(ReproError):
            TIANHE2.layout(13, "hybrid")

    def test_unknown_mode(self):
        with pytest.raises(ReproError):
            TIANHE2.layout(12, "bulk")

    def test_message_time_monotone_in_size(self):
        lay = TIANHE2.layout(48, "hybrid")
        t1 = TIANHE2.message_time(0, 3, 100, lay)
        t2 = TIANHE2.message_time(0, 3, 100_000, lay)
        assert t2 > t1

    def test_intra_node_cheaper(self):
        lay = TIANHE2.layout(48, "hybrid")  # 4 procs, 2 per node
        same = TIANHE2.message_time(0, 1, 0, lay)
        cross = TIANHE2.message_time(0, 2, 0, lay)
        assert same < cross

    def test_node_of_mpi_only(self):
        m = Machine(cores_per_proc=4, procs_per_node=2)
        lay = m.layout(16, "mpi_only")
        # 8 ranks per node.
        assert m.node_of(0, lay) == 0
        assert m.node_of(7, lay) == 0
        assert m.node_of(8, lay) == 1


class TestCostModel:
    def test_run_cost_categories(self):
        cm = CostModel()
        c = cm.run_cost(
            {"vertices": 10, "edges": 40, "input_items": 5},
            remote_streams=2,
            remote_items=8,
        )
        assert c["kernel"] == pytest.approx(10 * cm.t_vertex)
        assert c["pack"] == pytest.approx(
            2 * cm.t_pack_fixed + 8 * cm.t_pack_item
        )
        assert c["graph_op"] > 0

    def test_groups_scale_kernel(self):
        c1 = CostModel(groups=1).run_cost({"vertices": 10}, 0, 0)
        c4 = CostModel(groups=4).run_cost({"vertices": 10}, 0, 0)
        assert c4["kernel"] == pytest.approx(4 * c1["kernel"])

    def test_pops_override(self):
        cm = CostModel()
        base = cm.run_cost({"vertices": 100, "edges": 0}, 0, 0)
        coarse = cm.run_cost({"vertices": 100, "edges": 0, "pops": 2}, 0, 0)
        assert coarse["graph_op"] < base["graph_op"]


def _des_setup(cores=16, nprocs=None, machine=None, patch_shape=(4, 4, 4),
               **solver_kw):
    machine = machine or Machine(cores_per_proc=4)
    nprocs = nprocs or machine.layout(cores, "hybrid").nprocs
    mesh = cube_structured(8, length=4.0)
    pset = PatchSet.from_structured(mesh, patch_shape, nprocs=nprocs)
    solver = make_solver(pset, **solver_kw)
    return machine, pset, solver


class TestDESExecution:
    def test_numerics_match_fast(self):
        machine, pset, s = _des_setup(grain=16)
        ref, _, _ = s.sweep_once(mode="fast")
        progs, faces = s.build_programs()
        DataDrivenRuntime(16, machine=machine).run(progs, pset.patch_proc)
        phi, _ = s.accumulate(faces)
        np.testing.assert_array_equal(phi, ref)

    def test_all_work_completed(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        rep = DataDrivenRuntime(16, machine=machine).run(
            progs, pset.patch_proc
        )
        assert rep.vertices_solved == s.topology.num_vertices

    def test_more_cores_not_slower(self):
        machine = Machine(cores_per_proc=4)
        times = []
        for cores in (4, 16):
            _, pset, s = _des_setup(cores=cores, machine=machine, sn=4)
            progs, _ = s.build_programs(compute=False)
            rep = DataDrivenRuntime(cores, machine=machine).run(
                progs, pset.patch_proc
            )
            times.append(rep.makespan)
        assert times[1] < times[0]

    def test_breakdown_accounts_all_time(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        rep = DataDrivenRuntime(16, machine=machine).run(
            progs, pset.patch_proc
        )
        total = rep.breakdown.total()
        assert total == pytest.approx(rep.makespan * rep.total_cores, rel=1e-6)
        fr = rep.breakdown.fractions()
        assert set(fr) == set(CATEGORIES)
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_report_traffic_consistency(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        rep = DataDrivenRuntime(16, machine=machine).run(
            progs, pset.patch_proc
        )
        assert rep.messages > 0
        assert rep.message_bytes > 0
        assert rep.executions >= len(progs)

    def test_mpi_only_mode_runs(self):
        machine, pset, s = _des_setup(nprocs=16, patch_shape=(2, 2, 2))
        progs, _ = s.build_programs(compute=False)
        rep = DataDrivenRuntime(
            16, machine=machine, mode="mpi_only"
        ).run(progs, pset.patch_proc)
        assert rep.vertices_solved == s.topology.num_vertices
        # One core per rank: total cores == 16, no separate master.
        assert rep.total_cores == 16

    def test_hybrid_beats_mpi_only_same_cores(self):
        """The paper's Fig. 17 claim: the hybrid runtime wins."""
        machine = Machine(cores_per_proc=4)
        cores = 16
        _, pset_h, s_h = _des_setup(cores=cores, machine=machine, sn=4)
        progs, _ = s_h.build_programs(compute=False)
        hyb = DataDrivenRuntime(cores, machine=machine).run(
            progs, pset_h.patch_proc
        )
        _, pset_m, s_m = _des_setup(
            nprocs=cores, machine=machine, sn=4, patch_shape=(2, 2, 2)
        )
        progs_m, _ = s_m.build_programs(compute=False)
        mpi = DataDrivenRuntime(cores, machine=machine, mode="mpi_only").run(
            progs_m, pset_m.patch_proc
        )
        assert hyb.makespan < mpi.makespan

    def test_consensus_termination_adds_time(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        r1 = DataDrivenRuntime(16, machine=machine).run(progs, pset.patch_proc)
        progs2, _ = s.build_programs(compute=False)
        r2 = DataDrivenRuntime(
            16, machine=machine, termination="consensus"
        ).run(progs2, pset.patch_proc)
        assert r2.termination_hops > 0
        assert r2.makespan > r1.makespan - 1e-12
        assert r2.termination_time > 0

    def test_layout_mismatch_rejected(self):
        machine, pset, s = _des_setup()  # 4 procs
        progs, _ = s.build_programs(compute=False)
        with pytest.raises(ReproError):
            DataDrivenRuntime(4, machine=machine).run(progs, pset.patch_proc)

    def test_empty_programs_rejected(self):
        with pytest.raises(ReproError):
            DataDrivenRuntime(4, machine=Machine(cores_per_proc=4)).run(
                [], np.zeros(1, dtype=np.int64)
            )

    def test_deterministic(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        r1 = DataDrivenRuntime(16, machine=machine).run(progs, pset.patch_proc)
        progs2, _ = s.build_programs(compute=False)
        r2 = DataDrivenRuntime(16, machine=machine).run(progs2, pset.patch_proc)
        assert r1.makespan == r2.makespan
        assert r1.executions == r2.executions

    def test_unknown_termination(self):
        with pytest.raises(ReproError):
            DataDrivenRuntime(4, machine=Machine(cores_per_proc=4),
                              termination="vibes")


class TestScalingShapes:
    """Coarse qualitative checks that the figures' shapes can emerge."""

    def test_idle_grows_with_cores_strong_scaling(self):
        machine = Machine(cores_per_proc=4)
        mesh = cube_structured(8, length=4.0)
        idles = []
        for cores in (8, 32):
            nprocs = machine.layout(cores, "hybrid").nprocs
            pset = PatchSet.from_structured(mesh, (2, 2, 2), nprocs=nprocs)
            s = make_solver(pset, sn=2)
            progs, _ = s.build_programs(compute=False)
            rep = DataDrivenRuntime(cores, machine=machine).run(
                progs, pset.patch_proc
            )
            idles.append(rep.idle_fraction())
        assert idles[1] > idles[0]

    def test_clustering_grain_tradeoff_exists(self):
        """Tiny grain pays scheduling; the sweet spot beats grain=1."""
        machine, pset, s = _des_setup(sn=4)
        times = {}
        for grain in (1, 32):
            progs, _ = s.build_programs(compute=False, grain=grain)
            rep = DataDrivenRuntime(16, machine=machine).run(
                progs, pset.patch_proc
            )
            times[grain] = rep.makespan
        assert times[32] < times[1]


class TestPatchProcValidation:
    """run() must reject malformed route tables outright, not fail
    obscurely mid-simulation."""

    def _runtime(self):
        return DataDrivenRuntime(16, machine=Machine(cores_per_proc=4))

    def test_negative_proc_id_rejected(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        bad = pset.patch_proc.copy()
        bad[0] = -1
        with pytest.raises(ReproError, match="negative"):
            DataDrivenRuntime(16, machine=machine).run(progs, bad)

    def test_too_short_for_programs_rejected(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        short = pset.patch_proc[:1].copy()  # program patches out of range
        with pytest.raises(ReproError, match="outside"):
            DataDrivenRuntime(16, machine=machine).run(progs, short)

    def test_two_dimensional_rejected(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        bad = np.zeros((len(pset.patch_proc), 2), dtype=np.int64)
        with pytest.raises(ReproError, match="one-dimensional"):
            DataDrivenRuntime(16, machine=machine).run(progs, bad)

    def test_empty_rejected(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        with pytest.raises(ReproError):
            DataDrivenRuntime(16, machine=machine).run(
                progs, np.zeros(0, dtype=np.int64)
            )

    def test_valid_table_accepted(self):
        machine, pset, s = _des_setup()
        progs, _ = s.build_programs(compute=False)
        rep = DataDrivenRuntime(16, machine=machine).run(
            progs, pset.patch_proc
        )
        assert rep.vertices_solved == s.topology.num_vertices

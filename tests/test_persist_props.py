"""Property tests for the durability layer (snapshot/restore identity).

Three layers of the contract, each under randomized schedules:

* the codec is a faithful involution - ``decode(encode(x)) == x`` and
  the byte stream is stable across a round trip (no pickle memo ids,
  no hash-order leakage);
* a simulator snapshot taken between events at *any* cut point loads
  into a fresh simulator that pops the exact remaining sequence the
  never-snapshotted reference pops - tied timestamps, shared tie-break
  sequences, recycled slab slots, and same-time turnaround batches
  included;
* a full runtime kill-resume at a random cut is bitwise-identical to
  the uninterrupted run (the property form of the golden-matrix
  campaign in ``test_durability``).
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persist import decode, encode, frame, unframe
from repro.persist.killer import kill_and_resume
from repro.runtime.simulator import Simulator

# -- codec round-trip ------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),  # covers the big-int (>64-bit) path
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.lists(children, max_size=5).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
        st.sets(st.integers(), max_size=6),
        st.frozensets(st.integers(), max_size=6),
    ),
    max_leaves=25,
)


@given(x=_values)
@settings(max_examples=150, deadline=None)
def test_codec_roundtrip_identity(x):
    assert decode(encode(x)) == x


@given(x=_values)
@settings(max_examples=150, deadline=None)
def test_codec_byte_stream_is_stable(x):
    """Encoding is a pure function of the value: a decoded copy
    re-encodes to the identical bytes (set order is canonicalized)."""
    data = encode(x)
    assert encode(decode(data)) == data


@given(x=_values)
@settings(max_examples=60, deadline=None)
def test_frame_roundtrip(x):
    version, payload = unframe(frame(encode(x)))
    assert decode(payload) == x


# -- simulator snapshot/restore at random cut points -----------------------------

# A small delta pool makes timestamp ties (and same-time turnaround
# joins at delta 0.0) common rather than exceptional.
DELTAS = (0.0, 0.25, 1.0, 3.0)
KINDS = ("advance", "aux")
PROGRESS = frozenset(("advance",))

_op = st.tuples(st.sampled_from(DELTAS), st.sampled_from(KINDS), st.booleans())


@st.composite
def _schedules(draw):
    pre = draw(st.lists(_op, min_size=2, max_size=14))
    cut = draw(st.integers(min_value=0, max_value=len(pre)))
    rounds = draw(st.lists(st.lists(_op, max_size=4), max_size=8))
    return pre, cut, rounds


def _push(sim, now, ops, start):
    n = start
    for delta, kind, burn in ops:
        if burn:
            sim.next_seq()  # external queues share the tie-break seq
        sim.push(now + delta, kind, n)
        n += 1
    return n


def _drain(sim, rounds):
    """Pop everything, pushing each round's ops mid-drain; returns the
    observed (t, kind, data) stream."""
    out = []
    rit = iter(rounds)
    while sim:
        t, kind, data = sim.pop()
        out.append((t, kind, data))
        ops = next(rit, None)
        if ops:
            _push(sim, t, ops, 1000 + len(out) * 100)
    return out


@given(sched=_schedules())
@settings(max_examples=80, deadline=None)
def test_simulator_restore_pops_identically(sched):
    """Cut a random schedule at a random point, round-trip the state
    through the codec, and finish on a fresh simulator: the remaining
    pop stream and every public counter must match the reference."""
    pre, cut, rounds = sched
    ref = Simulator(progress_kinds=PROGRESS)
    n = _push(ref, 0.0, pre, 0)
    for _ in range(min(cut, len(ref))):
        ref.pop()
    state = decode(encode(ref.state_dict()))
    restored = Simulator(progress_kinds=PROGRESS)
    restored.load_state_dict(state)
    assert len(restored) == len(ref)
    got = _drain(restored, rounds)
    want = _drain(ref, rounds)
    assert got == want
    for attr in ("live", "makespan", "last_progress", "peak_heap"):
        assert getattr(restored, attr) == getattr(ref, attr)
    assert restored.event_counts() == ref.event_counts()
    assert restored.next_seq() == ref.next_seq()


@given(sched=_schedules(), joins=st.lists(st.sampled_from(KINDS), max_size=3))
@settings(max_examples=60, deadline=None)
def test_turnaround_batches_after_restore(sched, joins):
    """Same-time turnaround: after a restore, ``pop_batch`` plus pushes
    landing at exactly the in-flight batch's timestamp behaves as on
    the never-snapshotted simulator."""
    pre, cut, _rounds = sched
    ref = Simulator(progress_kinds=PROGRESS)
    _push(ref, 0.0, pre, 0)
    for _ in range(min(cut, max(0, len(ref) - 1))):
        ref.pop()
    restored = Simulator(progress_kinds=PROGRESS)
    restored.load_state_dict(decode(encode(ref.state_dict())))

    def batch_with_joins(sim):
        t0, batch = sim.pop_batch()
        for j, kind in enumerate(joins):
            sim.push(t0, kind, 9000 + j)  # joins the in-flight batch
        names = [(sim._kind_names[kid], data) for kid, data in batch]
        rest = []
        while sim:
            rest.append(sim.pop())
        return t0, names, rest

    assert batch_with_joins(restored) == batch_with_joins(ref)


# -- full-runtime random-cut resume (property form) ------------------------------


@settings(max_examples=5, deadline=None)
@given(data=st.data())
def test_runtime_random_cut_resume_is_exact(data):
    from tests.test_durability import _factory, _fingerprint, _reference

    cell = "structured-hybrid-clean"
    ref_fp, events = _reference(cell)
    kill_at = data.draw(
        st.integers(min_value=1, max_value=events - 1), label="kill_at"
    )
    every = data.draw(st.sampled_from((37, 150, 400)), label="every")
    f = _factory(cell)
    with tempfile.TemporaryDirectory() as d:
        rep, _mgr, killed = kill_and_resume(
            f, kill_at=kill_at, every=every, workdir=d
        )
    assert killed
    assert _fingerprint(f, rep) == ref_fp

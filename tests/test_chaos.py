"""Chaos-engine tests: partitions, corruption, cascades, watchdog,
sanitizer, and the seeded campaign driver.

The oracle everywhere is the strongest one available: a recoverable
faulty run must produce *bitwise-identical* flux to the fault-free
reference, and an unrecoverable one must terminate with a structured
:class:`StallReport` naming the lost dependency - never hang, never
silently drop work.
"""

import math

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro._util import ReproError
from repro.chaos import (
    ChaosSpace,
    random_fault_plan,
    run_campaign,
    run_case,
)
from repro.core.stream import ProgramId, Stream
from repro.framework import PatchSet
from repro.mesh import cube_structured
from repro.runtime import (
    CrashFault,
    DataDrivenRuntime,
    FaultInjector,
    FaultPlan,
    InvariantSanitizer,
    LinkPartition,
    Machine,
    RecoveryConfig,
    Router,
    RunReport,
    SanitizerError,
    Simulator,
    StallError,
    StragglerWindow,
    Transport,
    stream_checksum,
)
from repro.runtime.metrics import Breakdown
from repro.runtime.recovery import Checkpoint
from tests.conftest import make_solver

CORES = 16  # 4 procs x (1 master + 3 workers) on the small machine


def _setup(nprocs=4, **solver_kw):
    machine = Machine(cores_per_proc=4)
    mesh = cube_structured(8, length=4.0)
    pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=nprocs)
    solver = make_solver(pset, grain=16, **solver_kw)
    return machine, pset, solver


def _reference_phi():
    _, _, s = _setup()
    ref, _, _ = s.sweep_once(mode="fast")
    return ref


def _run(plan, sanitize=True, **kw):
    machine, pset, s = _setup()
    progs, faces = s.build_programs(resilient=True)
    rep = DataDrivenRuntime(
        CORES, machine=machine, faults=plan, sanitize=sanitize, **kw
    ).run(progs, pset.patch_proc)
    phi, _ = s.accumulate(faces)
    return rep, phi


# -- fault-model validation ------------------------------------------------------


class TestFaultModelValidation:
    def test_partition_rejects_self_link(self):
        with pytest.raises(ReproError, match="distinct"):
            LinkPartition(2, 2, 0.0, 1.0)

    def test_partition_rejects_bad_window(self):
        with pytest.raises(ReproError, match="start"):
            LinkPartition(0, 1, 2.0, 1.0)

    def test_partition_validated_against_layout(self):
        machine, pset, s = _setup()
        progs, _ = s.build_programs(compute=False, resilient=True)
        plan = FaultPlan(partitions=(LinkPartition(0, 9, 0.0, 1.0),))
        with pytest.raises(ReproError, match="only 4 processes"):
            DataDrivenRuntime(CORES, machine=machine, faults=plan).run(
                progs, pset.patch_proc
            )

    def test_cascade_requires_window(self):
        with pytest.raises(ReproError, match="cascade_window"):
            CrashFault(0, 1e-4, cascade=0.5)

    def test_duplicate_crash_of_same_proc_rejected(self):
        with pytest.raises(ReproError, match="twice"):
            FaultPlan(crashes=(CrashFault(1, 1e-4), CrashFault(1, 2e-4)))

    def test_corrupt_rate_bounds(self):
        with pytest.raises(ReproError, match="p_corrupt"):
            FaultPlan(p_corrupt=1.0)
        with pytest.raises(ReproError, match="below 1"):
            FaultPlan(p_drop=0.5, p_duplicate=0.3, p_corrupt=0.3)

    def test_partitions_and_corruption_need_recovery(self):
        assert FaultPlan(
            partitions=(LinkPartition(0, 1, 0.0, 1.0),)
        ).needs_recovery()
        assert FaultPlan(p_corrupt=0.01).needs_recovery()
        assert not FaultPlan(
            stragglers=(StragglerWindow(0, 0.0, 1.0, 2.0),)
        ).needs_recovery()

    def test_max_casualties_counts_cascade_caps(self):
        plan = FaultPlan(crashes=(
            CrashFault(0, 1e-4, cascade=0.5, cascade_window=1e-4,
                       cascade_max=2),
            CrashFault(1, 2e-4),
        ))
        assert plan.max_casualties() == 4


# -- link partitions -------------------------------------------------------------


class TestLinkPartitions:
    def test_healing_partition_recovers_bitwise(self):
        ref = _reference_phi()
        plan = FaultPlan(
            partitions=(LinkPartition(0, 1, 50e-6, 400e-6),), seed=3
        )
        rep, phi = _run(plan)
        assert_array_equal(phi, ref)
        assert rep.partition_drops > 0  # traffic was black-holed...
        assert rep.retries > 0  # ...and recovered by retransmission

    def test_cut_is_directed(self):
        inj = FaultInjector(
            FaultPlan(partitions=(LinkPartition(0, 1, 0.0, 1.0),))
        )
        assert inj.link_cut(0, 1, 0.5)
        assert not inj.link_cut(1, 0, 0.5)  # reverse link unaffected
        assert not inj.link_cut(0, 1, 1.5)  # healed

    def test_cut_window_lookup(self):
        cut = LinkPartition(0, 1, 0.0, 1.0)
        inj = FaultInjector(FaultPlan(partitions=(cut,)))
        assert inj.cut_window(0, 1, 0.5) == cut
        assert inj.cut_window(0, 1, 1.5) is None

    def test_infinite_partition_raises_stall_report(self):
        plan = FaultPlan(
            partitions=(LinkPartition(0, 1, 50e-6, math.inf),), seed=3
        )
        with pytest.raises(StallError) as ei:
            _run(plan)
        report = ei.value.report
        assert report.lost, "the lost dependency must be named"
        edge = report.lost[0]
        assert edge.src_proc == 0 and edge.dst_proc == 1
        assert "never heals" in edge.reason
        assert report.now - report.last_progress > report.horizon
        assert "partitioned" in str(ei.value)

    def test_watchdog_disabled_by_zero_horizon(self):
        # With the watchdog off, the same wedge runs the retry budget
        # to exhaustion instead - proving the watchdog is what turns
        # the hang into a diagnosis.
        plan = FaultPlan(
            partitions=(LinkPartition(0, 1, 50e-6, math.inf),), seed=3
        )
        with pytest.raises(ReproError, match="undeliverable") as ei:
            _run(plan, recovery=RecoveryConfig(watchdog_horizon=0.0))
        assert not isinstance(ei.value, StallError)


# -- payload corruption ----------------------------------------------------------


class TestCorruption:
    def test_corruption_detected_and_recovered_bitwise(self):
        ref = _reference_phi()
        rep, phi = _run(FaultPlan(p_corrupt=0.1, seed=5))
        assert_array_equal(phi, ref)
        assert rep.corruptions > 0
        assert rep.nacks > 0  # every corruption was caught by checksum

    def test_stream_checksum_catches_bit_flip(self):
        pid = ProgramId(0, 0)
        payload = np.arange(6, dtype=np.int64)
        s = Stream(src=pid, dst=ProgramId(1, 0), payload=payload,
                   items=6, nbytes=48, seq=0)
        s.checksum = stream_checksum(s)
        bad = payload.copy()
        bad[3] ^= 1 << 7
        flipped = Stream(src=pid, dst=ProgramId(1, 0), payload=bad,
                         items=6, nbytes=48, seq=0, checksum=s.checksum)
        assert stream_checksum(flipped) != flipped.checksum
        assert stream_checksum(s) == s.checksum

    def test_checksum_covers_header(self):
        pid = ProgramId(0, 0)
        a = Stream(src=pid, dst=ProgramId(1, 0), seq=0, epoch=0)
        b = Stream(src=pid, dst=ProgramId(1, 0), seq=0, epoch=1)
        assert stream_checksum(a) != stream_checksum(b)


# -- crash cascades --------------------------------------------------------------


class TestCascades:
    def test_cascade_recovers_bitwise(self):
        ref = _reference_phi()
        plan = FaultPlan(
            crashes=(CrashFault(1, 150e-6, cascade=0.9,
                                cascade_window=100e-6, cascade_max=1),),
            seed=9,
        )
        rep, phi = _run(plan)
        assert_array_equal(phi, ref)
        assert rep.crashes == 2  # the victim took a neighbour down
        assert rep.cascade_crashes == 1

    def test_cascade_victims_respect_cap_and_budget(self):
        fault = CrashFault(0, 1e-4, cascade=1.0, cascade_window=1e-4,
                           cascade_max=2)
        inj = FaultInjector(FaultPlan(crashes=(fault,), seed=1))
        victims = inj.cascade_victims(fault, [0, 1, 2, 3], 1e-4)
        assert len(victims) == 2  # capped despite p=1 over 3 survivors
        for q, t in victims:
            assert q != 0
            assert 1e-4 < t <= 2e-4

    def test_non_cascading_crash_draws_nothing(self):
        fault = CrashFault(0, 1e-4)
        inj = FaultInjector(FaultPlan(crashes=(fault,), seed=1))
        before = inj._rng.bit_generator.state["state"]["state"]
        assert inj.cascade_victims(fault, [0, 1, 2], 1e-4) == []
        after = inj._rng.bit_generator.state["state"]["state"]
        assert before == after  # rng untouched: old plans replay bit-exactly


# -- liveness watchdog (simulator-level) -----------------------------------------


class TestWatchdog:
    def test_fires_only_past_horizon_with_no_live_work(self):
        calls = []
        sim = Simulator(frozenset({"work"}))
        sim.arm_watchdog(1.0, lambda t: calls.append(t) or None)
        sim.push(0.0, "work", None)
        sim.push(0.5, "timer", None)
        sim.push(2.0, "timer", None)
        sim.pop()  # work at t=0: progress observed
        sim.pop()  # timer at 0.5: within horizon, quiet
        assert calls == []
        sim.pop()  # timer at 2.0: past horizon, live==0 -> suspect
        assert calls == [2.0]

    def test_quiet_while_progress_outstanding(self):
        calls = []
        sim = Simulator(frozenset({"work"}))
        sim.arm_watchdog(1.0, lambda t: calls.append(t) or None)
        sim.push(5.0, "work", None)  # outstanding progress: live == 1
        sim.push(3.0, "timer", None)
        sim.pop()  # timer at 3.0, but live work pending
        assert calls == []

    def test_snapshot_confirmation_raises(self):
        from repro.runtime import StallReport

        rep = StallReport(now=2.0, last_progress=0.0, horizon=1.0,
                          pending_events=1)
        sim = Simulator(frozenset({"work"}))
        sim.arm_watchdog(1.0, lambda t: rep)
        sim.push(2.0, "timer", None)
        with pytest.raises(StallError) as ei:
            sim.pop()
        assert ei.value.report is rep

    def test_unwatched_kinds_never_trigger(self):
        sim = Simulator(frozenset({"work"}))
        sim.arm_watchdog(1.0, lambda t: pytest.fail("must not be called"))
        sim.push(50.0, "ack", None)
        sim.pop()

    def test_stall_report_json_round_trip(self):
        """StallReport/WaitEdge survive a full JSON round-trip - the
        service layer attaches the dict form to job failures, so every
        field (including an infinite partition-heal time in a reason)
        must come back identical."""
        import json
        import math

        from repro.runtime import StallReport, WaitEdge

        lost = WaitEdge(
            waiter="P3.0", holder="P0.1", src_proc=0, dst_proc=1,
            retries=7,
            reason=f"link 0->1 partitioned (heals at {math.inf})",
        )
        waiting = WaitEdge(
            waiter="P1.0", holder="P3.0", src_proc=1, dst_proc=0,
            retries=2, reason="upstream starved",
        )
        rep = StallReport(
            now=3.5e-3, last_progress=1.5e-3, horizon=2e-3,
            pending_events=11, waiting=(waiting, lost), lost=(lost,),
            cycle=("P3.0", "P1.0", "P3.0"),
        )
        wire = json.dumps(rep.to_dict())
        back = StallReport.from_dict(json.loads(wire))
        assert back == rep
        assert back.lost[0] == lost and back.waiting == (waiting, lost)
        # The dict form stays render-compatible with the text form.
        assert StallReport.from_dict(rep.to_dict()).describe() == (
            rep.describe()
        )


# -- invariant sanitizer ---------------------------------------------------------


def _mini_router(nprocs=2):
    class _Prog:
        def __init__(self, patch):
            self.id = ProgramId(patch, 0)

    progs = [_Prog(0), _Prog(1)]
    return Router(progs, np.arange(nprocs), nprocs)


class TestSanitizer:
    def test_duplicate_delivery_caught(self):
        san = InvariantSanitizer(_mini_router())
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), seq=0)
        san.on_delivery(s, 1)
        with pytest.raises(SanitizerError, match="exactly-once"):
            san.on_delivery(s, 1)

    def test_delivery_to_dead_proc_caught(self):
        router = _mini_router()
        san = InvariantSanitizer(router)
        router.mark_dead(1)
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), seq=0)
        with pytest.raises(SanitizerError, match="dead"):
            san.on_delivery(s, 1)

    def test_delivery_to_wrong_owner_caught(self):
        san = InvariantSanitizer(_mini_router())
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), seq=0)
        with pytest.raises(SanitizerError, match="owner"):
            san.on_delivery(s, 0)

    def test_workload_regression_caught(self):
        san = InvariantSanitizer(_mini_router())
        pid = ProgramId(0, 0)
        san.on_commit(pid, 10, 0)
        san.on_commit(pid, 4, 0)  # fine: monotone within the epoch
        with pytest.raises(SanitizerError, match="regressed"):
            san.on_commit(pid, 7, 0)

    def test_workload_reset_allowed_on_new_epoch(self):
        san = InvariantSanitizer(_mini_router())
        pid = ProgramId(0, 0)
        san.on_commit(pid, 4, 0)
        san.on_commit(pid, 9, 1)  # failover re-execution starts higher
        san.on_commit(pid, 5, 0)  # stale epoch: ignored, like the tracker

    def test_backwards_timeline_caught(self):
        san = InvariantSanitizer(_mini_router())
        san.on_booking(("w", 0, 0), 0.0, 2.0)
        with pytest.raises(SanitizerError, match="backwards"):
            san.on_booking(("w", 0, 0), 0.5, 1.0)

    def test_malformed_interval_caught(self):
        san = InvariantSanitizer(_mini_router())
        with pytest.raises(SanitizerError, match="malformed"):
            san.on_booking(("w", 0, 0), 2.0, 1.0)

    def test_failover_inbox_duplicates_caught(self):
        san = InvariantSanitizer(_mini_router())
        s = Stream(src=ProgramId(0, 0), dst=ProgramId(1, 0), seq=3)
        with pytest.raises(SanitizerError, match="duplicate"):
            san.on_failover(ProgramId(1, 0), [s, s])

    def test_sanitized_faulty_run_passes(self):
        ref = _reference_phi()
        plan = FaultPlan(
            crashes=(CrashFault(1, 150e-6),),
            partitions=(LinkPartition(0, 2, 80e-6, 300e-6),),
            p_drop=0.05, p_duplicate=0.05, p_corrupt=0.03, seed=7,
        )
        rep, phi = _run(plan, sanitize=True)
        assert_array_equal(phi, ref)
        assert rep.sanitizer_checks > 0  # checks really ran


# -- transport: rearm after failover ---------------------------------------------


class TestRearmAfterFailover:
    def _transport(self):
        machine = Machine(cores_per_proc=4)
        layout = machine.layout(8, "hybrid")  # 2 procs
        sim = Simulator(frozenset({"msg_arrive"}))
        report = RunReport(makespan=0.0, breakdown=Breakdown(), total_cores=8)
        tr = Transport(sim, _mini_router(), machine, layout, report,
                       rcfg=RecoveryConfig())
        return sim, tr

    def test_checkpointed_sends_reset_and_retransmit(self):
        sim, tr = self._transport()
        pid = ProgramId(0, 0)
        s = Stream(src=pid, dst=ProgramId(1, 0), nbytes=64)
        tr.send(s, pid, 0, 0.0, 0, 1)
        ps = tr.pending[s.uid]
        ps.retries, ps.timeout = 3, 1.0  # pretend backoff had escalated
        attempt = ps.attempt
        events_before = len(sim)
        ck = {pid: Checkpoint(state=None, inbox=[], pending={s.uid: s})}
        tr.rearm_after_failover({pid}, ck, now=1e-3)
        assert s.uid in tr.pending
        assert ps.retries == 0  # retry budget restarts with the new owner
        assert ps.timeout == RecoveryConfig().ack_timeout  # backoff reset
        assert ps.attempt == attempt + 1  # stale timers lazily cancelled
        assert len(sim) == events_before + 2  # fresh msg_arrive + timer

    def test_post_snapshot_sends_are_dropped(self):
        sim, tr = self._transport()
        pid = ProgramId(0, 0)
        s1 = Stream(src=pid, dst=ProgramId(1, 0), nbytes=64)
        s2 = Stream(src=pid, dst=ProgramId(1, 0), nbytes=64)
        tr.send(s1, pid, 0, 0.0, 0, 1)
        tr.send(s2, pid, 0, 0.0, 0, 1)
        # Snapshot knows only s1; s2 was sent after the checkpoint.
        ck = {pid: Checkpoint(state=None, inbox=[], pending={s1.uid: s1})}
        tr.rearm_after_failover({pid}, ck, now=1e-3)
        assert s1.uid in tr.pending
        assert s2.uid not in tr.pending  # replay will regenerate it

    def test_never_checkpointed_program_drops_all_sends(self):
        sim, tr = self._transport()
        pid = ProgramId(0, 0)
        s = Stream(src=pid, dst=ProgramId(1, 0), nbytes=64)
        tr.send(s, pid, 0, 0.0, 0, 1)
        tr.rearm_after_failover({pid}, {pid: None}, now=1e-3)
        assert not tr.pending

    def test_unmoved_programs_untouched(self):
        sim, tr = self._transport()
        pid, other = ProgramId(0, 0), ProgramId(1, 0)
        s = Stream(src=other, dst=pid, nbytes=64)
        tr.send(s, other, 0, 0.0, 1, 0)
        ps = tr.pending[s.uid]
        ps.retries = 2
        tr.rearm_after_failover({pid}, {pid: None}, now=1e-3)
        assert tr.pending[s.uid].retries == 2  # untouched


# -- overlapping stragglers end-to-end -------------------------------------------


class TestOverlappingStragglers:
    def test_overlapping_windows_compound_in_a_real_run(self):
        # Multiplicative semantics end-to-end: a run whose windows
        # overlap is slower than the same windows applied one at a
        # time, and the flux stays bitwise exact throughout.
        ref = _reference_phi()
        w1 = StragglerWindow(1, 0.0, 500e-6, 3.0)
        w2 = StragglerWindow(1, 0.0, 500e-6, 2.0)
        runs = {}
        for name, windows in {
            "one": (w1,), "other": (w2,), "both": (w1, w2),
        }.items():
            rep, phi = _run(FaultPlan(stragglers=windows))
            assert_array_equal(phi, ref)
            runs[name] = rep.makespan
        assert runs["both"] > runs["one"] > runs["other"]


# -- chaos campaign driver -------------------------------------------------------


class TestChaosCampaign:
    def test_plan_is_pure_function_of_seed_and_nprocs(self):
        a = random_fault_plan(11, 4)
        b = random_fault_plan(11, 4)
        assert a == b  # dataclass equality: the reproducibility contract
        assert random_fault_plan(12, 4) != a
        assert random_fault_plan(11, 8) != a

    def test_generated_plans_always_leave_a_survivor(self):
        space = ChaosSpace(intensity=1.0)
        for nprocs in (2, 4, 8):
            for seed in range(60):
                plan = random_fault_plan(seed, nprocs, space)
                assert plan.max_casualties() < nprocs
                plan.validate(nprocs, [])  # no crashes -> programs unused

    def test_generated_plans_cover_every_fault_class(self):
        space = ChaosSpace(intensity=1.0)
        shapes = [random_fault_plan(seed, 8, space) for seed in range(40)]
        assert any(p.crashes for p in shapes)
        assert any(c.cascades() for p in shapes for c in p.crashes)
        assert any(p.stragglers for p in shapes)
        assert any(p.partitions for p in shapes)
        assert all(p.p_drop > 0 and p.p_corrupt > 0 for p in shapes)

    def test_space_toggles_disable_classes(self):
        space = ChaosSpace(intensity=1.0, crashes=False, partitions=False,
                           corrupt=False)
        for seed in range(20):
            plan = random_fault_plan(seed, 4, space)
            assert not plan.crashes and not plan.partitions
            assert plan.p_corrupt == 0.0

    def test_small_campaign_bitwise_exact(self):
        res = run_campaign(range(2), kinds=("structured",),
                           modes=("hybrid",))
        assert res.total == 2
        assert res.passed == 2
        assert res.stalls == 0
        summary = res.summary()
        assert summary["exact"] == 2
        assert summary["cases"][0]["plan"]  # plan shape recorded

    def test_run_case_reports_stall_instead_of_raising(self, monkeypatch):
        import repro.chaos as chaos

        def wedge(seed, nprocs, space):
            return FaultPlan(
                partitions=(LinkPartition(0, 1, 50e-6, math.inf),), seed=3
            )

        monkeypatch.setattr(chaos, "random_fault_plan", wedge)
        case = run_case("structured", "hybrid", 0)
        assert case.stalled and not case.ok
        assert "partitioned" in case.error

"""Tests for SweepPatchProgram (Listing 1) executed on the serial engine."""

import pytest

from repro.core import SerialEngine
from repro.framework import PatchSet
from repro.mesh import cube_structured, disk_tri_mesh
from repro.sweep import SweepTopology, apply_priorities, level_symmetric
from repro.sweep.sweep_program import SweepPatchProgram


def _programs(pset, quad, grain, record=False, strategy="fifo+fifo"):
    topo = SweepTopology(pset, quad)
    static = apply_priorities(topo, strategy)
    progs = []
    for (p, a), g in topo.graphs.items():
        progs.append(
            SweepPatchProgram(
                g,
                cells_global=pset.patches[p].cells,
                grain=grain,
                static_priority=static[(p, a)],
                record_clusters=record,
            )
        )
    return topo, progs


def _run(progs):
    eng = SerialEngine()
    for p in progs:
        eng.add_program(p)
    stats = eng.run()
    return eng, stats


@pytest.fixture(scope="module")
def small_pset():
    return PatchSet.from_structured(cube_structured(6), (3, 3, 3), nprocs=2)


class TestSweepCompletion:
    @pytest.mark.parametrize("grain", [1, 4, 27, 1000])
    def test_all_vertices_swept(self, small_pset, grain):
        topo, progs = _programs(small_pset, level_symmetric(2), grain)
        _run(progs)
        for prog in progs:
            assert prog.remaining_workload() == 0

    def test_grain_bounds_cluster_size(self, small_pset):
        topo, progs = _programs(
            small_pset, level_symmetric(2), grain=5, record=True
        )
        _run(progs)
        for prog in progs:
            assert max(len(c) for c in prog.clusters) <= 5

    def test_grain_reduces_executions(self, small_pset):
        _, progs1 = _programs(small_pset, level_symmetric(2), grain=1)
        _, stats1 = _run(progs1)
        _, progsN = _programs(small_pset, level_symmetric(2), grain=27)
        _, statsN = _run(progsN)
        assert statsN.executions < stats1.executions

    def test_clustering_aggregates_streams(self, small_pset):
        """Bigger grain means fewer, larger streams (Sec. V-C)."""
        _, progs1 = _programs(small_pset, level_symmetric(2), grain=1)
        _, stats1 = _run(progs1)
        _, progsN = _programs(small_pset, level_symmetric(2), grain=27)
        _, statsN = _run(progsN)
        assert statsN.streams < stats1.streams
        assert statsN.stream_items == stats1.stream_items  # same data

    def test_unstructured_sweep_completes(self):
        mesh = disk_tri_mesh(7)
        pset = PatchSet.from_unstructured(mesh, 25, nprocs=2)
        topo, progs = _programs(pset, level_symmetric(4), grain=8)
        _run(progs)
        assert all(p.remaining_workload() == 0 for p in progs)


class TestClusterValidity:
    def test_clusters_in_topological_order(self, small_pset):
        """Within the recorded execution, no vertex is solved before
        all its upwind neighbours (local and remote)."""
        topo, progs = _programs(
            small_pset, level_symmetric(2), grain=6, record=True
        )
        _run(progs)
        # Rebuild a global solve order and verify edges.
        # Serial engine executes programs one at a time, so concatenate
        # per-program clusters in the order of stream causality: verify
        # per-patch local constraints instead (remote order is enforced
        # by count semantics, checked via remaining_workload == 0).
        for prog in progs:
            g = prog.graph
            pos = {}
            t = 0
            for cluster in prog.clusters:
                for v in cluster:
                    pos[v] = t
                    t += 1
            for v in range(g.n_local):
                for i in range(g.dl_indptr[v], g.dl_indptr[v + 1]):
                    assert pos[v] < pos[g.dl_target[i]]

    def test_solve_fn_sees_dependency_order(self, small_pset):
        """The solve callback receives cells only after their upwind
        cells (in the same angle) were already passed to it."""
        quad = level_symmetric(2)
        topo = SweepTopology(small_pset, quad)
        apply_priorities(topo, "fifo+fifo")
        seen: dict[int, set] = {a: set() for a in range(quad.num_angles)}
        violations = []

        from repro.framework import build_interfaces
        from repro.sweep import directed_edges

        it = build_interfaces(small_pset.mesh)
        upwind = {}
        for a in range(quad.num_angles):
            u, v = directed_edges(it, quad.directions[a])
            up = {}
            for x, y in zip(u.tolist(), v.tolist()):
                up.setdefault(y, []).append(x)
            upwind[a] = up

        def solve(cells, angle):
            for c in cells.tolist():
                for u in upwind[angle].get(c, []):
                    if u not in seen[angle]:
                        violations.append((angle, u, c))
                seen[angle].add(c)

        progs = []
        for (p, a), g in topo.graphs.items():
            progs.append(
                SweepPatchProgram(
                    g,
                    cells_global=small_pset.patches[p].cells,
                    grain=9,
                    solve_fn=solve,
                )
            )
        _run(progs)
        assert violations == []
        assert all(
            len(seen[a]) == small_pset.mesh.num_cells
            for a in range(quad.num_angles)
        )


class TestProgramMechanics:
    def test_invalid_grain(self, small_pset):
        topo = SweepTopology(small_pset, level_symmetric(2))
        g = topo.graphs[(0, 0)]
        with pytest.raises(ValueError):
            SweepPatchProgram(g, small_pset.patches[0].cells, grain=0)

    def test_counters_reported_once(self, small_pset):
        topo, progs = _programs(small_pset, level_symmetric(2), grain=1000)
        eng, _ = _run(progs)
        # After the run, counters were consumed by nobody (serial engine
        # ignores them): last_run_counters drains.
        c1 = progs[0].last_run_counters()
        c2 = progs[0].last_run_counters()
        assert c1["vertices"] > 0
        assert c2["vertices"] == 0

    def test_dynamic_priority_uses_heap_head(self, small_pset):
        topo = SweepTopology(small_pset, level_symmetric(2))
        apply_priorities(topo, "slbd+slbd")
        g = topo.graphs[(0, 0)]
        prog = SweepPatchProgram(
            g,
            small_pset.patches[0].cells,
            grain=4,
            static_priority=10.0,
            dynamic_priority=True,
        )
        prog.init()
        base = SweepPatchProgram(
            g, small_pset.patches[0].cells, grain=4, static_priority=10.0
        )
        base.init()
        assert prog.priority() != base.priority() or not prog._heap

    def test_partial_computation_fig4(self):
        """Two patches with interleaved dependencies both need several
        executions (Fig. 4's point: patch programs must be reentrant)."""
        mesh = disk_tri_mesh(8)
        pset = PatchSet.from_unstructured(mesh, mesh.num_cells // 2 + 1, nprocs=1)
        assert pset.num_patches == 2
        topo, progs = _programs(pset, level_symmetric(2), grain=10**9)
        _, stats = _run(progs)
        # With unbounded grain, pure block decompositions would need 1
        # execution per program; interleaving forces re-execution.
        assert stats.executions > len(progs)

"""Patches and patch sets - the JAxMIN mesh-management analogue.

A *patch* is a well-defined subdomain of the mesh (Sec. II-B of the
paper): a contiguous collection of cells with complete knowledge of its
own mesh entities and, through ghost cells, of its neighbourhood.  A
:class:`PatchSet` is the global decomposition: every cell belongs to
exactly one patch and every patch to exactly one process.

Both mesh families share one representation here: a patch stores the
*global linear cell ids* it owns (for structured meshes these are the
C-order ids of its box).  This uniformity is what lets the sweep
component treat structured and unstructured meshes identically, which
is the point of the patch abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..mesh.box import Box
from ..mesh.structured import StructuredMesh
from ..mesh.unstructured import UnstructuredMesh
from ..partition.structured import assign_patches_sfc, patchify_structured
from ..partition.unstructured import decompose_unstructured

__all__ = ["Patch", "PatchSet"]


@dataclass
class Patch:
    """One mesh subdomain: globally-indexed cells owned by one process."""

    id: int
    proc: int
    cells: np.ndarray  # global linear cell ids, local order = array order
    box: Box | None = None  # set for structured patches

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Patch(id={self.id}, proc={self.proc}, cells={self.num_cells})"


@dataclass
class PatchSet:
    """Global patch decomposition of a mesh."""

    mesh: StructuredMesh | UnstructuredMesh
    patches: list[Patch]
    cell_patch: np.ndarray  # (num_cells,) patch id per global cell
    cell_local: np.ndarray  # (num_cells,) local index within owning patch

    @property
    def num_patches(self) -> int:
        return len(self.patches)

    @property
    def num_procs(self) -> int:
        return int(max(p.proc for p in self.patches)) + 1

    @property
    def patch_proc(self) -> np.ndarray:
        return np.array([p.proc for p in self.patches], dtype=np.int64)

    def patches_of_proc(self, proc: int) -> list[Patch]:
        return [p for p in self.patches if p.proc == proc]

    def validate(self) -> None:
        """Check the patch cover: every cell in exactly one patch."""
        seen = np.zeros(self.mesh.num_cells, dtype=np.int64)
        for p in self.patches:
            seen[p.cells] += 1
            if not np.all(self.cell_patch[p.cells] == p.id):
                raise ReproError(f"cell_patch inconsistent for patch {p.id}")
            if not np.all(
                self.cell_local[p.cells] == np.arange(p.num_cells)
            ):
                raise ReproError(f"cell_local inconsistent for patch {p.id}")
        if not np.all(seen == 1):
            raise ReproError("patches do not cover the mesh exactly once")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_structured(
        cls,
        mesh: StructuredMesh,
        patch_shape: tuple[int, ...],
        nprocs: int = 1,
        curve: str = "hilbert",
    ) -> "PatchSet":
        """JAxMIN-style structured decomposition (fixed boxes + SFC ranks)."""
        boxes = patchify_structured(mesh, patch_shape)
        if nprocs > len(boxes):
            raise ReproError(
                f"{nprocs} procs but only {len(boxes)} patches; "
                "shrink patch_shape or procs"
            )
        procs = assign_patches_sfc(boxes, nprocs, curve=curve)
        domain = mesh.domain_box
        cell_patch = np.empty(mesh.num_cells, dtype=np.int64)
        cell_local = np.empty(mesh.num_cells, dtype=np.int64)
        patches = []
        for pid, (b, proc) in enumerate(zip(boxes, procs)):
            idx = b.all_indices()
            # Global C-order linear ids of the patch cells.
            lin = np.ravel_multi_index(idx.T, domain.shape)
            patches.append(Patch(id=pid, proc=int(proc), cells=lin, box=b))
            cell_patch[lin] = pid
            cell_local[lin] = np.arange(len(lin))
        return cls(mesh, patches, cell_patch, cell_local)

    @classmethod
    def from_unstructured(
        cls,
        mesh: UnstructuredMesh,
        patch_size: int,
        nprocs: int = 1,
        method: str = "rcb",
        seed: int = 0,
    ) -> "PatchSet":
        """JSNT-U-style decomposition into ~``patch_size``-cell patches."""
        dec = decompose_unstructured(
            mesh, patch_size, nprocs, method=method, seed=seed
        )
        cell_patch = dec.cell_patch
        cell_local = np.empty(mesh.num_cells, dtype=np.int64)
        patches = []
        for pid in range(dec.num_patches):
            cells = np.nonzero(cell_patch == pid)[0]
            patches.append(
                Patch(id=pid, proc=int(dec.patch_proc[pid]), cells=cells)
            )
            cell_local[cells] = np.arange(len(cells))
        return cls(mesh, patches, cell_patch, cell_local)

    @classmethod
    def single_patch(cls, mesh) -> "PatchSet":
        """Whole mesh as one patch on one process (serial reference)."""
        cells = np.arange(mesh.num_cells, dtype=np.int64)
        box = mesh.domain_box if isinstance(mesh, StructuredMesh) else None
        patch = Patch(id=0, proc=0, cells=cells, box=box)
        return cls(
            mesh,
            [patch],
            np.zeros(mesh.num_cells, dtype=np.int64),
            cells.copy(),
        )

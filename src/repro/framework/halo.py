"""Halo (ghost-cell) exchange between patches.

The BSP super-step's communication phase: every patch sends the owned
values its neighbours need and refreshes its own ghost array.  The
exchange is performed patch-pair by patch-pair (one logical message per
directed neighbour pair, as an MPI implementation would aggregate it)
and returns traffic statistics used by the BSP cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .patch_data import PatchField

__all__ = ["HaloStats", "halo_exchange"]

_FLOAT_BYTES = 8


@dataclass
class HaloStats:
    """Traffic of one halo exchange."""

    messages: int = 0
    values: int = 0
    bytes: int = 0
    inter_proc_messages: int = 0
    inter_proc_bytes: int = 0


def halo_exchange(field: PatchField) -> HaloStats:
    """Refresh every patch's ghost array from the owning patches.

    Returns per-exchange traffic statistics; messages between patches
    on the same process are counted in ``messages`` but not in the
    ``inter_proc_*`` totals (JAxMIN ships those through shared memory).
    """
    pset = field.pset
    stats = HaloStats()
    width = field.groups if field.groups else 1
    for p in pset.patches:
        for q_id, cells in field.recv_maps[p.id].items():
            if len(cells) == 0:
                continue
            q = pset.patches[q_id]
            # q gathers its owned values for p ...
            payload = field.local[q_id][pset.cell_local[cells]]
            # ... and p scatters them into its ghost slots.
            slots = np.array(
                [field.ghost_slot(p.id, c) for c in cells], dtype=np.int64
            )
            field.ghost[p.id][slots] = payload
            stats.messages += 1
            stats.values += len(cells) * width
            nbytes = len(cells) * width * _FLOAT_BYTES
            stats.bytes += nbytes
            if q.proc != p.proc:
                stats.inter_proc_messages += 1
                stats.inter_proc_bytes += nbytes
    return stats

"""JAxMIN-style BSP components.

JAxMIN programs are built from *components*: generic implementations of
computational patterns that users instantiate with an application
kernel (Sec. II-B).  This module provides the patterns the paper names
- initialization, numerical computation, and reduction - executed in
BSP super-steps: all patches compute with previous-step data, then a
halo exchange updates remote copies.

These components serve two roles in the reproduction: they demonstrate
the framework the data-driven abstraction extends, and they are the
substrate of the BSP sweep baseline the motivation section argues
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from .._util import ReproError
from .halo import HaloStats, halo_exchange
from .patch_data import PatchField

__all__ = [
    "InitializeComponent",
    "NumericalComponent",
    "ReductionComponent",
    "BSPExecutor",
    "BSPReport",
]


class InitializeComponent:
    """Fill a field from a function of cell centroids: ``fn(xyz) -> values``."""

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray]):
        self.fn = fn

    def apply(self, fld: PatchField) -> None:
        mesh = fld.pset.mesh
        centers = (
            mesh.cell_centroids
            if hasattr(mesh, "cell_centroids")
            else mesh.cell_centers()
        )
        for p in fld.pset.patches:
            fld.local[p.id] = np.asarray(self.fn(centers[p.cells]), dtype=float)


class NumericalComponent:
    """Per-patch numerical kernel executed once per super-step.

    The kernel signature is ``kernel(patch, local, ghost_cells, ghost)
    -> new_local``; it sees the previous-step local values plus the
    previous-step ghost values, the BSP contract.
    """

    def __init__(self, kernel: Callable):
        self.kernel = kernel

    def apply_superstep(self, fld: PatchField) -> HaloStats:
        new_vals = {}
        for p in fld.pset.patches:
            new_vals[p.id] = np.asarray(
                self.kernel(
                    p, fld.local[p.id], fld.ghost_cells[p.id], fld.ghost[p.id]
                ),
                dtype=float,
            )
            if new_vals[p.id].shape != fld.local[p.id].shape:
                raise ReproError("kernel changed the field shape")
        for pid, v in new_vals.items():
            fld.local[pid] = v
        return halo_exchange(fld)


class ReductionComponent:
    """Global reduction over the owned cells of every patch."""

    def __init__(self, op: str = "sum"):
        if op not in ("sum", "max", "min"):
            raise ReproError(f"unsupported reduction {op!r}")
        self.op = op

    def apply(self, fld: PatchField) -> float:
        parts = [fld.local[p.id] for p in fld.pset.patches]
        stacked = np.concatenate([np.ravel(x) for x in parts])
        return float(getattr(np, self.op)(stacked))


@dataclass
class BSPReport:
    """Outcome of a BSP run: convergence and super-step accounting."""

    supersteps: int
    converged: bool
    residual: float
    halo: HaloStats = field(default_factory=HaloStats)


class BSPExecutor:
    """Run a NumericalComponent in super-steps until a residual converges.

    ``residual_fn(old_global, new_global) -> float`` defaults to the
    max-abs update; the loop stops when it drops below ``tol`` or after
    ``max_steps`` super-steps.
    """

    def __init__(self, tol: float = 1e-8, max_steps: int = 10_000):
        self.tol = tol
        self.max_steps = max_steps

    def run(
        self,
        component: NumericalComponent,
        fld: PatchField,
        residual_fn: Callable[[np.ndarray, np.ndarray], float] | None = None,
    ) -> BSPReport:
        halo_exchange(fld)  # seed ghosts with the initial data
        total = HaloStats()
        res = np.inf
        for step in range(1, self.max_steps + 1):
            old = fld.to_global()
            stats = component.apply_superstep(fld)
            total.messages += stats.messages
            total.values += stats.values
            total.bytes += stats.bytes
            total.inter_proc_messages += stats.inter_proc_messages
            total.inter_proc_bytes += stats.inter_proc_bytes
            new = fld.to_global()
            res = (
                residual_fn(old, new)
                if residual_fn is not None
                else (float(np.max(np.abs(new - old))) if new.size else 0.0)
            )
            if res < self.tol:
                return BSPReport(step, True, res, total)
        return BSPReport(self.max_steps, False, res, total)

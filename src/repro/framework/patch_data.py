"""Patch-distributed cell data with ghost layers.

:class:`PatchField` mirrors JAxMIN's cell-centred patch data: each
patch holds a local array over its own cells plus a ghost array over
the face-adjacent halo cells owned by neighbouring patches.  Ghosts
are refreshed by :func:`repro.framework.halo.halo_exchange`, which also
reports message counts/bytes so BSP cost accounting has real traffic
numbers.

:class:`CellField` is the single-address-space convenience view (one
global array) used by solvers running inside the simulated cluster,
where all ranks share the host process's memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._util import ReproError
from .connectivity import ghost_maps
from .patch import PatchSet

__all__ = ["CellField", "PatchField"]


@dataclass
class CellField:
    """A named field with one value (or group-vector) per global cell."""

    pset: PatchSet
    data: np.ndarray
    name: str = "field"

    @classmethod
    def zeros(cls, pset: PatchSet, groups: int = 0, name: str = "field"):
        shape = (
            (pset.mesh.num_cells,)
            if groups == 0
            else (pset.mesh.num_cells, groups)
        )
        return cls(pset, np.zeros(shape), name)

    def patch_view(self, patch_id: int) -> np.ndarray:
        """Values of the cells owned by ``patch_id`` (a gather, not a view
        in the NumPy sense, since patch cells are scattered globally)."""
        return self.data[self.pset.patches[patch_id].cells]

    def set_patch(self, patch_id: int, values: np.ndarray) -> None:
        self.data[self.pset.patches[patch_id].cells] = values


class PatchField:
    """Distributed field: per-patch local arrays + ghost arrays.

    ``local[p][i]`` is the value at local cell ``i`` of patch ``p``
    (local order = the patch's cell array order).  ``ghost[p]`` holds
    values at the global cells listed in ``ghost_cells[p]``.
    """

    def __init__(self, pset: PatchSet, groups: int = 0, name: str = "field"):
        self.pset = pset
        self.name = name
        self.groups = groups
        gm = ghost_maps(pset)
        self.recv_maps: dict[int, dict[int, np.ndarray]] = gm
        self.local: dict[int, np.ndarray] = {}
        self.ghost_cells: dict[int, np.ndarray] = {}
        self.ghost: dict[int, np.ndarray] = {}
        self._ghost_slot: dict[int, dict[int, int]] = {}
        for p in pset.patches:
            shape = (p.num_cells,) if groups == 0 else (p.num_cells, groups)
            self.local[p.id] = np.zeros(shape)
            cells = (
                np.unique(np.concatenate(list(gm[p.id].values())))
                if gm[p.id]
                else np.zeros(0, dtype=np.int64)
            )
            self.ghost_cells[p.id] = cells
            gshape = (len(cells),) if groups == 0 else (len(cells), groups)
            self.ghost[p.id] = np.zeros(gshape)
            self._ghost_slot[p.id] = {int(c): i for i, c in enumerate(cells)}

    # -- access -----------------------------------------------------------------

    def ghost_slot(self, patch_id: int, global_cell: int) -> int:
        """Ghost-array index of ``global_cell`` within ``patch_id``."""
        try:
            return self._ghost_slot[patch_id][int(global_cell)]
        except KeyError:
            raise ReproError(
                f"cell {global_cell} is not a ghost of patch {patch_id}"
            ) from None

    def value(self, patch_id: int, global_cell: int):
        """Value of ``global_cell`` as seen from ``patch_id`` (local or ghost)."""
        pset = self.pset
        if pset.cell_patch[global_cell] == patch_id:
            return self.local[patch_id][pset.cell_local[global_cell]]
        return self.ghost[patch_id][self.ghost_slot(patch_id, global_cell)]

    # -- conversions -------------------------------------------------------------

    def to_global(self) -> np.ndarray:
        """Assemble the owner values into one global array."""
        n = self.pset.mesh.num_cells
        shape = (n,) if self.groups == 0 else (n, self.groups)
        out = np.zeros(shape)
        for p in self.pset.patches:
            out[p.cells] = self.local[p.id]
        return out

    def from_global(self, data: np.ndarray) -> None:
        """Scatter a global array into the per-patch local arrays."""
        for p in self.pset.patches:
            self.local[p.id] = np.array(data[p.cells])

    def ghost_view_global(self, patch_id: int) -> np.ndarray:
        """Ghost values of ``patch_id`` ordered like ``ghost_cells[patch_id]``."""
        return self.ghost[patch_id]

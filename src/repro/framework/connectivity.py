"""Mesh and patch connectivity tables.

Provides a mesh-family-independent *interface table*: one row per
interior face with the two adjacent global cells, the unit normal
(oriented a -> b) and the face area.  Structured and unstructured
meshes reduce to the same table, which is what allows one sweep-DAG
builder and one halo-exchange implementation to serve both - the crux
of the patch abstraction's "hide the mesh family" promise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..mesh.structured import StructuredMesh
from ..mesh.unstructured import UnstructuredMesh
from .patch import PatchSet

__all__ = [
    "InterfaceTable",
    "BoundaryTable",
    "build_interfaces",
    "build_boundary",
    "patch_adjacency",
    "ghost_maps",
]


@dataclass
class InterfaceTable:
    """All interior faces: ``cell_a`` -> ``cell_b`` with oriented normals."""

    cell_a: np.ndarray  # (n,) global cell ids
    cell_b: np.ndarray  # (n,)
    normal: np.ndarray  # (n, dim) unit normal pointing a -> b
    area: np.ndarray  # (n,)
    face_id: np.ndarray | None = None  # unstructured face ids (None: structured)

    @property
    def num_interfaces(self) -> int:
        return len(self.cell_a)


@dataclass
class BoundaryTable:
    """All boundary faces: owning cell, outward normal and centroid."""

    cell: np.ndarray
    normal: np.ndarray
    area: np.ndarray
    centroid: np.ndarray | None = None
    face_id: np.ndarray | None = None

    @property
    def num_faces(self) -> int:
        return len(self.cell)


def build_interfaces(mesh) -> InterfaceTable:
    """Interface table for a structured or unstructured mesh."""
    if isinstance(mesh, StructuredMesh):
        return _structured_interfaces(mesh)
    if isinstance(mesh, UnstructuredMesh):
        return _unstructured_interfaces(mesh)
    raise ReproError(f"unsupported mesh type {type(mesh)!r}")


def build_boundary(mesh) -> BoundaryTable:
    """Boundary-face table for a structured or unstructured mesh."""
    if isinstance(mesh, StructuredMesh):
        return _structured_boundary(mesh)
    if isinstance(mesh, UnstructuredMesh):
        return _unstructured_boundary(mesh)
    raise ReproError(f"unsupported mesh type {type(mesh)!r}")


# -- structured ------------------------------------------------------------------


def _axis_cells(shape, ax, lo_slice) -> np.ndarray:
    idx = [np.arange(n) for n in shape]
    idx[ax] = np.arange(shape[ax] - 1) if lo_slice else np.arange(1, shape[ax])
    grids = np.meshgrid(*idx, indexing="ij")
    multi = np.stack([g.ravel() for g in grids], axis=0)
    return np.ravel_multi_index(multi, shape)


def _structured_interfaces(mesh: StructuredMesh) -> InterfaceTable:
    nd = mesh.ndim
    a_list, b_list, n_list, area_list = [], [], [], []
    for ax in range(nd):
        if mesh.shape[ax] < 2:
            continue
        a = _axis_cells(mesh.shape, ax, True)
        b = _axis_cells(mesh.shape, ax, False)
        a_list.append(a)
        b_list.append(b)
        n = np.zeros((len(a), nd))
        n[:, ax] = 1.0
        n_list.append(n)
        area_list.append(np.full(len(a), mesh.face_area(ax)))
    if not a_list:
        return InterfaceTable(
            cell_a=np.zeros(0, dtype=np.int64),
            cell_b=np.zeros(0, dtype=np.int64),
            normal=np.zeros((0, nd)),
            area=np.zeros(0),
        )
    return InterfaceTable(
        cell_a=np.concatenate(a_list),
        cell_b=np.concatenate(b_list),
        normal=np.concatenate(n_list, axis=0),
        area=np.concatenate(area_list),
    )


def _structured_boundary(mesh: StructuredMesh) -> BoundaryTable:
    nd = mesh.ndim
    cells, normals, areas, cents = [], [], [], []
    for ax in range(nd):
        for side, pos in ((-1.0, 0), (1.0, mesh.shape[ax] - 1)):
            idx = [np.arange(n) for n in mesh.shape]
            idx[ax] = np.array([pos])
            grids = np.meshgrid(*idx, indexing="ij")
            multi = np.stack([g.ravel() for g in grids], axis=0)
            lin = np.ravel_multi_index(multi, mesh.shape)
            cells.append(lin)
            n = np.zeros((len(lin), nd))
            n[:, ax] = side
            normals.append(n)
            areas.append(np.full(len(lin), mesh.face_area(ax)))
            # Face centroid: the cell centre pushed to the face plane.
            c = np.stack(
                [
                    mesh.origin[d] + (multi[d] + 0.5) * mesh.spacing[d]
                    for d in range(nd)
                ],
                axis=1,
            )
            c[:, ax] += side * 0.5 * mesh.spacing[ax]
            cents.append(c)
    return BoundaryTable(
        cell=np.concatenate(cells),
        normal=np.concatenate(normals, axis=0),
        area=np.concatenate(areas),
        centroid=np.concatenate(cents, axis=0),
    )


# -- unstructured -----------------------------------------------------------------


def _unstructured_interfaces(mesh: UnstructuredMesh) -> InterfaceTable:
    interior = np.nonzero(mesh.face_cells[:, 1] >= 0)[0]
    return InterfaceTable(
        cell_a=mesh.face_cells[interior, 0].copy(),
        cell_b=mesh.face_cells[interior, 1].copy(),
        normal=mesh.face_normals[interior].copy(),
        area=mesh.face_areas[interior].copy(),
        face_id=interior,
    )


def _unstructured_boundary(mesh: UnstructuredMesh) -> BoundaryTable:
    bnd = mesh.boundary_faces
    return BoundaryTable(
        cell=mesh.face_cells[bnd, 0].copy(),
        normal=mesh.face_normals[bnd].copy(),
        area=mesh.face_areas[bnd].copy(),
        centroid=mesh.face_centroids[bnd].copy(),
        face_id=bnd,
    )


# -- patch-level connectivity -------------------------------------------------------


def patch_adjacency(
    pset: PatchSet, interfaces: InterfaceTable | None = None
) -> dict[int, np.ndarray]:
    """Neighbour patch ids per patch (patches sharing at least one face)."""
    if interfaces is None:
        interfaces = build_interfaces(pset.mesh)
    pa = pset.cell_patch[interfaces.cell_a]
    pb = pset.cell_patch[interfaces.cell_b]
    cross = pa != pb
    pairs = np.stack([pa[cross], pb[cross]], axis=1)
    out: dict[int, set] = {p.id: set() for p in pset.patches}
    for x, y in np.unique(pairs, axis=0) if len(pairs) else []:
        out[int(x)].add(int(y))
        out[int(y)].add(int(x))
    return {k: np.array(sorted(v), dtype=np.int64) for k, v in out.items()}


def ghost_maps(
    pset: PatchSet, interfaces: InterfaceTable | None = None
) -> dict[int, dict[int, np.ndarray]]:
    """Ghost-cell maps: ``ghost_maps(ps)[p][q]`` = global cells owned by
    patch ``q`` that patch ``p`` needs as ghosts (face-adjacent halo)."""
    if interfaces is None:
        interfaces = build_interfaces(pset.mesh)
    pa = pset.cell_patch[interfaces.cell_a]
    pb = pset.cell_patch[interfaces.cell_b]
    cross = pa != pb
    # Directed needs: (needer, owner, owned cell)
    needer = np.concatenate([pa[cross], pb[cross]])
    owner = np.concatenate([pb[cross], pa[cross]])
    cell = np.concatenate(
        [interfaces.cell_b[cross], interfaces.cell_a[cross]]
    )
    out: dict[int, dict[int, np.ndarray]] = {p.id: {} for p in pset.patches}
    if len(needer) == 0:
        return out
    order = np.lexsort((cell, owner, needer))
    needer, owner, cell = needer[order], owner[order], cell[order]
    keys = needer * pset.num_patches + owner
    starts = np.nonzero(np.diff(keys, prepend=keys[0] - 1))[0]
    bounds = np.append(starts, len(keys))
    for s, e in zip(bounds[:-1], bounds[1:]):
        p, q = int(needer[s]), int(owner[s])
        out[p][q] = np.unique(cell[s:e])
    return out

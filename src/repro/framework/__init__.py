"""Patch-based application framework (JAxMIN analogue, systems S5-S6)."""

from .components import (
    BSPExecutor,
    BSPReport,
    InitializeComponent,
    NumericalComponent,
    ReductionComponent,
)
from .connectivity import (
    BoundaryTable,
    InterfaceTable,
    build_boundary,
    build_interfaces,
    ghost_maps,
    patch_adjacency,
)
from .halo import HaloStats, halo_exchange
from .patch import Patch, PatchSet
from .patch_data import CellField, PatchField

__all__ = [
    "Patch",
    "PatchSet",
    "CellField",
    "PatchField",
    "InterfaceTable",
    "BoundaryTable",
    "build_interfaces",
    "build_boundary",
    "patch_adjacency",
    "ghost_maps",
    "HaloStats",
    "halo_exchange",
    "InitializeComponent",
    "NumericalComponent",
    "ReductionComponent",
    "BSPExecutor",
    "BSPReport",
]

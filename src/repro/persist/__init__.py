"""Durable execution: crash-consistent snapshot/restore and the WAL.

Three pieces make paper-scale runs and long service campaigns survive
a host crash:

* :mod:`repro.persist.codec` - the versioned, CRC-framed snapshot
  codec (deterministic bytes, no pickle) plus atomic file publishing;
* :mod:`repro.persist.snapshot` - generation-rotated snapshot storage
  with corrupt-latest fallback, consumed by the runtime's ``persist``
  hook;
* :mod:`repro.persist.wal` - the service layer's write-ahead journal
  with torn-tail detection;
* :mod:`repro.persist.killer` - the host-crash injection harness the
  durability tests and benchmarks drive.

Layering: this package sits *beside* the runtime (it imports
``repro.runtime`` types for the codec vocabulary; the runtime never
imports it - the engine consumes the snapshot manager duck-typed).
"""

from .codec import (
    CODEC_VERSION,
    CodecError,
    atomic_write,
    decode,
    encode,
    frame,
    unframe,
)
from .killer import kill_and_resume, report_fingerprint
from .snapshot import FluxArrayState, SnapshotManager
from .wal import WalError, WriteAheadLog, replay_wal

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "FluxArrayState",
    "SnapshotManager",
    "WalError",
    "WriteAheadLog",
    "atomic_write",
    "decode",
    "encode",
    "frame",
    "kill_and_resume",
    "replay_wal",
    "report_fingerprint",
    "unframe",
]

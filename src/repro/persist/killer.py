"""Host-crash injection harness: kill a run, restart it from disk.

The durability contract is *process-level*: the simulated cluster's
fault tolerance (crashes, drops, partitions) already lives in the
runtime; this module kills the **host process model** instead - the
event loop is cut dead at a seeded popped-event index (no unwinding,
no goodbye snapshot, exactly what ``kill -9`` leaves behind), then a
completely fresh composition restarts from whatever made it to disk
and must finish bitwise-identical to the uninterrupted run.

``factory`` rebuilds the world from scratch - runtime, programs,
patch map, and the host-owned flux arrays - exactly as a restarted
process would re-execute its setup code.  It is called once for the
doomed run and once for the resumed one, so no Python object survives
the "crash".
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Callable

import numpy as np

from ..runtime.engine_des import HostKilled
from .snapshot import SnapshotManager

__all__ = ["kill_and_resume", "report_fingerprint"]

#: factory() -> (runtime, programs, patch_proc, app_state | None)
Factory = Callable[[], tuple]


def kill_and_resume(
    factory: Factory,
    kill_at: int,
    every: int,
    workdir: str | os.PathLike,
    keep: int = 2,
    fsync: bool = False,
) -> tuple[Any, SnapshotManager, bool]:
    """Run to a seeded kill point, then restart from disk.

    Returns ``(report, manager, killed)``: the final report (of the
    resumed run when the kill fired, of the uninterrupted run when the
    job finished before ``kill_at``), the snapshot manager of the run
    that produced it, and whether the kill actually fired.

    If the kill lands before the first snapshot cadence, the restarted
    process finds an empty snapshot directory and simply re-runs from
    scratch - the degenerate resume, still bitwise-exact.
    """
    rt, progs, patch_proc, app = factory()
    mgr = SnapshotManager(
        workdir, every=every, keep=keep, kill_at=kill_at,
        app_state=app, fsync=fsync,
    )
    try:
        report = rt.run(progs, patch_proc, persist=mgr)
        return report, mgr, False  # finished before the kill point
    except HostKilled:
        pass
    # A fresh process: rebuild everything, trust only the disk.
    rt2, progs2, pp2, app2 = factory()
    mgr2 = SnapshotManager(
        workdir, every=every, keep=keep, app_state=app2, fsync=fsync,
    )
    state = mgr2.load_latest()
    if state is None:
        report = rt2.run(progs2, pp2, persist=mgr2)
    else:
        report = rt2.resume(progs2, pp2, state, persist=mgr2)
    return report, mgr2, True


def report_fingerprint(report, flux: np.ndarray | None = None) -> str:
    """Bitwise fingerprint of a run outcome (harness-side oracle).

    Hashes the exact float hex of the makespan and breakdown, every
    counter the golden fixtures pin, and the raw flux bytes.  Snapshot
    accounting (``snapshots``/``snapshot_bytes``) is deliberately
    excluded: cadence bookkeeping differs between a straight run and a
    kill-resume pair by construction, while everything simulated must
    not.
    """
    parts = [
        report.makespan.hex(),
        report.failover_time.hex(),
        repr(sorted(
            (c, v.hex()) for c, v in report.breakdown.by_category.items()
        )),
    ]
    for f in (
        "events", "executions", "messages", "message_bytes", "local_streams",
        "stream_items", "vertices_solved", "drops", "duplicates", "retries",
        "timeouts", "reexecutions", "checkpoints", "crashes", "nacks",
        "corruptions", "hedged_sends", "speculative_launches", "demotions",
        "forwards", "backpressure_stalls",
    ):
        parts.append(f"{f}={getattr(report, f)}")
    h = hashlib.sha256("|".join(parts).encode())
    if flux is not None:
        h.update(np.ascontiguousarray(flux).tobytes())
    return h.hexdigest()

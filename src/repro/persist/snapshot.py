"""Snapshot generations: rotation, pruning and corrupt-tail fallback.

A :class:`SnapshotManager` owns one directory of snapshot generations
(``snap-00000001.rsnap``, ``snap-00000002.rsnap``, ...).  The runtime
hands it fully-built state dicts on an event-count cadence; each save
is encoded through the versioned codec, CRC-framed, and published with
the atomic tmp-fsync-rename dance, then old generations beyond ``keep``
are pruned.  On restart :meth:`load_latest` walks generations newest
first and returns the first one that decodes cleanly - a snapshot torn
or corrupted by the crash falls back to the previous generation instead
of wedging the resume.

The manager doubles as the duck-typed persistence hook the engine's
event loop consumes: ``every`` (snapshot cadence in popped events),
``kill_at`` (crash-injection point for the durability harness), an
optional ``app_state`` adapter for host-owned arrays the simulated
programs write through closures (the solver's per-angle flux arrays),
and ``save()``.
"""

from __future__ import annotations

import os
import re
from typing import Any

import numpy as np

from .._util import ReproError
from .codec import CodecError, atomic_write, decode, encode, frame, unframe

__all__ = ["SnapshotManager", "FluxArrayState"]

_SNAP_RE = re.compile(r"^snap-(\d{8})\.rsnap$")


class FluxArrayState:
    """App-state adapter for the solver's host-owned flux arrays.

    ``SnSolver.build_programs`` returns ``faces[a] = (psi_faces,
    psi_cell)`` pairs that program solve callbacks write *through
    closures*: the arrays live outside every runtime layer, so the
    runtime snapshot cannot see them.  This adapter captures copies at
    snapshot time and restores them **in place** into the freshly built
    arrays of the resumed process, so the closures keep pointing at the
    right storage.
    """

    def __init__(self, faces: dict):
        self.faces = faces

    def capture(self) -> dict:
        return {
            int(a): (pf.copy(), pc.copy())
            for a, (pf, pc) in self.faces.items()
        }

    def restore(self, saved: dict) -> None:
        for a, (pf, pc) in self.faces.items():
            sf, sc = saved[int(a)]
            np.copyto(pf, sf)
            np.copyto(pc, sc)


class SnapshotManager:
    """Generation-rotated crash-consistent snapshot store."""

    def __init__(
        self,
        directory: str | os.PathLike,
        every: int = 2000,
        keep: int = 2,
        kill_at: int | None = None,
        app_state: Any = None,
        fsync: bool = True,
    ):
        if every < 1:
            raise ReproError("snapshot cadence must be >= 1 events")
        if keep < 1:
            raise ReproError("must keep at least one snapshot generation")
        self.directory = os.fspath(directory)
        self.every = every
        self.keep = keep
        self.kill_at = kill_at
        self.app_state = app_state
        self.fsync = fsync
        os.makedirs(self.directory, exist_ok=True)
        self.snapshots = 0  # saves performed by this manager
        self.bytes_written = 0
        self._gen = self._latest_gen()

    def _generations(self) -> list[tuple[int, str]]:
        """On-disk generations as sorted ``(gen, filename)`` pairs."""
        out = []
        for name in os.listdir(self.directory):
            m = _SNAP_RE.match(name)
            if m:
                out.append((int(m.group(1)), name))
        out.sort()
        return out

    def _latest_gen(self) -> int:
        gens = self._generations()
        return gens[-1][0] if gens else 0

    def _path(self, gen: int) -> str:
        return os.path.join(self.directory, f"snap-{gen:08d}.rsnap")

    def save(self, state: Any) -> int:
        """Publish one snapshot generation; returns bytes written."""
        self._gen += 1
        data = frame(encode(state))
        n = atomic_write(self._path(self._gen), data, fsync=self.fsync)
        self.snapshots += 1
        self.bytes_written += n
        for gen, name in self._generations():
            if gen <= self._gen - self.keep:
                os.unlink(os.path.join(self.directory, name))
        return n

    def load_latest(self) -> Any | None:
        """Newest decodable snapshot state, or None when none exists.

        A generation that fails magic/CRC/decode checks (torn by the
        crash, or corrupted on disk) is skipped and the previous
        generation is tried - the fallback the durability harness
        exercises explicitly.
        """
        for gen, name in reversed(self._generations()):
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as f:
                    _, payload = unframe(f.read())
                return decode(payload)
            except (OSError, CodecError):
                continue
        return None

"""Versioned, CRC-framed snapshot codec (no pickle).

Snapshots and WAL records must be byte-stable: the same logical state
always encodes to the same bytes, so a resumed run can be compared
bitwise against its uninterrupted reference and a journal can be
replayed record-for-record.  ``pickle`` cannot promise that (memo ids
depend on object identity, set iteration order on hash seeds), so this
module hand-encodes a small closed vocabulary of types:

* scalars: ``None``, ``bool``, ``int`` (arbitrary precision), ``float``
  (exact 8-byte IEEE double), ``str``, ``bytes``;
* containers: ``tuple`` and ``list`` (distinguished - heap entries are
  tuples), ``dict`` in *insertion order* (runtime dicts like the
  transport's pending map are ordered state), ``set``/``frozenset``
  serialized **sorted** (membership-only state; an unsortable set is a
  hard error rather than a nondeterministic stream);
* ``numpy.ndarray`` as ``dtype.str`` + shape + C-order bytes;
* runtime vocabulary: :class:`~repro.core.stream.ProgramId` and
  :class:`~repro.core.stream.Stream`, :class:`~repro.core.
  patch_program.ProgramState`, and the frozen fault-plan dataclasses
  (rebuilt through their constructors so validation and cached hashes
  are re-established on load).

Every payload travels inside a CRC-framed envelope -
``MAGIC | version | crc32 | length | payload`` - so torn or corrupted
files are detected before a single byte is interpreted, and
:func:`atomic_write` publishes files with the tmp -> fsync -> rename
-> fsync-dir dance so a host crash never exposes a half-written
snapshot under the final name.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any

import numpy as np

from .._util import ReproError
from ..core.patch_program import ProgramState
from ..core.stream import ProgramId, Stream
from ..runtime.faults import CrashFault, FaultPlan, LinkPartition, StragglerWindow

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "encode",
    "decode",
    "frame",
    "unframe",
    "atomic_write",
]

#: Bumped whenever the wire format changes; readers reject newer frames.
CODEC_VERSION = 1

#: Frame magic: identifies a repro persist envelope.
MAGIC = b"RPRS"

_HEADER = struct.Struct(">4sHIQ")  # magic, version, crc32, payload length
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class CodecError(ReproError):
    """Malformed, truncated or corrupt persisted bytes."""


#: Frozen dataclasses rebuilt through their (validating) constructors.
_DATACLASSES: dict[str, type] = {
    "CrashFault": CrashFault,
    "StragglerWindow": StragglerWindow,
    "LinkPartition": LinkPartition,
    "FaultPlan": FaultPlan,
}


def _encode_into(buf: bytearray, obj: Any) -> None:
    if obj is None:
        buf += b"N"
        return
    t = type(obj)
    if t is bool:
        buf += b"T" if obj else b"F"
        return
    if t is int:
        if _I64_MIN <= obj <= _I64_MAX:
            buf += b"i"
            buf += _I64.pack(obj)
        else:
            # Arbitrary-precision path (e.g. PCG64's 128-bit state).
            n = (obj.bit_length() + 8) // 8  # room for the sign bit
            raw = obj.to_bytes(n, "big", signed=True)
            buf += b"I"
            buf += _U32.pack(len(raw))
            buf += raw
        return
    if t is float:
        buf += b"f"
        buf += _F64.pack(obj)
        return
    if t is str:
        raw = obj.encode("utf-8")
        buf += b"s"
        buf += _U32.pack(len(raw))
        buf += raw
        return
    if t is bytes:
        buf += b"b"
        buf += _U64.pack(len(obj))
        buf += obj
        return
    if t is tuple or t is list:
        buf += b"t" if t is tuple else b"l"
        buf += _U32.pack(len(obj))
        for item in obj:
            _encode_into(buf, item)
        return
    if t is dict:
        buf += b"d"
        buf += _U32.pack(len(obj))
        for k, v in obj.items():  # insertion order IS the state
            _encode_into(buf, k)
            _encode_into(buf, v)
        return
    if t is set or t is frozenset:
        buf += b"S" if t is set else b"Z"
        buf += _U32.pack(len(obj))
        try:
            items = sorted(obj)
        except TypeError as e:  # pragma: no cover - defensive
            raise CodecError(
                f"cannot serialize an unsortable {t.__name__}: {e}"
            ) from e
        for item in items:
            _encode_into(buf, item)
        return
    if isinstance(obj, np.ndarray):
        raw = np.ascontiguousarray(obj).tobytes()
        buf += b"a"
        _encode_into(buf, obj.dtype.str)
        _encode_into(buf, tuple(int(n) for n in obj.shape))
        buf += _U64.pack(len(raw))
        buf += raw
        return
    if t is ProgramId:
        buf += b"P"
        _encode_into(buf, obj.patch)
        _encode_into(buf, obj.task)
        return
    if t is Stream:
        buf += b"M"
        for v in (obj.src, obj.dst, obj.payload, obj.items, obj.nbytes,
                  obj.seq, obj.epoch, obj.checksum, obj.dsti):
            _encode_into(buf, v)
        return
    if t is ProgramState:
        buf += b"E"
        _encode_into(buf, obj.value)
        return
    name = t.__name__
    if _DATACLASSES.get(name) is t:
        buf += b"D"
        _encode_into(buf, name)
        buf += _U32.pack(len(t.__dataclass_fields__))
        for f in t.__dataclass_fields__:
            _encode_into(buf, f)
            _encode_into(buf, getattr(obj, f))
        return
    if isinstance(obj, np.generic):
        # Stray numpy scalars (an int64 that escaped a .tolist()):
        # normalize to the Python scalar - value-identical on decode.
        _encode_into(buf, obj.item())
        return
    raise CodecError(f"type {t.__name__} is not snapshot-serializable")


def encode(obj: Any) -> bytes:
    """Deterministic binary encoding of ``obj`` (see module docs)."""
    buf = bytearray()
    _encode_into(buf, obj)
    return bytes(buf)


class _Reader:
    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise CodecError("truncated persisted payload")
        out = self.buf[self.pos:end]
        self.pos = end
        return out


def _decode_from(r: _Reader) -> Any:
    tag = r.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack(r.take(8))[0]
    if tag == b"I":
        (n,) = _U32.unpack(r.take(4))
        return int.from_bytes(r.take(n), "big", signed=True)
    if tag == b"f":
        return _F64.unpack(r.take(8))[0]
    if tag == b"s":
        (n,) = _U32.unpack(r.take(4))
        return r.take(n).decode("utf-8")
    if tag == b"b":
        (n,) = _U64.unpack(r.take(8))
        return r.take(n)
    if tag == b"t":
        (n,) = _U32.unpack(r.take(4))
        return tuple(_decode_from(r) for _ in range(n))
    if tag == b"l":
        (n,) = _U32.unpack(r.take(4))
        return [_decode_from(r) for _ in range(n)]
    if tag == b"d":
        (n,) = _U32.unpack(r.take(4))
        out = {}
        for _ in range(n):
            k = _decode_from(r)
            out[k] = _decode_from(r)
        return out
    if tag == b"S" or tag == b"Z":
        (n,) = _U32.unpack(r.take(4))
        items = [_decode_from(r) for _ in range(n)]
        return set(items) if tag == b"S" else frozenset(items)
    if tag == b"a":
        dtype = _decode_from(r)
        shape = _decode_from(r)
        (n,) = _U64.unpack(r.take(8))
        raw = r.take(n)
        return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape).copy()
    if tag == b"P":
        return ProgramId(_decode_from(r), _decode_from(r))
    if tag == b"M":
        src = _decode_from(r)
        dst = _decode_from(r)
        payload = _decode_from(r)
        items = _decode_from(r)
        nbytes = _decode_from(r)
        seq = _decode_from(r)
        epoch = _decode_from(r)
        checksum = _decode_from(r)
        dsti = _decode_from(r)
        return Stream(src, dst, payload, items, nbytes, seq, epoch,
                      checksum, dsti)
    if tag == b"E":
        return ProgramState(_decode_from(r))
    if tag == b"D":
        name = _decode_from(r)
        cls = _DATACLASSES.get(name)
        if cls is None:
            raise CodecError(f"unknown persisted dataclass {name!r}")
        (n,) = _U32.unpack(r.take(4))
        kwargs = {}
        for _ in range(n):
            f = _decode_from(r)
            kwargs[f] = _decode_from(r)
        return cls(**kwargs)
    raise CodecError(f"unknown codec tag {tag!r}")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`."""
    r = _Reader(data)
    obj = _decode_from(r)
    if r.pos != len(data):
        raise CodecError(
            f"{len(data) - r.pos} trailing bytes after persisted payload"
        )
    return obj


def frame(payload: bytes, version: int = CODEC_VERSION) -> bytes:
    """Wrap ``payload`` in the CRC-checked envelope."""
    return _HEADER.pack(
        MAGIC, version, zlib.crc32(payload), len(payload)
    ) + payload


def unframe(data: bytes) -> tuple[int, bytes]:
    """Validate an envelope; returns ``(version, payload)``.

    Raises :class:`CodecError` on a bad magic, an unsupported (newer)
    version, a truncated payload, or a CRC mismatch - the checks a
    restart performs before trusting anything on disk.
    """
    if len(data) < _HEADER.size:
        raise CodecError("truncated frame header")
    magic, version, crc, length = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad frame magic {magic!r}")
    if version > CODEC_VERSION:
        raise CodecError(
            f"frame version {version} is newer than supported "
            f"({CODEC_VERSION})"
        )
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise CodecError(
            f"frame payload truncated: {len(payload)} of {length} bytes"
        )
    if zlib.crc32(payload) != crc:
        raise CodecError("frame CRC mismatch")
    return version, payload


def atomic_write(path: str | os.PathLike, data: bytes, fsync: bool = True) -> int:
    """Crash-consistent publish of ``data`` at ``path``.

    Writes a temporary file in the same directory, flushes it to disk,
    atomically renames it over ``path``, then fsyncs the directory so
    the rename itself is durable.  A crash at any point leaves either
    the old file or the new file - never a torn one.  Returns the
    number of bytes written.
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        if fsync:
            os.fsync(f.fileno())
    os.replace(tmp, path)
    if fsync:
        dfd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
    return len(data)

"""Write-ahead journal for the service layer.

Every externally-visible service transition - a submission, an attempt
start, an exactly-once commit, a terminal (non-commit) job record, a
rejection - is appended to the journal *before* it takes effect in
memory.  Each record is individually CRC-framed (the same envelope as
snapshots), so a restarted service can replay the journal and rebuild
its committed store and in-flight set.

Torn-tail semantics: a crash mid-append leaves at most one incomplete
or CRC-bad record at the *end* of the file.  :func:`replay_wal`
tolerates exactly that - it returns the records of the clean prefix
plus the prefix length, and recovery truncates the file there before
appending again.  A CRC-bad record *followed by more bytes* is not a
torn tail but on-disk corruption, and raises.
"""

from __future__ import annotations

import os
import struct
from typing import Any

from .codec import CODEC_VERSION, CodecError, MAGIC, decode, encode, frame, unframe

__all__ = ["WalError", "WriteAheadLog", "replay_wal"]

_LEN = struct.Struct(">4sHIQ")  # mirror of the codec frame header


class WalError(CodecError):
    """Corrupt (non-tail) journal contents."""


class WriteAheadLog:
    """Append-only CRC-framed record journal."""

    def __init__(self, path: str | os.PathLike, fsync: bool = True,
                 truncate_to: int | None = None):
        self.path = os.fspath(path)
        self.fsync = fsync
        if truncate_to is not None and os.path.exists(self.path):
            with open(self.path, "r+b") as f:
                f.truncate(truncate_to)
        self._f = open(self.path, "ab")
        self.records = 0
        self.bytes_written = 0

    def append(self, record: Any) -> int:
        """Durably append one record; returns bytes written."""
        data = frame(encode(record))
        self._f.write(data)
        self._f.flush()
        if self.fsync:
            os.fsync(self._f.fileno())
        self.records += 1
        self.bytes_written += len(data)
        return len(data)

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def replay_wal(path: str | os.PathLike) -> tuple[list[Any], int]:
    """Read a journal; returns ``(records, clean_prefix_length)``.

    The clean prefix length is the byte offset after the last fully
    valid record: recovery truncates the file there (dropping a record
    torn by the crash) before re-opening it for appends.  A CRC or
    decode failure anywhere *before* the tail raises :class:`WalError`
    - that is silent corruption, not a torn append.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        return [], 0
    with open(path, "rb") as f:
        buf = f.read()
    records: list[Any] = []
    pos = 0
    n = len(buf)
    while pos < n:
        if pos + _LEN.size > n:
            break  # torn header at the tail
        magic, version, _crc, length = _LEN.unpack_from(buf, pos)
        end = pos + _LEN.size + length
        if magic != MAGIC or version > CODEC_VERSION:
            raise WalError(
                f"corrupt journal record header at byte {pos} of {path}"
            )
        if end > n:
            break  # torn payload at the tail
        try:
            _, payload = unframe(buf[pos:end])
            records.append(decode(payload))
        except CodecError as e:
            if end == n:
                break  # CRC-bad final record: torn append
            raise WalError(
                f"corrupt journal record at byte {pos} of {path}: {e}"
            ) from e
        pos = end
    return records, pos

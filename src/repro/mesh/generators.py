"""Mesh generators for the meshes used in the JSweep evaluation.

The paper evaluates on three mesh shapes (Fig. 11): a structured cube
(Kobayashi benchmark), an unstructured reactor core and an unstructured
ball of tetrahedra.  This module generates analogous meshes at
configurable resolution:

* :func:`cube_structured` - the structured cube.
* :func:`ball_tet_mesh` - tetrahedral ball via Delaunay triangulation.
* :func:`reactor_mesh_2d` - 2-D reactor core with fuel / control /
  reflector / vessel material rings.
* :func:`cube_tet_mesh` - conforming Kuhn tetrahedralization of a box
  (useful for verification: same domain as the structured cube).
* :func:`warped_quad_mesh` - a *deforming structured* mesh (logically
  structured quads with smoothly warped geometry), the case the paper
  highlights where KBA breaks down but the data-driven approach works.
* :func:`disk_tri_mesh` - 2-D triangulated disk.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.spatial import Delaunay

from .._util import ReproError
from .structured import StructuredMesh
from .unstructured import UnstructuredMesh

__all__ = [
    "cube_structured",
    "box_structured",
    "box_hex_mesh",
    "cube_tet_mesh",
    "ball_tet_mesh",
    "disk_tri_mesh",
    "reactor_mesh_2d",
    "warped_quad_mesh",
    "fibonacci_sphere",
]


# -- structured ---------------------------------------------------------------


def cube_structured(n: int, length: float = 1.0) -> StructuredMesh:
    """Cubic structured mesh with ``n`` cells per axis."""
    return box_structured((n, n, n), (length, length, length))


def box_structured(
    shape: tuple[int, ...], lengths: tuple[float, ...]
) -> StructuredMesh:
    """Structured box mesh with given cell counts and physical lengths."""
    if len(shape) != len(lengths):
        raise ReproError("shape/lengths rank mismatch")
    spacing = tuple(L / n for L, n in zip(lengths, shape))
    return StructuredMesh(shape=tuple(shape), spacing=spacing)


# -- tetrahedral --------------------------------------------------------------

# Kuhn triangulation: 6 tets per cube, conforming across neighbours
# because every cube is split identically (all tets share the main
# diagonal (0,0,0)-(1,1,1)).
_KUHN_PATHS = list(itertools.permutations(range(3)))


def cube_tet_mesh(
    shape: tuple[int, int, int], lengths: tuple[float, float, float] = (1.0, 1.0, 1.0)
) -> UnstructuredMesh:
    """Conforming tetrahedral mesh of a box (6 Kuhn tets per cube)."""
    nx, ny, nz = shape
    hx, hy, hz = (L / n for L, n in zip(lengths, shape))
    xs = np.arange(nx + 1) * hx
    ys = np.arange(ny + 1) * hy
    zs = np.arange(nz + 1) * hz
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    points = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)

    def nid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    base = np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1)  # (nc, 3)
    cells = []
    for path in _KUHN_PATHS:
        # Walk from corner (0,0,0) to (1,1,1) adding one axis at a time.
        steps = [np.zeros(3, dtype=np.int64)]
        cur = np.zeros(3, dtype=np.int64)
        for ax in path:
            cur = cur.copy()
            cur[ax] = 1
            steps.append(cur)
        corners = []
        for s in steps:
            idx = base + s
            corners.append(
                (idx[:, 0] * (ny + 1) + idx[:, 1]) * (nz + 1) + idx[:, 2]
            )
        cells.append(np.stack(corners, axis=1))
    cells = np.concatenate(cells, axis=0)
    return UnstructuredMesh(points=points, cells=cells, cell_type="tet")


def box_hex_mesh(
    shape: tuple[int, int, int],
    lengths: tuple[float, float, float] = (1.0, 1.0, 1.0),
) -> UnstructuredMesh:
    """Regular box as an *unstructured* hexahedral mesh.

    Geometrically identical to :func:`box_structured`; used to verify
    that the unstructured machinery reproduces the structured path
    exactly (same cells in the same C order, same faces), and as the
    starting point for distorted-hex experiments.
    """
    nx, ny, nz = shape
    xs = np.arange(nx + 1) * (lengths[0] / nx)
    ys = np.arange(ny + 1) * (lengths[1] / ny)
    zs = np.arange(nz + 1) * (lengths[2] / nz)
    gx, gy, gz = np.meshgrid(xs, ys, zs, indexing="ij")
    points = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)

    ii, jj, kk = np.meshgrid(
        np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
    )
    i0, j0, k0 = ii.ravel(), jj.ravel(), kk.ravel()

    def nid(i, j, k):
        return (i * (ny + 1) + j) * (nz + 1) + k

    # VTK hexahedron corner order (matching CELL_TYPES["hex"]).
    cells = np.stack(
        [
            nid(i0, j0, k0),
            nid(i0 + 1, j0, k0),
            nid(i0 + 1, j0 + 1, k0),
            nid(i0, j0 + 1, k0),
            nid(i0, j0, k0 + 1),
            nid(i0 + 1, j0, k0 + 1),
            nid(i0 + 1, j0 + 1, k0 + 1),
            nid(i0, j0 + 1, k0 + 1),
        ],
        axis=1,
    )
    return UnstructuredMesh(points=points, cells=cells, cell_type="hex")


def fibonacci_sphere(n: int, radius: float = 1.0) -> np.ndarray:
    """Quasi-uniform points on a sphere (golden-spiral lattice)."""
    i = np.arange(n) + 0.5
    phi = np.arccos(1.0 - 2.0 * i / n)
    theta = np.pi * (1.0 + 5**0.5) * i
    return radius * np.stack(
        [np.sin(phi) * np.cos(theta), np.sin(phi) * np.sin(theta), np.cos(phi)],
        axis=1,
    )


def ball_tet_mesh(
    resolution: int, radius: float = 1.0, seed: int = 0
) -> UnstructuredMesh:
    """Tetrahedral ball mesh (the Fig. 11c shape).

    ``resolution`` is the number of grid intervals across the diameter;
    cell count grows roughly like ``3 * resolution**3``.  Interior
    points come from a jittered grid, surface points from a golden
    spiral, and the triangulation is a scipy Delaunay with a sliver
    filter.
    """
    if resolution < 2:
        raise ReproError("resolution must be >= 2")
    h = 2.0 * radius / resolution
    ax = np.arange(-radius + h / 2, radius, h)
    gx, gy, gz = np.meshgrid(ax, ax, ax, indexing="ij")
    pts = np.stack([gx.ravel(), gy.ravel(), gz.ravel()], axis=1)
    rng = np.random.default_rng(seed)
    pts = pts + rng.uniform(-0.12 * h, 0.12 * h, size=pts.shape)
    keep = np.linalg.norm(pts, axis=1) < radius - 0.35 * h
    interior = pts[keep]
    n_surface = max(32, int(3.3 * resolution**2))
    surface = fibonacci_sphere(n_surface, radius)
    points = np.concatenate([interior, surface], axis=0)

    tri = Delaunay(points)
    cells = tri.simplices.astype(np.int64)
    p = [points[cells[:, i]] for i in range(4)]
    vol = np.abs(
        np.einsum("ij,ij->i", p[1] - p[0], np.cross(p[2] - p[0], p[3] - p[0]))
        / 6.0
    )
    # Drop slivers: tets much flatter than a regular tet at this spacing.
    cells = cells[vol > 1e-3 * h**3]
    return UnstructuredMesh(points=points, cells=cells, cell_type="tet")


# -- 2-D triangulations --------------------------------------------------------


def _ring_points(radius: float, spacing: float) -> np.ndarray:
    n = max(6, int(round(2 * np.pi * radius / spacing)))
    th = np.linspace(0, 2 * np.pi, n, endpoint=False)
    return radius * np.stack([np.cos(th), np.sin(th)], axis=1)


def disk_tri_mesh(resolution: int, radius: float = 1.0) -> UnstructuredMesh:
    """Triangulated disk; ``resolution`` rings of cells."""
    if resolution < 2:
        raise ReproError("resolution must be >= 2")
    spacing = radius / resolution
    pts = [np.zeros((1, 2))]
    for i in range(1, resolution + 1):
        pts.append(_ring_points(i * spacing, spacing))
    points = np.concatenate(pts, axis=0)
    tri = Delaunay(points)
    return UnstructuredMesh(
        points=points, cells=tri.simplices.astype(np.int64), cell_type="tri"
    )


def reactor_mesh_2d(
    resolution: int,
    core_radius: float = 1.0,
    reflector_radius: float = 1.4,
    vessel_radius: float = 1.6,
    n_assemblies: int = 12,
) -> UnstructuredMesh:
    """2-D reactor-core mesh (Fig. 11b analogue).

    Concentric regions: a core of fuel assemblies (material 1) with
    interleaved control positions (material 2), a reflector annulus
    (material 3) and a vessel annulus (material 4).  The paper's
    reactor mesh is 3-D; a 2-D core preserves the properties sweeps
    care about - irregular connectivity and heterogeneous materials -
    at tractable size (see DESIGN.md substitution log).
    """
    if resolution < 4:
        raise ReproError("resolution must be >= 4")
    spacing = vessel_radius / resolution
    pts = [np.zeros((1, 2))]
    r = spacing
    radii = []
    while r < vessel_radius + 0.5 * spacing:
        radii.append(min(r, vessel_radius))
        r += spacing
    # Snap rings near the material interfaces onto them so the material
    # boundaries are resolved by the triangulation.
    for iface in (core_radius, reflector_radius, vessel_radius):
        k = int(np.argmin([abs(rr - iface) for rr in radii]))
        radii[k] = iface
    for rr in sorted(set(radii)):
        pts.append(_ring_points(rr, spacing))
    points = np.concatenate(pts, axis=0)
    tri = Delaunay(points)
    cells = tri.simplices.astype(np.int64)
    mesh = UnstructuredMesh(points=points, cells=cells, cell_type="tri")

    c = mesh.cell_centroids
    rad = np.linalg.norm(c, axis=1)
    ang = np.arctan2(c[:, 1], c[:, 0])
    mat = np.full(mesh.num_cells, 4, dtype=np.int64)  # vessel
    mat[rad <= reflector_radius] = 3  # reflector
    core = rad <= core_radius
    sector = np.floor((ang + np.pi) / (2 * np.pi) * n_assemblies).astype(np.int64)
    mat[core] = np.where(sector[core] % 3 == 0, 2, 1)  # control vs fuel
    mesh.materials = mat
    return mesh


# -- deforming structured -------------------------------------------------------


def warped_quad_mesh(
    shape: tuple[int, int],
    lengths: tuple[float, float] = (1.0, 1.0),
    amplitude: float = 0.15,
) -> UnstructuredMesh:
    """Deforming-structured mesh: logically regular quads, warped geometry.

    This is the mesh class for which the paper argues KBA is 'almost
    impossible': the data dependencies of a sweep are no longer the
    regular lattice pattern, so the DAG approach is required.  Interior
    nodes are displaced by a smooth sinusoidal field; boundary nodes
    stay put so the domain remains the exact rectangle.
    """
    nx, ny = shape
    Lx, Ly = lengths
    xs = np.linspace(0, Lx, nx + 1)
    ys = np.linspace(0, Ly, ny + 1)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    wx = amplitude * (Lx / nx) * np.sin(2 * np.pi * gy / Ly) * np.sin(
        np.pi * gx / Lx
    ) * 2.0
    wy = amplitude * (Ly / ny) * np.sin(2 * np.pi * gx / Lx) * np.sin(
        np.pi * gy / Ly
    ) * 2.0
    px = gx + wx
    py = gy + wy
    points = np.stack([px.ravel(), py.ravel()], axis=1)

    ii, jj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
    i0 = (ii * (ny + 1) + jj).ravel()
    cells = np.stack(
        [i0, i0 + (ny + 1), i0 + (ny + 1) + 1, i0 + 1], axis=1
    )  # CCW quads
    return UnstructuredMesh(points=points, cells=cells, cell_type="quad")

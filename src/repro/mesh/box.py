"""Axis-aligned index boxes for structured meshes.

A :class:`Box` describes a rectangular region of cell indices,
``lo`` inclusive and ``hi`` exclusive, in an arbitrary number of
dimensions (the package uses 2 and 3).  Boxes are the unit of patch
description for structured meshes, mirroring the role of JAxMIN's
patch boxes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterator, Sequence

import numpy as np

from .._util import ReproError, prod

__all__ = ["Box", "split_box", "box_union_covers"]


@dataclass(frozen=True)
class Box:
    """Half-open index box ``[lo, hi)``."""

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self):
        if len(self.lo) != len(self.hi):
            raise ReproError(f"lo/hi rank mismatch: {self.lo} vs {self.hi}")
        object.__setattr__(self, "lo", tuple(int(x) for x in self.lo))
        object.__setattr__(self, "hi", tuple(int(x) for x in self.hi))
        for l, h in zip(self.lo, self.hi):
            if h < l:
                raise ReproError(f"degenerate box: lo={self.lo} hi={self.hi}")

    # -- basic queries ----------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        return prod(self.shape)

    def is_empty(self) -> bool:
        return any(h == l for l, h in zip(self.lo, self.hi))

    def contains(self, idx: Sequence[int]) -> bool:
        return all(l <= i < h for i, l, h in zip(idx, self.lo, self.hi))

    def contains_box(self, other: "Box") -> bool:
        return all(
            sl <= ol and oh <= sh
            for sl, ol, oh, sh in zip(self.lo, other.lo, other.hi, self.hi)
        )

    # -- constructive operations ------------------------------------------

    def intersection(self, other: "Box") -> "Box":
        """Intersection box; may be empty (zero extent on some axis)."""
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(l, min(a, b)) for l, a, b in zip(lo, self.hi, other.hi))
        return Box(lo, hi)

    def shift(self, offset: Sequence[int]) -> "Box":
        return Box(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def grow(self, n: int | Sequence[int]) -> "Box":
        """Grow by ``n`` cells on every face (per-axis if a sequence)."""
        if isinstance(n, int):
            n = (n,) * self.ndim
        return Box(
            tuple(l - g for l, g in zip(self.lo, n)),
            tuple(h + g for h, g in zip(self.hi, n)),
        )

    def clip(self, bounds: "Box") -> "Box":
        return self.intersection(bounds)

    # -- indexing ----------------------------------------------------------

    def cells(self) -> Iterator[tuple[int, ...]]:
        """Iterate all cell multi-indices in C (last-axis-fastest) order."""
        return itertools.product(*(range(l, h) for l, h in zip(self.lo, self.hi)))

    def linear_index(self, idx: Sequence[int]) -> int:
        """C-order linear index of ``idx`` relative to this box."""
        out = 0
        for i, l, n in zip(idx, self.lo, self.shape):
            out = out * n + (int(i) - l)
        return out

    def multi_index(self, lin: int) -> tuple[int, ...]:
        """Inverse of :meth:`linear_index`."""
        shape = self.shape
        out = [0] * self.ndim
        for ax in range(self.ndim - 1, -1, -1):
            out[ax] = self.lo[ax] + lin % shape[ax]
            lin //= shape[ax]
        return tuple(out)

    def all_indices(self) -> np.ndarray:
        """(size, ndim) array of all multi-indices in C order."""
        grids = np.meshgrid(
            *(np.arange(l, h) for l, h in zip(self.lo, self.hi)), indexing="ij"
        )
        return np.stack([g.ravel() for g in grids], axis=1)

    def slices(self, relative_to: "Box | None" = None) -> tuple[slice, ...]:
        """Slices selecting this box inside an array covering ``relative_to``."""
        base = relative_to.lo if relative_to is not None else (0,) * self.ndim
        return tuple(
            slice(l - b, h - b) for l, h, b in zip(self.lo, self.hi, base)
        )

    def __iter__(self):
        return self.cells()


def split_box(box: Box, patch_shape: Sequence[int]) -> list[Box]:
    """Tile ``box`` with patches of at most ``patch_shape`` cells per axis.

    Trailing patches on each axis may be smaller when the box extent is
    not a multiple of the patch extent.  The returned patches cover the
    box exactly, without overlap, in C order of their patch coordinates.
    """
    if len(patch_shape) != box.ndim:
        raise ReproError("patch_shape rank mismatch")
    if any(p <= 0 for p in patch_shape):
        raise ReproError("patch_shape entries must be positive")
    ranges = []
    for l, h, p in zip(box.lo, box.hi, patch_shape):
        starts = list(range(l, h, p))
        ranges.append([(s, min(s + p, h)) for s in starts])
    out = []
    for combo in itertools.product(*ranges):
        lo = tuple(c[0] for c in combo)
        hi = tuple(c[1] for c in combo)
        out.append(Box(lo, hi))
    return out


def box_union_covers(boxes: Sequence[Box], domain: Box) -> bool:
    """Check that ``boxes`` tile ``domain`` exactly (no gaps, no overlap).

    Intended for validation in tests; cost is O(domain.size).
    """
    count = np.zeros(domain.shape, dtype=np.int64)
    for b in boxes:
        inter = b.intersection(domain)
        if inter.size != b.size:
            return False
        count[inter.slices(domain)] += 1
    return bool(np.all(count == 1))

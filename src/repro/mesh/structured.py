"""Structured (regular Cartesian) meshes.

A :class:`StructuredMesh` is a regular grid of cells described by its
``shape`` (cells per axis), ``spacing`` (cell widths) and ``origin``.
It plays the role of JASMIN's structured mesh layer: the domain of a
JSNT-S-style Sn solver and the substrate for KBA baselines.

Cells are addressed either by multi-index ``(i, j, k)`` or by the
C-order linear index over the whole domain box.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np

from .._util import ReproError, prod
from .box import Box

__all__ = ["StructuredMesh"]


@dataclass
class StructuredMesh:
    """Regular Cartesian mesh in 2 or 3 dimensions."""

    shape: tuple[int, ...]
    spacing: tuple[float, ...] = ()
    origin: tuple[float, ...] = ()
    materials: np.ndarray | None = None

    def __post_init__(self):
        self.shape = tuple(int(n) for n in self.shape)
        if not self.shape or any(n <= 0 for n in self.shape):
            raise ReproError(f"invalid mesh shape {self.shape}")
        nd = len(self.shape)
        if nd not in (2, 3):
            raise ReproError("structured meshes must be 2-D or 3-D")
        if not self.spacing:
            self.spacing = (1.0,) * nd
        if not self.origin:
            self.origin = (0.0,) * nd
        self.spacing = tuple(float(s) for s in self.spacing)
        self.origin = tuple(float(o) for o in self.origin)
        if len(self.spacing) != nd or len(self.origin) != nd:
            raise ReproError("spacing/origin rank mismatch")
        if any(s <= 0 for s in self.spacing):
            raise ReproError("spacing must be positive")
        if self.materials is None:
            self.materials = np.zeros(self.shape, dtype=np.int64)
        else:
            self.materials = np.asarray(self.materials, dtype=np.int64)
            if self.materials.shape != self.shape:
                raise ReproError("materials shape mismatch")

    # -- basic properties --------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def num_cells(self) -> int:
        return prod(self.shape)

    @property
    def domain_box(self) -> Box:
        return Box((0,) * self.ndim, self.shape)

    @property
    def cell_volume(self) -> float:
        return prod_f(self.spacing)

    @property
    def lengths(self) -> tuple[float, ...]:
        return tuple(n * s for n, s in zip(self.shape, self.spacing))

    def face_area(self, axis: int) -> float:
        """Area of a cell face orthogonal to ``axis``."""
        return prod_f(s for i, s in enumerate(self.spacing) if i != axis)

    # -- indexing ----------------------------------------------------------

    def linear_index(self, idx: Sequence[int]) -> int:
        return self.domain_box.linear_index(idx)

    def multi_index(self, lin: int) -> tuple[int, ...]:
        return self.domain_box.multi_index(lin)

    def cell_center(self, idx: Sequence[int]) -> tuple[float, ...]:
        return tuple(
            o + (i + 0.5) * s for o, i, s in zip(self.origin, idx, self.spacing)
        )

    def cell_centers(self) -> np.ndarray:
        """(num_cells, ndim) array of cell centers in C order."""
        axes = [
            self.origin[d] + (np.arange(self.shape[d]) + 0.5) * self.spacing[d]
            for d in range(self.ndim)
        ]
        grids = np.meshgrid(*axes, indexing="ij")
        return np.stack([g.ravel() for g in grids], axis=1)

    def neighbor(self, idx: Sequence[int], axis: int, direction: int):
        """Neighbor multi-index along ``axis`` (+1/-1), or None off-domain."""
        out = list(idx)
        out[axis] += direction
        if 0 <= out[axis] < self.shape[axis]:
            return tuple(out)
        return None

    # -- materials ----------------------------------------------------------

    def assign_materials(
        self, fn: Callable[[np.ndarray], np.ndarray]
    ) -> None:
        """Set material ids from ``fn(centers) -> ids`` over cell centers."""
        ids = np.asarray(fn(self.cell_centers()), dtype=np.int64)
        if ids.shape != (self.num_cells,):
            raise ReproError("material function must return one id per cell")
        self.materials = ids.reshape(self.shape)

    def material_flat(self) -> np.ndarray:
        return self.materials.reshape(-1)

    # -- conversions ---------------------------------------------------------

    def node_coordinates(self) -> np.ndarray:
        """(num_nodes, ndim) array of node coordinates in C order."""
        axes = [
            self.origin[d] + np.arange(self.shape[d] + 1) * self.spacing[d]
            for d in range(self.ndim)
        ]
        grids = np.meshgrid(*axes, indexing="ij")
        return np.stack([g.ravel() for g in grids], axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StructuredMesh(shape={self.shape}, spacing={self.spacing}, "
            f"cells={self.num_cells})"
        )


def prod_f(seq) -> float:
    out = 1.0
    for s in seq:
        out *= float(s)
    return out

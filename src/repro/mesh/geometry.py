"""Vectorized geometric primitives for mesh construction.

All functions operate on NumPy arrays of points and return NumPy
arrays; they are used by :mod:`repro.mesh.unstructured` to compute
cell volumes, face areas and face normals for 2-D (triangle / quad)
and 3-D (tetrahedral / hexahedral) meshes.
"""

from __future__ import annotations

import numpy as np

from .._util import ReproError

__all__ = [
    "triangle_areas",
    "polygon_areas_2d",
    "polygon_centroids_2d",
    "edge_normals_2d",
    "tet_volumes",
    "tri_face_normals",
    "tri_face_areas",
    "tri_face_centroids",
    "hex_volumes",
    "quad_face_normals_areas",
]


def triangle_areas(p0: np.ndarray, p1: np.ndarray, p2: np.ndarray) -> np.ndarray:
    """Areas of triangles given three (n, dim) corner arrays (dim 2 or 3)."""
    a = p1 - p0
    b = p2 - p0
    if p0.shape[1] == 2:
        cross = a[:, 0] * b[:, 1] - a[:, 1] * b[:, 0]
        return 0.5 * np.abs(cross)
    cross = np.cross(a, b)
    return 0.5 * np.linalg.norm(cross, axis=1)


def polygon_areas_2d(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Signed shoelace area per polygon; ``cells`` is (n, k) point indices."""
    xs = points[cells, 0]  # (n, k)
    ys = points[cells, 1]
    xn = np.roll(xs, -1, axis=1)
    yn = np.roll(ys, -1, axis=1)
    return 0.5 * np.sum(xs * yn - xn * ys, axis=1)


def polygon_centroids_2d(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Area-weighted centroids of simple polygons (n, k) -> (n, 2)."""
    xs = points[cells, 0]
    ys = points[cells, 1]
    xn = np.roll(xs, -1, axis=1)
    yn = np.roll(ys, -1, axis=1)
    w = xs * yn - xn * ys
    area = 0.5 * np.sum(w, axis=1)
    if np.any(np.abs(area) < 1e-300):
        raise ReproError("degenerate polygon in centroid computation")
    cx = np.sum((xs + xn) * w, axis=1) / (6.0 * area)
    cy = np.sum((ys + yn) * w, axis=1) / (6.0 * area)
    return np.stack([cx, cy], axis=1)


def edge_normals_2d(p0: np.ndarray, p1: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unit normals and lengths of 2-D edges p0->p1.

    The normal is the edge direction rotated -90 degrees, i.e. it points
    to the *right* of the directed edge.  For a counter-clockwise cell
    boundary this is the outward normal.
    """
    d = p1 - p0
    lengths = np.linalg.norm(d, axis=1)
    if np.any(lengths <= 0):
        raise ReproError("zero-length edge")
    n = np.stack([d[:, 1], -d[:, 0]], axis=1) / lengths[:, None]
    return n, lengths


def tet_volumes(p0, p1, p2, p3) -> np.ndarray:
    """Signed volumes of tetrahedra from four (n, 3) corner arrays."""
    a = p1 - p0
    b = p2 - p0
    c = p3 - p0
    return np.einsum("ij,ij->i", a, np.cross(b, c)) / 6.0


def tri_face_normals(p0, p1, p2) -> np.ndarray:
    """Unit normals of 3-D triangles (right-hand rule around p0,p1,p2)."""
    cross = np.cross(p1 - p0, p2 - p0)
    norm = np.linalg.norm(cross, axis=1)
    if np.any(norm <= 0):
        raise ReproError("degenerate triangle face")
    return cross / norm[:, None]


def tri_face_areas(p0, p1, p2) -> np.ndarray:
    return triangle_areas(p0, p1, p2)


def tri_face_centroids(p0, p1, p2) -> np.ndarray:
    return (p0 + p1 + p2) / 3.0


def hex_volumes(points: np.ndarray, cells: np.ndarray) -> np.ndarray:
    """Volumes of hexahedra with standard VTK corner ordering (n, 8).

    Each hexahedron is decomposed into five tetrahedra; this is exact
    for hexes with planar faces and a good approximation otherwise.
    """
    c = [points[cells[:, i]] for i in range(8)]
    # Decomposition into 6 tets sharing the diagonal 0-6 (robust for
    # mildly warped hexes).
    tets = [
        (0, 1, 2, 6),
        (0, 2, 3, 6),
        (0, 3, 7, 6),
        (0, 7, 4, 6),
        (0, 4, 5, 6),
        (0, 5, 1, 6),
    ]
    vol = np.zeros(cells.shape[0])
    for i, j, k, l in tets:
        vol += np.abs(tet_volumes(c[i], c[j], c[k], c[l]))
    return vol


def quad_face_normals_areas(p0, p1, p2, p3) -> tuple[np.ndarray, np.ndarray]:
    """Average unit normals and areas of (possibly warped) 3-D quads.

    The quad is split along both diagonals; the area vector is the mean
    of the two triangulations, which is the standard finite-volume
    treatment of bilinear faces.
    """
    n1 = np.cross(p1 - p0, p2 - p0) * 0.5 + np.cross(p2 - p0, p3 - p0) * 0.5
    areas = np.linalg.norm(n1, axis=1)
    if np.any(areas <= 0):
        raise ReproError("degenerate quad face")
    return n1 / areas[:, None], areas

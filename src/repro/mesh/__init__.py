"""Mesh substrate: structured and unstructured meshes and generators.

This package is the analogue of JAxMIN's mesh-management layer
(systems S1-S3 in DESIGN.md).
"""

from .box import Box, box_union_covers, split_box
from .generators import (
    ball_tet_mesh,
    box_hex_mesh,
    box_structured,
    cube_structured,
    cube_tet_mesh,
    disk_tri_mesh,
    reactor_mesh_2d,
    warped_quad_mesh,
)
from .structured import StructuredMesh
from .unstructured import CELL_TYPES, UnstructuredMesh

__all__ = [
    "Box",
    "split_box",
    "box_union_covers",
    "StructuredMesh",
    "UnstructuredMesh",
    "CELL_TYPES",
    "cube_structured",
    "box_structured",
    "box_hex_mesh",
    "cube_tet_mesh",
    "ball_tet_mesh",
    "disk_tri_mesh",
    "reactor_mesh_2d",
    "warped_quad_mesh",
]

"""Unstructured conforming meshes (triangles, quads, tets, hexes).

This module is the JAUMIN-analogue substrate: a cell-centred
unstructured mesh with the connectivity arrays a sweep solver needs:

* unique interior/boundary faces with unit normals oriented from the
  face's first adjacent cell towards its second,
* cell volumes and centroids,
* per-cell face lists with orientation signs, and
* cell neighbour adjacency.

All connectivity is built with vectorized NumPy (sort + unique over
face keys), so meshes with 10^5-10^6 cells construct in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

import numpy as np

from .._util import ReproError
from . import geometry as geo

__all__ = ["UnstructuredMesh", "CELL_TYPES"]

# Local face definitions (point index tuples per cell corner layout).
CELL_TYPES: dict[str, dict] = {
    "tri": {"dim": 2, "corners": 3, "faces": [(0, 1), (1, 2), (2, 0)]},
    "quad": {"dim": 2, "corners": 4, "faces": [(0, 1), (1, 2), (2, 3), (3, 0)]},
    "tet": {
        "dim": 3,
        "corners": 4,
        "faces": [(0, 2, 1), (0, 1, 3), (1, 2, 3), (0, 3, 2)],
    },
    "hex": {
        "dim": 3,
        "corners": 8,
        # VTK hexahedron corner layout.
        "faces": [
            (0, 3, 2, 1),
            (4, 5, 6, 7),
            (0, 1, 5, 4),
            (2, 3, 7, 6),
            (1, 2, 6, 5),
            (0, 4, 7, 3),
        ],
    },
}


@dataclass
class UnstructuredMesh:
    """Conforming unstructured mesh with a single cell type."""

    points: np.ndarray
    cells: np.ndarray
    cell_type: str
    materials: np.ndarray | None = None

    # connectivity, built by __post_init__
    face_points: np.ndarray = field(init=False, repr=False)
    face_cells: np.ndarray = field(init=False, repr=False)
    face_normals: np.ndarray = field(init=False, repr=False)
    face_areas: np.ndarray = field(init=False, repr=False)
    face_centroids: np.ndarray = field(init=False, repr=False)
    cell_volumes: np.ndarray = field(init=False, repr=False)
    cell_centroids: np.ndarray = field(init=False, repr=False)
    cell_faces: np.ndarray = field(init=False, repr=False)
    cell_face_signs: np.ndarray = field(init=False, repr=False)
    cell_neighbors: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        if self.cell_type not in CELL_TYPES:
            raise ReproError(f"unknown cell type {self.cell_type!r}")
        spec = CELL_TYPES[self.cell_type]
        self.points = np.ascontiguousarray(self.points, dtype=np.float64)
        self.cells = np.ascontiguousarray(self.cells, dtype=np.int64)
        if self.points.ndim != 2 or self.points.shape[1] != spec["dim"]:
            raise ReproError(
                f"points must be (n, {spec['dim']}) for {self.cell_type}"
            )
        if self.cells.ndim != 2 or self.cells.shape[1] != spec["corners"]:
            raise ReproError(
                f"cells must be (n, {spec['corners']}) for {self.cell_type}"
            )
        if self.cells.size and (
            self.cells.min() < 0 or self.cells.max() >= len(self.points)
        ):
            raise ReproError("cell corner index out of range")
        if self.materials is None:
            self.materials = np.zeros(len(self.cells), dtype=np.int64)
        else:
            self.materials = np.asarray(self.materials, dtype=np.int64)
            if self.materials.shape != (len(self.cells),):
                raise ReproError("materials must have one id per cell")
        self._fix_orientation()
        self._build_cell_geometry()
        self._build_faces()

    # -- basic properties ----------------------------------------------------

    @property
    def ndim(self) -> int:
        return CELL_TYPES[self.cell_type]["dim"]

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def num_faces(self) -> int:
        return len(self.face_cells)

    @property
    def faces_per_cell(self) -> int:
        return len(CELL_TYPES[self.cell_type]["faces"])

    @property
    def boundary_faces(self) -> np.ndarray:
        """Face ids lying on the domain boundary."""
        return np.nonzero(self.face_cells[:, 1] < 0)[0]

    # -- construction helpers --------------------------------------------------

    def _fix_orientation(self) -> None:
        """Reorder corners so cell volumes/areas are positive."""
        if self.num_cells == 0:
            raise ReproError("mesh has no cells")
        if self.cell_type == "tet":
            p = [self.points[self.cells[:, i]] for i in range(4)]
            vol = geo.tet_volumes(*p)
            flip = vol < 0
            if np.any(flip):
                self.cells[flip, 2], self.cells[flip, 3] = (
                    self.cells[flip, 3].copy(),
                    self.cells[flip, 2].copy(),
                )
        elif self.cell_type in ("tri", "quad"):
            area = geo.polygon_areas_2d(self.points, self.cells)
            flip = area < 0
            if np.any(flip):
                self.cells[flip] = self.cells[flip, ::-1]

    def _build_cell_geometry(self) -> None:
        ct = self.cell_type
        if ct == "tri" or ct == "quad":
            self.cell_volumes = np.abs(
                geo.polygon_areas_2d(self.points, self.cells)
            )
            self.cell_centroids = geo.polygon_centroids_2d(self.points, self.cells)
        elif ct == "tet":
            p = [self.points[self.cells[:, i]] for i in range(4)]
            self.cell_volumes = np.abs(geo.tet_volumes(*p))
            self.cell_centroids = (p[0] + p[1] + p[2] + p[3]) / 4.0
        elif ct == "hex":
            self.cell_volumes = geo.hex_volumes(self.points, self.cells)
            self.cell_centroids = self.points[self.cells].mean(axis=1)
        if np.any(self.cell_volumes <= 0):
            raise ReproError("mesh contains degenerate (zero-volume) cells")

    def _build_faces(self) -> None:
        spec = CELL_TYPES[self.cell_type]
        face_defs = spec["faces"]
        nfc = len(face_defs)
        nc = self.num_cells

        # All (cell, local face) incidences with their point tuples.
        local = np.concatenate(
            [self.cells[:, list(fd)] for fd in face_defs], axis=0
        )  # (nc * nfc, pts_per_face), block i holds local face i of all cells
        owner_cell = np.tile(np.arange(nc), nfc)

        keys = np.sort(local, axis=1)
        uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
        nfaces = len(uniq)

        face_cells = np.full((nfaces, 2), -1, dtype=np.int64)
        first_incidence = np.full(nfaces, -1, dtype=np.int64)
        order = np.argsort(inverse, kind="stable")
        sorted_inv = inverse[order]
        boundaries = np.searchsorted(sorted_inv, np.arange(nfaces))
        counts = np.bincount(inverse, minlength=nfaces)
        if np.any(counts > 2):
            raise ReproError("non-manifold mesh: face shared by >2 cells")
        first = order[boundaries]
        face_cells[:, 0] = owner_cell[first]
        first_incidence[:] = first
        has_second = counts == 2
        second = order[boundaries[has_second] + 1]
        face_cells[has_second, 1] = owner_cell[second]

        # Face geometry, using the corner order of the first incidence so
        # the raw normal is outward for face_cells[:, 0].
        fp = local[first_incidence]
        self.face_points = fp
        pts = self.points
        if self.cell_type in ("tri", "quad"):
            normals, areas = geo.edge_normals_2d(pts[fp[:, 0]], pts[fp[:, 1]])
            centroids = 0.5 * (pts[fp[:, 0]] + pts[fp[:, 1]])
        elif self.cell_type == "tet":
            p0, p1, p2 = pts[fp[:, 0]], pts[fp[:, 1]], pts[fp[:, 2]]
            normals = geo.tri_face_normals(p0, p1, p2)
            areas = geo.tri_face_areas(p0, p1, p2)
            centroids = geo.tri_face_centroids(p0, p1, p2)
        else:  # hex
            p = [pts[fp[:, i]] for i in range(4)]
            normals, areas = geo.quad_face_normals_areas(*p)
            centroids = np.mean(p, axis=0)

        # Orient: normal must point away from face_cells[:, 0].
        away = centroids - self.cell_centroids[face_cells[:, 0]]
        flip = np.einsum("ij,ij->i", normals, away) < 0
        normals[flip] *= -1.0

        self.face_cells = face_cells
        self.face_normals = normals
        self.face_areas = areas
        self.face_centroids = centroids

        # Per-cell face table and signs (+1 when the cell is face_cells[0],
        # i.e. the face normal is outward for that cell).
        cell_faces = np.empty((nc, nfc), dtype=np.int64)
        for lf in range(nfc):
            cell_faces[:, lf] = inverse[lf * nc : (lf + 1) * nc]
        self.cell_faces = cell_faces
        self.cell_face_signs = np.where(
            self.face_cells[cell_faces, 0] == np.arange(nc)[:, None], 1, -1
        ).astype(np.int8)

        neigh = np.where(
            self.cell_face_signs == 1,
            self.face_cells[cell_faces, 1],
            self.face_cells[cell_faces, 0],
        )
        self.cell_neighbors = neigh

    # -- queries ----------------------------------------------------------------

    def outward_normal(self, cell: int, local_face: int) -> np.ndarray:
        """Outward unit normal of ``local_face`` of ``cell``."""
        fid = self.cell_faces[cell, local_face]
        return self.face_normals[fid] * self.cell_face_signs[cell, local_face]

    def adjacency_graph(self) -> tuple[np.ndarray, np.ndarray]:
        """Cell adjacency as CSR ``(indptr, indices)`` over interior faces."""
        interior = self.face_cells[self.face_cells[:, 1] >= 0]
        both = np.concatenate([interior, interior[:, ::-1]], axis=0)
        order = np.argsort(both[:, 0], kind="stable")
        both = both[order]
        indptr = np.searchsorted(
            both[:, 0], np.arange(self.num_cells + 1), side="left"
        )
        return indptr.astype(np.int64), both[:, 1].copy()

    def assign_materials(self, fn: Callable[[np.ndarray], np.ndarray]) -> None:
        """Set material ids from ``fn(cell_centroids) -> ids``."""
        ids = np.asarray(fn(self.cell_centroids), dtype=np.int64)
        if ids.shape != (self.num_cells,):
            raise ReproError("material function must return one id per cell")
        self.materials = ids

    def total_volume(self) -> float:
        return float(self.cell_volumes.sum())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UnstructuredMesh({self.cell_type}, cells={self.num_cells}, "
            f"points={self.num_points}, faces={self.num_faces})"
        )

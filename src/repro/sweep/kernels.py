"""Per-angle spatial transport kernels (system S13).

Two discretizations of the one-angle transport balance

    div(Omega * psi) + sigma_t * psi = s        (s = (q + sigma_s*phi)/4pi)

* ``step``   - donor-cell (step) upwind finite volume; works on any
  mesh family and is the JSNT-U-style unstructured kernel.
* ``dd``     - diamond difference with optional set-to-zero negative-flux
  fixup; the classic structured-mesh Sn kernel (TORT/JSNT-S style).
  Requires a face pairing (one inflow and one outflow face per axis),
  i.e. a regular structured mesh.

A kernel instance is specific to one direction and caches the per-cell
incoming/outgoing face tables; it is reused across source iterations
and energy groups.  Face fluxes live in one array with a slot per
interior interface plus a slot per boundary face.
"""

from __future__ import annotations


import numpy as np

from .._util import ReproError
from ..framework.connectivity import BoundaryTable, InterfaceTable
from ..mesh.structured import StructuredMesh

__all__ = ["AngleKernel"]

_TOL = 1e-12


class AngleKernel:
    """Upwind transport kernel for one ordinate direction."""

    def __init__(
        self,
        mesh,
        interfaces: InterfaceTable,
        boundary: BoundaryTable,
        direction: np.ndarray,
        scheme: str = "step",
        fixup: bool = True,
    ):
        if scheme not in ("step", "dd"):
            raise ReproError(f"unknown scheme {scheme!r}")
        if scheme == "dd" and not isinstance(mesh, StructuredMesh):
            raise ReproError("diamond difference requires a structured mesh")
        self.mesh = mesh
        self.scheme = scheme
        self.fixup = fixup
        self.direction = np.asarray(direction, dtype=np.float64)
        ncells = mesh.num_cells
        self.num_interfaces = interfaces.num_interfaces
        self.num_bfaces = boundary.num_faces
        self.num_slots = self.num_interfaces + self.num_bfaces
        self.volumes = (
            mesh.cell_volumes
            if hasattr(mesh, "cell_volumes")
            else np.full(ncells, mesh.cell_volume)
        )

        # --- interior interfaces: upwind/downwind per direction ---
        # 2-D meshes: only the (x, y) ordinate components see geometry.
        dgeom = self.direction[: interfaces.normal.shape[1]]
        dot = interfaces.normal @ dgeom
        active = np.abs(dot) > _TOL
        idx = np.nonzero(active)[0]
        d = dot[idx]
        up = np.where(d > 0, interfaces.cell_a[idx], interfaces.cell_b[idx])
        down = np.where(d > 0, interfaces.cell_b[idx], interfaces.cell_a[idx])
        coeff = np.abs(d) * interfaces.area[idx]
        axis = np.argmax(np.abs(interfaces.normal[idx]), axis=1)

        # --- boundary faces ---
        bdot = boundary.normal @ dgeom
        b_idx = np.nonzero(np.abs(bdot) > _TOL)[0]
        b_cell = boundary.cell[b_idx]
        b_out = bdot[b_idx] > 0  # outward normal: positive dot = outflow
        b_coeff = np.abs(bdot[b_idx]) * boundary.area[b_idx]
        b_axis = np.argmax(np.abs(boundary.normal[b_idx]), axis=1)
        b_slot = self.num_interfaces + b_idx

        # Incoming boundary slots (set by boundary conditions).
        self.inflow_slots = b_slot[~b_out]
        self.inflow_cells = b_cell[~b_out]
        self.inflow_rows = b_idx[~b_out]  # rows into the BoundaryTable
        self.inflow_axes = b_axis[~b_out]
        self.inflow_centroids = (
            boundary.centroid[b_idx[~b_out]]
            if boundary.centroid is not None
            else None
        )
        self.outflow_slots = b_slot[b_out]
        self.outflow_cells = b_cell[b_out]
        self.outflow_rows = b_idx[b_out]
        self.outflow_coeff = b_coeff[b_out]

        # --- per-cell CSR tables ---
        in_cell = np.concatenate([down, b_cell[~b_out]])
        in_slot = np.concatenate([idx, b_slot[~b_out]])
        in_coeff = np.concatenate([coeff, b_coeff[~b_out]])
        in_axis = np.concatenate([axis, b_axis[~b_out]])
        (
            self.in_indptr,
            self.in_slot,
            self.in_coeff,
            self.in_axis,
        ) = _csr(in_cell, ncells, in_slot, in_coeff, in_axis)

        out_cell = np.concatenate([up, b_cell[b_out]])
        out_slot = np.concatenate([idx, b_slot[b_out]])
        out_coeff = np.concatenate([coeff, b_coeff[b_out]])
        out_axis = np.concatenate([axis, b_axis[b_out]])
        (
            self.out_indptr,
            self.out_slot,
            self.out_coeff,
            self.out_axis,
        ) = _csr(out_cell, ncells, out_slot, out_coeff, out_axis)

        self.out_pair = None
        if scheme == "dd":
            self.out_pair = self._pair_faces(ncells)

        # Per-cell outgoing-coefficient sums (removal denominators),
        # used by both the scalar loop and the level-vectorized path.
        self.out_coeff_sum = np.zeros(ncells)
        np.add.at(
            self.out_coeff_sum,
            np.repeat(np.arange(ncells), np.diff(self.out_indptr)),
            self.out_coeff,
        )

    def _pair_faces(self, ncells: int) -> np.ndarray:
        """DD pairing: for every outflow face, the same-axis inflow slot."""
        pair = np.full(len(self.out_slot), -1, dtype=np.int64)
        for c in range(ncells):
            ilo, ihi = self.in_indptr[c], self.in_indptr[c + 1]
            in_by_axis = {}
            for k in range(ilo, ihi):
                ax = int(self.in_axis[k])
                if ax in in_by_axis:
                    raise ReproError("DD: cell has two inflow faces on one axis")
                in_by_axis[ax] = int(self.in_slot[k])
            olo, ohi = self.out_indptr[c], self.out_indptr[c + 1]
            for k in range(olo, ohi):
                ax = int(self.out_axis[k])
                if ax not in in_by_axis:
                    raise ReproError("DD: outflow face without paired inflow")
                pair[k] = in_by_axis[ax]
        return pair

    # -- runtime API ----------------------------------------------------------------

    def new_face_array(self, groups: int) -> np.ndarray:
        """Fresh face-flux storage: (num_slots, groups)."""
        return np.zeros((self.num_slots, groups))

    def apply_boundary(self, psi_faces: np.ndarray, value=0.0) -> None:
        """Set the incoming boundary-face fluxes.

        ``value`` is a scalar (vacuum = 0), a per-inflow-face array
        ``(n_inflow,)``, or a per-face-per-group array
        ``(n_inflow, groups)``.
        """
        v = np.asarray(value, dtype=float)
        if v.ndim == 1:
            v = v[:, None]
        psi_faces[self.inflow_slots] = v

    def solve_cells(
        self,
        cells: np.ndarray,
        src_v: np.ndarray,
        sigma_t_v: np.ndarray,
        psi_faces: np.ndarray,
        psi_cell: np.ndarray,
    ) -> None:
        """Solve ``cells`` in the given (topological) order.

        ``src_v[c]`` must be the cell-integrated per-angle source
        ``s * V`` and ``sigma_t_v[c]`` the cell-integrated removal
        ``sigma_t * V`` (both shaped ``(ncells, groups)`` /
        ``(ncells,)`` respectively... ``sigma_t_v`` is (ncells,) for
        one-material-per-cell cross sections or (ncells, groups)).
        Updates ``psi_cell`` and the outgoing rows of ``psi_faces``.
        """
        dd = self.scheme == "dd"
        two = 2.0 if dd else 1.0
        in_indptr, in_slot, in_coeff = self.in_indptr, self.in_slot, self.in_coeff
        out_indptr, out_slot, out_coeff = (
            self.out_indptr,
            self.out_slot,
            self.out_coeff,
        )
        pair = self.out_pair
        for c in cells:
            ilo, ihi = in_indptr[c], in_indptr[c + 1]
            olo, ohi = out_indptr[c], out_indptr[c + 1]
            isl = in_slot[ilo:ihi]
            num = src_v[c] + two * (in_coeff[ilo:ihi] @ psi_faces[isl])
            den = sigma_t_v[c] + two * out_coeff[olo:ohi].sum()
            psi = num / den
            psi_cell[c] = psi
            osl = out_slot[olo:ohi]
            if dd:
                out_flux = 2.0 * psi - psi_faces[pair[olo:ohi]]
                if self.fixup:
                    np.maximum(out_flux, 0.0, out=out_flux)
                psi_faces[osl] = out_flux
            else:
                psi_faces[osl] = psi

    def solve_level(
        self,
        cells: np.ndarray,
        src_v: np.ndarray,
        sigma_t_v: np.ndarray,
        psi_faces: np.ndarray,
        psi_cell: np.ndarray,
    ) -> None:
        """Vectorized solve of one set of *mutually independent* cells.

        All ``cells`` must belong to the same topological level of the
        sweep DAG (no cell's inflow face is another's outflow face);
        :func:`repro.sweep.dag.topological_levels` produces such sets.
        Identical arithmetic to :meth:`solve_cells` (same summation
        order), vectorized across the level with NumPy group-bys -
        the 'vectorize the loops' optimization the HPC guides call for.
        """
        cells = np.asarray(cells, dtype=np.int64)
        if cells.size == 0:
            return
        two = 2.0 if self.scheme == "dd" else 1.0

        starts = self.in_indptr[cells]
        lens = self.in_indptr[cells + 1] - starts
        ng = psi_faces.shape[1]
        # Inflow accumulation, grouped by in-degree: each group's
        # batched ``(1,k) @ (k,ng)`` matmul runs the same BLAS dot per
        # cell as ``solve_cells``'s ``in_coeff @ psi_faces[isl]``, so
        # the sum order - and the result - is bitwise identical
        # (verified by tests/test_kernels_level.py).
        acc = np.zeros((len(cells), ng))
        for k in np.unique(lens):
            if k == 0:
                continue
            sel = np.nonzero(lens == k)[0]
            pos = starts[sel, None] + np.arange(k)
            coeff = self.in_coeff[pos]
            flux = psi_faces[self.in_slot[pos]]
            acc[sel] = np.matmul(coeff[:, None, :], flux)[:, 0]
        num = src_v[cells] + two * acc
        den = sigma_t_v[cells] + two * self.out_coeff_sum[cells, None]
        psi = num / den
        psi_cell[cells] = psi

        ostarts = self.out_indptr[cells]
        olens = self.out_indptr[cells + 1] - ostarts
        opos = np.repeat(ostarts, olens) + _ragged_arange(olens)
        oseg = np.repeat(np.arange(len(cells)), olens)
        osl = self.out_slot[opos]
        if self.scheme == "dd":
            out_flux = 2.0 * psi[oseg] - psi_faces[self.out_pair[opos]]
            if self.fixup:
                np.maximum(out_flux, 0.0, out=out_flux)
            psi_faces[osl] = out_flux
        else:
            psi_faces[osl] = psi[oseg]

    def leakage(self, psi_faces: np.ndarray) -> np.ndarray:
        """Outgoing partial current through the domain boundary (per group)."""
        if len(self.outflow_slots) == 0:
            return np.zeros(psi_faces.shape[1])
        return self.outflow_coeff @ psi_faces[self.outflow_slots]


def _ragged_arange(lens: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(l)`` for every l in ``lens`` (vectorized)."""
    total = int(lens.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = np.cumsum(lens) - lens
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, lens)


def _csr(cell: np.ndarray, ncells: int, *payloads: np.ndarray):
    order = np.argsort(cell, kind="stable")
    cs = cell[order]
    indptr = np.searchsorted(cs, np.arange(ncells + 1)).astype(np.int64)
    return (indptr, *(p[order] for p in payloads))

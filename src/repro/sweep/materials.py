"""Multigroup cross-section data for Sn transport.

A :class:`Material` is a total cross section and an isotropic
group-to-group scattering matrix; a :class:`MaterialMap` binds
materials to the mesh's per-cell material ids and exposes the
vectorized per-cell arrays the solver consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError

__all__ = ["Material", "MaterialMap"]


@dataclass
class Material:
    """One material: ``sigma_t[g]`` and scattering ``sigma_s[g_from, g_to]``."""

    sigma_t: np.ndarray
    sigma_s: np.ndarray
    name: str = "material"

    def __post_init__(self):
        self.sigma_t = np.atleast_1d(np.asarray(self.sigma_t, dtype=float))
        self.sigma_s = np.asarray(self.sigma_s, dtype=float)
        ng = len(self.sigma_t)
        if self.sigma_s.ndim == 0:
            self.sigma_s = np.full((ng, ng), float(self.sigma_s)) * np.eye(ng)
        if self.sigma_s.shape != (ng, ng):
            raise ReproError(
                f"sigma_s must be ({ng}, {ng}); got {self.sigma_s.shape}"
            )
        if np.any(self.sigma_t < 0) or np.any(self.sigma_s < 0):
            raise ReproError("cross sections must be non-negative")
        out_scatter = self.sigma_s.sum(axis=1)
        if np.any(out_scatter > self.sigma_t + 1e-12):
            raise ReproError(
                f"material {self.name!r}: scattering exceeds total "
                "(multiplication is not modeled)"
            )

    @property
    def num_groups(self) -> int:
        return len(self.sigma_t)

    @property
    def sigma_a(self) -> np.ndarray:
        """Absorption per group (total minus out-scatter)."""
        return self.sigma_t - self.sigma_s.sum(axis=1)

    @classmethod
    def isotropic(
        cls, sigma_t: float, scatter_ratio: float = 0.0, groups: int = 1,
        name: str = "material",
    ) -> "Material":
        """One-parameter material: within-group scattering only."""
        if not 0.0 <= scatter_ratio <= 1.0:
            raise ReproError("scatter_ratio must be in [0, 1]")
        st = np.full(groups, float(sigma_t))
        ss = np.eye(groups) * (sigma_t * scatter_ratio)
        return cls(st, ss, name=name)

    @classmethod
    def void(cls, groups: int = 1) -> "Material":
        return cls(np.zeros(groups), np.zeros((groups, groups)), name="void")


class MaterialMap:
    """Materials bound to mesh cells through the mesh's material ids."""

    def __init__(self, materials: dict[int, Material], material_ids: np.ndarray):
        if not materials:
            raise ReproError("no materials given")
        groups = {m.num_groups for m in materials.values()}
        if len(groups) != 1:
            raise ReproError("all materials must share the group count")
        self.num_groups = groups.pop()
        self.materials = dict(materials)
        self.material_ids = np.asarray(material_ids, dtype=np.int64)
        missing = set(np.unique(self.material_ids)) - set(self.materials)
        if missing:
            raise ReproError(f"mesh uses undefined material ids {sorted(missing)}")
        ncells = len(self.material_ids)
        self.sigma_t_cell = np.empty((ncells, self.num_groups))
        self._scatter_cell = np.empty((ncells, self.num_groups, self.num_groups))
        for mid, mat in self.materials.items():
            mask = self.material_ids == mid
            self.sigma_t_cell[mask] = mat.sigma_t
            self._scatter_cell[mask] = mat.sigma_s

    @property
    def num_cells(self) -> int:
        return len(self.material_ids)

    def scatter_source(self, phi: np.ndarray) -> np.ndarray:
        """Isotropic scattering source: ``S[c,g] = sum_g' phi[c,g'] ss[g',g]``."""
        if phi.shape != (self.num_cells, self.num_groups):
            raise ReproError("phi shape mismatch")
        return np.einsum("cg,cgh->ch", phi, self._scatter_cell)

    def sigma_a_cell(self) -> np.ndarray:
        """(ncells, groups) absorption cross sections."""
        return self.sigma_t_cell - self._scatter_cell.sum(axis=2)

    @classmethod
    def uniform(cls, material: Material, ncells: int) -> "MaterialMap":
        return cls({0: material}, np.zeros(ncells, dtype=np.int64))

"""Sn sweep component: quadrature, DAGs, kernels, programs, optimizations."""

from .dag import PatchAngleGraph, SweepTopology, check_acyclic, directed_edges
from .kernels import AngleKernel
from .materials import Material, MaterialMap
from .priorities import (
    ANGLE_FACTOR,
    PriorityStrategy,
    apply_priorities,
    patch_priorities,
    vertex_priorities,
)
from .quadrature import Quadrature, level_symmetric, product_quadrature
from .solver import FOUR_PI, SnSolver, SweepResult
from .sweep_program import SweepPatchProgram

__all__ = [
    "Quadrature",
    "level_symmetric",
    "product_quadrature",
    "SweepTopology",
    "PatchAngleGraph",
    "directed_edges",
    "check_acyclic",
    "AngleKernel",
    "Material",
    "MaterialMap",
    "PriorityStrategy",
    "apply_priorities",
    "patch_priorities",
    "vertex_priorities",
    "ANGLE_FACTOR",
    "SnSolver",
    "SweepResult",
    "FOUR_PI",
    "SweepPatchProgram",
]

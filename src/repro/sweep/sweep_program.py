"""The data-driven sweep patch-program (Listing 1 of the paper).

One program instance sweeps one patch in one ordinate direction.  Its
local context is exactly Listing 1's: an array of unfinished-upwind
counters, a priority queue of ready vertices, and a buffer of outgoing
streams.  ``compute`` collects up to ``grain`` ready vertices (vertex
clustering, Sec. V-C), hands them to the user-supplied solve callback
in dependency order, and aggregates all items bound for the same
target program into a single stream (the communication-combining
benefit of clustering).

The program is fully reentrant: interleaved dependencies between
patches (Fig. 4) simply cause additional scheduled runs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from collections.abc import Callable

import numpy as np

from ..core.patch_program import PatchProgram
from ..core.stream import ProgramId, Stream
from .dag import PatchAngleGraph

__all__ = ["SweepPatchProgram"]


class SweepPatchProgram(PatchProgram):
    """Listing 1: data-driven parallel sweep of one (patch, angle)."""

    def __init__(
        self,
        graph: PatchAngleGraph,
        cells_global: np.ndarray,
        grain: int = 64,
        solve_fn: Callable[[np.ndarray, int], None] | None = None,
        static_priority: float = 0.0,
        dynamic_priority: bool = False,
        bytes_per_item: int = 8,
        record_clusters: bool = False,
        resilient: bool = False,
    ):
        super().__init__(graph.patch, graph.angle)
        if grain <= 0:
            raise ValueError("clustering grain must be positive")
        self.graph = graph
        self.cells_global = cells_global
        self.grain = grain
        self.solve_fn = solve_fn
        self.static_priority = static_priority
        self.dynamic_priority = dynamic_priority
        self.bytes_per_item = bytes_per_item
        self.record_clusters = record_clusters
        self.clusters: list[list[int]] = []
        # Resilient mode: remote payloads carry (dst_slot, edge_id)
        # pairs and input() discards edges already applied, making
        # delivery idempotent - required for crash recovery, where a
        # replayed program may re-batch its emissions differently than
        # the execution that was lost.  Edge ids are header metadata;
        # nbytes still reflects the physical data volume.
        self.resilient_input = resilient
        self._applied: dict[int, set[int]] = {}  # src patch -> edge ids

        # Local context (Listing 1, part 1), created by init().
        self._counts: list[int] = []
        self._heap: list[tuple[float, int]] = []
        self._outstreams: list[Stream] = []
        self._solved = 0
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}

    # -- Listing 1 interface ------------------------------------------------------

    def init(self) -> None:
        g = self.graph
        self._counts = g.init_counts.tolist()
        prio = (
            g.vertex_prio.tolist()
            if g.vertex_prio is not None
            else [0.0] * g.n_local
        )
        self._prio = prio
        self._heap = [(prio[v], v) for v in np.nonzero(g.init_counts == 0)[0]]
        self._heap.sort()
        self._solved = 0
        self._outstreams = []
        self.clusters = []
        self._applied = {}
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}

    def input(self, stream: Stream) -> None:
        counts = self._counts
        prio = self._prio
        heap = self._heap
        n = 0
        if self.resilient_input:
            applied = self._applied.setdefault(stream.src.patch, set())
            for v, e in stream.payload.tolist():
                n += 1
                if e in applied:
                    continue  # duplicate delivery (retry or replay)
                applied.add(e)
                counts[v] -= 1
                if counts[v] == 0:
                    heappush(heap, (prio[v], v))
        else:
            for v in stream.payload:
                counts[v] -= 1
                if counts[v] == 0:
                    heappush(heap, (prio[v], v))
                n += 1
        self._last["input_items"] += n

    def compute(self) -> None:
        heap = self._heap
        if not heap:
            self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                          "input_items": self._last["input_items"],
                          "streams": 0}
            return
        local_adj, remote_adj = self.graph.adjacency_lists()
        counts = self._counts
        prio = self._prio
        grain = self.grain
        popped: list[int] = []
        out: dict[int, list[int]] = {}
        edges = 0
        remote_items = 0
        resilient = self.resilient_input
        while heap and len(popped) < grain:
            _, v = heappop(heap)
            popped.append(v)
            for w in local_adj[v]:
                counts[w] -= 1
                edges += 1
                if counts[w] == 0:
                    heappush(heap, (prio[w], w))
            for dp, dl, eid in remote_adj[v]:
                if resilient:
                    out.setdefault(dp, []).append((dl, eid))
                else:
                    out.setdefault(dp, []).append(dl)
                edges += 1
                remote_items += 1

        if self.solve_fn is not None:
            self.solve_fn(self.cells_global[popped], self.graph.angle)
        self._solved += len(popped)
        if self.record_clusters:
            self.clusters.append(popped)

        angle = self.graph.angle
        for dp, items in out.items():
            self._outstreams.append(
                Stream(
                    src=self.id,
                    dst=ProgramId(dp, angle),
                    payload=np.asarray(items, dtype=np.int64),
                    items=len(items),
                    nbytes=len(items) * self.bytes_per_item,
                )
            )
        self._last = {
            "vertices": len(popped),
            "edges": edges,
            "remote_items": remote_items,
            "input_items": self._last["input_items"],
            "streams": len(out),
        }

    def output(self) -> Stream | None:
        if self._outstreams:
            return self._outstreams.pop(0)
        return None

    def vote_to_halt(self) -> bool:
        return not self._heap

    # -- runtime hooks --------------------------------------------------------------

    def checkpoint_shared(self) -> tuple[str, ...]:
        # Immutable topology, the global cell-index map and the solve
        # callback (which closes over host-owned flux arrays) are shared
        # with the runtime and must not be deep-copied into snapshots.
        return ("graph", "cells_global", "solve_fn")

    def remaining_workload(self) -> int:
        return self.graph.n_local - self._solved

    def priority(self) -> float:
        p = self.static_priority
        if self.dynamic_priority and self._heap:
            # Prefer programs whose best ready vertex is most urgent
            # (smallest vertex key); scaled to act as a tie-breaker only.
            p -= 1e-3 * self._heap[0][0]
        return p

    def last_run_counters(self) -> dict[str, int]:
        out = dict(self._last)
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}
        return out

"""The data-driven sweep patch-program (Listing 1 of the paper).

One program instance sweeps one patch in one ordinate direction.  Its
local context is exactly Listing 1's: an array of unfinished-upwind
counters, a priority queue of ready vertices, and a buffer of outgoing
streams.  ``compute`` collects up to ``grain`` ready vertices (vertex
clustering, Sec. V-C), hands them to the user-supplied solve callback
in dependency order, and aggregates all items bound for the same
target program into a single stream (the communication-combining
benefit of clustering).

The program is fully reentrant: interleaved dependencies between
patches (Fig. 4) simply cause additional scheduled runs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from collections.abc import Callable

import numpy as np

from ..core.patch_program import PatchProgram
from ..core.stream import ProgramId, Stream
from .dag import PatchAngleGraph

__all__ = ["SweepPatchProgram"]


class SweepPatchProgram(PatchProgram):
    """Listing 1: data-driven parallel sweep of one (patch, angle)."""

    def __init__(
        self,
        graph: PatchAngleGraph,
        cells_global: np.ndarray,
        grain: int = 64,
        solve_fn: Callable[[np.ndarray, int], None] | None = None,
        static_priority: float = 0.0,
        dynamic_priority: bool = False,
        bytes_per_item: int = 8,
        record_clusters: bool = False,
        resilient: bool = False,
    ):
        super().__init__(graph.patch, graph.angle)
        if grain <= 0:
            raise ValueError("clustering grain must be positive")
        self.graph = graph
        self.cells_global = cells_global
        self.grain = grain
        self.solve_fn = solve_fn
        self.static_priority = static_priority
        self.dynamic_priority = dynamic_priority
        self.bytes_per_item = bytes_per_item
        self.record_clusters = record_clusters
        self.clusters: list[list[int]] = []
        # Resilient mode: remote payloads carry (dst_slot, edge_id)
        # pairs and input() discards edges already applied, making
        # delivery idempotent - required for crash recovery, where a
        # replayed program may re-batch its emissions differently than
        # the execution that was lost.  Edge ids are header metadata;
        # nbytes still reflects the physical data volume.
        self.resilient_input = resilient
        self._applied: dict[int, set[int]] = {}  # src patch -> edge ids

        # Local context (Listing 1, part 1), created by init().
        self._counts: list[int] = []
        self._heap: list = []
        self._outstreams: list[Stream] = []
        self._solved = 0
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}

    # -- Listing 1 interface ------------------------------------------------------

    def init(self) -> None:
        g = self.graph
        n = g.n_local
        self._counts = g.init_counts.tolist()
        pa = g.vertex_prio
        prio = pa.tolist() if pa is not None else [0.0] * n
        self._prio = prio
        # Heap keys.  Every priority strategy yields integer-valued
        # float64 (incl. the exact ``_FAR`` sentinel), so the pair
        # ``(prio[v], v)`` orders identically to the single integer
        # ``int(prio[v]) * n + v`` - and a heap of small ints is far
        # cheaper to sift than one of (float, int) tuples.  Vertices
        # decode as ``key % n`` (exact for negative priorities too).
        # Non-integer priorities (user-supplied) fall back to prebuilt
        # tuples; both paths push ``keys[v]`` and never allocate.
        self._n = n
        vk = g.vertex_keys
        if vk is not None:
            self._intkeys = True
            keys = vk.tolist()
        elif pa is None:
            self._intkeys = True
            keys = list(range(n))
        elif bool(np.array_equal(pa, np.trunc(pa))):
            self._intkeys = True
            keys = (
                pa.astype(np.int64) * n + np.arange(n, dtype=np.int64)
            ).tolist()
        else:
            self._intkeys = False
            keys = [(p, v) for v, p in enumerate(prio)]
        self._keys = keys
        self._heap = [keys[v] for v in np.nonzero(g.init_counts == 0)[0]]
        self._heap.sort()
        self._solved = 0
        self._outstreams = []
        self.clusters = []
        self._applied = {}
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}

    def input(self, stream: Stream) -> None:
        counts = self._counts
        keys = self._keys
        heap = self._heap
        n = 0
        if self.resilient_input:
            applied = self._applied.setdefault(stream.src.patch, set())
            for v, e in stream.payload.tolist():
                n += 1
                if e in applied:
                    continue  # duplicate delivery (retry or replay)
                applied.add(e)
                c = counts[v] - 1
                counts[v] = c
                if not c:
                    heappush(heap, keys[v])
        else:
            payload = stream.payload.tolist()
            n = len(payload)
            for v in payload:
                c = counts[v] - 1
                counts[v] = c
                if not c:
                    heappush(heap, keys[v])
        self._last["input_items"] += n

    def compute(self) -> None:
        heap = self._heap
        if not heap:
            self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                          "input_items": self._last["input_items"],
                          "streams": 0}
            return
        lptr, ltgt, rptr, rpat, rloc = self.graph.adjacency_flat()
        counts = self._counts
        keys = self._keys
        grain = self.grain
        popped: list[int] = []
        append = popped.append
        out: dict[int, list[int]] = {}
        edges = 0
        remote_items = 0
        mod = self._n if self._intkeys else 0
        budget = grain
        while heap and budget:
            budget -= 1
            k = heappop(heap)
            v = k % mod if mod else k[1]
            append(v)
            s, e = lptr[v], lptr[v + 1]
            edges += e - s
            for w in ltgt[s:e]:
                c = counts[w] - 1
                counts[w] = c
                if not c:
                    heappush(heap, keys[w])
        # Remote edges never feed the ready heap, so they are gathered
        # after the pop loop: iterating ``popped`` in order preserves
        # both the first-encounter order of target patches and the
        # per-target item order of the fused form.
        resilient = self.resilient_input
        dp = -1
        items: list = []
        for v in popped:
            rs, re = rptr[v], rptr[v + 1]
            if rs == re:
                continue
            # Remote CSR position doubles as the stable edge_id.
            for j in range(rs, re):
                p = rpat[j]
                if p != dp:
                    items = out.get(p)
                    if items is None:
                        items = out[p] = []
                    dp = p
                items.append((rloc[j], j) if resilient else rloc[j])
            edges += re - rs
            remote_items += re - rs

        if self.solve_fn is not None:
            self.solve_fn(self.cells_global[popped], self.graph.angle)
        self._solved += len(popped)
        if self.record_clusters:
            self.clusters.append(popped)

        angle = self.graph.angle
        for dp, items in out.items():
            self._outstreams.append(
                Stream(
                    src=self.id,
                    dst=ProgramId(dp, angle),
                    payload=np.asarray(items, dtype=np.int64),
                    items=len(items),
                    nbytes=len(items) * self.bytes_per_item,
                )
            )
        self._last = {
            "vertices": len(popped),
            "edges": edges,
            "remote_items": remote_items,
            "input_items": self._last["input_items"],
            "streams": len(out),
        }

    def output(self) -> Stream | None:
        if self._outstreams:
            return self._outstreams.pop(0)
        return None

    def drain_outputs(self) -> list[Stream]:
        # Hand the emission buffer over wholesale (same FIFO order as
        # popping via ``output`` until None, without O(n^2) pop(0)s).
        out = self._outstreams
        self._outstreams = []
        return out

    def vote_to_halt(self) -> bool:
        return not self._heap

    # -- runtime hooks --------------------------------------------------------------

    def checkpoint_shared(self) -> tuple[str, ...]:
        # Immutable topology, the global cell-index map and the solve
        # callback (which closes over host-owned flux arrays) are shared
        # with the runtime and must not be deep-copied into snapshots.
        return ("graph", "cells_global", "solve_fn")

    def remaining_workload(self) -> int:
        return self.graph.n_local - self._solved

    def priority(self) -> float:
        p = self.static_priority
        if self.dynamic_priority and self._heap:
            # Prefer programs whose best ready vertex is most urgent
            # (smallest vertex key); scaled to act as a tie-breaker only.
            k = self._heap[0]
            p -= 1e-3 * (self._prio[k % self._n] if self._intkeys else k[0])
        return p

    def last_run_counters(self) -> dict[str, int]:
        # Hand the live dict over and start a fresh one: the caller
        # reads it before the next input/compute can touch ``_last``.
        out = self._last
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}
        return out

"""Sweep dependency DAGs (Sec. II-C, V-A).

For every ordinate direction, the upwind/downwind relation between
face-adjacent cells induces a directed acyclic graph whose vertices are
``(cell, angle)`` pairs; a sweep is a topological traversal of that
graph.  This module builds, per ``(patch, angle)``, the structures of
Listing 1's local context:

* initial in-degree counts (number of upwind neighbours per vertex),
* downwind local edges (CSR of patch-local target indices), and
* downwind remote edges (CSR of target patch + target local index),

all derived with vectorized NumPy group-bys so million-edge topologies
build in seconds.  The structures are immutable and shared by every
sweep iteration, energy group and runtime backend.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .._util import ReproError
from ..framework.connectivity import InterfaceTable, build_interfaces
from ..framework.patch import PatchSet
from .quadrature import Quadrature

__all__ = [
    "directed_edges",
    "check_acyclic",
    "break_cycles",
    "topological_levels",
    "PatchAngleGraph",
    "SweepTopology",
]


def directed_edges(
    interfaces: InterfaceTable, direction: np.ndarray, tol: float = 1e-12
) -> tuple[np.ndarray, np.ndarray]:
    """Directed dependency edges (upwind -> downwind) for one direction.

    An interface with normal n (oriented a -> b) yields edge a -> b when
    ``dot(direction, n) > tol``, edge b -> a when ``< -tol``, and no
    dependency when the face is parallel to the direction.  On 2-D
    meshes only the (x, y) components of the ordinate interact with the
    geometry (standard 2-D Sn: the domain is invariant in z).
    """
    d = np.asarray(direction, dtype=np.float64)
    dot = interfaces.normal @ d[: interfaces.normal.shape[1]]
    fwd = dot > tol
    bwd = dot < -tol
    u = np.concatenate([interfaces.cell_a[fwd], interfaces.cell_b[bwd]])
    v = np.concatenate([interfaces.cell_b[fwd], interfaces.cell_a[bwd]])
    return u, v


def check_acyclic(num_vertices: int, u: np.ndarray, v: np.ndarray) -> bool:
    """Kahn's algorithm: True iff the edge set is a DAG."""
    indeg = np.bincount(v, minlength=num_vertices)
    order = np.argsort(u, kind="stable")
    us, vs = u[order], v[order]
    indptr = np.searchsorted(us, np.arange(num_vertices + 1))
    q = deque(np.nonzero(indeg == 0)[0].tolist())
    seen = 0
    indeg = indeg.tolist()
    vs_list = vs.tolist()
    indptr_list = indptr.tolist()
    while q:
        x = q.popleft()
        seen += 1
        for i in range(indptr_list[x], indptr_list[x + 1]):
            w = vs_list[i]
            indeg[w] -= 1
            if indeg[w] == 0:
                q.append(w)
    return seen == num_vertices


def break_cycles(
    num_vertices: int, u: np.ndarray, v: np.ndarray,
    weight: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean keep-mask removing a feedback edge set, making (u, v) a DAG.

    Severely distorted meshes can induce dependency *cycles* for some
    directions; production sweepers (e.g. Pautz [20]) break them and
    treat the severed dependencies with lagged (previous-iteration)
    flux.  The heuristic here peels Kahn-ready vertices and, when the
    peel stalls, drops the lightest in-edge of the stalled vertex with
    the smallest in-degree - cheap and effective for the near-acyclic
    graphs distorted meshes produce.
    """
    m = len(u)
    keep = np.ones(m, dtype=bool)
    if weight is None:
        weight = np.ones(m)
    # Adjacency: per vertex, outgoing and incoming edge ids.
    order = np.argsort(u, kind="stable")
    out_ptr = np.searchsorted(u[order], np.arange(num_vertices + 1))
    order_in = np.argsort(v, kind="stable")
    in_ptr = np.searchsorted(v[order_in], np.arange(num_vertices + 1))

    indeg = np.bincount(v, minlength=num_vertices).astype(np.int64)
    done = np.zeros(num_vertices, dtype=bool)
    q = deque(np.nonzero(indeg == 0)[0].tolist())
    remaining = num_vertices
    while remaining:
        while q:
            x = q.popleft()
            if done[x]:
                continue
            done[x] = True
            remaining -= 1
            for k in range(out_ptr[x], out_ptr[x + 1]):
                e = order[k]
                if not keep[e]:
                    continue
                w = v[e]
                indeg[w] -= 1
                if indeg[w] == 0 and not done[w]:
                    q.append(int(w))
        if remaining == 0:
            break
        # Stalled: every remaining vertex is on a cycle.  Cut the
        # lightest live in-edge of the minimum-in-degree vertex.
        alive = np.nonzero(~done & (indeg > 0))[0]
        x = alive[np.argmin(indeg[alive])]
        best_e, best_w = -1, np.inf
        for k in range(in_ptr[x], in_ptr[x + 1]):
            e = order_in[k]
            if keep[e] and not done[u[e]] and weight[e] < best_w:
                best_e, best_w = int(e), float(weight[e])
        if best_e < 0:
            raise ReproError("cycle breaking failed to find an edge to cut")
        keep[best_e] = False
        indeg[x] -= 1
        if indeg[x] == 0:
            q.append(int(x))
    return keep


def topological_levels(
    num_vertices: int, u: np.ndarray, v: np.ndarray
) -> list[np.ndarray]:
    """Partition vertices into dependency levels (Kahn fronts).

    All vertices within one level are mutually independent, which is
    what the level-vectorized kernel path exploits.  Raises on cycles.
    """
    indeg = np.bincount(v, minlength=num_vertices)
    order = np.argsort(u, kind="stable")
    us, vs = u[order], v[order]
    indptr = np.searchsorted(us, np.arange(num_vertices + 1))
    levels = []
    current = np.nonzero(indeg == 0)[0]
    seen = 0
    indeg = indeg.copy()
    while len(current):
        levels.append(current)
        seen += len(current)
        nxt = []
        for x in current:
            for i in range(indptr[x], indptr[x + 1]):
                w = vs[i]
                indeg[w] -= 1
                if indeg[w] == 0:
                    nxt.append(w)
        current = np.asarray(sorted(nxt), dtype=np.int64)
    if seen != num_vertices:
        raise ReproError("topological_levels: graph is cyclic")
    return levels


@dataclass
class PatchAngleGraph:
    """Dependency subgraph of one (patch, angle): Listing 1's topology."""

    patch: int
    angle: int
    n_local: int
    init_counts: np.ndarray  # (n_local,) upwind-neighbour counts
    dl_indptr: np.ndarray  # local downwind CSR
    dl_target: np.ndarray
    dr_indptr: np.ndarray  # remote downwind CSR
    dr_patch: np.ndarray
    dr_local: np.ndarray
    vertex_prio: np.ndarray | None = None  # set by the priority module
    # Encoded ready-heap keys ``int(prio[v]) * n_local + v`` (same
    # order as the (prio, v) pair; see SweepPatchProgram.init), set
    # alongside ``vertex_prio`` by the batched priority pass.
    vertex_keys: np.ndarray | None = None

    # Lazily-built Python-list adjacency (hot-loop form, cached because
    # the topology is reused across iterations, groups and runs).
    _adj_cache: tuple | None = field(default=None, repr=False)
    _flat_cache: tuple | None = field(default=None, repr=False)

    @property
    def num_local_edges(self) -> int:
        return len(self.dl_target)

    @property
    def num_remote_edges(self) -> int:
        return len(self.dr_local)

    @property
    def source_vertices(self) -> np.ndarray:
        return np.nonzero(self.init_counts == 0)[0]

    def boundary_vertices(self) -> np.ndarray:
        """Local vertices with at least one remote downwind edge."""
        deg = np.diff(self.dr_indptr)
        return np.nonzero(deg > 0)[0]

    def adjacency_lists(self):
        """(local_targets, remote_targets) as Python lists per vertex.

        ``remote_targets[v]`` is a list of ``(dst_patch, dst_local,
        edge_id)`` where ``edge_id`` is the edge's stable position in
        this graph's remote CSR - unique per source program and
        identical across re-executions, which is what lets a receiver
        discard duplicate dependency notifications exactly (the
        fault-tolerant runtime's idempotent-delivery contract).  This
        is the form the sweep program's collect loop consumes; it is
        cached on the graph because topology outlives any one sweep.
        """
        if self._adj_cache is None:
            # One whole-array tolist per CSR array plus Python-list
            # slicing: identical contents to a per-vertex numpy
            # slice-and-convert, at a fraction of the build cost
            # (per-vertex ndarray views and .tolist() calls dominate on
            # million-edge topologies).
            lptr = self.dl_indptr.tolist()
            ltgt = self.dl_target.tolist()
            local = [
                ltgt[lptr[i] : lptr[i + 1]] for i in range(self.n_local)
            ]
            rptr = self.dr_indptr.tolist()
            rows = list(
                zip(
                    self.dr_patch.tolist(),
                    self.dr_local.tolist(),
                    range(len(self.dr_local)),
                )
            )
            remote = [
                rows[rptr[i] : rptr[i + 1]] for i in range(self.n_local)
            ]
            self._adj_cache = (local, remote)
        return self._adj_cache

    def adjacency_flat(self):
        """Flat-CSR adjacency as plain Python lists (the collect loop's
        working form): ``(lptr, ltgt, rptr, rpat, rloc)``.

        Identical content to :meth:`adjacency_lists` without
        materializing a list/tuple per vertex: the collect loop slices
        ``ltgt[lptr[v]:lptr[v + 1]]`` lazily and reads remote edges by
        CSR position, whose index *is* the stable ``edge_id``.
        """
        if self._flat_cache is None:
            self._flat_cache = (
                self.dl_indptr.tolist(),
                self.dl_target.tolist(),
                self.dr_indptr.tolist(),
                self.dr_patch.tolist(),
                self.dr_local.tolist(),
            )
        return self._flat_cache


def _csr_by_source(
    src_local: np.ndarray, n_local: int, *payloads: np.ndarray
) -> tuple[np.ndarray, ...]:
    """Group edge arrays by source-local index into CSR form."""
    order = np.argsort(src_local, kind="stable")
    ss = src_local[order]
    indptr = np.searchsorted(ss, np.arange(n_local + 1)).astype(np.int64)
    return (indptr, *(p[order] for p in payloads))


class SweepTopology:
    """All per-(patch, angle) sweep graphs for a patch set + quadrature.

    ``graphs[(p, a)]`` is the :class:`PatchAngleGraph`; ``patch_dag[a]``
    the cross-patch dependency digraph (possibly cyclic - Fig. 4's
    zig-zag - which is exactly why patch-programs must be reentrant).
    """

    def __init__(
        self,
        pset: PatchSet,
        quadrature: Quadrature,
        interfaces: InterfaceTable | None = None,
        tol: float = 1e-12,
        validate: bool = False,
        on_cycle: str = "error",
    ):
        if on_cycle not in ("error", "break"):
            raise ReproError(f"unknown on_cycle policy {on_cycle!r}")
        self.pset = pset
        self.quadrature = quadrature
        self.interfaces = (
            interfaces if interfaces is not None else build_interfaces(pset.mesh)
        )
        self.on_cycle = on_cycle
        self.broken_edges = 0  # dependencies severed by cycle breaking
        self.graphs: dict[tuple[int, int], PatchAngleGraph] = {}
        self.patch_dag: dict[int, np.ndarray] = {}  # angle -> (m, 2) patch edges
        self._build(tol, validate)

    @property
    def num_angles(self) -> int:
        return self.quadrature.num_angles

    @property
    def num_vertices(self) -> int:
        return self.pset.mesh.num_cells * self.num_angles

    def graph(self, patch: int, angle: int) -> PatchAngleGraph:
        return self.graphs[(patch, angle)]

    def total_workload(self) -> int:
        """Global number of (cell, angle) vertices to solve."""
        return self.num_vertices

    def _build(self, tol: float, validate: bool) -> None:
        pset = self.pset
        ncells = pset.mesh.num_cells
        cell_patch = pset.cell_patch
        cell_local = pset.cell_local
        patch_sizes = np.array([p.num_cells for p in pset.patches])
        npat = pset.num_patches
        # One global stable sort per angle on the composite
        # (patch, local) key replaces a pair of per-patch argsorts:
        # sorting by ``pu * stride + lu`` with a stable kind yields
        # exactly the (patch, src_local, original-order) edge order the
        # old per-patch ``_csr_by_source`` produced, so every CSR array
        # is bitwise identical.
        stride = int(patch_sizes.max()) + 1 if npat else 1

        for a in range(self.num_angles):
            u, v = directed_edges(
                self.interfaces, self.quadrature.directions[a], tol
            )
            if (validate or self.on_cycle == "break") and not check_acyclic(
                ncells, u, v
            ):
                if self.on_cycle == "break":
                    # Distorted-mesh escape hatch (Pautz-style): sever a
                    # feedback edge set; the severed dependencies are
                    # treated with lagged flux by the iteration.
                    keep = break_cycles(ncells, u, v)
                    self.broken_edges += int((~keep).sum())
                    u, v = u[keep], v[keep]
                else:
                    raise ReproError(
                        f"sweep graph for angle {a} is cyclic; mesh is too "
                        "distorted for a single-direction sweep (pass "
                        "on_cycle='break' to sever feedback edges)"
                    )
            pu, pv = cell_patch[u], cell_patch[v]
            lu, lv = cell_local[u], cell_local[v]

            # Patch-level digraph (unique cross-patch edges).  Unique
            # over the scalar composite key sorts in the same (pu, pv)
            # lexicographic order as ``np.unique(..., axis=0)`` at a
            # fraction of its cost.
            cross = pu != pv
            if np.any(cross):
                ck = pu[cross] * npat + pv[cross]
                uk = np.unique(ck)
                pairs = np.stack([uk // npat, uk % npat], axis=1)
            else:
                pairs = np.zeros((0, 2), dtype=np.int64)
            self.patch_dag[a] = pairs

            # In-degree counts of every patch in one global bincount.
            counts_all = np.bincount(
                pv * stride + lv, minlength=npat * stride
            ).astype(np.int64)

            # All edges in (src patch, src local, original) order.
            order = np.argsort(pu * stride + lu, kind="stable")
            pu_s = pu[order]
            lu_s = lu[order]
            lv_o = lv[order]
            pv_o = pv[order]
            local = pu_s == pv_o
            remote = ~local
            l_lu, l_lv = lu_s[local], lv_o[local]
            r_lu, r_pv, r_lv = lu_s[remote], pv_o[remote], lv_o[remote]
            lb = np.searchsorted(pu_s[local], np.arange(npat + 1))
            rb = np.searchsorted(pu_s[remote], np.arange(npat + 1))

            for p in range(npat):
                nloc = int(patch_sizes[p])
                counts = counts_all[p * stride : p * stride + nloc].copy()
                ls, le = lb[p], lb[p + 1]
                rs, re = rb[p], rb[p + 1]
                self.graphs[(p, a)] = PatchAngleGraph(
                    patch=p,
                    angle=a,
                    n_local=nloc,
                    init_counts=counts,
                    dl_indptr=np.searchsorted(
                        l_lu[ls:le], np.arange(nloc + 1)
                    ).astype(np.int64),
                    dl_target=l_lv[ls:le],
                    dr_indptr=np.searchsorted(
                        r_lu[rs:re], np.arange(nloc + 1)
                    ).astype(np.int64),
                    dr_patch=r_pv[rs:re],
                    dr_local=r_lv[rs:re],
                )

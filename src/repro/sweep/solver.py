"""Multigroup Sn transport solver driven by data-driven sweeps.

:class:`SnSolver` assembles the pieces: mesh + patches, quadrature,
materials, spatial kernel, sweep DAG topology and priorities.  A
*source iteration* repeatedly sweeps all angles with the scattering
source lagged, which is the solver structure of JSNT-S / JSNT-U.

Two sweep execution modes produce identical numerics:

* ``fast``   - direct per-angle topological traversal (no patch
  machinery); the reference and the quickest way to converge a flux.
* ``engine`` - the patch-centric data-driven execution of Listing 1 via
  :class:`repro.core.SerialEngine`; exercises exactly the program that
  the DES runtime schedules.

Bitwise agreement between modes is part of the test suite: the
data-driven machinery must not change the physics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .._util import ReproError
from ..core.engine import EngineStats, SerialEngine
from ..framework.connectivity import build_boundary, build_interfaces
from ..framework.patch import PatchSet
from ..mesh.structured import StructuredMesh
from .dag import SweepTopology, directed_edges
from .kernels import AngleKernel
from .materials import MaterialMap
from .priorities import PriorityStrategy, apply_priorities
from .quadrature import Quadrature
from .sweep_program import SweepPatchProgram

__all__ = ["SnSolver", "SweepResult", "FOUR_PI"]

FOUR_PI = 4.0 * np.pi


@dataclass
class SweepResult:
    """Converged (or best-effort) solution of a source iteration."""

    phi: np.ndarray  # (ncells, groups) scalar flux
    leakage: np.ndarray  # (groups,) outgoing boundary current
    iterations: int
    residuals: list[float]
    converged: bool
    engine_stats: list[EngineStats] = field(default_factory=list)


class SnSolver:
    """Discrete-ordinates solver on a patch decomposition."""

    def __init__(
        self,
        pset: PatchSet,
        quadrature: Quadrature,
        materials: MaterialMap,
        source: np.ndarray,
        scheme: str | None = None,
        fixup: bool = True,
        boundary_flux: float = 0.0,
        grain: int = 64,
        strategy: PriorityStrategy | str = "slbd+slbd",
        validate_dag: bool = False,
        reflecting: bool = False,
    ):
        self.pset = pset
        self.mesh = pset.mesh
        self.quadrature = quadrature
        self.materials = materials
        ng = materials.num_groups
        source = np.asarray(source, dtype=float)
        if source.ndim == 1:
            source = source[:, None]
        if source.shape != (self.mesh.num_cells, ng):
            raise ReproError(
                f"source must be ({self.mesh.num_cells}, {ng}); got {source.shape}"
            )
        self.source = source
        if scheme is None:
            scheme = "dd" if isinstance(self.mesh, StructuredMesh) else "step"
        self.scheme = scheme
        self.fixup = fixup
        self.boundary_flux = boundary_flux
        self.grain = grain
        self.strategy = (
            PriorityStrategy.parse(strategy)
            if isinstance(strategy, str)
            else strategy
        )
        self.validate_dag = validate_dag

        self.interfaces = build_interfaces(self.mesh)
        self.boundary = build_boundary(self.mesh)
        self.volumes = (
            self.mesh.cell_volumes
            if hasattr(self.mesh, "cell_volumes")
            else np.full(self.mesh.num_cells, self.mesh.cell_volume)
        )
        self.sigma_t_v = materials.sigma_t_cell * self.volumes[:, None]

        self._kernels: dict[int, AngleKernel] = {}
        self._topo_orders: dict[int, np.ndarray] = {}
        self._topo_levels: dict[int, list] = {}
        self._topology: SweepTopology | None = None
        self._static_prio: dict[tuple[int, int], float] | None = None

        # Reflecting boundaries: lagged outgoing boundary fluxes, one
        # slab per angle, swapped after every full sweep.
        self.reflecting = reflecting
        self._angle_mirror: np.ndarray | None = None
        self._bnd_out_prev: np.ndarray | None = None
        self._bnd_out_next: np.ndarray | None = None
        if reflecting:
            self._setup_reflection()

    # -- reflecting boundaries -------------------------------------------------------

    def _setup_reflection(self) -> None:
        """Precompute angle mirrors and the lagged boundary-flux store.

        Specular reflection on axis-aligned boundaries maps each
        ordinate to the one with the face-normal component flipped;
        level-symmetric and product quadratures are closed under these
        sign flips.  The incoming flux of angle ``a`` on a boundary
        face equals the *previous sweep's* outgoing flux of the
        mirrored angle on the same face (standard lagged treatment,
        converged by the source iteration).
        """
        n = self.boundary.normal
        axis = np.argmax(np.abs(n), axis=1)
        aligned = np.abs(n[np.arange(len(n)), axis])
        if np.any(aligned < 1.0 - 1e-9):
            raise ReproError(
                "reflecting boundaries require axis-aligned boundary faces"
            )
        dirs = self.quadrature.directions
        na = len(dirs)
        ndim = dirs.shape[1]
        mirror = np.full((ndim, na), -1, dtype=np.int64)
        for ax in range(ndim):
            flipped = dirs.copy()
            flipped[:, ax] *= -1.0
            for a in range(na):
                match = np.nonzero(
                    np.all(np.abs(dirs - flipped[a]) < 1e-9, axis=1)
                )[0]
                if len(match) != 1:
                    raise ReproError(
                        "quadrature is not closed under axis reflection; "
                        "use a level-symmetric or product set"
                    )
                mirror[ax, a] = match[0]
        self._angle_mirror = mirror
        shape = (na, self.boundary.num_faces, self.num_groups)
        self._bnd_out_prev = np.zeros(shape)
        self._bnd_out_next = np.zeros(shape)

    def _capture_outgoing(self, angle: int, psi_faces: np.ndarray) -> None:
        """Record this sweep's outgoing boundary fluxes for the lag."""
        if not self.reflecting:
            return
        k = self.kernel(angle)
        self._bnd_out_next[angle, k.outflow_rows] = psi_faces[k.outflow_slots]

    def finish_reflection_sweep(self) -> None:
        """Swap the lagged boundary store after a full sweep."""
        if self.reflecting:
            self._bnd_out_prev, self._bnd_out_next = (
                self._bnd_out_next,
                self._bnd_out_prev,
            )

    # -- cached structures ---------------------------------------------------------

    @property
    def num_groups(self) -> int:
        return self.materials.num_groups

    def kernel(self, angle: int) -> AngleKernel:
        if angle not in self._kernels:
            self._kernels[angle] = AngleKernel(
                self.mesh,
                self.interfaces,
                self.boundary,
                self.quadrature.directions[angle],
                scheme=self.scheme,
                fixup=self.fixup,
            )
        return self._kernels[angle]

    @property
    def topology(self) -> SweepTopology:
        if self._topology is None:
            self._topology = SweepTopology(
                self.pset,
                self.quadrature,
                interfaces=self.interfaces,
                validate=self.validate_dag,
            )
            self._static_prio = apply_priorities(self._topology, self.strategy)
        return self._topology

    @property
    def static_priorities(self) -> dict[tuple[int, int], float]:
        _ = self.topology
        return self._static_prio

    def topo_order(self, angle: int) -> np.ndarray:
        """Global topological cell order for one angle (fast mode)."""
        if angle not in self._topo_orders:
            u, v = directed_edges(
                self.interfaces, self.quadrature.directions[angle]
            )
            n = self.mesh.num_cells
            indeg = np.bincount(v, minlength=n).tolist()
            order_e = np.argsort(u, kind="stable")
            us, vs = u[order_e], v[order_e]
            indptr = np.searchsorted(us, np.arange(n + 1)).tolist()
            vs = vs.tolist()
            q = deque(i for i in range(n) if indeg[i] == 0)
            topo = []
            while q:
                x = q.popleft()
                topo.append(x)
                for i in range(indptr[x], indptr[x + 1]):
                    w = vs[i]
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        q.append(w)
            if len(topo) != n:
                raise ReproError(f"sweep graph for angle {angle} is cyclic")
            self._topo_orders[angle] = np.asarray(topo, dtype=np.int64)
        return self._topo_orders[angle]

    def topo_levels(self, angle: int) -> list[np.ndarray]:
        """Dependency levels of the global sweep graph for one angle
        (cached), for the level-vectorized fast path."""
        if angle not in self._topo_levels:
            from .dag import topological_levels

            u, v = directed_edges(
                self.interfaces, self.quadrature.directions[angle]
            )
            self._topo_levels[angle] = topological_levels(
                self.mesh.num_cells, u, v
            )
        return self._topo_levels[angle]

    # -- single sweep -----------------------------------------------------------------

    def _angle_source_v(self, scatter: np.ndarray) -> np.ndarray:
        """Cell-integrated per-angle source ``(q + S) V / 4pi``."""
        return (self.source + scatter) * self.volumes[:, None] / FOUR_PI

    def _apply_bc(self, kernel: AngleKernel, psi_faces: np.ndarray, angle: int):
        """Apply the boundary condition for one angle.

        ``boundary_flux`` may be a scalar (isotropic incident / vacuum)
        or a callable ``fn(face_centroids, direction) -> values`` for
        position- and angle-dependent incident flux.
        """
        if self.reflecting:
            k = kernel
            mirrors = self._angle_mirror[k.inflow_axes, angle]
            psi_faces[k.inflow_slots] = self._bnd_out_prev[
                mirrors, k.inflow_rows
            ]
            return
        bf = self.boundary_flux
        if callable(bf):
            vals = np.asarray(
                bf(kernel.inflow_centroids, self.quadrature.directions[angle]),
                dtype=float,
            )
            kernel.apply_boundary(psi_faces, vals)
        else:
            kernel.apply_boundary(psi_faces, bf)

    def sweep_once(
        self,
        scatter: np.ndarray | None = None,
        mode: str = "fast-level",
        record_clusters: bool = False,
    ):
        """One full sweep of all angles; returns ``(phi, leakage, stats)``.

        ``stats`` is the :class:`EngineStats` of engine mode, or None.
        The default ``fast-level`` mode vectorizes each wavefront level
        with batched-BLAS kernels; it is bitwise identical to the
        scalar ``fast`` mode (enforced by tests/test_kernels_level.py).
        """
        ng = self.num_groups
        ncells = self.mesh.num_cells
        if scatter is None:
            scatter = np.zeros((ncells, ng))
        src_v = self._angle_source_v(scatter)
        phi = np.zeros((ncells, ng))
        leakage = np.zeros(ng)
        if mode in ("fast", "fast-level"):
            psi_cell = np.zeros((ncells, ng))
            for a in range(self.quadrature.num_angles):
                k = self.kernel(a)
                psi_faces = k.new_face_array(ng)
                self._apply_bc(k, psi_faces, a)
                if mode == "fast-level":
                    for level in self.topo_levels(a):
                        k.solve_level(
                            level, src_v, self.sigma_t_v, psi_faces, psi_cell
                        )
                else:
                    k.solve_cells(
                        self.topo_order(a), src_v, self.sigma_t_v,
                        psi_faces, psi_cell,
                    )
                self._capture_outgoing(a, psi_faces)
                w = self.quadrature.weights[a]
                phi += w * psi_cell
                leakage += w * k.leakage(psi_faces)
            self.finish_reflection_sweep()
            return phi, leakage, None
        if mode == "engine":
            programs, faces = self.build_programs(
                src_v, record_clusters=record_clusters
            )
            engine = SerialEngine()
            for prog in programs:
                engine.add_program(prog)
            stats = engine.run()
            phi, leakage = self.accumulate(faces)
            return phi, leakage, stats
        raise ReproError(f"unknown sweep mode {mode!r}")

    # -- data-driven program construction (shared with the DES runtime) ---------------

    def build_programs(
        self,
        src_v: np.ndarray | None = None,
        scatter: np.ndarray | None = None,
        compute: bool = True,
        record_clusters: bool = False,
        grain: int | None = None,
        resilient: bool = False,
    ):
        """Instantiate one SweepPatchProgram per (patch, angle).

        Returns ``(programs, face_arrays)`` where ``face_arrays[a]`` is
        the per-angle ``(psi_faces, psi_cell)`` pair written by the
        programs' solve callbacks (None entries when ``compute`` is
        False - scheduling-only runs used by the performance studies).

        ``resilient`` builds programs with idempotent stream delivery
        (edge-id dedup), required to run them under a fault plan with
        process crashes - see :mod:`repro.runtime.faults`.
        """
        topo = self.topology
        ng = self.num_groups
        ncells = self.mesh.num_cells
        if src_v is None:
            if scatter is None:
                scatter = np.zeros((ncells, ng))
            src_v = self._angle_source_v(scatter)
        grain = grain if grain is not None else self.grain

        faces: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        solve_fns: dict[int, object] = {}
        if compute:
            faces, solve_fns = self._make_face_solvers(src_v)

        programs = []
        dynamic = self.strategy.patch == "slbd"
        for (p, a), graph in topo.graphs.items():
            prog = SweepPatchProgram(
                graph,
                cells_global=self.pset.patches[p].cells,
                grain=grain,
                solve_fn=solve_fns.get(a),
                static_priority=self.static_priorities[(p, a)],
                dynamic_priority=dynamic,
                bytes_per_item=8 * ng,
                record_clusters=record_clusters,
                resilient=resilient,
            )
            programs.append(prog)
        return programs, faces

    def _make_face_solvers(self, src_v: np.ndarray):
        """Per-angle (psi_faces, psi_cell) arrays plus solve callbacks."""
        ng = self.num_groups
        ncells = self.mesh.num_cells
        faces: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        solve_fns: dict[int, object] = {}
        for a in range(self.quadrature.num_angles):
            k = self.kernel(a)
            pf = k.new_face_array(ng)
            self._apply_bc(k, pf, a)
            pc = np.zeros((ncells, ng))
            faces[a] = (pf, pc)

            def solve(cells, angle, _k=k, _pf=pf, _pc=pc):
                _k.solve_cells(cells, src_v, self.sigma_t_v, _pf, _pc)

            solve_fns[a] = solve
        return faces, solve_fns

    def record_coarsened(self, grain: int | None = None):
        """One scheduling-only engine sweep that records clusters, then
        builds the coarsened graph (Sec. V-E).  Returns ``cgs``."""
        from ..core.engine import SerialEngine
        from .coarsened import build_coarsened

        programs, _ = self.build_programs(
            compute=False, record_clusters=True, grain=grain
        )
        engine = SerialEngine()
        for prog in programs:
            engine.add_program(prog)
        engine.run()
        return build_coarsened(self.topology, programs)

    def build_coarsened_programs(
        self,
        cgs,
        src_v: np.ndarray | None = None,
        scatter: np.ndarray | None = None,
        compute: bool = True,
    ):
        """Instantiate CoarsenedSweepProgram per (patch, angle) from ``cgs``."""
        from .coarsened import CoarsenedSweepProgram

        ng = self.num_groups
        ncells = self.mesh.num_cells
        if src_v is None:
            if scatter is None:
                scatter = np.zeros((ncells, ng))
            src_v = self._angle_source_v(scatter)
        faces: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        solve_fns: dict[int, object] = {}
        if compute:
            faces, solve_fns = self._make_face_solvers(src_v)
        programs = []
        for (p, a), cg in cgs.items():
            programs.append(
                CoarsenedSweepProgram(
                    cg,
                    cells_global=self.pset.patches[p].cells,
                    solve_fn=solve_fns.get(a),
                    static_priority=self.static_priorities[(p, a)],
                    bytes_per_item=8 * ng,
                )
            )
        return programs, faces

    def accumulate(self, faces) -> tuple[np.ndarray, np.ndarray]:
        """Scalar flux and leakage from per-angle arrays of a program run."""
        ng = self.num_groups
        phi = np.zeros((self.mesh.num_cells, ng))
        leakage = np.zeros(ng)
        for a, (pf, pc) in faces.items():
            self._capture_outgoing(a, pf)
            w = self.quadrature.weights[a]
            phi += w * pc
            leakage += w * self.kernel(a).leakage(pf)
        self.finish_reflection_sweep()
        return phi, leakage

    # -- source iteration ------------------------------------------------------------------

    def source_iteration(
        self,
        tol: float = 1e-6,
        max_iterations: int = 200,
        mode: str = "fast-level",
        accelerate: bool = False,
    ) -> SweepResult:
        """Iterate sweeps with lagged scattering until the flux converges.

        ``accelerate`` enables Lyusternik extrapolation: once the
        iteration's error-reduction ratio rho stabilizes, the fixed
        point is extrapolated as ``phi + d * rho / (1 - rho)`` - the
        classic cheap accelerator for high-scattering-ratio problems
        (source iteration's spectral radius approaches c = sigma_s /
        sigma_t, so plain iteration stalls exactly where the physics is
        most interesting).
        """
        ng = self.num_groups
        phi = np.zeros((self.mesh.num_cells, ng))
        residuals: list[float] = []
        stats_list: list[EngineStats] = []
        leakage = np.zeros(ng)
        prev_res = None
        ratio_hist: list[float] = []
        for it in range(1, max_iterations + 1):
            scatter = self.materials.scatter_source(phi)
            phi_new, leakage, stats = self.sweep_once(scatter, mode=mode)
            if stats is not None:
                stats_list.append(stats)
            diff = phi_new - phi
            scale = float(np.max(np.abs(phi_new))) or 1.0
            res = float(np.max(np.abs(diff))) / scale
            residuals.append(res)
            if accelerate and prev_res is not None and prev_res > 0:
                ratio_hist.append(res / prev_res)
                if len(ratio_hist) >= 3:
                    r3 = ratio_hist[-3:]
                    rho = r3[-1]
                    # Extrapolate only once the ratio has stabilized.
                    if (
                        0.05 < rho < 0.99
                        and max(r3) - min(r3) < 0.02
                    ):
                        phi_new = phi_new + diff * (rho / (1.0 - rho))
                        ratio_hist.clear()
                        prev_res = None
                        phi = phi_new
                        if res < tol:
                            return SweepResult(
                                phi, leakage, it, residuals, True, stats_list
                            )
                        continue
            prev_res = res
            phi = phi_new
            if res < tol:
                return SweepResult(phi, leakage, it, residuals, True, stats_list)
        return SweepResult(
            phi, leakage, max_iterations, residuals, False, stats_list
        )

    # -- diagnostics ------------------------------------------------------------------------

    def balance_residual(self, result: SweepResult) -> float:
        """Relative particle-balance error: |source - absorption - leakage|.

        Exact (to round-off) for the step scheme and for DD without
        fixup; the set-to-zero fixup intentionally trades a little
        conservation for positivity.
        """
        produced = float((self.source * self.volumes[:, None]).sum())
        sigma_a = self.materials.sigma_a_cell()
        absorbed = float(
            (sigma_a * result.phi * self.volumes[:, None]).sum()
        )
        leaked = 0.0 if self.reflecting else float(result.leakage.sum())
        if produced == 0:
            return abs(absorbed + leaked)
        return abs(produced - absorbed - leaked) / produced

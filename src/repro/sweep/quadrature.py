"""Discrete-ordinates (Sn) angular quadrature sets.

Provides the two families Sn transport codes use:

* :func:`level_symmetric` - the classic LQn sets (S2 ... S16).  The mu
  levels follow the standard recursion with tabulated first levels
  (Lewis & Miller, Table 4-1); point-class weights are recovered by
  moment matching, which reproduces the published weight tables and
  extends uniformly across orders.
* :func:`product_quadrature` - Gauss-Legendre polar x uniform
  (Chebyshev) azimuthal product sets of arbitrary size, used for the
  large angle counts of the Kobayashi runs (320 directions in the
  paper).

Weights are normalized so that the full-sphere sum is 4*pi; the scalar
flux is ``phi = sum_a w_a psi_a``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError

__all__ = ["Quadrature", "level_symmetric", "product_quadrature"]

FOUR_PI = 4.0 * np.pi

# First mu level of the level-symmetric LQn sets (Lewis & Miller).
_LQN_MU1 = {
    2: 0.5773503,
    4: 0.3500212,
    6: 0.2666355,
    8: 0.2182179,
    10: 0.1893213,
    12: 0.1672126,
    14: 0.1519859,
    16: 0.1389568,
}


@dataclass(frozen=True)
class Quadrature:
    """A set of discrete ordinates with weights summing to 4*pi."""

    directions: np.ndarray  # (na, 3) unit vectors
    weights: np.ndarray  # (na,)
    name: str = "quadrature"

    def __post_init__(self):
        d = np.asarray(self.directions, dtype=np.float64)
        w = np.asarray(self.weights, dtype=np.float64)
        if d.ndim != 2 or d.shape[1] != 3 or len(w) != len(d):
            raise ReproError("directions must be (na, 3) with matching weights")
        norms = np.linalg.norm(d, axis=1)
        if np.any(np.abs(norms - 1.0) > 1e-9):
            raise ReproError("directions must be unit vectors")
        if np.any(w <= 0):
            raise ReproError("weights must be positive")
        object.__setattr__(self, "directions", d)
        object.__setattr__(self, "weights", w)

    @property
    def num_angles(self) -> int:
        return len(self.weights)

    def octant_of(self, a: int) -> int:
        """Octant id 0..7 from the signs of the direction components."""
        d = self.directions[a]
        return (d[0] < 0) * 1 + (d[1] < 0) * 2 + (d[2] < 0) * 4

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Quadrature({self.name}, angles={self.num_angles})"


def level_symmetric(n: int) -> Quadrature:
    """Level-symmetric LQn quadrature with ``n(n+2)`` directions.

    ``n`` must be an even order with a tabulated first level (2..16).
    """
    if n not in _LQN_MU1:
        raise ReproError(
            f"S{n} not available; choose from {sorted(_LQN_MU1)} "
            "or use product_quadrature"
        )
    mu1 = _LQN_MU1[n]
    nlev = n // 2
    if n == 2:
        mus = np.array([mu1])
    else:
        delta = 2.0 * (1.0 - 3.0 * mu1**2) / (n - 2.0)
        mus = np.sqrt(mu1**2 + np.arange(nlev) * delta)

    # Point classes: level index triples (i, j, k), 1-based, with
    # i + j + k = n/2 + 2, grouped by sorted triple (shared weight).
    target = nlev + 2
    triples = []
    for i in range(1, nlev + 1):
        for j in range(1, nlev + 1):
            k = target - i - j
            if 1 <= k <= nlev:
                triples.append((i, j, k))
    classes = sorted({tuple(sorted(t)) for t in triples})
    class_of = {t: classes.index(tuple(sorted(t))) for t in triples}
    counts = np.zeros(len(classes))
    for t in triples:
        counts[class_of[t]] += 1

    # Moment matching on one octant: weights (per octant summing to 1)
    # must integrate even polynomials in mu exactly.
    # sum w = 1; sum w mu_i^2 = 1/3; sum w mu_i^4 = 1/5; ...
    # plus cross moments mu^2 eta^2 = 1/15, etc.
    rows, rhs = [], []

    def add_moment(px: int, py: int, pz: int, value: float):
        row = np.zeros(len(classes))
        for t in triples:
            mx, my, mz = mus[t[0] - 1], mus[t[1] - 1], mus[t[2] - 1]
            row[class_of[t]] += mx**px * my**py * mz**pz
        rows.append(row)
        rhs.append(value)

    # Exact octant moments of x^(2a) y^(2b) z^(2c) over the unit sphere,
    # normalized by the octant solid angle: the classic formula
    # I = Gamma(a+1/2)Gamma(b+1/2)Gamma(c+1/2) / (2 Gamma(a+b+c+3/2))
    # divided by I(0,0,0).
    from math import gamma

    def sphere_moment(a: int, b: int, c: int) -> float:
        num = gamma(a + 0.5) * gamma(b + 0.5) * gamma(c + 0.5)
        den = 2.0 * gamma(a + b + c + 1.5)
        base = gamma(0.5) ** 3 / (2.0 * gamma(1.5))
        return (num / den) / base

    max_deg = nlev  # enough equations to pin the classes
    for total in range(0, max_deg + 1):
        for a in range(total + 1):
            for b in range(total - a + 1):
                c = total - a - b
                add_moment(2 * a, 2 * b, 2 * c, sphere_moment(a, b, c))

    A = np.asarray(rows)
    y = np.asarray(rhs)
    w_class, *_ = np.linalg.lstsq(A, y, rcond=None)
    if np.any(w_class <= 0):
        raise ReproError(f"S{n} weight solve produced non-positive weights")
    # Enforce the zeroth moment exactly (lstsq balances residuals).
    w_class /= float(counts @ w_class)

    # Expand to all 8 octants.
    dirs, wts = [], []
    octants = [
        (sx, sy, sz)
        for sx in (1, -1)
        for sy in (1, -1)
        for sz in (1, -1)
    ]
    for t in triples:
        d = np.array([mus[t[0] - 1], mus[t[1] - 1], mus[t[2] - 1]])
        d /= np.linalg.norm(d)  # guard rounding of the level recursion
        w = w_class[class_of[t]] * (FOUR_PI / 8.0)
        for sx, sy, sz in octants:
            dirs.append(d * np.array([sx, sy, sz]))
            wts.append(w)
    q = Quadrature(np.asarray(dirs), np.asarray(wts), name=f"S{n}")
    if q.num_angles != n * (n + 2):
        raise ReproError(
            f"S{n}: expected {n * (n + 2)} angles, built {q.num_angles}"
        )
    return q


def product_quadrature(n_polar: int, n_azim: int) -> Quadrature:
    """Gauss-Legendre (polar) x uniform (azimuthal) product quadrature.

    ``n_polar`` Gauss points in cos(theta) over (-1, 1), ``n_azim``
    equally-weighted azimuthal angles; total ``n_polar * n_azim``
    directions.  Use for arbitrary angle counts (e.g. the 320-direction
    Kobayashi configuration: 8 polar x 40 azimuthal).
    """
    if n_polar <= 0 or n_azim <= 0:
        raise ReproError("quadrature sizes must be positive")
    xi, wp = np.polynomial.legendre.leggauss(n_polar)
    phis = (np.arange(n_azim) + 0.5) * (2.0 * np.pi / n_azim)
    wa = 2.0 * np.pi / n_azim
    dirs, wts = [], []
    for x, w in zip(xi, wp):
        s = np.sqrt(max(0.0, 1.0 - x * x))
        for ph in phis:
            dirs.append((s * np.cos(ph), s * np.sin(ph), x))
            wts.append(w * wa)
    return Quadrature(
        np.asarray(dirs), np.asarray(wts), name=f"P{n_polar}x{n_azim}"
    )

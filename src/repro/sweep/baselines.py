"""Baseline sweep schedulers: KBA and BSP (system S16).

* :class:`KBASchedule` - the Koch-Baker-Alcouffe wavefront algorithm
  for regular structured meshes (the Denovo/Sweep3D approach the paper
  compares against in Table I).  The 3-D mesh is decomposed into a 2-D
  columnar Px x Py process grid; blocks of k-planes pipeline through
  the processor array for every angle.

* :class:`BSPSweepRuntime` - sweeping inside the BSP component model
  (Sec. II-D's motivation): every super-step each patch computes all
  *currently ready* vertices, then a global barrier and bulk exchange
  deliver the produced face data.  The number of super-steps equals the
  patch-graph critical path, and every step pays barrier plus
  max-process compute time - the inefficiency that motivates JSweep.

Both baselines run on the shared DES substrate
(:mod:`repro.runtime.simulator`) with the same latency/bandwidth
machine model and cost model as the data-driven runtime - events on
one heap type, busy time on the same :class:`~repro.runtime.simulator.
Resource` timelines - so Table I's efficiency comparison is
apples-to-apples, as the paper's own caveat requests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..core.patch_program import PatchProgram
from ..core.stream import Stream
from ..runtime.cluster import Machine, TIANHE2
from ..runtime.costmodel import CostModel
from ..runtime.simulator import Resource, Simulator

__all__ = ["KBASchedule", "KBAResult", "BSPSweepRuntime", "BSPSweepResult"]


# ---------------------------------------------------------------------------
# KBA
# ---------------------------------------------------------------------------


@dataclass
class KBAResult:
    """Outcome of a simulated KBA sweep."""

    time: float
    serial_time: float
    num_tasks: int
    stages: int

    @property
    def speedup(self) -> float:
        return self.serial_time / self.time if self.time > 0 else 0.0

    def efficiency(self, cores: int) -> float:
        return self.speedup / cores


class KBASchedule:
    """Pipelined KBA wavefront sweep on a Px x Py columnar decomposition."""

    def __init__(
        self,
        shape: tuple[int, int, int],
        px: int,
        py: int,
        k_blocks: int = 8,
        machine: Machine = TIANHE2,
        cost: CostModel | None = None,
    ):
        if len(shape) != 3:
            raise ReproError("KBA requires a 3-D structured mesh")
        if px <= 0 or py <= 0 or k_blocks <= 0:
            raise ReproError("px, py, k_blocks must be positive")
        if shape[0] < px or shape[1] < py or shape[2] < k_blocks:
            raise ReproError("decomposition finer than the mesh")
        self.shape = shape
        self.px, self.py = px, py
        self.k_blocks = k_blocks
        self.machine = machine
        self.cost = cost if cost is not None else CostModel()

    def simulate(self, num_angles: int, octants: int = 8) -> KBAResult:
        """Simulate sweeping ``num_angles`` directions (spread over octants).

        Angles in one octant pipeline back-to-back; octants run in
        sequence of four corner pairs, the classic KBA octant schedule.
        """
        nx, ny, nz = self.shape
        px, py, kb = self.px, self.py, self.k_blocks
        cm = self.cost
        block_cells = (nx / px) * (ny / py) * (nz / kb)
        t_block = block_cells * cm.t_vertex * cm.groups
        # Face data shipped downwind per block, per direction.
        bytes_x = (ny / py) * (nz / kb) * 8 * cm.groups
        bytes_y = (nx / px) * (nz / kb) * 8 * cm.groups
        layout = self.machine.layout(px * py, "mpi_only")

        def proc(i: int, j: int) -> int:
            return i * py + j

        angles_per_octant = max(1, num_angles // octants)
        # Corner-paired octant schedule: 4 sequential phases, two
        # opposite octants each (they never collide on a process).
        phases = [
            [(1, 1), (-1, -1)],
            [(1, -1), (-1, 1)],
            [(1, 1), (-1, -1)],
            [(1, -1), (-1, 1)],
        ][: max(1, octants // 2)]

        total_time = 0.0
        num_tasks = 0
        stages = 0
        for phase in phases:
            # Event simulation of one phase on the shared DES core:
            # tasks (i, j, k, a) for each direction of the phase's
            # octants, one fresh event heap and set of process
            # timelines per phase (phases run in sequence).
            sim = Simulator()
            procs_res = [Resource(("kba", p)) for p in range(px * py)]
            remaining = {}
            finish = 0.0
            for sx, sy in phase:
                for a in range(angles_per_octant):
                    for i in range(px):
                        for j in range(py):
                            for k in range(kb):
                                key = (sx, sy, a, i, j, k)
                                deps = 0
                                if (sx > 0 and i > 0) or (sx < 0 and i < px - 1):
                                    deps += 1
                                if (sy > 0 and j > 0) or (sy < 0 and j < py - 1):
                                    deps += 1
                                if k > 0:
                                    deps += 1  # k-pipeline is process-local
                                if a > 0:
                                    deps += 1  # angle pipelining in-order
                                remaining[key] = deps
                                if deps == 0:
                                    # Single-kind loop: every pop below
                                    # consumes a 'task', no dispatch.
                                    sim.push(0.0, "task", key)  # repro: allow[PROTO004]
            num_tasks += len(remaining)

            def release(key, t):
                remaining[key] -= 1
                if remaining[key] == 0:
                    sim.push(t, "task", key)

            while sim:
                t_ready, _, key = sim.pop()
                sx, sy, a, i, j, k = key
                p = proc(i, j)
                start, end = procs_res[p].book(t_ready, t_block)
                finish = max(finish, end)
                ni = i + (1 if sx > 0 else -1)
                if 0 <= ni < px:
                    arr = end + self.machine.message_time(
                        p, proc(ni, j), int(bytes_x), layout
                    )
                    release((sx, sy, a, ni, j, k), arr)
                nj = j + (1 if sy > 0 else -1)
                if 0 <= nj < py:
                    arr = end + self.machine.message_time(
                        p, proc(i, nj), int(bytes_y), layout
                    )
                    release((sx, sy, a, i, nj, k), arr)
                if k + 1 < kb:
                    release((sx, sy, a, i, j, k + 1), end)
                if a + 1 < angles_per_octant:
                    release((sx, sy, a + 1, i, j, k), end)
            total_time += finish
            stages += 1

        serial = (
            nx * ny * nz * cm.t_vertex * cm.groups
            * angles_per_octant * 2 * len(phases)
        )
        return KBAResult(
            time=total_time, serial_time=serial, num_tasks=num_tasks,
            stages=stages,
        )


# ---------------------------------------------------------------------------
# BSP sweep
# ---------------------------------------------------------------------------


@dataclass
class BSPSweepResult:
    """Outcome of a BSP-super-step sweep."""

    time: float
    supersteps: int
    compute_time: float
    barrier_time: float
    comm_time: float
    idle_core_seconds: float
    executions: int

    def idle_fraction(self, total_cores: int) -> float:
        denom = self.time * total_cores
        return self.idle_core_seconds / denom if denom > 0 else 0.0


class BSPSweepRuntime:
    """Sweep with JAxMIN's native BSP model (the motivation baseline).

    Each super-step: every active patch-program runs once over all the
    work that is currently ready (unbounded grain would be unfair to
    neither side - programs keep their configured grain semantics by
    running to exhaustion within the step), then a global barrier, then
    streams produced this step are delivered for the next one.
    """

    def __init__(
        self,
        total_cores: int,
        machine: Machine = TIANHE2,
        cost: CostModel | None = None,
    ):
        self.machine = machine
        self.cost = cost if cost is not None else CostModel()
        self.layout = machine.layout(total_cores, "hybrid")

    def run(self, programs: list[PatchProgram], patch_proc: np.ndarray) -> BSPSweepResult:
        lay = self.layout
        cm = self.cost
        nprocs = lay.nprocs
        if int(np.max(patch_proc)) >= nprocs:
            raise ReproError("patch_proc inconsistent with layout")
        proc_of = {p.id: int(patch_proc[p.id.patch]) for p in programs}
        progs = {p.id: p for p in programs}
        inbox: dict = {p.id: [] for p in programs}
        active = set(progs)
        for p in programs:
            p.init()

        time_total = 0.0
        compute_total = 0.0
        barrier_total = 0.0
        comm_total = 0.0
        idle_core_seconds = 0.0
        executions = 0
        steps = 0
        barrier = np.log2(max(2, nprocs)) * self.machine.latency_inter

        # Super-steps run as events on the shared DES core: each step's
        # end time schedules the next, and per-process compute is booked
        # on a per-process timeline (master+workers fused, as BSP has no
        # dispatch concurrency to model).
        sim = Simulator()
        procs_res = [Resource(("bsp", p)) for p in range(nprocs)]
        if active:
            # Single-kind loop: each pop is the next BSP super-step.
            sim.push(0.0, "superstep", None)  # repro: allow[PROTO004]
        while sim:
            now, _, _ = sim.pop()
            steps += 1
            proc_time = np.zeros(nprocs)
            send_bytes = np.zeros(nprocs)
            recv_bytes = np.zeros(nprocs)
            msgs = 0
            pending: list[Stream] = []
            next_active = set()
            for pid in sorted(active, key=lambda x: (x.patch, str(x.task))):
                prog = progs[pid]
                p = proc_of[pid]
                for s in inbox[pid]:
                    prog.input(s)
                inbox[pid].clear()
                # Run the program to exhaustion within the super-step
                # (BSP: no mid-step delivery can wake anyone else).
                step_counters = {"vertices": 0, "edges": 0, "input_items": 0,
                                 "pops": 0}
                own_streams: list[Stream] = []
                while True:
                    prog.compute()
                    c = prog.last_run_counters()
                    executions += 1
                    for k in ("vertices", "edges", "input_items"):
                        step_counters[k] += c.get(k, 0)
                    step_counters["pops"] += c.get("pops", c.get("vertices", 0))
                    while (s := prog.output()) is not None:
                        own_streams.append(s)
                    if prog.vote_to_halt():
                        break
                pending.extend(own_streams)
                remote_streams = [
                    s for s in own_streams if proc_of[s.dst] != p
                ]
                cost = cm.run_cost(
                    step_counters,
                    remote_streams=len(remote_streams),
                    remote_items=sum(s.items for s in remote_streams),
                )
                proc_time[p] += sum(cost.values())
            # Deliver all streams for the next step.
            for s in pending:
                inbox[s.dst].append(s)
                next_active.add(s.dst)
                sp, dp = proc_of[s.src], proc_of[s.dst]
                if sp != dp:
                    msgs += 1
                    send_bytes[sp] += s.nbytes
                    recv_bytes[dp] += s.nbytes
            # Per-proc compute happens worker-parallel (idealized).
            per_proc = proc_time / lay.workers_per_proc
            step_compute = float(per_proc.max()) if nprocs else 0.0
            comm = float(
                np.maximum(send_bytes, recv_bytes).max() / self.machine.bandwidth
                + (self.machine.latency_inter if msgs else 0.0)
            )
            for p in range(nprocs):
                procs_res[p].book(now, float(per_proc[p]))
            end = now + (step_compute + barrier + comm)
            sim.observe(end)
            time_total = end
            compute_total += step_compute
            barrier_total += barrier
            comm_total += comm
            idle_core_seconds += float(
                (step_compute - per_proc).sum() * lay.workers_per_proc
            )
            active = next_active
            if active:
                sim.push(end, "superstep", None)

        # Final verification: every program must have completed its work.
        for pid, prog in progs.items():
            rem = prog.remaining_workload()
            if rem is not None and rem != 0:
                raise ReproError(f"BSP sweep finished with {rem} work at {pid!r}")
        return BSPSweepResult(
            time=time_total,
            supersteps=steps,
            compute_time=compute_total,
            barrier_time=barrier_total,
            comm_time=comm_total,
            idle_core_seconds=idle_core_seconds,
            executions=executions,
        )

"""Coarsened sweep graphs (Sec. V-E).

Mesh structure and data dependencies rarely change between sweep
iterations, so the vertex clusters formed during the first data-driven
sweep can be cached as a *coarsened graph* CG = (CV, CE, P(CV), P(CE)):
each coarse vertex is a recorded cluster (an ordered run of DAG
vertices), each coarse edge the bundle of DAG edges between two
clusters.  Subsequent sweeps traverse CG instead of the DAG, paying
scheduling and bookkeeping costs per *cluster* instead of per vertex -
the paper reports 7-10x speedups for the scheduling-bound portion.

Theorem 1 (if the DAG is acyclic, CG is acyclic) holds because a
cluster is a consecutive run of one program execution: mutual
dependencies between two clusters would require their executions to
overlap, which the engine's run-atomicity forbids.
:func:`coarsened_is_acyclic` verifies it anyway (and is property-tested).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop, heappush
from collections.abc import Callable, Sequence

import numpy as np

from .._util import ReproError
from ..core.patch_program import PatchProgram
from ..core.stream import ProgramId, Stream
from .dag import SweepTopology
from .sweep_program import SweepPatchProgram

__all__ = [
    "CoarsenedPatchGraph",
    "build_coarsened",
    "coarsened_is_acyclic",
    "CoarsenedSweepProgram",
]


@dataclass
class CoarsenedPatchGraph:
    """CG restricted to one (patch, angle): clusters and coarse edges."""

    patch: int
    angle: int
    clusters: list[np.ndarray]  # ordered DAG vertices per coarse vertex
    init_counts: np.ndarray  # (n_cv,) distinct upwind coarse edges
    local_adj: list[list[int]]  # cv -> target cvs in this patch
    remote_adj: list[list[tuple[int, int, int]]]  # cv -> (dst_patch, dst_cv, items)

    @property
    def n_cv(self) -> int:
        return len(self.clusters)

    @property
    def n_vertices(self) -> int:
        return int(sum(len(c) for c in self.clusters))


def build_coarsened(
    topology: SweepTopology, programs: Sequence[SweepPatchProgram]
) -> dict[tuple[int, int], CoarsenedPatchGraph]:
    """Build CG from the clusters recorded by a completed sweep.

    ``programs`` must have been run with ``record_clusters=True`` and
    must have swept every vertex of their (patch, angle) subgraph.
    """
    cv_of: dict[tuple[int, int], np.ndarray] = {}
    clusters_of: dict[tuple[int, int], list[np.ndarray]] = {}
    for prog in programs:
        key = (prog.patch, prog.task)
        g = topology.graphs[key]
        cv = np.full(g.n_local, -1, dtype=np.int64)
        clusters = []
        for ci, cluster in enumerate(prog.clusters):
            if not cluster:
                continue
            cv[cluster] = len(clusters)
            clusters.append(np.asarray(cluster, dtype=np.int64))
        if np.any(cv < 0):
            raise ReproError(
                f"program {key} did not sweep all vertices; cannot coarsen"
            )
        cv_of[key] = cv
        clusters_of[key] = clusters
    if set(cv_of) != set(topology.graphs):
        raise ReproError("clusters recorded for a different topology")

    out: dict[tuple[int, int], CoarsenedPatchGraph] = {}
    incoming: dict[tuple[int, int], set] = {}  # (patch,angle) -> {(src, dst_cv)}
    for key, g in topology.graphs.items():
        p, a = key
        cv = cv_of[key]
        n_cv = len(clusters_of[key])

        # Local coarse edges (vectorized group-by over the CSR edges).
        src = np.repeat(np.arange(g.n_local), np.diff(g.dl_indptr))
        cu_l = cv[src]
        cw_l = cv[g.dl_target]
        cross = cu_l != cw_l
        local_adj: list[list[int]] = [[] for _ in range(n_cv)]
        counts = np.zeros(n_cv, dtype=np.int64)
        if np.any(cross):
            pairs = np.unique(
                np.stack([cu_l[cross], cw_l[cross]], axis=1), axis=0
            )
            for cu, cw in pairs.tolist():
                local_adj[cu].append(cw)
                counts[cw] += 1

        # Remote coarse edges with underlying-item multiplicities.
        rsrc = np.repeat(np.arange(g.n_local), np.diff(g.dr_indptr))
        remote_adj: list[list[tuple[int, int, int]]] = [[] for _ in range(n_cv)]
        if len(rsrc):
            cu_r = cv[rsrc]
            q_r = g.dr_patch
            # Destination coarse vertex, looked up per target patch.
            dcv_r = np.empty(len(rsrc), dtype=np.int64)
            for q in np.unique(q_r):
                m = q_r == q
                dcv_r[m] = cv_of[(int(q), a)][g.dr_local[m]]
            triples, items = np.unique(
                np.stack([cu_r, q_r, dcv_r], axis=1), axis=0,
                return_counts=True,
            )
            for (cu, q, dcv), n_items in zip(triples.tolist(), items.tolist()):
                remote_adj[cu].append((q, dcv, n_items))
                incoming.setdefault((q, a), set()).add(((p, cu), dcv))

        out[key] = CoarsenedPatchGraph(
            patch=p,
            angle=a,
            clusters=clusters_of[key],
            init_counts=counts,
            local_adj=local_adj,
            remote_adj=remote_adj,
        )
    # Add remote coarse edges to the targets' initial counts.
    for key, edges in incoming.items():
        cg = out[key]
        for _, dcv in edges:
            cg.init_counts[dcv] += 1
    return out


def coarsened_is_acyclic(cgs: dict[tuple[int, int], CoarsenedPatchGraph]) -> bool:
    """Kahn's check of Theorem 1 on the global coarse graph (per angle)."""
    # Global coarse vertex ids: (patch, angle, cv) -> index.
    index: dict[tuple[int, int, int], int] = {}
    for (p, a), cg in cgs.items():
        for c in range(cg.n_cv):
            index[(p, a, c)] = len(index)
    n = len(index)
    adj: list[list[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    for (p, a), cg in cgs.items():
        for cu in range(cg.n_cv):
            u = index[(p, a, cu)]
            for cw in cg.local_adj[cu]:
                adj[u].append(index[(p, a, cw)])
            for q, dcv, _ in cg.remote_adj[cu]:
                adj[u].append(index[(q, a, dcv)])
    for u in range(n):
        for w in adj[u]:
            indeg[w] += 1
    q = deque(i for i in range(n) if indeg[i] == 0)
    seen = 0
    while q:
        u = q.popleft()
        seen += 1
        for w in adj[u]:
            indeg[w] -= 1
            if indeg[w] == 0:
                q.append(w)
    return seen == n


class CoarsenedSweepProgram(PatchProgram):
    """Sweep of one (patch, angle) over its coarsened graph.

    Identical physics to :class:`SweepPatchProgram` (clusters replay
    their recorded vertex order), but bookkeeping is per coarse vertex:
    ready-queue operations, counter updates and stream payloads all
    shrink by the mean cluster size.  Stream byte counts still reflect
    the underlying data volume - coarsening saves bookkeeping, not
    bandwidth.
    """

    def __init__(
        self,
        cg: CoarsenedPatchGraph,
        cells_global: np.ndarray,
        solve_fn: Callable[[np.ndarray, int], None] | None = None,
        static_priority: float = 0.0,
        cv_grain: int = 1_000_000_000,
        bytes_per_item: int = 8,
    ):
        super().__init__(cg.patch, cg.angle)
        self.cg = cg
        self.cells_global = cells_global
        self.solve_fn = solve_fn
        self.static_priority = static_priority
        self.cv_grain = cv_grain
        self.bytes_per_item = bytes_per_item
        self._counts: list[int] = []
        self._heap: list[int] = []
        self._outstreams: list[Stream] = []
        self._solved_v = 0
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}

    def init(self) -> None:
        cg = self.cg
        self._counts = cg.init_counts.tolist()
        self._heap = [c for c in range(cg.n_cv) if self._counts[c] == 0]
        self._heap.sort()
        self._solved_v = 0
        self._outstreams = []

    def input(self, stream: Stream) -> None:
        counts = self._counts
        heap = self._heap
        n = 0
        for c in stream.payload:
            counts[c] -= 1
            if counts[c] == 0:
                heappush(heap, c)
            n += 1
        self._last["input_items"] += n

    def compute(self) -> None:
        heap = self._heap
        if not heap:
            self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                          "input_items": self._last["input_items"], "streams": 0}
            return
        cg = self.cg
        counts = self._counts
        popped: list[int] = []
        out: dict[int, list[int]] = {}
        out_items: dict[int, int] = {}
        edges = 0
        nverts = 0
        while heap and len(popped) < self.cv_grain:
            c = heappop(heap)
            popped.append(c)
            nverts += len(cg.clusters[c])
            for cw in cg.local_adj[c]:
                counts[cw] -= 1
                edges += 1
                if counts[cw] == 0:
                    heappush(heap, cw)
            for q, dcv, items in cg.remote_adj[c]:
                out.setdefault(q, []).append(dcv)
                out_items[q] = out_items.get(q, 0) + items
                edges += 1

        if self.solve_fn is not None:
            cells = np.concatenate([cg.clusters[c] for c in popped])
            self.solve_fn(self.cells_global[cells], cg.angle)
        self._solved_v += nverts

        angle = cg.angle
        remote_items = 0
        for q, cvs in out.items():
            items = out_items[q]
            remote_items += items
            self._outstreams.append(
                Stream(
                    src=self.id,
                    dst=ProgramId(q, angle),
                    payload=np.asarray(cvs, dtype=np.int64),
                    items=items,
                    nbytes=items * self.bytes_per_item,
                )
            )
        self._last = {
            "vertices": nverts,
            # Bookkeeping is per coarse pop/edge: this is the saving.
            "edges": edges,
            "remote_items": remote_items,
            "input_items": self._last["input_items"],
            "streams": len(out),
        }
        # Report pops at coarse granularity through a dedicated counter.
        self._last["pops"] = len(popped)

    def output(self) -> Stream | None:
        if self._outstreams:
            return self._outstreams.pop(0)
        return None

    def vote_to_halt(self) -> bool:
        return not self._heap

    def remaining_workload(self) -> int:
        return self.cg.n_vertices - self._solved_v

    def priority(self) -> float:
        return self.static_priority

    def last_run_counters(self) -> dict[str, int]:
        # Hand the live dict over (see SweepPatchProgram): the caller
        # reads it before the next input/compute can touch ``_last``.
        out = self._last
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}
        return out

"""Multi-level priority strategies for sweep scheduling (Sec. V-D).

The paper prioritizes at two levels:

* **(patch, angle) priority** used by the runtime to pick the next
  patch-program:  ``prior(p, a) = prior(a) * C + prior(p)`` with C
  large so same-angle programs are scheduled consecutively and data
  streams flow to nearby patches quickly.
* **vertex priority** ordering the ready queue inside a patch-program.

Strategies (for both levels):

``fifo``  no preference (insertion order).
``bfs``   breadth-first level from the sources - compute upwind work as
          early as possible (paper: unstructured patch strategy).
``ldcp``  Longest Distance on Critical Path - prefer work with the
          longest downstream chain (paper: structured meshes).
``slbd``  Shortest Local Boundary Distance - prefer vertices closest to
          a patch boundary so downwind patches are unblocked soonest
          (a DFS variant; the paper's best performer).  At the patch
          level SLBD is dynamic: the program's priority follows the
          most boundary-near ready vertex in its queue.

Vertex keys are *min-heap* keys (smaller pops first); patch priorities
are *max* priorities (larger runs first).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx
import numpy as np

from .._util import ReproError
from .dag import PatchAngleGraph, SweepTopology

__all__ = [
    "PriorityStrategy",
    "vertex_priorities",
    "batched_vertex_priorities",
    "patch_priorities",
    "apply_priorities",
    "ANGLE_FACTOR",
]

STRATEGIES = ("fifo", "bfs", "ldcp", "slbd")
ANGLE_FACTOR = 1.0e6  # the paper's constant C
_FAR = 1.0e9


@dataclass(frozen=True)
class PriorityStrategy:
    """A patch-level + vertex-level strategy pair, e.g. ``SLBD+SLBD``."""

    patch: str = "slbd"
    vertex: str = "slbd"

    def __post_init__(self):
        for level, s in (("patch", self.patch), ("vertex", self.vertex)):
            if s not in STRATEGIES:
                raise ReproError(f"unknown {level} strategy {s!r}")

    @classmethod
    def parse(cls, spec: str) -> "PriorityStrategy":
        """Parse ``"LDCP+SLBD"`` / ``"slbd"`` (single = both levels)."""
        parts = [p.strip().lower() for p in spec.split("+")]
        if len(parts) == 1:
            return cls(parts[0], parts[0])
        if len(parts) == 2:
            return cls(parts[0], parts[1])
        raise ReproError(f"cannot parse strategy {spec!r}")

    def __str__(self) -> str:
        return f"{self.patch.upper()}+{self.vertex.upper()}"


# -- vertex level ---------------------------------------------------------------------


def _local_topo_order(graph: PatchAngleGraph) -> list[int]:
    """Topological order of the patch-local subgraph (local edges only)."""
    n = graph.n_local
    indeg = np.bincount(graph.dl_target, minlength=n).tolist()
    indptr = graph.dl_indptr.tolist()
    target = graph.dl_target.tolist()
    q = deque(v for v in range(n) if indeg[v] == 0)
    order = []
    while q:
        v = q.popleft()
        order.append(v)
        for i in range(indptr[v], indptr[v + 1]):
            w = target[i]
            indeg[w] -= 1
            if indeg[w] == 0:
                q.append(w)
    if len(order) != n:
        raise ReproError("patch-local sweep subgraph is cyclic")
    return order


def vertex_priorities(graph: PatchAngleGraph, strategy: str) -> np.ndarray:
    """Min-heap keys per local vertex for the chosen strategy.

    The propagation loops run over plain Python lists: the subgraphs
    are patch-local (tens to hundreds of vertices), where per-element
    ndarray indexing costs more than the arithmetic itself.  All values
    are integer-valued float64 (plus the exact ``_FAR`` sentinel), so
    list-float and ndarray arithmetic are bitwise-identical.
    """
    n = graph.n_local
    if strategy == "fifo":
        return np.zeros(n)
    order = _local_topo_order(graph)
    indptr = graph.dl_indptr.tolist()
    target = graph.dl_target.tolist()

    if strategy == "bfs":
        # Dependency depth from local sources (schedule shallow first).
        level = [0.0] * n
        for v in order:
            lv = level[v] + 1
            for i in range(indptr[v], indptr[v + 1]):
                w = target[i]
                if level[w] < lv:
                    level[w] = lv
        return np.asarray(level)

    if strategy == "ldcp":
        # Longest downstream chain; schedule the longest first.
        height = [0.0] * n
        for v in reversed(order):
            h = 0.0
            for i in range(indptr[v], indptr[v + 1]):
                hw = height[target[i]] + 1
                if hw > h:
                    h = hw
            height[v] = h
        return -np.asarray(height)

    if strategy == "slbd":
        # Downstream distance to the nearest vertex with a remote
        # downwind edge; schedule the closest-to-boundary first.
        dist = [_FAR] * n
        for b in graph.boundary_vertices().tolist():
            dist[b] = 0.0
        for v in reversed(order):
            if dist[v] == 0.0:
                continue
            best = dist[v]
            for i in range(indptr[v], indptr[v + 1]):
                d = dist[target[i]] + 1
                if d < best:
                    best = d
            dist[v] = best
        return np.asarray(dist)

    raise ReproError(f"unknown vertex strategy {strategy!r}")


def _multi_slice(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenation of ``[s, s+c)`` ranges (CSR gather)."""
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(counts)
    base = np.repeat(starts - np.concatenate(([0], ends[:-1])), counts)
    return base + np.arange(total, dtype=np.int64)


def batched_vertex_priorities(
    graphs: list[PatchAngleGraph], strategy: str
) -> None:
    """Set ``vertex_prio`` on every graph in one vectorized pass.

    The per-graph propagation loops of :func:`vertex_priorities` become
    a single level-synchronous relaxation over the *disjoint union* of
    all patch-local subgraphs: vertices are grouped into Kahn fronts
    (every predecessor of a front-``L`` vertex sits in a front ``< L``),
    then each strategy's recurrence is applied one front at a time with
    ``np.maximum.at`` / ``np.minimum.at`` scatter reductions.  All
    priority values are integer-valued float64 (plus the exact ``_FAR``
    sentinel), so the reduction order cannot perturb them: the result
    is bitwise-identical to the scalar reference, per graph.
    """
    if strategy not in STRATEGIES:
        raise ReproError(f"unknown vertex strategy {strategy!r}")
    if not graphs:
        return
    ns = np.array([g.n_local for g in graphs], dtype=np.int64)
    offs = np.zeros(len(ns) + 1, dtype=np.int64)
    np.cumsum(ns, out=offs[1:])
    n = int(offs[-1])
    # Vertex index within each graph, over the whole union: the fifo
    # heap key, and the tie-break term of every other strategy's key.
    varr = np.arange(n, dtype=np.int64) - np.repeat(offs[:-1], ns)
    if strategy == "fifo":
        zeros = np.zeros(n)
        for g, a, b in zip(graphs, offs[:-1], offs[1:]):
            g.vertex_prio = zeros[a:b]
            g.vertex_keys = varr[a:b]
        return

    # Disjoint union in global numbering (graph-major, CSR source order).
    deg = np.concatenate([np.diff(g.dl_indptr) for g in graphs])
    tgt = np.concatenate([g.dl_target for g in graphs])
    tgt = tgt + np.repeat(offs[:-1], [len(g.dl_target) for g in graphs])
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])

    # Kahn fronts, peeled across every graph simultaneously.
    indeg = np.bincount(tgt, minlength=n)
    front_of = np.zeros(n, dtype=np.int64)
    cur = np.nonzero(indeg == 0)[0]
    ready = np.zeros(n, dtype=bool)
    seen, lvl = 0, 0
    while cur.size:
        front_of[cur] = lvl
        seen += cur.size
        t = tgt[_multi_slice(indptr[cur], deg[cur])]
        if t.size == 0:
            break
        indeg -= np.bincount(t, minlength=n)
        # Flag-array dedup: same ascending-unique front as
        # ``np.unique(...)`` without the per-level sort.
        ready[t[indeg[t] == 0]] = True
        cur = np.nonzero(ready)[0]
        ready[cur] = False
        lvl += 1
    if seen != n:
        raise ReproError("patch-local sweep subgraph is cyclic")
    nfronts = lvl + 1

    # Edges grouped by their source's front.
    esrc = np.repeat(np.arange(n, dtype=np.int64), deg)
    eorder = np.argsort(front_of[esrc], kind="stable")
    esrc, etgt = esrc[eorder], tgt[eorder]
    ebounds = np.searchsorted(
        front_of[esrc], np.arange(nfronts + 1)
    )

    if strategy == "bfs":
        val = np.zeros(n)
        for f in range(nfronts):  # forward: settle sources, push depth
            s, e = ebounds[f], ebounds[f + 1]
            np.maximum.at(val, etgt[s:e], val[esrc[s:e]] + 1.0)
    elif strategy == "ldcp":
        val = np.zeros(n)
        for f in range(nfronts - 1, -1, -1):  # backward: pull heights
            s, e = ebounds[f], ebounds[f + 1]
            np.maximum.at(val, esrc[s:e], val[etgt[s:e]] + 1.0)
        val = -val
    else:  # slbd
        val = np.full(n, _FAR)
        rdeg = np.concatenate([np.diff(g.dr_indptr) for g in graphs])
        val[rdeg > 0] = 0.0
        for f in range(nfronts - 1, -1, -1):  # backward: pull distances
            s, e = ebounds[f], ebounds[f + 1]
            np.minimum.at(val, esrc[s:e], val[etgt[s:e]] + 1.0)
    # Every strategy above yields integer-valued float64 (incl. the
    # exact ``_FAR`` sentinel), so the encoded heap key is exact.
    keys = val.astype(np.int64) * np.repeat(ns, ns) + varr
    for g, a, b in zip(graphs, offs[:-1], offs[1:]):
        g.vertex_prio = val[a:b]
        g.vertex_keys = keys[a:b]


# -- patch level -----------------------------------------------------------------------


def patch_priorities(
    topology: SweepTopology, strategy: str
) -> dict[tuple[int, int], float]:
    """The ``prior(p)`` term per (patch, angle); larger runs earlier.

    The patch-level digraph can be cyclic (interleaved dependencies,
    Fig. 4), so levels/heights are computed on its strongly-connected-
    component condensation.
    """
    out: dict[tuple[int, int], float] = {}
    npatches = topology.pset.num_patches
    for a in range(topology.num_angles):
        if strategy in ("fifo", "slbd"):
            # SLBD is dynamic at the patch level (see SweepPatchProgram).
            for p in range(npatches):
                out[(p, a)] = 0.0
            continue
        edges = topology.patch_dag[a]
        g = nx.DiGraph()
        g.add_nodes_from(range(npatches))
        g.add_edges_from(map(tuple, edges.tolist()))
        cond = nx.condensation(g)
        topo = list(nx.topological_sort(cond))
        if strategy == "bfs":
            level = {c: 0 for c in cond.nodes}
            for c in topo:
                for d in cond.successors(c):
                    level[d] = max(level[d], level[c] + 1)
            for c in cond.nodes:
                for p in cond.nodes[c]["members"]:
                    out[(p, a)] = -float(level[c])
        elif strategy == "ldcp":
            height = {c: 0 for c in cond.nodes}
            for c in reversed(topo):
                for d in cond.successors(c):
                    height[c] = max(height[c], height[d] + 1)
            for c in cond.nodes:
                for p in cond.nodes[c]["members"]:
                    out[(p, a)] = float(height[c])
        else:
            raise ReproError(f"unknown patch strategy {strategy!r}")
    return out


def apply_priorities(
    topology: SweepTopology,
    strategy: PriorityStrategy | str,
    angle_factor: float = ANGLE_FACTOR,
) -> dict[tuple[int, int], float]:
    """Compute static (patch, angle) priorities and set vertex keys.

    Returns ``prior(p, a) = prior(a) * C + prior(p)``; as the paper
    requires, the angle term dominates so sweeps of one angle flow
    through the patch graph before the next angle's work starts.
    Vertex keys are stored on each :class:`PatchAngleGraph`.
    """
    if isinstance(strategy, str):
        strategy = PriorityStrategy.parse(strategy)
    patch_term = patch_priorities(topology, strategy.patch)
    na = topology.num_angles
    static: dict[tuple[int, int], float] = {}
    for (p, a), prior_p in patch_term.items():
        prior_a = float(na - a)  # earlier angles strictly dominate
        static[(p, a)] = prior_a * angle_factor + prior_p
    batched_vertex_priorities(
        list(topology.graphs.values()), strategy.vertex
    )
    return static

"""Multi-level priority strategies for sweep scheduling (Sec. V-D).

The paper prioritizes at two levels:

* **(patch, angle) priority** used by the runtime to pick the next
  patch-program:  ``prior(p, a) = prior(a) * C + prior(p)`` with C
  large so same-angle programs are scheduled consecutively and data
  streams flow to nearby patches quickly.
* **vertex priority** ordering the ready queue inside a patch-program.

Strategies (for both levels):

``fifo``  no preference (insertion order).
``bfs``   breadth-first level from the sources - compute upwind work as
          early as possible (paper: unstructured patch strategy).
``ldcp``  Longest Distance on Critical Path - prefer work with the
          longest downstream chain (paper: structured meshes).
``slbd``  Shortest Local Boundary Distance - prefer vertices closest to
          a patch boundary so downwind patches are unblocked soonest
          (a DFS variant; the paper's best performer).  At the patch
          level SLBD is dynamic: the program's priority follows the
          most boundary-near ready vertex in its queue.

Vertex keys are *min-heap* keys (smaller pops first); patch priorities
are *max* priorities (larger runs first).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx
import numpy as np

from .._util import ReproError
from .dag import PatchAngleGraph, SweepTopology

__all__ = [
    "PriorityStrategy",
    "vertex_priorities",
    "patch_priorities",
    "apply_priorities",
    "ANGLE_FACTOR",
]

STRATEGIES = ("fifo", "bfs", "ldcp", "slbd")
ANGLE_FACTOR = 1.0e6  # the paper's constant C
_FAR = 1.0e9


@dataclass(frozen=True)
class PriorityStrategy:
    """A patch-level + vertex-level strategy pair, e.g. ``SLBD+SLBD``."""

    patch: str = "slbd"
    vertex: str = "slbd"

    def __post_init__(self):
        for level, s in (("patch", self.patch), ("vertex", self.vertex)):
            if s not in STRATEGIES:
                raise ReproError(f"unknown {level} strategy {s!r}")

    @classmethod
    def parse(cls, spec: str) -> "PriorityStrategy":
        """Parse ``"LDCP+SLBD"`` / ``"slbd"`` (single = both levels)."""
        parts = [p.strip().lower() for p in spec.split("+")]
        if len(parts) == 1:
            return cls(parts[0], parts[0])
        if len(parts) == 2:
            return cls(parts[0], parts[1])
        raise ReproError(f"cannot parse strategy {spec!r}")

    def __str__(self) -> str:
        return f"{self.patch.upper()}+{self.vertex.upper()}"


# -- vertex level ---------------------------------------------------------------------


def _local_topo_order(graph: PatchAngleGraph) -> list[int]:
    """Topological order of the patch-local subgraph (local edges only)."""
    n = graph.n_local
    indeg = np.bincount(graph.dl_target, minlength=n).tolist()
    indptr = graph.dl_indptr
    target = graph.dl_target
    q = deque(v for v in range(n) if indeg[v] == 0)
    order = []
    while q:
        v = q.popleft()
        order.append(v)
        for i in range(indptr[v], indptr[v + 1]):
            w = int(target[i])
            indeg[w] -= 1
            if indeg[w] == 0:
                q.append(w)
    if len(order) != n:
        raise ReproError("patch-local sweep subgraph is cyclic")
    return order


def vertex_priorities(graph: PatchAngleGraph, strategy: str) -> np.ndarray:
    """Min-heap keys per local vertex for the chosen strategy."""
    n = graph.n_local
    if strategy == "fifo":
        return np.zeros(n)
    order = _local_topo_order(graph)
    indptr, target = graph.dl_indptr, graph.dl_target

    if strategy == "bfs":
        # Dependency depth from local sources (schedule shallow first).
        level = np.zeros(n)
        for v in order:
            lv = level[v]
            for i in range(indptr[v], indptr[v + 1]):
                w = target[i]
                if level[w] < lv + 1:
                    level[w] = lv + 1
        return level

    if strategy == "ldcp":
        # Longest downstream chain; schedule the longest first.
        height = np.zeros(n)
        for v in reversed(order):
            h = 0.0
            for i in range(indptr[v], indptr[v + 1]):
                h = max(h, height[target[i]] + 1)
            height[v] = h
        return -height

    if strategy == "slbd":
        # Downstream distance to the nearest vertex with a remote
        # downwind edge; schedule the closest-to-boundary first.
        dist = np.full(n, _FAR)
        bnd = graph.boundary_vertices()
        dist[bnd] = 0.0
        for v in reversed(order):
            if dist[v] == 0.0:
                continue
            best = dist[v]
            for i in range(indptr[v], indptr[v + 1]):
                d = dist[target[i]] + 1
                if d < best:
                    best = d
            dist[v] = best
        return dist

    raise ReproError(f"unknown vertex strategy {strategy!r}")


# -- patch level -----------------------------------------------------------------------


def patch_priorities(
    topology: SweepTopology, strategy: str
) -> dict[tuple[int, int], float]:
    """The ``prior(p)`` term per (patch, angle); larger runs earlier.

    The patch-level digraph can be cyclic (interleaved dependencies,
    Fig. 4), so levels/heights are computed on its strongly-connected-
    component condensation.
    """
    out: dict[tuple[int, int], float] = {}
    npatches = topology.pset.num_patches
    for a in range(topology.num_angles):
        if strategy in ("fifo", "slbd"):
            # SLBD is dynamic at the patch level (see SweepPatchProgram).
            for p in range(npatches):
                out[(p, a)] = 0.0
            continue
        edges = topology.patch_dag[a]
        g = nx.DiGraph()
        g.add_nodes_from(range(npatches))
        g.add_edges_from(map(tuple, edges.tolist()))
        cond = nx.condensation(g)
        topo = list(nx.topological_sort(cond))
        if strategy == "bfs":
            level = {c: 0 for c in cond.nodes}
            for c in topo:
                for d in cond.successors(c):
                    level[d] = max(level[d], level[c] + 1)
            for c in cond.nodes:
                for p in cond.nodes[c]["members"]:
                    out[(p, a)] = -float(level[c])
        elif strategy == "ldcp":
            height = {c: 0 for c in cond.nodes}
            for c in reversed(topo):
                for d in cond.successors(c):
                    height[c] = max(height[c], height[d] + 1)
            for c in cond.nodes:
                for p in cond.nodes[c]["members"]:
                    out[(p, a)] = float(height[c])
        else:
            raise ReproError(f"unknown patch strategy {strategy!r}")
    return out


def apply_priorities(
    topology: SweepTopology,
    strategy: PriorityStrategy | str,
    angle_factor: float = ANGLE_FACTOR,
) -> dict[tuple[int, int], float]:
    """Compute static (patch, angle) priorities and set vertex keys.

    Returns ``prior(p, a) = prior(a) * C + prior(p)``; as the paper
    requires, the angle term dominates so sweeps of one angle flow
    through the patch graph before the next angle's work starts.
    Vertex keys are stored on each :class:`PatchAngleGraph`.
    """
    if isinstance(strategy, str):
        strategy = PriorityStrategy.parse(strategy)
    patch_term = patch_priorities(topology, strategy.patch)
    na = topology.num_angles
    static: dict[tuple[int, int], float] = {}
    for (p, a), prior_p in patch_term.items():
        prior_a = float(na - a)  # earlier angles strictly dominate
        static[(p, a)] = prior_a * angle_factor + prior_p
    for key, graph in topology.graphs.items():
        graph.vertex_prio = vertex_priorities(graph, strategy.vertex)
    return static

"""Admission control: bounded per-tenant queues and load shedding.

The PR 4 credit/backpressure machinery, lifted one layer up.  On the
message plane, each destination process grants ``inbox_credits``
in-flight messages and an over-window send *parks* until a credit
frees.  On the job plane a tenant holds ``tenant_slots`` credits - one
per admitted-but-not-terminal job - but an over-capacity submission
cannot park: the submitter is an open-loop client, and unbounded
queuing is exactly the failure mode admission control exists to
prevent.  So instead of parking, the submission is *shed* with a
structured :class:`~repro.service.spec.JobRejected` carrying a
``retry_after`` hint sized from the backlog it would have waited
behind, and a compliant retry normally finds a free credit.

Two bounds compose:

* **per-tenant credits** - a tenant may hold at most ``tenant_slots``
  live jobs; one noisy tenant exhausts its own window, never the
  service's (the fair-share scheduler keeps its *dispatch* share
  bounded too);
* **global backlog bound** - the sum of all queued-or-running jobs may
  not exceed ``global_slots``; past it, every tenant is shed with
  ``SERVICE_OVERLOADED`` regardless of its own window (total-ordering
  safety valve for correlated bursts).

The controller is pure bookkeeping on the service's virtual clock - it
never touches the runtime and draws no randomness, so admission
decisions replay bit-for-bit.
"""

from __future__ import annotations

from .._util import ReproError
from .spec import JobRejected, RejectReason

__all__ = ["AdmissionController"]


class AdmissionController:
    """Credit-gated front door of the service."""

    def __init__(self, tenant_slots: int, global_slots: int,
                 est_job_time: float):
        if tenant_slots < 1:
            raise ReproError("tenant_slots must be >= 1")
        if global_slots < tenant_slots:
            raise ReproError("global_slots must be >= tenant_slots")
        if est_job_time <= 0:
            raise ReproError("est_job_time must be positive")
        self.tenant_slots = tenant_slots
        self.global_slots = global_slots
        self.est_job_time = est_job_time
        #: tenant -> live (admitted, not yet terminal) job count: the
        #: credit ledger.  Insertion-ordered, never iterated as a set.
        self.held: dict[str, int] = {}
        self.total = 0  # sum of all held credits (global backlog)
        # -- shed accounting (the bench's shed-rate numerator) -------------
        self.submissions = 0
        self.shed_tenant = 0
        self.shed_global = 0

    # -- the admission decision -------------------------------------------------

    def admit(self, tenant: str, now: float) -> None:
        """Charge one credit to ``tenant`` or shed the submission.

        Raises :class:`JobRejected` with a deterministic
        ``retry_after`` when either bound is exhausted; on return the
        credit is held until :meth:`release`.
        """
        self.submissions += 1
        held = self.held.get(tenant, 0)
        if self.total >= self.global_slots:
            self.shed_global += 1
            raise JobRejected(
                RejectReason.SERVICE_OVERLOADED,
                self.retry_after(self.total), tenant,
                detail=f"{self.total} jobs backlogged service-wide "
                       f"(bound {self.global_slots})",
            )
        if held >= self.tenant_slots:
            self.shed_tenant += 1
            raise JobRejected(
                RejectReason.TENANT_QUEUE_FULL,
                self.retry_after(held), tenant,
                detail=f"tenant holds {held} live jobs "
                       f"(bound {self.tenant_slots})",
            )
        self.held[tenant] = held + 1
        self.total += 1

    def release(self, tenant: str) -> None:
        """Return one credit (the job reached its terminal record)."""
        held = self.held.get(tenant, 0)
        if held <= 0:
            raise ReproError(
                f"credit release for tenant {tenant!r} that holds none"
            )
        self.held[tenant] = held - 1
        self.total -= 1

    def retry_after(self, backlog: int) -> float:
        """Deterministic retry hint: how long the backlog ahead of a
        shed submission takes to drain at one estimated job time per
        slot-equivalent.  Intentionally conservative (a compliant
        retry should normally land in capacity, not bounce again)."""
        return max(1, backlog) * self.est_job_time

    def shed(self) -> int:
        return self.shed_tenant + self.shed_global

    def shed_rate(self) -> float:
        """Fraction of submissions shed (the overload SLO metric)."""
        if self.submissions == 0:
            return 0.0
        return self.shed() / self.submissions

"""Job execution: one attempt of one spec on the DataDrivenRuntime.

The executor is the service's only contact with the runtime, and it
talks exclusively to the *facade*: ``DataDrivenRuntime`` in, structured
exceptions and a ``RunReport`` out.  It never reaches into transport,
scheduler, router or recovery internals - the PROTO003 lint rule pins
that boundary to the module graph.

Two caches make the service cheap at traffic:

* **scenario cache** - mesh, patch decomposition, sweep DAG,
  priorities and the fault-free reference flux are pure functions of
  :meth:`JobSpec.scenario_fields`; they are built once per distinct
  scenario and shared across every job and tenant that names it (the
  content-hash artifact caching of ROADMAP item 3);
* the **result cache** lives one layer up in the service proper,
  keyed by the full content hash - the executor only computes.

Every attempt maps to exactly one structured :class:`AttemptOutcome`;
the executor never lets a runtime exception escape unclassified.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from .._util import ReproError
from ..framework import PatchSet
from ..mesh import cube_structured, disk_tri_mesh
from ..runtime import (
    DataDrivenRuntime,
    DeadlineExceeded,
    Machine,
    RecoveryConfig,
    StallError,
)
from ..sweep import Material, MaterialMap, SnSolver, level_symmetric
from .spec import JobSpec

__all__ = ["AttemptOutcome", "JobExecutor"]


@dataclass
class AttemptOutcome:
    """Structured result of one execution attempt."""

    status: str  # "ok" | "deadline" | "stall" | "error" | "invalid"
    duration: float  # virtual seconds the cluster slice was held
    makespan: float = 0.0  # DES makespan (== duration on "ok")
    flux_crc: int | None = None
    exact: bool | None = None  # flux bitwise-equal to fault-free reference
    detail: str = ""
    stall: dict | None = None  # StallReport.to_dict() on "stall"
    counters: dict = field(default_factory=dict)  # RunReport.fault_summary()


@dataclass
class _Scenario:
    """One cached scenario: everything derivable from scenario_fields."""

    machine: Machine
    cores: int
    pset: PatchSet
    solver: SnSolver
    reference: bytes  # fault-free flux, raw bytes
    reference_crc: int


class JobExecutor:
    """Builds scenarios (cached) and runs attempts on the runtime."""

    def __init__(self, watchdog_horizon: float = 5e-3,
                 scenario_cache_size: int = 32, trace: bool = False):
        if watchdog_horizon <= 0:
            raise ReproError("watchdog_horizon must be positive")
        if scenario_cache_size < 1:
            raise ReproError("scenario_cache_size must be >= 1")
        #: Arm event/HB tracing on every attempt's runtime.  Each clean
        #: attempt's :class:`RunReport` is handed to :attr:`on_report`
        #: (when set) so a harness can export Chrome traces or replay
        #: the happens-before checker per job.
        self.trace = trace
        self.on_report = None  # callable(spec, report) | None
        #: Watchdog horizon armed on fault-bearing runs: a stalled job
        #: is *diagnosed* (StallReport) after this much progress-free
        #: virtual time instead of spinning against its deadline.
        self.watchdog_horizon = watchdog_horizon
        self.cache_size = scenario_cache_size
        self._scenarios: dict[tuple, _Scenario] = {}
        self.scenario_builds = 0  # cache misses (observability)
        self.scenario_hits = 0

    # -- scenario construction --------------------------------------------------

    def scenario(self, spec: JobSpec) -> _Scenario:
        """The cached scenario for ``spec`` (built on first use)."""
        key = spec.scenario_fields()
        sc = self._scenarios.get(key)
        if sc is not None:
            self.scenario_hits += 1
            return sc
        sc = self._build(spec)
        self.scenario_builds += 1
        if len(self._scenarios) >= self.cache_size:
            # FIFO eviction: drop the oldest scenario (insertion order).
            oldest = next(iter(self._scenarios))
            del self._scenarios[oldest]
        self._scenarios[key] = sc
        return sc

    def _build(self, spec: JobSpec) -> _Scenario:
        machine = Machine(cores_per_proc=4)
        cores = 16 if spec.mode == "hybrid" else 8
        nprocs = machine.layout(cores, spec.mode).nprocs
        if spec.kind == "structured":
            mesh = cube_structured(spec.size, length=4.0)
            pset = PatchSet.from_structured(
                mesh, (spec.patch,) * 3, nprocs=nprocs
            )
        else:
            mesh = disk_tri_mesh(spec.size)
            pset = PatchSet.from_unstructured(
                mesh, spec.patch, nprocs=nprocs
            )
        mm = MaterialMap.uniform(
            Material.isotropic(1.0, 0.5), mesh.num_cells
        )
        q = np.ones((mesh.num_cells, 1))
        solver = SnSolver(
            pset, level_symmetric(spec.sn), mm, q, grain=spec.grain
        )
        phi, _, _ = solver.sweep_once(mode="fast")
        ref = np.ascontiguousarray(phi).tobytes()
        return _Scenario(
            machine=machine, cores=cores, pset=pset, solver=solver,
            reference=ref, reference_crc=zlib.crc32(ref),
        )

    # -- attempt execution ------------------------------------------------------

    def execute(self, spec: JobSpec, deadline: float | None) -> AttemptOutcome:
        """Run one attempt of ``spec`` under ``deadline``.

        Classifies every outcome: a clean run yields ``ok`` with the
        flux checksum and the exactness verdict against the fault-free
        reference; a budget overrun yields ``deadline`` with the
        consumed slice; a watchdog stall yields ``stall`` with the
        serialized :class:`~repro.runtime.StallReport`; any other
        structured runtime failure yields ``error``.
        """
        try:
            sc = self.scenario(spec)
        except ReproError as e:
            return AttemptOutcome(
                status="invalid", duration=0.0, detail=str(e)
            )
        faulty = spec.faults is not None
        recovery = (
            RecoveryConfig(watchdog_horizon=self.watchdog_horizon)
            if faulty else None
        )
        try:
            progs, faces = sc.solver.build_programs(resilient=faulty)
            rt = DataDrivenRuntime(
                sc.cores, machine=sc.machine, mode=spec.mode,
                faults=spec.faults, recovery=recovery,
                trace=self.trace,
            )
            rep = rt.run(progs, sc.pset.patch_proc, deadline=deadline)
        except DeadlineExceeded as e:
            return AttemptOutcome(
                status="deadline",
                duration=e.deadline,  # the full slice was consumed
                makespan=e.report.makespan,
                detail=str(e),
                counters=e.report.fault_summary(),
            )
        except StallError as e:
            return AttemptOutcome(
                status="stall",
                duration=min(e.report.now, deadline)
                if deadline is not None else e.report.now,
                detail="liveness watchdog confirmed a stall",
                stall=e.report.to_dict(),
            )
        except ReproError as e:
            # Undeliverable messages, plan/layout mismatches, sanitizer
            # trips: structured failure, zero slice beyond the report.
            return AttemptOutcome(
                status="error", duration=0.0, detail=str(e)
            )
        if self.on_report is not None:
            self.on_report(spec, rep)
        phi, _ = sc.solver.accumulate(faces)
        blob = np.ascontiguousarray(phi).tobytes()
        return AttemptOutcome(
            status="ok",
            duration=rep.makespan,
            makespan=rep.makespan,
            flux_crc=zlib.crc32(blob),
            exact=blob == sc.reference,
            counters=rep.fault_summary() if faulty else {},
        )

"""Per-tenant circuit breakers: closed -> open -> half-open.

A tenant whose jobs keep failing (poison specs, fault plans that
always stall, a hot loop of doomed retries) would otherwise burn
executor slots and retry budget forever - starving well-behaved
tenants of exactly the capacity admission control granted them.  The
breaker cuts that off at the submission door:

* **closed** - normal operation; consecutive failures are counted,
  any success resets the count;
* **open**   - after ``threshold`` consecutive failures, submissions
  are rejected outright (``BREAKER_OPEN``, ``retry_after`` = time to
  half-open) for ``open_for`` virtual seconds; already-admitted jobs
  keep running - the breaker sheds *new* load, it never cancels work;
* **half-open** - after the cool-down, up to ``probes`` submissions
  are admitted as canaries; a success closes the breaker, a failure
  re-opens it for another full ``open_for`` window.

All transitions are driven by the service's virtual clock and the
job outcome stream - no randomness, no wall time - so breaker behavior
replays bit-for-bit with the rest of the service.
"""

from __future__ import annotations

from .._util import ReproError

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-rate gate for one tenant."""

    def __init__(self, threshold: int = 3, open_for: float = 10e-3,
                 probes: int = 1):
        if threshold < 1:
            raise ReproError("breaker threshold must be >= 1")
        if open_for <= 0:
            raise ReproError("breaker open_for must be positive")
        if probes < 1:
            raise ReproError("breaker probes must be >= 1")
        self.threshold = threshold
        self.open_for = open_for
        self.probes = probes
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0  # virtual time the breaker last opened
        self.probes_out = 0  # canaries admitted while half-open
        self.trips = 0  # times the breaker opened (observability)

    # -- queries ----------------------------------------------------------------

    def _refresh(self, now: float) -> None:
        """Lazy open -> half-open transition on the virtual clock."""
        if self.state == OPEN and now >= self.opened_at + self.open_for:
            self.state = HALF_OPEN
            self.probes_out = 0

    def allow(self, now: float) -> bool:
        """May a new submission from this tenant be admitted at ``now``?

        Half-open admits at most ``probes`` canaries until one of them
        reaches a terminal outcome.
        """
        self._refresh(now)
        if self.state == CLOSED:
            return True
        if self.state == HALF_OPEN:
            if self.probes_out < self.probes:
                self.probes_out += 1
                return True
            return False
        return False

    def retry_after(self, now: float) -> float:
        """Time until the breaker half-opens (the rejection's hint)."""
        self._refresh(now)
        if self.state == OPEN:
            return max(self.opened_at + self.open_for - now, 0.0)
        # Half-open with all probes out: retry after one probe's worth
        # of estimated turnaround; the caller may substitute better.
        return self.open_for / 2.0

    # -- outcome feed -----------------------------------------------------------

    def on_success(self, now: float) -> None:
        self._refresh(now)
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED  # the canary came back alive
            self.probes_out = 0

    def on_failure(self, now: float) -> None:
        self._refresh(now)
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state = OPEN
            self.opened_at = now
            self.probes_out = 0
            self.trips += 1

"""Sweep-as-a-service: a fault-isolated multi-tenant job layer.

Everything PR 1-5 built executes *one* sweep well - even under
crashes, partitions and corruption.  The paper's production context
(ROADMAP item 3) is many sweeps: campaigns of jobs from multiple
users, sharing one simulated cluster, where one tenant's poison spec
or arrival burst must not take down another tenant's work.  This
package is that layer:

* :mod:`~repro.service.spec` - content-addressed :class:`JobSpec`,
  :class:`JobResult`, the closed failure taxonomy, structured
  :class:`JobRejected` load-shed;
* :mod:`~repro.service.admission` - bounded per-tenant credits plus a
  global backlog bound (the PR 4 backpressure idea, one layer up);
* :mod:`~repro.service.breaker` - per-tenant circuit breakers
  (closed -> open -> half-open) that quarantine failing tenants;
* :mod:`~repro.service.executor` - the *only* module that touches the
  runtime, strictly through the ``DataDrivenRuntime`` facade (lint
  rule PROTO003 enforces this), with content-addressed scenario
  caching;
* :mod:`~repro.service.service` - the event loop: fair-share
  dispatch, deadlines, transient-failure retry with seeded jittered
  backoff, exactly-once commit, graceful degradation under overload;
* :mod:`~repro.service.chaos` - seeded adversarial traffic campaigns
  holding all of the above to one oracle.

The whole layer runs on service virtual time with one seeded
generator: a multi-tenant traffic day replays bit-for-bit.

Durability: construct the service with a
:class:`~repro.persist.wal.WriteAheadLog` and every submission,
attempt start, commit and terminal record is journaled before it takes
effect; :meth:`SweepService.recover` replays the journal after a host
crash, truncates a torn tail, re-admits in-flight jobs and never
commits a content hash twice.
"""

from ..persist.wal import WalError, WriteAheadLog, replay_wal
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .chaos import (
    ServiceChaosSpace,
    ServiceWorkload,
    check_service_invariants,
    random_service_workload,
    run_service_campaign,
    run_service_case,
)
from .executor import AttemptOutcome, JobExecutor
from .service import ServiceConfig, SweepService
from .spec import (
    FailureReason,
    JobRejected,
    JobResult,
    JobSpec,
    JobStatus,
    RejectReason,
)

__all__ = [
    "JobSpec",
    "JobResult",
    "JobRejected",
    "JobStatus",
    "FailureReason",
    "RejectReason",
    "AdmissionController",
    "CircuitBreaker",
    "AttemptOutcome",
    "JobExecutor",
    "ServiceConfig",
    "SweepService",
    "ServiceChaosSpace",
    "ServiceWorkload",
    "random_service_workload",
    "check_service_invariants",
    "run_service_case",
    "run_service_campaign",
    "WalError",
    "WriteAheadLog",
    "replay_wal",
]

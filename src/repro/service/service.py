"""The sweep service: multi-tenant job layer over the DES runtime.

``SweepService`` is itself a small discrete-event simulation, one
level above the cluster DES: its clock is service virtual time, its
events are job submissions, attempt completions and retry timers, and
each *attempt* advances the clock by exactly the virtual makespan the
cluster DES reports (a job occupies its worker slot for as long as the
simulated cluster would have computed).  Everything - admission,
backoff jitter, worker-pool crash draws, breaker transitions - is
driven by one seeded generator and the event order, so an entire
multi-tenant day of traffic replays bit-for-bit from
``(ServiceConfig, workload)``.

Life of a job::

    submit --> cache? ----------------------------> cached JobResult
        \\-> breaker gate -> admission credits -> (maybe demote)
             -> tenant ready queue -> fair-share dispatch
             -> JobExecutor attempt -> ok? commit exactly once
                                    -> transient? backoff+jitter retry
                                    -> terminal failure (taxonomy)

Retry policy is deliberately narrow: only *transient* failures - a
worker-pool crash, which exists above the deterministic cluster DES -
are retried.  Deadline overruns, watchdog stalls, and structured
runtime errors are deterministic functions of the spec; retrying them
verbatim would burn capacity to reproduce the same failure, so they
fail fast (and feed the tenant's circuit breaker, which is how a
poison spec gets quarantined).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, fields

import numpy as np

from .._util import ReproError
from ..persist.wal import WriteAheadLog, replay_wal
from .admission import AdmissionController
from .breaker import CircuitBreaker
from .executor import AttemptOutcome, JobExecutor
from .spec import (
    FailureReason,
    JobRejected,
    JobResult,
    JobSpec,
    JobStatus,
    RejectReason,
)

__all__ = ["ServiceConfig", "SweepService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one service instance (all virtual-time)."""

    workers: int = 4  # concurrent executor slots (cluster slices)
    tenant_slots: int = 4  # live jobs one tenant may hold
    global_slots: int = 16  # service-wide backlog bound
    est_job_time: float = 1e-3  # retry_after sizing unit
    default_deadline: float = 5e-3  # per-attempt budget when spec has none
    max_attempts: int = 3  # transient-failure retry budget
    backoff_base: float = 0.5e-3  # first retry delay
    backoff_factor: float = 2.0  # exponential growth
    jitter_frac: float = 0.1  # +/- fraction of the delay, seeded
    breaker_threshold: int = 3
    breaker_open_for: float = 10e-3
    breaker_probes: int = 1
    #: Demote new jobs once the backlog exceeds this fraction of
    #: ``global_slots``; 1.0 disables degradation (backlog can never
    #: exceed the bound itself).
    degrade_at: float = 0.75
    #: Capacity recovery: once degraded, full-fidelity service resumes
    #: only after the backlog falls back to this fraction of
    #: ``global_slots`` (hysteresis - a backlog hovering around
    #: ``degrade_at`` must not flap between fidelities).  ``None``
    #: defaults to two thirds of ``degrade_at``.
    recover_at: float | None = None
    demote_grain: int = 64  # degraded clustering grain (coarser)
    demote_patch: int = 4  # degraded patch parameter (fewer, larger)
    watchdog_horizon: float = 2e-3  # stall diagnosis on fault-bearing runs
    worker_crash_rate: float = 0.0  # P(attempt dies with its pool worker)
    seed: int = 0  # jitter + crash draws

    def __post_init__(self):
        if self.workers < 1:
            raise ReproError("service needs at least one worker slot")
        if self.max_attempts < 1:
            raise ReproError("max_attempts must be >= 1")
        if self.backoff_base <= 0 or self.backoff_factor < 1:
            raise ReproError("backoff must be positive and non-shrinking")
        if not (0.0 <= self.jitter_frac < 1.0):
            raise ReproError("jitter_frac must be in [0, 1)")
        if not (0.0 < self.degrade_at <= 1.0):
            raise ReproError("degrade_at must be in (0, 1]")
        if self.recover_at is None:
            object.__setattr__(self, "recover_at", self.degrade_at * 2 / 3)
        if not (0.0 < self.recover_at <= self.degrade_at):
            raise ReproError(
                "recover_at must be in (0, degrade_at]: the recovery "
                "watermark sits at or below the overload watermark"
            )
        if not (0.0 <= self.worker_crash_rate < 1.0):
            raise ReproError("worker_crash_rate must be in [0, 1)")
        if self.default_deadline <= 0:
            raise ReproError("default_deadline must be positive")


def _spec_fields(spec: JobSpec) -> dict:
    """A JobSpec as a plain field dict for the journal.

    Shallow on purpose: the ``faults`` FaultPlan rides along as the
    (codec-registered) dataclass object, so ``JobSpec(**d)`` on replay
    rebuilds an identical spec - same content hash, same scenario.
    """
    return {f.name: getattr(spec, f.name) for f in fields(spec)}


@dataclass
class _Job:
    """Internal record of one admitted (non-cached) job."""

    spec: JobSpec  # as submitted (identity)
    exec_spec: JobSpec  # as executed (== spec unless demoted)
    result: JobResult
    followers: list[JobResult]  # coalesced duplicates awaiting commit


class SweepService:
    """Deterministic multi-tenant front end of the sweep runtime."""

    def __init__(self, config: ServiceConfig = ServiceConfig(),
                 executor: JobExecutor | None = None,
                 wal: WriteAheadLog | None = None):
        self.cfg = config
        #: Optional write-ahead journal: submissions, attempt starts,
        #: commits and terminal records are appended *before* they take
        #: effect, so a restarted service can replay the journal and
        #: re-admit in-flight jobs (:meth:`recover`).
        self.wal = wal
        self.executor = (
            executor if executor is not None
            else JobExecutor(watchdog_horizon=config.watchdog_horizon)
        )
        self.admission = AdmissionController(
            config.tenant_slots, config.global_slots, config.est_job_time
        )
        self.breakers: dict[str, CircuitBreaker] = {}
        self._rng = np.random.default_rng(config.seed)
        # -- event plane (service virtual time) ----------------------------
        self._events: list[tuple] = []  # heap of (time, seq, kind, payload)
        self._seq = itertools.count()
        self.now = 0.0
        # -- scheduling state ----------------------------------------------
        self.free_workers = config.workers
        self._ready: dict[str, deque[_Job]] = {}  # tenant -> FIFO queue
        self._rr = 0  # fair-share rotation cursor over tenant order
        self._inflight: dict[str, _Job] = {}  # key -> primary job
        # -- outcomes -------------------------------------------------------
        self.committed: dict[str, JobResult] = {}  # exactly-once store
        self.results: list[JobResult] = []  # terminal records, commit order
        self.rejections: list[dict] = []  # shed submissions (+ "at" time)
        self._ids = itertools.count()
        # -- counters -------------------------------------------------------
        self.arrivals_seen: list[tuple[float, str, str]] = []  # (t, tenant, key)
        self.cache_hits = 0
        self.coalesced = 0
        self.demotions = 0
        self.worker_crashes = 0
        #: Degradation latch (hysteresis): set when the backlog crosses
        #: ``degrade_at``, cleared - one capacity recovery - only when
        #: it drains back to ``recover_at``.
        self.degraded = False
        self.capacity_recoveries = 0

    # -- public API --------------------------------------------------------------

    def submit(self, spec: JobSpec, at: float = 0.0) -> None:
        """Enqueue a submission event at service time ``at``."""
        if at < self.now:
            raise ReproError(
                f"cannot submit at {at:.6f}s: service time is {self.now:.6f}s"
            )
        if self.wal is not None:
            # Journal the intent before it takes effect: a crash after
            # this append re-admits the job on replay; a crash before
            # it means the client never got its accept and resubmits.
            self.wal.append(
                {"type": "submit", "at": at, "spec": _spec_fields(spec)}
            )
        self._push(at, "submit", spec)

    def run_until_idle(self, max_events: int | None = None) -> list[JobResult]:
        """Drain the event plane; returns all terminal records so far.

        ``max_events`` bounds the number of events processed (the
        durability harness uses it to cut a campaign mid-flight);
        None drains to quiescence.
        """
        processed = 0
        while self._events:
            if max_events is not None and processed >= max_events:
                break
            processed += 1
            self.now, _, kind, payload = heapq.heappop(self._events)
            if kind == "submit":
                self._on_submit(payload)
            elif kind == "retry":
                self._enqueue(payload)
            elif kind == "finish":
                job, outcome = payload
                self._on_finish(job, outcome)
            else:  # pragma: no cover - event kinds are closed
                raise ReproError(f"unknown service event {kind!r}")
            self._pump()
        return self.results

    def metrics(self) -> dict:
        """Aggregate service-level counters (the SLO dashboard)."""
        by_reason: dict[str, int] = {}
        for r in self.results:
            if r.status == JobStatus.FAILED:
                by_reason[r.reason] = by_reason.get(r.reason, 0) + 1
        return {
            "submissions": self.admission.submissions + self.cache_hits,
            "admitted": self.admission.submissions - self.admission.shed(),
            "completed": sum(
                1 for r in self.results if r.status == JobStatus.COMPLETED
            ),
            "failed": by_reason,
            "shed": {
                RejectReason.TENANT_QUEUE_FULL: self.admission.shed_tenant,
                RejectReason.SERVICE_OVERLOADED: self.admission.shed_global,
                RejectReason.BREAKER_OPEN: sum(
                    1 for r in self.rejections
                    if r["reason"] == RejectReason.BREAKER_OPEN
                ),
            },
            "shed_rate": (
                len(self.rejections)
                / max(1, self.admission.submissions + self.cache_hits)
            ),
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "demotions": self.demotions,
            "degraded": self.degraded,
            "capacity_recoveries": self.capacity_recoveries,
            "worker_crashes": self.worker_crashes,
            "breaker_trips": {
                t: b.trips for t, b in self.breakers.items() if b.trips
            },
            "scenario_builds": self.executor.scenario_builds,
        }

    # -- durability (WAL replay) -------------------------------------------------

    @classmethod
    def recover(
        cls,
        config: ServiceConfig,
        wal_path,
        executor: JobExecutor | None = None,
        fsync: bool = True,
    ) -> "SweepService":
        """Restart a service from its write-ahead journal.

        Replays every intact record of the journal (a torn or CRC-bad
        tail is truncated away): journaled commits and terminal records
        are installed as-is - no re-execution, no double commit of a
        content hash - and submissions with no terminal record yet are
        re-admitted onto the event plane.  The returned service has the
        (truncated) journal re-attached and is ready for
        :meth:`run_until_idle`.
        """
        records, good = replay_wal(wal_path)
        svc = cls(config, executor=executor)  # wal attached after replay
        # (key, tenant)-FIFO matching: each terminal-ish record settles
        # the oldest outstanding submission of its content + tenant.
        submits: list[list] = []  # [spec, settled?]
        buckets: dict[tuple, deque] = {}
        max_id = -1
        # Re-derive the degradation latch from the journal: the running
        # submitted-minus-settled backlog crosses the same watermarks
        # the live service latched on, so a restarted service resumes
        # at the fidelity it crashed at.
        backlog = 0

        def settle(key: str, tenant: str) -> None:
            nonlocal backlog
            q = buckets.get((key, tenant))
            if q:
                submits[q.popleft()][1] = True
                backlog -= 1
                if backlog <= config.recover_at * config.global_slots:
                    svc.degraded = False

        for rec in records:
            svc.now = max(svc.now, float(rec["at"]))
            t = rec["type"]
            if t == "submit":
                spec = JobSpec(**rec["spec"])
                buckets.setdefault(
                    (spec.key(), spec.tenant), deque()
                ).append(len(submits))
                submits.append([spec, False])
                backlog += 1
                if backlog > config.degrade_at * config.global_slots:
                    svc.degraded = True
            elif t == "attempt":
                max_id = max(max_id, int(rec["job_id"]))
            elif t == "commit":
                r = JobResult.from_dict(rec["result"])
                max_id = max(max_id, r.job_id)
                if r.key in svc.committed:
                    continue  # replayed duplicate: never double-commit
                svc.committed[r.key] = r
                svc.results.append(r)
                settle(r.key, r.tenant)
            elif t == "terminal":
                r = JobResult.from_dict(rec["result"])
                max_id = max(max_id, r.job_id)
                svc.results.append(r)
                settle(r.key, r.tenant)
            elif t == "reject":
                svc.rejections.append(dict(rec["reject"]))
                settle(rec["key"], rec["reject"]["tenant"])
            else:  # pragma: no cover - record kinds are closed
                raise ReproError(f"unknown WAL record type {t!r}")
        svc._ids = itertools.count(max_id + 1)
        # Re-attach the journal first truncating the torn tail, then
        # re-admit in-flight submissions *without* re-journaling them -
        # their submit records are already in the intact prefix.
        for spec, settled in submits:
            if not settled:
                svc._push(svc.now, "submit", spec)
        svc.wal = WriteAheadLog(wal_path, fsync=fsync, truncate_to=good)
        return svc

    # -- event helpers -----------------------------------------------------------

    def _push(self, at: float, kind: str, payload) -> None:
        heapq.heappush(self._events, (at, next(self._seq), kind, payload))

    def _breaker(self, tenant: str) -> CircuitBreaker:
        br = self.breakers.get(tenant)
        if br is None:
            br = CircuitBreaker(
                self.cfg.breaker_threshold, self.cfg.breaker_open_for,
                self.cfg.breaker_probes,
            )
            self.breakers[tenant] = br
        return br

    # -- submission path ---------------------------------------------------------

    def _on_submit(self, spec: JobSpec) -> None:
        key = spec.key()
        self.arrivals_seen.append((self.now, spec.tenant, key))
        # 1. Content-hash cache: a repeat of a committed job costs
        #    nothing - no credit, no worker, no breaker probe.
        hit = self.committed.get(key)
        if hit is not None:
            self.cache_hits += 1
            self._record(self._cached_copy(hit, spec))
            return
        # 2. Admission credits, then the breaker.  ``admit`` raises
        #    before charging, so a shed submission consumes nothing;
        #    the breaker (which must mutate probe state in half-open)
        #    is consulted only once a credit is actually held.
        try:
            self.admission.admit(spec.tenant, self.now)
        except JobRejected as rej:
            self._reject(rej, key)
            return
        br = self._breaker(spec.tenant)
        if not br.allow(self.now):
            self.admission.release(spec.tenant)
            self._check_capacity()
            self._reject(JobRejected(
                RejectReason.BREAKER_OPEN, br.retry_after(self.now),
                spec.tenant,
                detail=f"breaker {br.state} after "
                       f"{br.consecutive_failures} consecutive failures",
            ), key)
            return
        # 3. Idempotent resubmission: same content already queued or
        #    running -> coalesce onto the primary, commit will fan out.
        primary = self._inflight.get(key)
        if primary is not None:
            self.coalesced += 1
            fr = self._skeleton(spec, key)
            fr.cached = True
            primary.followers.append(fr)
            return
        # 4. Graceful degradation: past the overload watermark the
        #    service latches degraded and new jobs run the coarser
        #    (cheaper) configuration until capacity recovers - the
        #    backlog draining back to the ``recover_at`` watermark
        #    (checked where credits release), not merely dipping below
        #    ``degrade_at``.
        exec_spec = spec
        result = self._skeleton(spec, key)
        if (
            not self.degraded
            and self.admission.total
            > self.cfg.degrade_at * self.cfg.global_slots
        ):
            self.degraded = True
        if self.degraded:
            exec_spec = spec.demoted(
                self.cfg.demote_grain, self.cfg.demote_patch
            )
            if exec_spec.scenario_fields() != spec.scenario_fields():
                self.demotions += 1
                result.demoted = True
                result.demote_note = (
                    f"overload: grain {spec.grain}->{exec_spec.grain}, "
                    f"patch {spec.patch}->{exec_spec.patch}"
                )
        job = _Job(spec=spec, exec_spec=exec_spec, result=result,
                   followers=[])
        self._inflight[key] = job
        self._enqueue(job)

    def _skeleton(self, spec: JobSpec, key: str) -> JobResult:
        return JobResult(
            job_id=next(self._ids), tenant=spec.tenant, key=key,
            status=JobStatus.FAILED, submitted=self.now,
        )

    def _cached_copy(self, hit: JobResult, spec: JobSpec) -> JobResult:
        r = self._skeleton(spec, hit.key)
        r.status = JobStatus.COMPLETED
        r.started = r.finished = self.now
        r.makespan = hit.makespan
        r.flux_crc = hit.flux_crc
        r.exact = hit.exact
        r.cached = True
        r.demoted = hit.demoted
        r.demote_note = hit.demote_note
        return r

    def _reject(self, rej: JobRejected, key: str) -> None:
        d = rej.to_dict()
        d["at"] = self.now
        if self.wal is not None:
            self.wal.append(
                {"type": "reject", "at": self.now, "key": key, "reject": dict(d)}
            )
        self.rejections.append(d)

    # -- dispatch (fair share) ---------------------------------------------------

    def _enqueue(self, job: _Job) -> None:
        q = self._ready.get(job.spec.tenant)
        if q is None:
            q = deque()
            self._ready[job.spec.tenant] = q
        q.append(job)

    def _pump(self) -> None:
        """Fill free worker slots round-robin across tenant queues.

        The rotation cursor persists across pumps, so a tenant that
        keeps its queue full cannot shadow later tenants: each dispatch
        hands the next slot to the next tenant in first-seen order.
        """
        tenants = list(self._ready)  # insertion-ordered, stable
        while self.free_workers > 0 and any(
            self._ready[t] for t in tenants
        ):
            for off in range(len(tenants)):
                t = tenants[(self._rr + off) % len(tenants)]
                if self._ready[t]:
                    self._rr = (self._rr + off + 1) % len(tenants)
                    self._dispatch(self._ready[t].popleft())
                    break

    def _dispatch(self, job: _Job) -> None:
        self.free_workers -= 1
        if job.result.attempts == 0:
            job.result.started = self.now
        job.result.attempts += 1
        if self.wal is not None:
            self.wal.append({
                "type": "attempt", "at": self.now, "key": job.result.key,
                "job_id": job.result.job_id, "attempt": job.result.attempts,
            })
        if (self.cfg.worker_crash_rate > 0.0
                and self._rng.random() < self.cfg.worker_crash_rate):
            # The pool worker dies mid-attempt: the cluster DES never
            # ran (nothing to replay), the slot is held for the partial
            # slice the worker burned before dying.
            self.worker_crashes += 1
            burned = float(
                self._rng.uniform(0.2, 0.9)) * self.cfg.est_job_time
            outcome = AttemptOutcome(
                status="crash", duration=burned,
                detail="worker pool member crashed mid-attempt",
            )
        else:
            deadline = (
                job.spec.deadline if job.spec.deadline is not None
                else self.cfg.default_deadline
            )
            outcome = self.executor.execute(job.exec_spec, deadline)
        self._push(self.now + outcome.duration, "finish", (job, outcome))

    # -- completion path ---------------------------------------------------------

    def _on_finish(self, job: _Job, outcome: AttemptOutcome) -> None:
        self.free_workers += 1
        if outcome.status == "ok":
            self._commit(job, outcome)
            return
        if outcome.status == "crash" and (
            job.result.attempts < self.cfg.max_attempts
        ):
            delay = self.cfg.backoff_base * (
                self.cfg.backoff_factor ** (job.result.attempts - 1)
            )
            if self.cfg.jitter_frac > 0.0:
                delay *= 1.0 + self.cfg.jitter_frac * float(
                    self._rng.uniform(-1.0, 1.0)
                )
            self._push(self.now + delay, "retry", job)
            return
        self._fail(job, outcome)

    _REASONS = {
        "crash": FailureReason.WORKER_CRASH,
        "deadline": FailureReason.DEADLINE,
        "stall": FailureReason.STALL,
        "error": FailureReason.RUNTIME_ERROR,
        "invalid": FailureReason.INVALID,
    }

    def _commit(self, job: _Job, outcome: AttemptOutcome) -> None:
        key = job.result.key
        if key in self.committed:  # pragma: no cover - exactly-once guard
            raise ReproError(f"double commit for job key {key}")
        r = job.result
        r.status = JobStatus.COMPLETED
        r.reason = ""
        r.finished = self.now
        r.makespan = outcome.makespan
        r.flux_crc = outcome.flux_crc
        r.exact = outcome.exact
        r.fault_counters = dict(outcome.counters)
        if self.wal is not None:
            # Journal the commit before installing it: replay treats a
            # journaled commit as authoritative, so the content hash
            # can never be committed twice across a crash.
            self.wal.append({
                "type": "commit", "at": self.now, "key": key,
                "result": r.to_dict(),
            })
        self.committed[key] = r
        self._settle(job, success=True)

    def _fail(self, job: _Job, outcome: AttemptOutcome) -> None:
        r = job.result
        r.status = JobStatus.FAILED
        r.reason = self._REASONS[outcome.status]
        r.detail = outcome.detail
        r.finished = self.now
        r.makespan = outcome.makespan
        r.stall = outcome.stall
        r.fault_counters = dict(outcome.counters)
        self._settle(job, success=False)

    def _settle(self, job: _Job, success: bool) -> None:
        """One terminal record per admitted submission, primary first."""
        del self._inflight[job.result.key]
        br = self._breaker(job.spec.tenant)
        (br.on_success if success else br.on_failure)(self.now)
        self._record(job.result)
        self.admission.release(job.spec.tenant)
        src = job.result
        for fr in job.followers:
            fr.status = src.status
            fr.reason = src.reason
            fr.detail = "coalesced onto in-flight duplicate; " + src.detail
            fr.started = fr.started or src.started
            fr.finished = self.now
            fr.makespan = src.makespan
            fr.flux_crc = src.flux_crc
            fr.exact = src.exact
            fr.demoted = src.demoted
            fr.demote_note = src.demote_note
            self._record(fr)
            self.admission.release(fr.tenant)
        self._check_capacity()

    def _check_capacity(self) -> None:
        """Clear the degradation latch once the backlog drains.

        Called wherever admission credits release; crossing the
        ``recover_at`` watermark is one capacity recovery and restores
        full-fidelity execution for subsequent submissions.
        """
        if (
            self.degraded
            and self.admission.total
            <= self.cfg.recover_at * self.cfg.global_slots
        ):
            self.degraded = False
            self.capacity_recoveries += 1

    def _record(self, result: JobResult) -> None:
        if self.wal is not None and self.committed.get(result.key) is not result:
            # The primary commit already journaled itself (its commit
            # record doubles as the terminal record); everything else -
            # failures, cache hits, coalesced followers - journals here.
            self.wal.append(
                {"type": "terminal", "at": self.now, "result": result.to_dict()}
            )
        self.results.append(result)

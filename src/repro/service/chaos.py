"""Service-level chaos: seeded adversarial traffic against the job layer.

The runtime chaos campaign (:mod:`repro.chaos`) attacks the cluster
*inside* one run.  This module attacks the layer above: open-loop
arrival bursts that overrun admission, a worker pool that keeps
crashing attempts, poison specs whose fault plans can never finish
(they stall until the watchdog diagnoses them), and duplicate
submissions racing their originals - all from one seed, so a failing
campaign cell replays exactly.

The oracle is the service's whole contract at once
(:func:`check_service_invariants`):

* **drained** - the event plane, every tenant queue, the in-flight
  table and the admission ledger are empty; all worker slots are free;
* **one terminal record per accepted submission** - nothing is lost,
  nothing is answered twice (no starvation: accepted means answered);
* **exactly-once commit** - at most one committed result per content
  hash; every completed record of a key carries that one flux CRC;
* **no wrong answers** - completed non-poison jobs are bitwise-exact
  against the fault-free reference; poison jobs *never* complete;
* **determinism** - the same (config, workload) replayed against a
  fresh service produces byte-identical records and rejections.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from .._util import ReproError
from ..chaos import ChaosSpace, random_fault_plan
from ..runtime import FaultPlan, LinkPartition
from .executor import JobExecutor
from .service import ServiceConfig, SweepService
from .spec import JobSpec, JobStatus

__all__ = [
    "ServiceChaosSpace",
    "ServiceWorkload",
    "ServiceCaseResult",
    "random_service_workload",
    "check_service_invariants",
    "run_service_case",
    "run_service_campaign",
]


@dataclass(frozen=True)
class ServiceChaosSpace:
    """The sampled traffic space of one campaign."""

    tenants: int = 3
    jobs: int = 24  # submissions per case (before duplicates)
    bursts: int = 3  # open-loop arrival bursts
    burst_gap: float = 4e-3  # virtual seconds between burst starts
    burst_width: float = 0.5e-3  # arrivals spread inside one burst
    poison_frac: float = 0.15  # specs whose plan can never finish
    chaos_frac: float = 0.25  # specs under recoverable runtime chaos
    dup_frac: float = 0.2  # extra duplicate submissions appended
    worker_crash_rate: float = 0.25

    def __post_init__(self):
        if self.tenants < 1 or self.jobs < 1 or self.bursts < 1:
            raise ReproError("tenants, jobs and bursts must be >= 1")
        for frac in (self.poison_frac, self.chaos_frac, self.dup_frac):
            if not (0.0 <= frac <= 1.0):
                raise ReproError("chaos fractions must be in [0, 1]")
        if not (0.0 <= self.worker_crash_rate < 1.0):
            raise ReproError("worker_crash_rate must be in [0, 1)")


@dataclass(frozen=True)
class ServiceWorkload:
    """One seeded traffic trace: arrivals plus the poison ground truth."""

    config: ServiceConfig
    arrivals: tuple  # ((time, JobSpec), ...) sorted by time
    poison_keys: frozenset  # content hashes that must never complete


def _poison_plan(seed: int) -> FaultPlan:
    """A fault plan that can never finish: the 0<->1 link stays
    partitioned for longer than any run survives, so every delivery
    retry bounces until the liveness watchdog diagnoses the stall."""
    return FaultPlan(
        partitions=(LinkPartition(0, 1, 0.0, math.inf),), seed=seed
    )


def random_service_workload(
    seed: int, space: ServiceChaosSpace = ServiceChaosSpace()
) -> ServiceWorkload:
    """The campaign cell for ``seed``: a pure function of its number.

    All randomness comes from ``np.random.default_rng((seed, 7001))``;
    the embedded recoverable fault plans are themselves the seeded pure
    plans of :func:`repro.chaos.random_fault_plan`.
    """
    rng = np.random.default_rng((seed, 7001))
    cfg = ServiceConfig(
        workers=2,
        tenant_slots=4,
        global_slots=8,
        worker_crash_rate=space.worker_crash_rate,
        breaker_threshold=2,
        breaker_open_for=6e-3,
        degrade_at=0.5,
        seed=int(rng.integers(0, 2**31)),
    )
    # Keep the runtime chaos gentle: the *service* is under test here,
    # and recoverable plans must stay recoverable (see repro.chaos).
    chaos_space = ChaosSpace(intensity=0.3)
    arrivals: list[tuple[float, JobSpec]] = []
    poison: set[str] = set()
    for j in range(space.jobs):
        burst = int(rng.integers(0, space.bursts))
        at = burst * space.burst_gap + float(
            rng.uniform(0.0, space.burst_width)
        )
        tenant = f"tenant-{int(rng.integers(0, space.tenants))}"
        draw = float(rng.random())
        faults = None
        if draw < space.poison_frac:
            faults = _poison_plan(int(rng.integers(0, 2**31)))
        elif draw < space.poison_frac + space.chaos_frac:
            # nprocs=4: the hybrid 16-core layout of the default spec.
            faults = random_fault_plan(
                int(rng.integers(0, 2**20)), 4, chaos_space
            )
        spec = JobSpec(
            tenant=tenant,
            seed=int(rng.integers(0, 8)),  # small pool -> real duplicates
            patch=int(rng.choice((2, 4))),
            faults=faults,
        )
        if draw < space.poison_frac:
            poison.add(spec.key())
        arrivals.append((at, spec))
    # Explicit duplicate submissions: same spec, possibly other tenant,
    # arriving later - must coalesce or hit the result cache.
    for _ in range(int(space.dup_frac * space.jobs)):
        at, spec = arrivals[int(rng.integers(0, space.jobs))]
        dup = JobSpec(
            tenant=f"tenant-{int(rng.integers(0, space.tenants))}",
            kind=spec.kind, mode=spec.mode, size=spec.size,
            patch=spec.patch, grain=spec.grain, sn=spec.sn,
            seed=spec.seed, faults=spec.faults,
        )
        arrivals.append(
            (at + float(rng.uniform(0.0, space.burst_gap)), dup)
        )
    arrivals.sort(key=lambda x: x[0])
    return ServiceWorkload(
        config=cfg, arrivals=tuple(arrivals),
        poison_keys=frozenset(poison),
    )


# -- the oracle -----------------------------------------------------------------


def check_service_invariants(
    svc: SweepService, workload: ServiceWorkload
) -> list[str]:
    """Every violated service invariant, as human-readable strings."""
    bad: list[str] = []
    # Drain: nothing queued, in flight, or still holding credits.
    if svc._events:
        bad.append(f"{len(svc._events)} events still queued after drain")
    if any(q for q in svc._ready.values()):
        bad.append("non-empty tenant ready queue after drain")
    if svc._inflight:
        bad.append(f"{len(svc._inflight)} jobs still in flight")
    if svc.free_workers != svc.cfg.workers:
        bad.append("worker slots leaked")
    if svc.admission.total != 0 or any(svc.admission.held.values()):
        bad.append("admission credits leaked")
    # Accounting: every submission is either shed (a recorded
    # rejection) or accepted, and every accepted one gets exactly one
    # terminal record with a unique job id (no starvation, no dup).
    # Breaker rejections pass the admission controller first (and give
    # the credit back), so they count as submissions but not accepted.
    accepted = (
        svc.admission.submissions + svc.cache_hits - len(svc.rejections)
    )
    if len(svc.results) != accepted:
        bad.append(
            f"{accepted} accepted submissions but {len(svc.results)} "
            "terminal records"
        )
    if len(svc.arrivals_seen) != (len(svc.results) + len(svc.rejections)):
        bad.append("submission ledger does not balance")
    ids = [r.job_id for r in svc.results]
    if len(set(ids)) != len(ids):
        bad.append("duplicate job ids in terminal records")
    # Exactly-once: one commit per key; all completed records of a key
    # carry the committed CRC.
    crc: dict[str, int] = {}
    for r in svc.results:
        if r.status != JobStatus.COMPLETED:
            continue
        if r.key in crc:
            if r.flux_crc != crc[r.key]:
                bad.append(f"key {r.key}: divergent flux CRCs")
            if not r.cached:
                bad.append(f"key {r.key}: second non-cached completion")
        else:
            crc[r.key] = r.flux_crc
            if r.cached and r.key not in svc.committed:
                bad.append(f"key {r.key}: cached hit without a commit")
    # Correctness: completed jobs are exact; poison never completes.
    for r in svc.results:
        if r.status == JobStatus.COMPLETED:
            if r.key in workload.poison_keys:
                bad.append(f"poison job {r.job_id} completed")
            elif r.exact is not True:
                bad.append(f"job {r.job_id} completed inexact")
    return bad


# -- campaign -------------------------------------------------------------------


@dataclass
class ServiceCaseResult:
    """Outcome of one service-chaos campaign cell (one seed)."""

    seed: int
    ok: bool
    violations: list = field(default_factory=list)
    deterministic: bool = True
    metrics: dict = field(default_factory=dict)


def _run_once(
    workload: ServiceWorkload, executor: JobExecutor | None
) -> SweepService:
    svc = SweepService(workload.config, executor=executor)
    for at, spec in workload.arrivals:
        svc.submit(spec, at=at)
    svc.run_until_idle()
    return svc


def _fingerprint(svc: SweepService) -> str:
    return json.dumps(
        {
            "results": [r.to_dict() for r in svc.results],
            "rejections": svc.rejections,
        },
        sort_keys=True,
    )


def run_service_case(
    seed: int,
    space: ServiceChaosSpace = ServiceChaosSpace(),
    executor: JobExecutor | None = None,
    check_determinism: bool = True,
) -> ServiceCaseResult:
    """One campaign cell: generate, run, check, optionally replay.

    Passing a shared ``executor`` reuses scenario builds across cells
    (identity caching is per-scenario, not per-service); the replay
    leg shares it too, which additionally proves the scenario cache
    does not leak state between service instances.
    """
    workload = random_service_workload(seed, space)
    svc = _run_once(workload, executor)
    violations = check_service_invariants(svc, workload)
    deterministic = True
    if check_determinism:
        replay = _run_once(workload, executor)
        deterministic = _fingerprint(svc) == _fingerprint(replay)
        if not deterministic:
            violations.append("replay diverged from first run")
    return ServiceCaseResult(
        seed=seed, ok=not violations, violations=violations,
        deterministic=deterministic, metrics=svc.metrics(),
    )


def run_service_campaign(
    seeds,
    space: ServiceChaosSpace = ServiceChaosSpace(),
    check_determinism: bool = True,
) -> dict:
    """Run cells for all ``seeds`` with one shared executor.

    Returns the campaign summary; ``failures`` lists every failing
    cell's seed and violations so a red campaign replays from numbers
    alone.
    """
    executor = JobExecutor()
    cases = [
        run_service_case(s, space, executor, check_determinism)
        for s in seeds
    ]
    agg: dict[str, float] = {}
    for c in cases:
        m = c.metrics
        agg["completed"] = agg.get("completed", 0) + m["completed"]
        agg["shed"] = agg.get("shed", 0) + sum(m["shed"].values())
        agg["failed"] = agg.get("failed", 0) + sum(m["failed"].values())
        agg["worker_crashes"] = (
            agg.get("worker_crashes", 0) + m["worker_crashes"]
        )
        agg["demotions"] = agg.get("demotions", 0) + m["demotions"]
        agg["cache_hits"] = agg.get("cache_hits", 0) + m["cache_hits"]
        agg["coalesced"] = agg.get("coalesced", 0) + m["coalesced"]
    return {
        "total": len(cases),
        "passed": sum(1 for c in cases if c.ok),
        "aggregate": agg,
        "failures": [
            {"seed": c.seed, "violations": c.violations}
            for c in cases if not c.ok
        ],
        "cases": cases,
    }

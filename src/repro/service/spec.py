"""Job specifications, content-hash identity, results, and the failure
taxonomy of the sweep service.

A :class:`JobSpec` is the service's unit of work: one sweep campaign
cell - mesh family, size, decomposition, quadrature order, scheduler
mode, clustering grain, seed, and (optionally) a tenant-supplied fault
plan to run under.  Specs are *content-addressed*: :meth:`JobSpec.key`
hashes exactly the fields that determine the computation - (mesh,
partition, quadrature, scheduler, seed) - so a resubmitted or
duplicate-submitted job is recognized and committed exactly once, and
repeat jobs skip straight to the cached result.

Every terminal outcome is a :class:`JobResult` with a structured
status and failure reason from the small closed taxonomy below; an
over-capacity or breaker-blocked submission raises
:class:`JobRejected`, which always carries a ``retry_after`` hint the
client can comply with.  Nothing in this module touches the runtime:
it is pure data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .._util import ReproError

__all__ = [
    "JobSpec",
    "JobResult",
    "JobRejected",
    "JobStatus",
    "FailureReason",
    "RejectReason",
]

#: Mesh families and scheduler modes a spec may name (the golden
#: scenario matrix of the chaos campaigns).
KINDS = ("structured", "unstructured")
MODES = ("hybrid", "mpi_only")


class JobStatus:
    """Terminal status of an accepted job (exactly one per job)."""

    COMPLETED = "completed"
    FAILED = "failed"


class FailureReason:
    """Why a job failed: the closed failure taxonomy.

    Every ``FAILED`` result carries exactly one of these; free-text
    detail goes in ``JobResult.detail``, never in ``reason``.
    """

    DEADLINE = "deadline"  # virtual-time budget exhausted, run cancelled
    STALL = "stall"  # liveness watchdog raised (StallReport attached)
    WORKER_CRASH = "worker-crash"  # retry budget exhausted on pool crashes
    RUNTIME_ERROR = "runtime-error"  # structured runtime failure (ReproError)
    INVALID = "invalid-spec"  # rejected by validation at execution time


class RejectReason:
    """Why a submission was shed at the front door."""

    TENANT_QUEUE_FULL = "tenant-queue-full"  # per-tenant credits exhausted
    SERVICE_OVERLOADED = "service-overloaded"  # global backlog bound hit
    BREAKER_OPEN = "breaker-open"  # tenant circuit breaker is open


@dataclass(frozen=True)
class JobSpec:
    """One sweep job: everything needed to build and run the scenario.

    All fields are identity *except* ``tenant`` and ``deadline``:
    who submits a computation and how patient they are does not change
    what is computed, so duplicates across tenants still share one
    cached result.
    """

    tenant: str
    kind: str = "structured"  # mesh family
    mode: str = "hybrid"  # scheduler / core layout policy
    size: int = 8  # mesh resolution (cells or generator parameter)
    patch: int = 2  # cells/axis per patch (structured) or target size
    grain: int = 16  # vertex-clustering grain
    sn: int = 2  # quadrature order (level-symmetric)
    seed: int = 0  # seed of the run (fault plans, decomposition)
    deadline: float | None = None  # virtual-seconds budget; None = config default
    #: Tenant-supplied chaos: a FaultPlan the job's DES run is armed
    #: with.  One tenant's faults live and die inside its own runs -
    #: the whole point of the job layer's fault isolation.
    faults: object | None = None

    def __post_init__(self):
        if not self.tenant:
            raise ReproError("job spec needs a tenant id")
        if self.kind not in KINDS:
            raise ReproError(f"unknown mesh kind {self.kind!r}")
        if self.mode not in MODES:
            raise ReproError(f"unknown scheduler mode {self.mode!r}")
        if self.size < 2:
            raise ReproError("mesh size must be >= 2")
        if self.patch < 1:
            raise ReproError("patch parameter must be >= 1")
        if self.grain < 1:
            raise ReproError("clustering grain must be >= 1")
        if self.sn < 2 or self.sn % 2:
            raise ReproError("sn must be a positive even quadrature order")
        if self.deadline is not None and self.deadline <= 0:
            raise ReproError("job deadline must be positive")

    # -- content identity -------------------------------------------------------

    def scenario_fields(self) -> tuple:
        """The fields that determine the *built* scenario (mesh +
        partition + quadrature + scheduler).  Everything expensive the
        executor derives - mesh, patch set, sweep DAG, priorities,
        reference flux - is a pure function of these."""
        return (self.kind, self.mode, self.size, self.patch,
                self.grain, self.sn)

    def key(self) -> str:
        """Content hash of (mesh, partition, quadrature, scheduler,
        seed): the idempotency key of exactly-once commit and of the
        result cache.  Tenant-supplied faults are part of the content -
        the same sweep under different chaos is a different run."""
        ident = (self.scenario_fields(), self.seed, _plan_fields(self.faults))
        return hashlib.sha256(repr(ident).encode()).hexdigest()[:16]

    def demoted(self, grain: int, patch: int) -> "JobSpec":
        """The graceful-degradation variant: same physics request on a
        coarser clustering grain and fewer/larger patches (cheaper to
        schedule, cheaper to simulate)."""
        return JobSpec(
            tenant=self.tenant, kind=self.kind, mode=self.mode,
            size=self.size, patch=max(self.patch, patch),
            grain=max(self.grain, grain), sn=self.sn, seed=self.seed,
            deadline=self.deadline, faults=self.faults,
        )


def _plan_fields(plan) -> tuple | None:
    """Canonical identity tuple of a FaultPlan (or None).

    Uses the plan's own frozen-dataclass repr, which is stable and
    covers crashes/stragglers/partitions/rates/seed.
    """
    return None if plan is None else (repr(plan),)


class JobRejected(ReproError):
    """Structured load-shed: the submission was not accepted.

    Always carries a machine-readable ``reason`` (one of
    :class:`RejectReason`) and a ``retry_after`` hint in service
    virtual-seconds: resubmitting at ``now + retry_after`` is the
    compliant client behavior, and the admission controller sizes the
    hint so a compliant retry normally finds capacity.
    """

    def __init__(self, reason: str, retry_after: float, tenant: str,
                 detail: str = ""):
        self.reason = reason
        self.retry_after = retry_after
        self.tenant = tenant
        self.detail = detail
        super().__init__(
            f"job rejected ({reason}) for tenant {tenant!r}: retry in "
            f"{retry_after:.6f}s virtual" + (f" - {detail}" if detail else "")
        )

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "retry_after": self.retry_after,
            "tenant": self.tenant,
            "detail": self.detail,
        }


@dataclass
class JobResult:
    """The exactly-one terminal record of an accepted job."""

    job_id: int  # admission order (unique per service instance)
    tenant: str
    key: str  # content hash (JobSpec.key of the submitted spec)
    status: str  # JobStatus.*
    reason: str = ""  # FailureReason.* when FAILED, else ""
    detail: str = ""  # free-text diagnostic (never parsed)
    submitted: float = 0.0  # service virtual time of admission
    started: float = 0.0  # first dispatch
    finished: float = 0.0  # terminal record time
    attempts: int = 0  # executions consumed (>= 1 unless cached)
    makespan: float = 0.0  # DES virtual makespan (or consumed budget)
    flux_crc: int | None = None  # CRC32 of the committed flux bytes
    exact: bool | None = None  # flux bitwise-equal to fault-free reference
    cached: bool = False  # served from the content-hash result cache
    demoted: bool = False  # executed under the degraded config
    demote_note: str = ""  # what the degraded config was
    stall: dict | None = None  # StallReport.to_dict() on STALL failures
    fault_counters: dict = field(default_factory=dict)  # RunReport summary

    @property
    def latency(self) -> float:
        """Submission-to-terminal service latency (the SLO metric)."""
        return self.finished - self.submitted

    @staticmethod
    def from_dict(d: dict) -> "JobResult":
        """Rebuild a result from its :meth:`to_dict` form (WAL replay)."""
        d = dict(d)
        d["fault_counters"] = dict(d.get("fault_counters") or {})
        return JobResult(**d)

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "key": self.key,
            "status": self.status,
            "reason": self.reason,
            "detail": self.detail,
            "submitted": self.submitted,
            "started": self.started,
            "finished": self.finished,
            "attempts": self.attempts,
            "makespan": self.makespan,
            "flux_crc": self.flux_crc,
            "exact": self.exact,
            "cached": self.cached,
            "demoted": self.demoted,
            "demote_note": self.demote_note,
            "stall": self.stall,
            "fault_counters": dict(self.fault_counters),
        }

"""repro: a reproduction of *JSweep - a patch-centric data-driven
approach for parallel sweeps on large-scale meshes* (Yan et al.).

The package implements the paper's full stack in Python:

* :mod:`repro.mesh`      - structured & unstructured meshes + generators
* :mod:`repro.partition` - SFC / RCB / multilevel graph decomposition
* :mod:`repro.framework` - patch-based application framework (JAxMIN)
* :mod:`repro.core`      - the patch-centric data-driven abstraction
* :mod:`repro.runtime`   - DES-simulated MPI+threads cluster runtime
* :mod:`repro.sweep`     - Sn sweeps: quadrature, DAGs, kernels,
  priorities, vertex clustering, coarsened graphs, KBA/BSP baselines
* :mod:`repro.apps`      - JSNT-S / JSNT-U applications, Kobayashi
  benchmark, particle tracing

Quickstart::

    from repro import JSNTS
    app = JSNTS.kobayashi(20, total_cores=24)
    result = app.solve(tol=1e-6)          # physics (source iteration)
    report = app.sweep_report(24)         # simulated parallel sweep
    print(report.format_breakdown())
"""

from .apps import JSNTS, JSNTU, JSNTApp, make_kobayashi_solver, trace_particles
from .core import (
    MisraMarkerRing,
    PatchProgram,
    ProgramId,
    ProgramState,
    SerialEngine,
    Stream,
    WorkloadTracker,
)
from .framework import PatchSet
from .mesh import (
    Box,
    StructuredMesh,
    UnstructuredMesh,
    ball_tet_mesh,
    cube_structured,
    cube_tet_mesh,
    disk_tri_mesh,
    reactor_mesh_2d,
    warped_quad_mesh,
)
from .runtime import (
    TIANHE2,
    CostModel,
    CrashFault,
    DataDrivenRuntime,
    FaultInjector,
    FaultPlan,
    LinkPartition,
    Machine,
    RecoveryConfig,
    RunReport,
    StallError,
    StallReport,
    StragglerWindow,
)
from .sweep import (
    Material,
    MaterialMap,
    PriorityStrategy,
    Quadrature,
    SnSolver,
    SweepPatchProgram,
    SweepResult,
    SweepTopology,
    level_symmetric,
    product_quadrature,
)
from .sweep.baselines import BSPSweepRuntime, KBASchedule
from .sweep.coarsened import (
    CoarsenedSweepProgram,
    build_coarsened,
    coarsened_is_acyclic,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "PatchProgram",
    "ProgramId",
    "ProgramState",
    "Stream",
    "SerialEngine",
    "WorkloadTracker",
    "MisraMarkerRing",
    "Box",
    "StructuredMesh",
    "UnstructuredMesh",
    "cube_structured",
    "cube_tet_mesh",
    "ball_tet_mesh",
    "disk_tri_mesh",
    "reactor_mesh_2d",
    "warped_quad_mesh",
    "PatchSet",
    "Machine",
    "TIANHE2",
    "CostModel",
    "DataDrivenRuntime",
    "RunReport",
    "CrashFault",
    "StragglerWindow",
    "LinkPartition",
    "FaultPlan",
    "FaultInjector",
    "RecoveryConfig",
    "StallReport",
    "StallError",
    "Quadrature",
    "level_symmetric",
    "product_quadrature",
    "SweepTopology",
    "SnSolver",
    "SweepResult",
    "SweepPatchProgram",
    "Material",
    "MaterialMap",
    "PriorityStrategy",
    "KBASchedule",
    "BSPSweepRuntime",
    "build_coarsened",
    "coarsened_is_acyclic",
    "CoarsenedSweepProgram",
    "JSNTApp",
    "JSNTS",
    "JSNTU",
    "make_kobayashi_solver",
    "trace_particles",
]

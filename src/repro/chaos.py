"""Chaos campaigns: seeded random fault-space search for the runtime.

PR 1's fault tests replay a handful of hand-written plans; that proves
the recovery machinery works on the scenarios someone thought of.  The
scale the paper targets (76,800 cores) is adversarial in ways nobody
enumerates by hand - a partition healing mid-failover, a corrupted
duplicate racing a checkpoint, two cascading crashes bracketing a
straggler window.  This module searches that space mechanically:
generate N seeded random :class:`~repro.runtime.faults.FaultPlan`\\ s
mixing *every* fault type (crashes with cascades, stragglers, timed
link partitions, drop / duplicate / corrupt), run each over the
{structured, unstructured} x {hybrid, mpi_only} scenario matrix with
the invariant sanitizer armed, and hold every run to the strongest
available oracle: **bitwise-identical flux** to the fault-free
reference plus watchdog-clean termination.

Seed-reproducibility contract: the plan for campaign cell ``(seed,
nprocs)`` is a pure function of those two integers -
``random_fault_plan(seed, nprocs, space)`` derives everything from
``np.random.default_rng((seed, nprocs))``, and the plan's own injector
seed is drawn from the same generator.  A failing seed therefore
replays exactly, on any machine, from its number alone.

Generated plans always leave at least one survivor: explicit crashes
and cascade caps are drawn against a shared death budget of
``nprocs - 1``, so a campaign never trips the total-loss guard.
Partition windows are drawn well below the watchdog horizon and the
retry budget, so every generated plan is recoverable by construction -
an unrecoverable plan (e.g. a never-healing partition) is a *test* of
the watchdog, not a campaign member.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field

import numpy as np

from ._util import ReproError
from .framework import PatchSet
from .mesh import cube_structured, disk_tri_mesh
from .runtime import (
    AdaptiveConfig,
    CrashFault,
    DataDrivenRuntime,
    FaultPlan,
    LinkPartition,
    Machine,
    MembershipConfig,
    RecoveryConfig,
    StallError,
    StragglerWindow,
)
from .sweep import Material, MaterialMap, SnSolver, level_symmetric

__all__ = [
    "ChaosSpace",
    "CaseResult",
    "CampaignResult",
    "random_fault_plan",
    "build_scenario",
    "run_case",
    "run_campaign",
]

#: The campaign's scenario matrix (mirrors the golden-fixture matrix).
KINDS = ("structured", "unstructured")
MODES = ("hybrid", "mpi_only")


@dataclass(frozen=True)
class ChaosSpace:
    """The sampled fault space: which fault classes, how hard.

    ``intensity`` in (0, 1] scales every rate and count; ``horizon`` is
    the virtual-time window faults land in (roughly the expected
    makespan of the scenario).  Individual fault classes can be toggled
    to bisect a failing campaign.
    """

    intensity: float = 0.5
    horizon: float = 1e-3  # virtual seconds
    crashes: bool = True
    cascades: bool = True
    stragglers: bool = True
    partitions: bool = True
    drop: bool = True
    duplicate: bool = True
    corrupt: bool = True
    #: Flapping nodes: crash victims may restart (``restart_after``)
    #: and may crash *again* after rejoining.  Off by default - the
    #: extra draws are appended strictly after every legacy draw, so
    #: plans for a given ``(seed, nprocs)`` are bitwise-unchanged
    #: whenever flapping is off.
    flapping: bool = False

    def __post_init__(self):
        if not (0.0 < self.intensity <= 1.0):
            raise ReproError("chaos intensity must be in (0, 1]")
        if self.horizon <= 0:
            raise ReproError("chaos horizon must be positive")


def random_fault_plan(
    seed: int, nprocs: int, space: ChaosSpace = ChaosSpace()
) -> FaultPlan:
    """One seeded random plan: a pure function of ``(seed, nprocs)``.

    Deaths (explicit crashes plus cascade caps) are drawn against a
    shared budget of ``nprocs - 1``, guaranteeing survivors; partition
    heal windows stay a couple of retry backoffs long, far below the
    watchdog horizon, so every generated plan is recoverable.
    """
    rng = np.random.default_rng((seed, nprocs))
    hz = space.horizon
    i = space.intensity

    budget = nprocs - 1  # max total deaths: always leave a survivor
    crashes: list[CrashFault] = []
    n_crashes = (
        int(rng.binomial(min(2, budget), 0.7 * i)) if space.crashes else 0
    )
    victims = (
        rng.choice(nprocs, size=n_crashes, replace=False)
        if n_crashes else np.empty(0, dtype=int)
    )
    budget -= n_crashes
    for p in victims:
        t = float(rng.uniform(0.1, 0.8)) * hz
        cascade, window, cmax = 0.0, 0.0, 0
        if space.cascades and budget > 0 and rng.random() < 0.5 * i:
            cmax = int(rng.integers(1, budget + 1))
            budget -= cmax
            cascade = float(rng.uniform(0.2, 0.8))
            window = float(rng.uniform(0.05, 0.2)) * hz
        crashes.append(
            CrashFault(int(p), t, cascade=cascade,
                       cascade_window=window, cascade_max=cmax)
        )

    stragglers: list[StragglerWindow] = []
    if space.stragglers:
        for _ in range(int(rng.binomial(3, 0.5 * i))):
            p = int(rng.integers(0, nprocs))
            start = float(rng.uniform(0.0, 0.7)) * hz
            length = float(rng.uniform(0.1, 0.5)) * hz
            factor = float(rng.uniform(1.5, 4.0))
            stragglers.append(StragglerWindow(p, start, start + length, factor))

    partitions: list[LinkPartition] = []
    if space.partitions and nprocs >= 2:
        for _ in range(int(rng.binomial(2, 0.6 * i))):
            src, dst = (int(q) for q in rng.choice(nprocs, 2, replace=False))
            start = float(rng.uniform(0.0, 0.6)) * hz
            length = float(rng.uniform(0.05, 0.35)) * hz
            partitions.append(LinkPartition(src, dst, start, start + length))

    p_drop = float(rng.uniform(0.0, 0.08)) * i if space.drop else 0.0
    p_dup = float(rng.uniform(0.0, 0.08)) * i if space.duplicate else 0.0
    p_cor = float(rng.uniform(0.0, 0.08)) * i if space.corrupt else 0.0
    inj_seed = int(rng.integers(0, 2**31))

    if space.flapping:
        # Appended strictly after every legacy draw: with flapping off,
        # the (seed, nprocs) -> plan mapping above is bitwise-stable.
        flapped: list[CrashFault] = []
        for c in crashes:
            if rng.random() < 0.7:
                ra = float(rng.uniform(0.15, 0.45)) * hz
                c = CrashFault(c.proc, c.time, cascade=c.cascade,
                               cascade_window=c.cascade_window,
                               cascade_max=c.cascade_max, restart_after=ra)
                if rng.random() < 0.5 * i:
                    # A true flapper: dies again after rejoining.
                    t2 = c.time + ra + float(rng.uniform(0.1, 0.4)) * hz
                    ra2 = (
                        float(rng.uniform(0.1, 0.3)) * hz
                        if rng.random() < 0.5 else 0.0
                    )
                    flapped.append(CrashFault(c.proc, t2, restart_after=ra2))
            flapped.append(c)
        crashes = flapped

    return FaultPlan(
        crashes=tuple(crashes),
        stragglers=tuple(stragglers),
        partitions=tuple(partitions),
        p_drop=p_drop,
        p_duplicate=p_dup,
        p_corrupt=p_cor,
        seed=inj_seed,
    )


# -- scenario construction (mirrors the golden-fixture matrix) ------------------


def _make_solver(pset: PatchSet, sn: int, grain: int) -> SnSolver:
    mesh = pset.mesh
    mm = MaterialMap.uniform(
        Material.isotropic(1.0, 0.5), mesh.num_cells
    )
    q = np.ones((mesh.num_cells, 1))
    return SnSolver(pset, level_symmetric(sn), mm, q, grain=grain)


def build_scenario(kind: str, mode: str, size: int = 8):
    """(machine, cores, pset, solver) of one campaign cell.

    Tiny meshes on the 4-core machine model: the point is interleaving
    coverage, not scale, and a campaign runs hundreds of these.
    """
    machine = Machine(cores_per_proc=4)
    cores = 16 if mode == "hybrid" else 8
    nprocs = machine.layout(cores, mode).nprocs
    if kind == "structured":
        mesh = cube_structured(size, length=4.0)
        pset = PatchSet.from_structured(mesh, (4, 4, 4), nprocs=nprocs)
        solver = _make_solver(pset, sn=2, grain=16)
    elif kind == "unstructured":
        mesh = disk_tri_mesh(size)
        pset = PatchSet.from_unstructured(mesh, 20, nprocs=nprocs)
        solver = _make_solver(pset, sn=4, grain=16)
    else:
        raise ReproError(f"unknown chaos scenario kind {kind!r}")
    return machine, cores, pset, solver


# -- campaign execution ---------------------------------------------------------


@dataclass
class CaseResult:
    """Outcome of one (kind, mode, seed) campaign cell."""

    kind: str
    mode: str
    seed: int
    ok: bool  # completed AND bitwise-exact
    exact: bool  # flux bitwise-identical to the fault-free reference
    stalled: bool  # watchdog raised a StallReport
    error: str = ""  # non-stall failure (sanitizer, undeliverable, ...)
    races: int = 0  # happens-before races (only when hb-checking)
    makespan: float = 0.0
    faults: dict = field(default_factory=dict)  # RunReport.fault_summary()
    adaptive: dict = field(default_factory=dict)  # adaptive_summary() if armed
    membership: dict = field(default_factory=dict)  # membership_summary() if armed
    plan: dict = field(default_factory=dict)  # plan size per fault class


def _plan_shape(plan: FaultPlan) -> dict:
    return {
        "crashes": len(plan.crashes),
        "cascade_max": sum(c.cascade_max for c in plan.crashes),
        "stragglers": len(plan.stragglers),
        "partitions": len(plan.partitions),
        "p_drop": plan.p_drop,
        "p_duplicate": plan.p_duplicate,
        "p_corrupt": plan.p_corrupt,
    }


def _hb_check(rep, label: str, opt) -> int:
    """Vector-clock-check one traced run; returns the race count.

    ``opt`` is ``True`` (check only) or a directory (check + export
    the HB record stream for ``repro.analysis check-trace``).  Lazy
    import: the checker is optional equipment, campaigns without
    ``hb`` never touch :mod:`repro.analysis`.
    """
    from .analysis import check_report, dump_hb_json

    if opt is not True:
        os.makedirs(opt, exist_ok=True)
        dump_hb_json(rep.hb_events, os.path.join(opt, f"{label}.hb.json"))
    return len(check_report(rep))


def run_case(
    kind: str,
    mode: str,
    seed: int,
    space: ChaosSpace = ChaosSpace(),
    size: int = 8,
    sanitize: bool = True,
    adaptive: AdaptiveConfig | None = None,
    hb=None,
    membership: MembershipConfig | None = None,
    _scenario=None,
    _reference=None,
) -> CaseResult:
    """Run one campaign cell against the bitwise-exactness oracle.

    ``adaptive`` arms the adaptive-resilience layer for the run - the
    oracle is unchanged (the whole point: adaptivity must not cost
    exactness).  ``hb`` (``None`` | ``True`` | directory) arms event
    tracing and holds the completed run to the happens-before checker
    on top of the flux oracle - any race fails the cell.
    ``membership`` arms the elastic-membership subsystem: crashes are
    then discovered by missed heartbeats (no detection oracle) and
    restarting ranks rejoin via state transfer - again, same oracle.
    ``_scenario``/``_reference`` let :func:`run_campaign` reuse the
    built scenario and fault-free reference flux across seeds.
    """
    machine, cores, pset, solver = (
        _scenario if _scenario is not None else build_scenario(kind, mode, size)
    )
    if _reference is None:
        _reference, _, _ = solver.sweep_once(mode="fast")
    nprocs = machine.layout(cores, mode).nprocs
    plan = random_fault_plan(seed, nprocs, space)
    res = CaseResult(kind=kind, mode=mode, seed=seed, ok=False, exact=False,
                     stalled=False, plan=_plan_shape(plan))
    progs, faces = solver.build_programs(resilient=True)
    rt = DataDrivenRuntime(
        cores, machine=machine, mode=mode, faults=plan,
        adaptive=adaptive, sanitize=sanitize, trace=hb is not None,
        recovery=(
            RecoveryConfig(membership=membership)
            if membership is not None else None
        ),
    )
    try:
        rep = rt.run(progs, pset.patch_proc)
    except StallError as e:
        res.stalled = True
        res.error = str(e)
        return res
    except ReproError as e:
        res.error = str(e)
        return res
    phi, _ = solver.accumulate(faces)
    res.exact = bool(
        phi.shape == _reference.shape
        and phi.tobytes() == np.ascontiguousarray(_reference).tobytes()
    )
    res.ok = res.exact
    if hb is not None:
        res.races = _hb_check(rep, f"{kind}_{mode}_{seed}", hb)
        if res.races:
            res.ok = False
            res.error = f"{res.races} happens-before race(s)"
    res.makespan = rep.makespan
    res.faults = rep.fault_summary()
    if adaptive is not None:
        res.adaptive = rep.adaptive_summary()
    if membership is not None:
        res.membership = rep.membership_summary()
    return res


@dataclass
class CampaignResult:
    """Aggregate of one chaos campaign."""

    space: ChaosSpace
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.cases)

    @property
    def passed(self) -> int:
        return sum(1 for c in self.cases if c.ok)

    @property
    def stalls(self) -> int:
        return sum(1 for c in self.cases if c.stalled)

    def failures(self) -> list[CaseResult]:
        return [c for c in self.cases if not c.ok]

    def summary(self) -> dict:
        """The per-campaign JSON summary (benchmarks write this out)."""
        agg: dict[str, float] = {}
        for c in self.cases:
            for k, v in c.faults.items():
                agg[k] = agg.get(k, 0) + v
        return {
            "space": asdict(self.space),
            "total": self.total,
            "passed": self.passed,
            "exact": sum(1 for c in self.cases if c.exact),
            "stalls": self.stalls,
            "errors": [
                {"kind": c.kind, "mode": c.mode, "seed": c.seed,
                 "stalled": c.stalled, "error": c.error}
                for c in self.failures()
            ],
            "fault_totals": agg,
            "cases": [asdict(c) for c in self.cases],
        }

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.summary(), fh, indent=1)


def run_campaign(
    seeds,
    kinds=KINDS,
    modes=MODES,
    space: ChaosSpace = ChaosSpace(),
    size: int = 8,
    sanitize: bool = True,
    adaptive: AdaptiveConfig | None = None,
    hb=None,
    membership: MembershipConfig | None = None,
    progress=None,
) -> CampaignResult:
    """Run the full (kind, mode, seed) matrix; never raises on a case.

    Scenario meshes and fault-free references are built once per
    (kind, mode) cell and shared across seeds.  ``adaptive`` arms the
    adaptive-resilience layer on every case (same oracle); ``hb`` arms
    the happens-before checker on every case; ``membership`` arms the
    elastic-membership subsystem on every case (see :func:`run_case`).
    ``progress``, when given, is called with each finished
    :class:`CaseResult`.
    """
    out = CampaignResult(space=space)
    for kind in kinds:
        for mode in modes:
            scenario = build_scenario(kind, mode, size)
            reference, _, _ = scenario[3].sweep_once(mode="fast")
            for seed in seeds:
                case = run_case(
                    kind, mode, int(seed), space, size, sanitize, adaptive,
                    hb=hb, membership=membership,
                    _scenario=scenario, _reference=reference,
                )
                out.cases.append(case)
                if progress is not None:
                    progress(case)
    return out

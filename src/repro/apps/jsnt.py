"""JSNT-S / JSNT-U application analogues (system S17).

The paper's two evaluation vehicles are JSNT-S (JASMIN-based Sn package
for structured meshes, Kobayashi workloads) and JSNT-U (JAUMIN-based Sn
package for unstructured meshes, ball and reactor workloads).  These
classes wire the mesh generators, decomposition, quadrature and solver
together with the paper's default configurations, and expose the two
study types the evaluation section runs:

* ``solve(...)``       - converge the physics (source iteration),
* ``sweep_report(...)``- one sweep under the DES runtime at a given
  simulated core count, returning the performance report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..framework.patch import PatchSet
from ..mesh.generators import ball_tet_mesh, reactor_mesh_2d
from ..runtime.cluster import Machine, TIANHE2
from ..runtime.costmodel import CostModel
from ..runtime.engine_des import DataDrivenRuntime
from ..runtime.metrics import RunReport
from ..sweep.materials import Material, MaterialMap
from ..sweep.quadrature import Quadrature, level_symmetric
from ..sweep.solver import SnSolver, SweepResult
from .kobayashi import make_kobayashi_solver

__all__ = ["JSNTApp", "JSNTS", "JSNTU"]


@dataclass
class JSNTApp:
    """A configured Sn application: solver + machine model."""

    solver: SnSolver
    machine: Machine = TIANHE2
    name: str = "jsnt"

    @property
    def pset(self) -> PatchSet:
        return self.solver.pset

    def solve(self, tol: float = 1e-6, max_iterations: int = 200) -> SweepResult:
        """Converge the scalar flux with source iteration (fast mode)."""
        return self.solver.source_iteration(tol=tol, max_iterations=max_iterations)

    def sweep_report(
        self,
        total_cores: int,
        mode: str = "hybrid",
        cost: CostModel | None = None,
        coarsened: bool = False,
        compute: bool = False,
        grain: int | None = None,
        termination: str = "workload",
        trace: bool = False,
        persist=None,
    ) -> RunReport:
        """One full sweep under the DES runtime at ``total_cores``.

        The patch set must have been built for the matching process
        count (use :meth:`procs_for`).  With ``coarsened`` the sweep
        first records clusters, builds CG, and times the CG sweep -
        the steady-state regime the paper reports.  With ``trace`` the
        report carries a structured event trace (see
        ``RunReport.to_chrome_trace``).  ``persist`` is an optional
        snapshot manager (see :mod:`repro.persist`) snapshotting the
        runtime on its event cadence.
        """
        lay = self.machine.layout(total_cores, mode)
        if self.pset.num_procs != lay.nprocs:
            raise ReproError(
                f"patch set was decomposed for {self.pset.num_procs} procs "
                f"but {total_cores} cores in mode {mode!r} need {lay.nprocs}"
            )
        if coarsened:
            cgs = self.solver.record_coarsened(grain=grain)
            programs, _ = self.solver.build_coarsened_programs(
                cgs, compute=compute
            )
        else:
            programs, _ = self.solver.build_programs(
                compute=compute, grain=grain
            )
        rt = DataDrivenRuntime(
            total_cores,
            machine=self.machine,
            cost=cost,
            mode=mode,
            termination=termination,
            trace=trace,
        )
        return rt.run(programs, self.pset.patch_proc, persist=persist)

    def procs_for(self, total_cores: int, mode: str = "hybrid") -> int:
        return self.machine.layout(total_cores, mode).nprocs


class JSNTS:
    """JSNT-S analogue: structured-mesh Sn package (Kobayashi workloads)."""

    @staticmethod
    def kobayashi(
        n: int,
        total_cores: int = 12,
        mode: str = "hybrid",
        machine: Machine = TIANHE2,
        patch_shape: tuple[int, int, int] = (20, 20, 20),
        quadrature: Quadrature | None = None,
        grain: int = 1000,
        strategy: str = "slbd+slbd",
        problem: int = 3,
        scattering: bool = True,
    ) -> JSNTApp:
        nprocs = machine.layout(total_cores, mode).nprocs
        solver = make_kobayashi_solver(
            n,
            patch_shape=patch_shape,
            nprocs=nprocs,
            problem=problem,
            scattering=scattering,
            quadrature=quadrature,
            grain=grain,
            strategy=strategy,
        )
        return JSNTApp(solver=solver, machine=machine, name=f"jsnt-s-koba{n}")


class JSNTU:
    """JSNT-U analogue: unstructured-mesh Sn package (ball / reactor)."""

    #: Paper defaults: patch size 500 cells, grain 64, S4, 4 groups.
    DEFAULTS = dict(patch_size=500, grain=64, groups=4)

    @staticmethod
    def _materials(mesh, groups: int) -> MaterialMap:
        ids = sorted(set(np.unique(mesh.materials).tolist()))
        mats = {}
        for mid in ids:
            # Heterogeneous but simple: heavier absorption in even ids.
            sig = 0.5 + 0.25 * (mid % 3)
            mats[mid] = Material.isotropic(
                sig, scatter_ratio=0.3, groups=groups, name=f"mat{mid}"
            )
        return MaterialMap(mats, mesh.materials)

    @classmethod
    def _build(
        cls,
        mesh,
        total_cores: int,
        mode: str,
        machine: Machine,
        patch_size: int,
        grain: int,
        groups: int,
        quadrature: Quadrature | None,
        strategy: str,
        method: str,
        name: str,
    ) -> JSNTApp:
        nprocs = machine.layout(total_cores, mode).nprocs
        pset = PatchSet.from_unstructured(
            mesh, patch_size, nprocs=nprocs, method=method
        )
        quad = quadrature if quadrature is not None else level_symmetric(4)
        mm = cls._materials(mesh, groups)
        q = np.zeros((mesh.num_cells, groups))
        # Source in the innermost material region (fuel / center).
        inner = mesh.materials == mesh.materials.min()
        q[inner, 0] = 1.0
        solver = SnSolver(
            pset, quad, mm, q, scheme="step", grain=grain, strategy=strategy
        )
        return JSNTApp(solver=solver, machine=machine, name=name)

    @classmethod
    def ball(
        cls,
        resolution: int,
        total_cores: int = 12,
        mode: str = "hybrid",
        machine: Machine = TIANHE2,
        patch_size: int = 500,
        grain: int = 64,
        groups: int = 4,
        quadrature: Quadrature | None = None,
        strategy: str = "slbd+slbd",
        method: str = "rcb",
        seed: int = 0,
    ) -> JSNTApp:
        mesh = ball_tet_mesh(resolution, seed=seed)
        return cls._build(
            mesh, total_cores, mode, machine, patch_size, grain, groups,
            quadrature, strategy, method, f"jsnt-u-ball{resolution}",
        )

    @classmethod
    def reactor(
        cls,
        resolution: int,
        total_cores: int = 12,
        mode: str = "hybrid",
        machine: Machine = TIANHE2,
        patch_size: int = 500,
        grain: int = 64,
        groups: int = 4,
        quadrature: Quadrature | None = None,
        strategy: str = "slbd+slbd",
        method: str = "rcb",
    ) -> JSNTApp:
        mesh = reactor_mesh_2d(resolution)
        return cls._build(
            mesh, total_cores, mode, machine, patch_size, grain, groups,
            quadrature, strategy, method, f"jsnt-u-reactor{resolution}",
        )

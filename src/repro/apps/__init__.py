"""Applications: JSNT-S, JSNT-U, Kobayashi benchmark, particle trace."""

from .jsnt import JSNTApp, JSNTS, JSNTU
from .kobayashi import (
    KOBAYASHI_DOMAIN,
    kobayashi_materials,
    kobayashi_mesh,
    kobayashi_region,
    kobayashi_source,
    make_kobayashi_solver,
)
from .particle_trace import Particle, ParticleTraceProgram, trace_particles

__all__ = [
    "JSNTApp",
    "JSNTS",
    "JSNTU",
    "KOBAYASHI_DOMAIN",
    "kobayashi_region",
    "kobayashi_mesh",
    "kobayashi_materials",
    "kobayashi_source",
    "make_kobayashi_solver",
    "Particle",
    "ParticleTraceProgram",
    "trace_particles",
]

"""Kobayashi 3-D transport benchmark problems (system S17's workload).

The paper evaluates JSNT-S with "the well-known Kobayashi benchmark":
single-energy-group Sn transport with scattering on a cubic mesh.  The
OECD/NEA Kobayashi suite defines three shield/duct configurations; we
implement the canonical geometry family, scaled to a configurable mesh
resolution (the paper's Kobayashi-400 = 400 cells per axis; the DES
reproduction uses proportionally smaller meshes, see EXPERIMENTS.md):

* problem 1 - source box in a void region inside a shield,
* problem 2 - source box feeding a straight void duct through shield,
* problem 3 - source box feeding a dog-leg (bent) void duct.

Cross sections follow the benchmark: source region and shield
sigma_t = 0.1 /cm, duct void ~ 0; the scattering variant uses a 50%
scattering ratio in non-void regions.  Region shapes are the standard
published ones up to the domain truncation noted in each builder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..framework.patch import PatchSet
from ..mesh.structured import StructuredMesh
from ..sweep.materials import Material, MaterialMap
from ..sweep.quadrature import Quadrature, level_symmetric
from ..sweep.solver import SnSolver

__all__ = [
    "KOBAYASHI_DOMAIN",
    "kobayashi_region",
    "kobayashi_mesh",
    "kobayashi_materials",
    "kobayashi_source",
    "make_kobayashi_solver",
]

#: Edge length of the (cubic) model domain in cm.
KOBAYASHI_DOMAIN = 60.0

MAT_SOURCE, MAT_VOID, MAT_SHIELD = 0, 1, 2


def kobayashi_region(centers: np.ndarray, problem: int = 3) -> np.ndarray:
    """Region id (source/void/shield) per point for the chosen problem.

    Coordinates are in cm in the ``[0, 60]^3`` model octant (the
    benchmark exploits symmetry; we model the positive octant).
    """
    x, y, z = centers[:, 0], centers[:, 1], centers[:, 2]
    src = (x <= 10) & (y <= 10) & (z <= 10)
    if problem == 1:
        void = (x <= 50) & (y <= 50) & (z <= 50) & ~src
    elif problem == 2:
        void = (x <= 10) & (z <= 10) & (y > 10) & ~src
    elif problem == 3:
        # Dog-leg duct: up in y, jog in z, up in y again.
        leg1 = (x <= 10) & (z <= 10) & (y > 10) & (y <= 30)
        leg2 = (x <= 10) & (y > 20) & (y <= 30) & (z > 10) & (z <= 40)
        leg3 = (x <= 10) & (y > 30) & (y <= 60) & (z > 30) & (z <= 40)
        void = (leg1 | leg2 | leg3) & ~src
    else:
        raise ReproError(f"unknown Kobayashi problem {problem}")
    out = np.full(len(centers), MAT_SHIELD, dtype=np.int64)
    out[void] = MAT_VOID
    out[src] = MAT_SOURCE
    return out


def kobayashi_mesh(n: int, problem: int = 3) -> StructuredMesh:
    """Cubic mesh with ``n`` cells per axis over the 60 cm domain."""
    if n < 6:
        raise ReproError("need at least 6 cells per axis to resolve regions")
    h = KOBAYASHI_DOMAIN / n
    mesh = StructuredMesh(shape=(n, n, n), spacing=(h, h, h))
    mesh.assign_materials(lambda c: kobayashi_region(c, problem))
    return mesh


def kobayashi_materials(scattering: bool = True) -> dict[int, Material]:
    """Benchmark cross sections; 50% scattering ratio when enabled."""
    ratio = 0.5 if scattering else 0.0
    return {
        MAT_SOURCE: Material.isotropic(0.1, ratio, name="source"),
        MAT_VOID: Material.isotropic(1e-4, 0.0, name="void"),
        MAT_SHIELD: Material.isotropic(0.1, ratio, name="shield"),
    }


def kobayashi_source(mesh: StructuredMesh) -> np.ndarray:
    """Unit isotropic source in the source region, zero elsewhere."""
    q = np.zeros((mesh.num_cells, 1))
    q[mesh.material_flat() == MAT_SOURCE, 0] = 1.0
    return q


@dataclass
class _KobayashiSetup:
    mesh: StructuredMesh
    pset: PatchSet
    solver: SnSolver


def make_kobayashi_solver(
    n: int,
    patch_shape: tuple[int, int, int] = (20, 20, 20),
    nprocs: int = 1,
    problem: int = 3,
    scattering: bool = True,
    quadrature: Quadrature | None = None,
    grain: int = 1000,
    strategy: str = "slbd+slbd",
    fixup: bool = True,
) -> SnSolver:
    """Assemble the JSNT-S-style Kobayashi solver.

    Defaults mirror the paper's JSNT-S configuration: 20^3 patches,
    clustering grain 1000, SLBD+SLBD priorities.  ``quadrature``
    defaults to S4; the paper's 320-direction set is
    ``product_quadrature(8, 40)``.
    """
    mesh = kobayashi_mesh(n, problem)
    patch_shape = tuple(min(p, n) for p in patch_shape)
    pset = PatchSet.from_structured(mesh, patch_shape, nprocs=nprocs)
    quad = quadrature if quadrature is not None else level_symmetric(4)
    mm = MaterialMap(kobayashi_materials(scattering), mesh.material_flat())
    return SnSolver(
        pset,
        quad,
        mm,
        kobayashi_source(mesh),
        scheme="dd",
        fixup=fixup,
        grain=grain,
        strategy=strategy,
    )

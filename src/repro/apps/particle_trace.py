"""Particle tracing: the paper's second data-driven component (S18).

The conclusions section notes that besides Sn sweeps, the patch-centric
abstraction hosts other data-driven algorithms, naming *particle trace*
as another component implemented in JAxMIN.  This module implements it:
particles advance along straight rays cell-to-cell; when a particle
crosses into a cell owned by another patch it is shipped there as a
stream, reactivating the target patch-program.

Unlike sweeps, the total workload is *not* known a priori (a particle's
path length depends on the geometry), so this component exercises the
general consensus-based termination path rather than the
workload-commit fast path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import ReproError
from ..core.engine import SerialEngine
from ..core.patch_program import PatchProgram
from ..core.stream import ProgramId, Stream
from ..framework.patch import PatchSet
from ..mesh.unstructured import UnstructuredMesh

__all__ = ["Particle", "ParticleTraceProgram", "trace_particles"]

_EPS = 1e-10
_MAX_STEPS = 100_000


@dataclass
class Particle:
    """A ray being traced: position, unit direction, current cell."""

    id: int
    position: np.ndarray
    direction: np.ndarray
    cell: int
    path_length: float = 0.0
    crossings: int = 0
    alive: bool = True

    def copy(self) -> "Particle":
        return Particle(
            self.id,
            self.position.copy(),
            self.direction.copy(),
            self.cell,
            self.path_length,
            self.crossings,
            self.alive,
        )


def _exit_face(
    mesh: UnstructuredMesh, p: Particle
) -> tuple[int, float]:
    """Local face index the ray leaves ``p.cell`` through, and distance.

    Tolerances scale with the cell size so that particles nudged
    marginally past a face (vertex grazing) are still handled.
    """
    d = p.direction[: mesh.ndim]
    scale = float(mesh.cell_volumes[p.cell]) ** (1.0 / mesh.ndim)
    tmin = -1e-6 * scale
    best_lf, best_t = -1, np.inf
    fallback_lf, fallback_dn = -1, 0.0
    for lf in range(mesh.faces_per_cell):
        fid = mesh.cell_faces[p.cell, lf]
        n = mesh.face_normals[fid] * mesh.cell_face_signs[p.cell, lf]
        dn = float(n @ d)
        if dn <= _EPS:
            continue
        if dn > fallback_dn:
            fallback_lf, fallback_dn = lf, dn
        t = float(n @ (mesh.face_centroids[fid] - p.position)) / dn
        if t >= tmin and max(t, 0.0) < best_t:
            best_lf, best_t = lf, max(t, 0.0)
    if best_lf < 0:
        if fallback_lf >= 0:
            # The ray points out through a face we already grazed past:
            # cross it immediately.
            return fallback_lf, 0.0
        raise ReproError(
            f"particle {p.id} found no exit face from cell {p.cell}"
        )
    return best_lf, best_t


def _walk_locate(mesh: UnstructuredMesh, cell: int, x: np.ndarray) -> int:
    """Walk from ``cell`` to the cell containing ``x``; -1 if outside.

    Standard mesh-walk point location: repeatedly cross the face whose
    outward half-space the point violates the most.  Handles the
    vertex-grazing case where a ray's face crossing lands the particle
    diagonally in a non-face-adjacent cell.
    """
    for _ in range(200):
        worst_lf, worst = -1, 1e-12
        scale = float(mesh.cell_volumes[cell]) ** (1.0 / mesh.ndim)
        for lf in range(mesh.faces_per_cell):
            fid = mesh.cell_faces[cell, lf]
            n = mesh.face_normals[fid] * mesh.cell_face_signs[cell, lf]
            viol = float(n @ (x - mesh.face_centroids[fid]))
            if viol > worst * scale:
                worst_lf, worst = lf, viol / scale
        if worst_lf < 0:
            return cell  # inside (within tolerance) every half-space
        nxt = int(mesh.cell_neighbors[cell, worst_lf])
        if nxt < 0:
            return -1  # outside the domain
        cell = nxt
    raise ReproError("point location walk did not converge")


def advance_in_cells(
    mesh: UnstructuredMesh, p: Particle, cells_allowed: set[int]
) -> None:
    """Advance ``p`` until it leaves ``cells_allowed`` or the domain."""
    for _ in range(_MAX_STEPS):
        lf, t = _exit_face(mesh, p)
        scale = float(mesh.cell_volumes[p.cell]) ** (1.0 / mesh.ndim)
        p.position = p.position + (t + 1e-9 * scale) * p.direction[: mesh.ndim]
        p.path_length += t
        p.crossings += 1
        nxt = int(mesh.cell_neighbors[p.cell, lf])
        if nxt >= 0:
            # Vertex grazing can land the point outside the face
            # neighbour; relocate with a short walk.
            nxt = _walk_locate(mesh, nxt, p.position)
        if nxt < 0:
            p.alive = False  # left the domain
            return
        p.cell = nxt
        if nxt not in cells_allowed:
            return  # crossed a patch boundary; needs shipping
    raise ReproError(f"particle {p.id} exceeded {_MAX_STEPS} cell crossings")


class ParticleTraceProgram(PatchProgram):
    """Data-driven particle tracing on one patch."""

    TASK = "trace"

    def __init__(
        self,
        pset: PatchSet,
        patch: int,
        seeds: list[Particle] | None = None,
    ):
        super().__init__(patch, self.TASK)
        self.pset = pset
        self.mesh: UnstructuredMesh = pset.mesh
        self._cells = set(int(c) for c in pset.patches[patch].cells)
        self._pending: list[Particle] = list(seeds or [])
        self._out: list[Stream] = []
        self.finished: list[Particle] = []
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}

    def input(self, stream: Stream) -> None:
        self._pending.extend(stream.payload)
        self._last["input_items"] += len(stream.payload)

    def compute(self) -> None:
        ship: dict[int, list[Particle]] = {}
        crossings = 0
        while self._pending:
            p = self._pending.pop()
            before = p.crossings
            advance_in_cells(self.mesh, p, self._cells)
            crossings += p.crossings - before
            if not p.alive:
                self.finished.append(p)
            else:
                dst = int(self.pset.cell_patch[p.cell])
                ship.setdefault(dst, []).append(p)
        remote_items = 0
        for dst, parts in ship.items():
            remote_items += len(parts)
            self._out.append(
                Stream(
                    src=self.id,
                    dst=ProgramId(dst, self.TASK),
                    payload=parts,
                    items=len(parts),
                    nbytes=len(parts) * 64,  # pos + dir + bookkeeping
                )
            )
        self._last = {
            "vertices": crossings,  # kernel work ~ cell crossings
            "edges": crossings,
            "remote_items": remote_items,
            "input_items": self._last["input_items"],
            "streams": len(ship),
        }

    def output(self) -> Stream | None:
        if self._out:
            return self._out.pop(0)
        return None

    def vote_to_halt(self) -> bool:
        return not self._pending

    def remaining_workload(self) -> int | None:
        return None  # unknown a priori: exercises consensus termination

    def last_run_counters(self) -> dict[str, int]:
        out = dict(self._last)
        self._last = {"vertices": 0, "edges": 0, "remote_items": 0,
                      "input_items": 0, "streams": 0}
        return out


def trace_particles(
    pset: PatchSet,
    positions: np.ndarray,
    directions: np.ndarray,
    engine: SerialEngine | None = None,
) -> list[Particle]:
    """Trace rays from ``positions`` along ``directions`` to the boundary.

    Returns the finished particles (exited the domain), each carrying
    its total path length and number of cell crossings.  Runs on the
    serial data-driven engine by default; the returned programs can
    equally be executed by the DES runtime.
    """
    mesh: UnstructuredMesh = pset.mesh
    positions = np.asarray(positions, dtype=float)
    directions = np.asarray(directions, dtype=float)
    if positions.shape != directions.shape:
        raise ReproError("positions/directions shape mismatch")
    norms = np.linalg.norm(directions[:, : mesh.ndim], axis=1)
    if np.any(norms <= 0):
        raise ReproError("zero direction")
    directions = directions / norms[:, None]

    # Locate starting cells (nearest centroid whose cell contains the
    # point is approximated by nearest centroid; fine for seeding).
    from scipy.spatial import cKDTree

    tree = cKDTree(mesh.cell_centroids)
    _, start_cells = tree.query(positions[:, : mesh.ndim])

    seeds: dict[int, list[Particle]] = {}
    for i, (pos, d, c) in enumerate(zip(positions, directions, start_cells)):
        patch = int(pset.cell_patch[int(c)])
        seeds.setdefault(patch, []).append(
            Particle(i, pos[: mesh.ndim].copy(), d.copy(), int(c))
        )
    programs = [
        ParticleTraceProgram(pset, p.id, seeds.get(p.id, []))
        for p in pset.patches
    ]
    eng = engine if engine is not None else SerialEngine()
    for prog in programs:
        eng.add_program(prog)
    eng.run()
    finished = [p for prog in programs for p in prog.finished]
    return sorted(finished, key=lambda p: p.id)

"""Durability rule: PERSIST001.

Snapshot bytes must be a pure function of runtime state: the resumed
run's bitwise-identity guarantee rests on every snapshot of the same
state encoding to the same bytes.  Two things break that silently:

* ``pickle`` (and ``marshal``): byte output depends on memo ids,
  protocol defaults and interpreter version, and unpickling executes
  reduce hooks - the snapshot codec exists precisely to avoid it;
* iterating an unordered set into the snapshot stream: element order
  depends on ``PYTHONHASHSEED``, so the "same" snapshot differs
  between hosts (DET003's sibling, scoped to serialization instead of
  event machinery).

Scope: every module under ``repro.persist``, plus every
``state_dict`` / ``load_state_dict`` implementation anywhere (they
feed the snapshot stream by contract).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import ModuleInfo, Violation
from .base import Rule, dotted_name, walk_functions
from .determinism import (
    _collect_set_attrs,
    _collect_set_names,
    _is_sorted_wrapped,
    _set_expr,
)

__all__ = ["SnapshotCodecRule"]

#: Serializers whose bytes are not a pure function of the value.
_BANNED_SERIALIZERS = {
    "pickle.dumps", "pickle.dump", "pickle.loads", "pickle.load",
    "cPickle.dumps", "cPickle.dump", "cPickle.loads", "cPickle.load",
    "marshal.dumps", "marshal.dump", "marshal.loads", "marshal.load",
}

_STATE_FNS = ("state_dict", "load_state_dict")


class SnapshotCodecRule(Rule):
    """PERSIST001: snapshot bytes must use the versioned codec."""

    id = "PERSIST001"
    title = "non-deterministic bytes in the snapshot stream"
    hint = (
        "serialize through repro.persist.codec (encode/frame: versioned, "
        "CRC-framed, deterministic) - never pickle/marshal - and iterate "
        "`sorted(the_set)` when a set's members enter a state dict"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        in_persist = mod.module.startswith("repro.persist")
        set_attrs = _collect_set_attrs(mod.tree)
        seen: set[tuple] = set()  # nested functions are walked twice
        if in_persist:
            # Whole-module sweep for banned serializers (module level
            # included); iterations are checked per function below so
            # provably-set local names are known.
            yield from self._dedup(
                self._check_scope(mod, mod.tree, set(), set_attrs,
                                  iterations=False),
                seen,
            )
        for fn, _cls in walk_functions(mod.tree):
            if not (in_persist or fn.name in _STATE_FNS):
                continue
            yield from self._dedup(
                self._check_scope(
                    mod, fn, _collect_set_names(fn), set_attrs,
                    calls=not in_persist,
                ),
                seen,
            )

    @staticmethod
    def _dedup(
        violations: Iterator[Violation], seen: set[tuple]
    ) -> Iterator[Violation]:
        for v in violations:
            key = (v.line, v.col, v.message)
            if key not in seen:
                seen.add(key)
                yield v

    def _check_scope(
        self,
        mod: ModuleInfo,
        root: ast.AST,
        set_names: set[str],
        set_attrs: set[str],
        calls: bool = True,
        iterations: bool = True,
    ) -> Iterator[Violation]:
        for node in ast.walk(root):
            if not iterations and not isinstance(node, ast.Call):
                continue
            if calls and isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _BANNED_SERIALIZERS:
                    yield self.violation(
                        mod, node,
                        f"`{name}()` in the snapshot path - its bytes "
                        "are not a pure function of the value",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._unordered(
                    mod, node, node.iter, set_names, set_attrs
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from self._unordered(
                        mod, node, gen.iter, set_names, set_attrs
                    )

    def _unordered(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        it: ast.expr,
        set_names: set[str],
        set_attrs: set[str],
    ) -> Iterator[Violation]:
        if _is_sorted_wrapped(it):
            return
        why = _set_expr(it, set_names, set_attrs)
        if why is not None:
            yield self.violation(
                mod, node,
                f"iteration over {why} serializes in hash order - "
                "snapshot bytes now depend on PYTHONHASHSEED",
            )

"""DES rule: DES001 - real-world side effects in simulated callbacks.

The discrete-event simulator models a cluster in *virtual* time; a
callback that performs real I/O or blocks the host (sleep, stdin,
sockets, subprocesses) mixes the two time axes - it slows the wall
clock without advancing the virtual one, and its effects are invisible
to checkpoint/replay.  A "simulated callback" is recognized by the
repo's own convention: any function that takes a ``now`` parameter
(the virtual-time stamp handed down from the event loop) or whose name
is an ``on_<event>`` handler.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import ModuleInfo, Violation
from .base import Rule, dotted_name, walk_functions

__all__ = ["RealWorldCallbackRule"]

_BLOCKING_NAMES = {"open", "input", "print", "breakpoint", "exec", "eval"}

_BLOCKING_DOTTED = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.spawnl",
    "subprocess.run",
    "subprocess.call",
    "subprocess.Popen",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.socket",
    "socket.create_connection",
    "requests.get",
    "requests.post",
    "requests.request",
    "urllib.request.urlopen",
    "sys.stdout.write",
    "sys.stderr.write",
    "sys.stdin.read",
    "sys.stdin.readline",
}


class RealWorldCallbackRule(Rule):
    """DES001: real I/O or blocking calls inside simulated callbacks."""

    id = "DES001"
    title = "real I/O in a simulated callback"
    hint = (
        "simulated callbacks run in virtual time: book the cost on a "
        "Resource timeline and record outcomes on the RunReport; do "
        "file/console I/O in the driver after `run()` returns"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        for fn, cls in walk_functions(mod.tree):
            if not self._is_callback(fn):
                continue
            where = f"{cls}.{fn.name}" if cls else fn.name
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                offender = self._blocking(node)
                if offender is not None:
                    yield self.violation(
                        mod, node,
                        f"`{offender}` inside simulated callback "
                        f"`{where}` (has a virtual-time `now` "
                        "parameter)" if self._has_now(fn) else
                        f"`{offender}` inside simulated callback "
                        f"`{where}` (an `on_*` event handler)",
                    )

    @staticmethod
    def _has_now(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        args = list(fn.args.args) + list(fn.args.kwonlyargs)
        return any(a.arg == "now" for a in args)

    def _is_callback(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        return self._has_now(fn) or fn.name.startswith("on_")

    @staticmethod
    def _blocking(node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            if node.func.id in _BLOCKING_NAMES:
                return f"{node.func.id}()"
            return None
        name = dotted_name(node.func)
        if name in _BLOCKING_DOTTED:
            return f"{name}()"
        return None

"""Rule base class and shared AST helpers."""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from ..engine import ModuleInfo, Violation

__all__ = ["Rule", "dotted_name", "walk_functions", "called_functions"]


class Rule:
    """One lint rule: an id, a fix-hint, and an AST check."""

    id: str = "RULE000"
    title: str = ""
    hint: str = ""

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, mod: ModuleInfo, node: ast.AST, message: str,
        hint: str | None = None,
    ) -> Violation:
        return Violation(
            rule=self.id,
            path=mod.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=hint if hint is not None else self.hint,
        )


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Yield every function with its enclosing class name (or None)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
            yield from _nested(node, None)
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield sub, node.name
                    yield from _nested(sub, node.name)


def _nested(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    for node in ast.walk(fn):
        if node is not fn and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            yield node, cls


def called_functions(
    body: Iterable[ast.stmt], mod: ModuleInfo
) -> list[ast.FunctionDef]:
    """Functions of the same module called from ``body`` (one hop).

    Resolves ``foo(...)`` against module-level functions and
    ``self.foo(...)`` / ``obj.foo(...)`` against the unqualified
    method index - deliberately receiver-blind, which is the right
    trade for a repo-local lint (false negatives beat import solving).
    """
    out: list[ast.FunctionDef] = []
    seen: set[int] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            name: str | None = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name is None:
                continue
            fn = mod.functions.get(name)
            if fn is not None and id(fn) not in seen:
                seen.add(id(fn))
                out.append(fn)
    return out

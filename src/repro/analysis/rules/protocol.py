"""Protocol rules: PROTO001-PROTO003 - layer-ownership contracts.

The layered runtime's guarantees are positional: reliable delivery
holds because *every* remote stream passes through the transport's
seq/ack/retransmit path, and the report's counters mean what they say
because exactly one layer writes each of them.  These rules pin both
contracts - and the service layer's facade boundary - to the module
graph.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import ModuleInfo, Violation
from .base import Rule, dotted_name

__all__ = [
    "TransportBypassRule",
    "CounterOwnershipRule",
    "ServiceFacadeRule",
]

#: The only module allowed to put streams on the wire.
_TRANSPORT_MODULE = "repro.runtime.transport"

#: Event kinds that represent a wire transmission: scheduling one
#: outside the transport bypasses seq stamping, ack tracking,
#: retransmit timers, checksums and the fault-injection hook.
_WIRE_KINDS = {"msg_arrive"}


class TransportBypassRule(Rule):
    """PROTO001: wire events scheduled outside the transport layer."""

    id = "PROTO001"
    title = "transport bypass"
    hint = (
        "route remote streams through Transport.send(): it stamps the "
        "(src, seq) uid, arms the ack/retransmit timers, computes the "
        "checksum and applies the fault-injection hook; a raw "
        "`sim.push(.., 'msg_arrive', ..)` is invisible to all of that"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        if mod.module == _TRANSPORT_MODULE:
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "push"
            ) and not (
                isinstance(node.func, ast.Name)
                and node.func.id == "heappush"
            ):
                continue
            kind = self._event_kind(node)
            if kind in _WIRE_KINDS:
                yield self.violation(
                    mod, node,
                    f"`{kind!r}` event scheduled outside "
                    f"{_TRANSPORT_MODULE} bypasses the seq/ack path",
                )

    @staticmethod
    def _event_kind(node: ast.Call) -> str | None:
        # Simulator.push(t, kind, data): kind is the second positional.
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            v = node.args[1].value
            if isinstance(v, str):
                return v
        for kw in node.keywords:
            if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
                v = kw.value.value
                if isinstance(v, str):
                    return v
        return None


#: RunReport counter -> the one module allowed to write it.  The
#: defining module (metrics) is always allowed; everything else is a
#: layering violation: a counter written from two layers can no longer
#: be reconciled against that layer's invariants (e.g. retries vs
#: timeouts, crashes vs failover_time).
COUNTER_OWNERS: dict[str, str | tuple[str, ...]] = {
    # transport-owned: the wire plane
    "messages": "repro.runtime.transport",
    "message_bytes": "repro.runtime.transport",
    "drops": "repro.runtime.transport",
    "duplicates": "repro.runtime.transport",
    "retries": "repro.runtime.transport",
    "timeouts": "repro.runtime.transport",
    "partition_drops": "repro.runtime.transport",
    "corruptions": "repro.runtime.transport",
    "nacks": "repro.runtime.transport",
    "rtt_samples": "repro.runtime.transport",
    "hedged_sends": "repro.runtime.transport",
    "backpressure_stalls": "repro.runtime.transport",
    "forwards": "repro.runtime.transport",
    # scheduler-owned: the dispatch/execution plane
    "executions": "repro.runtime.scheduler",
    "local_streams": "repro.runtime.scheduler",
    "stream_items": "repro.runtime.scheduler",
    "vertices_solved": "repro.runtime.scheduler",
    "reexecutions": "repro.runtime.scheduler",
    "speculative_launches": "repro.runtime.scheduler",
    "speculative_wins": "repro.runtime.scheduler",
    "speculative_wasted": "repro.runtime.scheduler",
    # recovery-owned: the resilience plane
    "checkpoints": "repro.runtime.recovery",
    "crashes": "repro.runtime.recovery",
    "failover_time": "repro.runtime.recovery",
    "demotions": "repro.runtime.recovery",
    # recovery-owned: the elastic-membership plane (DESIGN.md §14)
    "heartbeats": "repro.runtime.recovery",
    "suspicions": "repro.runtime.recovery",
    "false_suspicions": "repro.runtime.recovery",
    "restarts": "repro.runtime.recovery",
    "rejoins": "repro.runtime.recovery",
    "promotions": "repro.runtime.recovery",
    "rebalanced_patches": "repro.runtime.recovery",
    # transport-owned: incarnation fencing happens on the receive path
    "fenced_messages": "repro.runtime.transport",
    # engine-owned: the composition root and its event loops (the
    # master loop lives in generalloop, composed by engine_des)
    "events": ("repro.runtime.engine_des", "repro.runtime.generalloop"),
    "cascade_crashes": ("repro.runtime.engine_des", "repro.runtime.generalloop"),
    "sanitizer_checks": "repro.runtime.engine_des",
    "termination_hops": "repro.runtime.engine_des",
    "termination_time": "repro.runtime.engine_des",
    "makespan": ("repro.runtime.engine_des", "repro.runtime.generalloop"),
    # checkpoint-owned: the durability plane (DESIGN.md §13)
    "snapshots": "repro.runtime.checkpoint",
    "snapshot_bytes": "repro.runtime.checkpoint",
    # perf plane (DESIGN.md §12): stamped once by the composition root
    # from the simulator's high-water mark
    "peak_heap": "repro.runtime.engine_des",
    # Not listed (caller-provided context, not layer counters):
    # total_cores is a RunReport constructor argument; wall_time is
    # stamped by external harnesses around the whole run.
}

#: Modules exempt from ownership (definition + test scaffolding).
_EXEMPT_MODULES = {"repro.runtime.metrics"}

#: Attribute bases that denote "the run report" (receiver heuristic).
_REPORT_BASES = {"report", "rep", "self.report", "run_report"}


class CounterOwnershipRule(Rule):
    """PROTO002: RunReport counter writes outside the owning layer."""

    id = "PROTO002"
    title = "counter write outside owning layer"
    hint = (
        "each RunReport counter is written by exactly one layer (see "
        "COUNTER_OWNERS in repro/analysis/rules/protocol.py); expose a "
        "method on the owning layer or add a new counter it owns"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        if mod.module in _EXEMPT_MODULES:
            return
        for node in ast.walk(mod.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for tgt in targets:
                if not isinstance(tgt, ast.Attribute):
                    continue
                owner = COUNTER_OWNERS.get(tgt.attr)
                if owner is None:
                    continue
                owners = (owner,) if isinstance(owner, str) else owner
                if mod.module in owners:
                    continue
                base = dotted_name(tgt.value)
                if base not in _REPORT_BASES:
                    continue
                yield self.violation(
                    mod, tgt,
                    f"counter `{tgt.attr}` is owned by {' / '.join(owners)}, "
                    f"written from {mod.module or mod.path}",
                )


#: The service layer and the runtime facade it is confined to.
_SERVICE_PREFIX = "repro.service"
_RUNTIME_PACKAGE = "repro.runtime"

#: Facade exports the service may import: the runtime entry point, its
#: structured exceptions, and pure data/config types.  Everything else
#: the facade re-exports (Simulator, Transport, Router, Scheduler,
#: FaultInjector, policies, sanitizer, ...) is an internal layer: a
#: service module that touches one can corrupt invariants the
#: DataDrivenRuntime composition root is responsible for.
SERVICE_FACADE_ALLOWED = frozenset({
    "DataDrivenRuntime",
    "DeadlineExceeded",
    "Machine",
    "Layout",
    "TIANHE2",
    "RecoveryConfig",
    "AdaptiveConfig",
    "FaultPlan",
    "CrashFault",
    "StragglerWindow",
    "LinkPartition",
    "StallError",
    "StallReport",
    "WaitEdge",
    "RunReport",
    "Breakdown",
    "SweepPerformanceModel",
    "SweepModelPrediction",
    "CostModel",
})


def _resolve_import(module: str, node: ast.ImportFrom) -> str | None:
    """Absolute dotted target of a (possibly relative) ImportFrom."""
    if node.level == 0:
        return node.module
    parts = module.split(".")
    if node.level > len(parts):
        return None
    base = parts[: len(parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


class ServiceFacadeRule(Rule):
    """PROTO003: repro.service reaching past the DataDrivenRuntime facade.

    The job layer's fault isolation rests on the executor being the
    only runtime client, and only through the facade: admission,
    breakers, retries and degradation all reason about *jobs*, never
    about streams, events or worker pools.  A service module importing
    a runtime submodule (``repro.runtime.transport``) or an internal
    layer name from the facade (``Simulator``, ``Transport``, ...)
    re-opens every layering hole the runtime's own rules closed.
    """

    id = "PROTO003"
    title = "service reaches past the runtime facade"
    hint = (
        "repro.service talks to the runtime only through the facade: "
        "import DataDrivenRuntime (plus exceptions and pure data/config "
        "types) from repro.runtime; never import runtime submodules or "
        "internal layers (Simulator, Transport, Router, Scheduler, "
        "FaultInjector, ...) - see SERVICE_FACADE_ALLOWED in "
        "repro/analysis/rules/protocol.py"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        m = mod.module
        if m != _SERVICE_PREFIX and not m.startswith(_SERVICE_PREFIX + "."):
            return
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.startswith(_RUNTIME_PACKAGE + "."):
                        yield self.violation(
                            mod, node,
                            f"`import {alias.name}` reaches past the "
                            "DataDrivenRuntime facade",
                        )
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_import(m, node)
                if target is None:
                    continue
                if target.startswith(_RUNTIME_PACKAGE + "."):
                    yield self.violation(
                        mod, node,
                        f"import from {target} bypasses the "
                        f"{_RUNTIME_PACKAGE} facade",
                    )
                elif target == _RUNTIME_PACKAGE:
                    for alias in node.names:
                        if alias.name not in SERVICE_FACADE_ALLOWED:
                            yield self.violation(
                                mod, node,
                                f"`{alias.name}` is a runtime internal; "
                                "the service may only use facade entry "
                                "points and pure data types",
                            )

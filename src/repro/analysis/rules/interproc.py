"""Interprocedural rules: effect-inference re-hosts + PERSIST002/PROTO004.

These rules only run under ``lint --interprocedural``: they consult the
whole-program call graph (:mod:`repro.analysis.callgraph`) and the
fixed-point effect database (:mod:`repro.analysis.effects`) attached to
each :class:`~repro.analysis.engine.ModuleInfo` by the engine.

The DET/DES/PROTO re-hosts flag *call sites* whose resolved target
transitively carries an effect the corresponding single-file rule bans
at the direct site - the propagation chain rides in the finding.  A
``# repro: allow[RULE]`` at the direct site kills the atom before it
propagates, so blessing one source silences the whole caller cone;
suppressing at a call site silences only that site.

PERSIST002 (snapshot completeness) and PROTO004 (event-protocol
exhaustiveness) have no single-file analogue: both are only decidable
with the program-wide view.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..effects import Effect, EffectDB, effect_db, origin_site
from ..engine import ModuleInfo, Violation
from .base import Rule, walk_functions
from .determinism import SetIterationOrderRule
from .protocol import COUNTER_OWNERS

__all__ = [
    "TransitiveEffectRule",
    "TransitiveWallClockRule",
    "TransitiveRngRule",
    "TransitiveCallbackIoRule",
    "TransitiveWireRule",
    "TransitiveCounterRule",
    "TransitiveSetIterationRule",
    "SnapshotCompletenessRule",
    "EventProtocolRule",
]


def _db(mod: ModuleInfo) -> EffectDB | None:
    if mod.program is None:
        return None
    return effect_db(mod.program)


def _chain_violation(
    rule: Rule, mod: ModuleInfo, eff: Effect, message: str
) -> Violation:
    return Violation(
        rule=rule.id,
        path=mod.path,
        line=eff.line,
        col=0,
        message=message,
        hint=rule.hint,
        chain=eff.chain,
    )


class TransitiveEffectRule(Rule):
    """Base for the DET/DES/PROTO re-hosts: flag functions carrying a
    propagated (chain length > 1) atom of one kind.

    Direct sites (chain length 1) stay the single-file rules' job -
    the two passes partition the findings instead of duplicating them.
    """

    kind = ""  # atom kind this rule propagates

    def describe(self, eff: Effect) -> str:
        raise NotImplementedError

    def applies(self, mod: ModuleInfo, qname: str, eff: Effect) -> bool:
        return True

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        db = _db(mod)
        if db is None or mod.summary is None:
            return
        for fs in mod.summary.functions.values():
            for eff in db.with_kind(fs.qname, self.kind):
                if eff.direct:
                    continue
                if not self.applies(mod, fs.qname, eff):
                    continue
                yield _chain_violation(self, mod, eff, self.describe(eff))


class TransitiveWallClockRule(TransitiveEffectRule):
    """DET001 (interprocedural): wall-clock reads reached via helpers."""

    id = "DET001"
    title = "wall-clock read (transitive)"
    hint = (
        "this call reaches a host-clock read through the chain below; "
        "pass `now` down from the event loop instead - or bless the "
        "direct site with `# repro: allow[DET001]` if the read is "
        "deliberate, which clears every caller at once"
    )
    kind = "wall"

    def describe(self, eff: Effect) -> str:
        return (
            f"call reaches wall-clock read `{eff.atom[1]}()` "
            f"({len(eff.chain) - 1} hop(s) away)"
        )


class TransitiveRngRule(TransitiveEffectRule):
    """DET002 (interprocedural): unseeded RNG reached via helpers."""

    id = "DET002"
    title = "unseeded RNG (transitive)"
    hint = (
        "this call reaches an unseeded RNG draw through the chain "
        "below; thread an explicitly seeded generator down as a "
        "parameter instead"
    )
    kind = "rng"

    def describe(self, eff: Effect) -> str:
        return (
            f"call reaches unseeded RNG `{eff.atom[1]}()` "
            f"({len(eff.chain) - 1} hop(s) away)"
        )


class TransitiveCallbackIoRule(TransitiveEffectRule):
    """DES001 (interprocedural): real I/O reached from a callback."""

    id = "DES001"
    title = "real I/O reached from a simulated callback"
    hint = (
        "a virtual-time callback reaches host I/O through the chain "
        "below; book the cost on a Resource timeline and do the I/O in "
        "the driver - or bless the direct site with "
        "`# repro: allow[DES001]` if the I/O is the layer's contract "
        "(e.g. the durability WAL)"
    )
    kind = "io"

    def applies(self, mod: ModuleInfo, qname: str, eff: Effect) -> bool:
        fn = mod.program.functions.get(qname) if mod.program else None
        return fn is not None and fn.is_callback

    def describe(self, eff: Effect) -> str:
        return (
            f"simulated callback reaches `{eff.atom[1]}` "
            f"({len(eff.chain) - 1} hop(s) away)"
        )


class TransitiveWireRule(TransitiveEffectRule):
    """PROTO001 (interprocedural): transport bypass via helpers."""

    id = "PROTO001"
    title = "transport bypass (transitive)"
    hint = (
        "this call reaches a raw wire-kind push outside the transport "
        "through the chain below; route the stream through "
        "Transport.send() instead"
    )
    kind = "wire"

    def describe(self, eff: Effect) -> str:
        return (
            f"call reaches a `{eff.atom[1]!r}` push outside the "
            f"transport ({len(eff.chain) - 1} hop(s) away)"
        )


class TransitiveCounterRule(TransitiveEffectRule):
    """PROTO002 (interprocedural): counter writes laundered through
    helpers - the caller hands its RunReport to a function that writes
    a counter the caller's layer does not own."""

    id = "PROTO002"
    title = "counter write laundered through a helper"
    hint = (
        "passing the RunReport into a helper that writes this counter "
        "makes the *caller* the writing layer; expose a method on the "
        "owning layer or move the call there (see COUNTER_OWNERS)"
    )
    kind = "counter"

    def applies(self, mod: ModuleInfo, qname: str, eff: Effect) -> bool:
        owner = COUNTER_OWNERS.get(eff.atom[1])
        if owner is None:
            return True
        owners = (owner,) if isinstance(owner, str) else owner
        return mod.module not in owners

    def describe(self, eff: Effect) -> str:
        owner = COUNTER_OWNERS.get(eff.atom[1], "?")
        owners = (owner,) if isinstance(owner, str) else owner
        return (
            f"call writes counter `{eff.atom[1]}` (owned by "
            f"{' / '.join(owners)}) through the chain below"
        )


class TransitiveSetIterationRule(SetIterationOrderRule):
    """DET003 (interprocedural): set-order iteration whose body reaches
    an event sink more than one call hop away.

    The single-file DET003 sees direct sinks and one same-module hop;
    this extension resolves the loop body's calls through the program
    call graph and asks the effect database whether any target
    transitively pushes into event-ordered machinery.  Loops the
    single-file rule already flags are skipped - the passes partition.
    """

    # id/title/hint inherited: same rule family, deeper reach.

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        if mod.program is None:
            return
        db = effect_db(mod.program)
        from .determinism import (
            _collect_set_attrs,
            _collect_set_names,
            _is_sorted_wrapped,
            _set_expr,
        )

        set_attrs = _collect_set_attrs(mod.tree)
        for fn, _cls in walk_functions(mod.tree):
            set_names = _collect_set_names(fn)
            for node in ast.walk(fn):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if _is_sorted_wrapped(node.iter):
                    continue
                why = _set_expr(node.iter, set_names, set_attrs)
                if why is None:
                    continue
                if self._find_sink(node.body, mod) is not None:
                    continue  # the single-file rule already flags this
                hit = self._transitive_sink(node.body, mod, db)
                if hit is None:
                    continue
                sink_eff, target = hit
                yield Violation(
                    rule=self.id,
                    path=mod.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"iteration over {why} reaches event sink "
                        f"`{sink_eff.atom[1]}` through `{target}` - "
                        "event order now depends on PYTHONHASHSEED"
                    ),
                    hint=self.hint,
                    chain=sink_eff.chain,
                )

    def _transitive_sink(
        self, body: list[ast.stmt], mod: ModuleInfo, db: EffectDB
    ) -> tuple[Effect, str] | None:
        assert mod.program is not None
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                targets = mod.program.calls_at.get((mod.path, node.lineno), ())
                for t in targets:
                    for eff in db.with_kind(t, "sink"):
                        return eff, t
        return None


class SnapshotCompletenessRule(Rule):
    """PERSIST002: mutable state outside the state_dict round trip.

    For every class shipping ``state_dict``, each ``self.*`` attribute
    assigned in any (hierarchy- and call-graph-resolved) method body
    outside ``__init__`` must be read by ``state_dict`` or written by
    ``load_state_dict`` - or carry a ``# repro: transient`` pragma on
    an assignment line.  Anything else is run-time state a PR 8
    kill-resume silently drops.
    """

    id = "PERSIST002"
    title = "mutable state missing from state_dict"
    hint = (
        "persist the attribute in state_dict()/load_state_dict(), or "
        "mark an assignment with `# repro: transient` if it is rebuilt "
        "at composition time (caches, bound callbacks, masks derived "
        "from persisted state)"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        db = _db(mod)
        if db is None or mod.summary is None:
            return
        for cls in mod.summary.classes.values():
            if not cls.has_state_dict:
                continue
            covered = db.class_covered(cls.qname)
            transient = db.class_transient(cls.qname)
            writes = db.class_swrites(cls.qname)
            for attr in sorted(writes):
                if attr in covered or attr in transient:
                    continue
                if attr.startswith("__"):
                    continue  # name-mangled internals: not restorable state
                eff = writes[attr]
                path, line = origin_site(eff)
                anchored_here = path == mod.path
                yield Violation(
                    rule=self.id,
                    path=mod.path,
                    line=line if anchored_here else cls.line,
                    col=0,
                    message=(
                        f"`{cls.name}.{attr}` is assigned outside __init__ "
                        "but not covered by state_dict/load_state_dict"
                    ),
                    hint=self.hint,
                    chain=eff.chain if not eff.direct or not anchored_here
                    else (),
                )


#: Event kinds that terminate a run rather than being dispatched: the
#: loops compare them via interning (fastloop) which already lands them
#: in both sets; nothing extra needed today, kept for future escapes.
_PROTO004_EXEMPT_KINDS: frozenset[str] = frozenset()


class EventProtocolRule(Rule):
    """PROTO004: event-kind and hb-record exhaustiveness.

    Program-wide: every event kind pushed into a simulator/service
    heap must have a dispatch branch somewhere (a pop-bound ``kind ==
    "x"`` comparison or a ``kind_id`` interning site), and vice versa;
    every ``hb_*`` record kind emitted via ``note()`` must be one the
    HB checker (``*HbChecker._on_<suffix>``) understands.  A pushed
    kind nobody handles sits in the heap forever (or dies in a default
    branch); a handled kind nobody pushes is dead protocol; an unknown
    hb kind silently skips race checking.
    """

    id = "PROTO004"
    title = "event-protocol exhaustiveness"
    hint = (
        "align the push and dispatch sides of the event protocol: add "
        "the missing handler branch, delete the dead one, or teach the "
        "HB checker the new record kind (HbChecker._on_<suffix>)"
    )

    scope = "program"

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        return iter(())  # program-scope: see check_program

    def check_program(self, program) -> Iterator[Violation]:
        pushed = program.pushed_kinds()
        handled = program.handled_kinds()
        for kind in sorted(set(pushed) - set(handled) - _PROTO004_EXEMPT_KINDS):
            path, line = min(pushed[kind])
            yield Violation(
                rule=self.id, path=path, line=line, col=0,
                message=(
                    f"event kind `{kind!r}` is pushed but no dispatch "
                    "branch handles it"
                ),
                hint=self.hint,
            )
        for kind in sorted(set(handled) - set(pushed) - _PROTO004_EXEMPT_KINDS):
            path, line = min(handled[kind])
            yield Violation(
                rule=self.id, path=path, line=line, col=0,
                message=(
                    f"dispatch branch handles event kind `{kind!r}` "
                    "but nothing pushes it"
                ),
                hint=self.hint,
            )
        known_hb = program.hb_known_kinds()
        if not known_hb:
            return  # no HB checker in the linted set: nothing to check
        for summary in program.modules.values():
            for kind, line in sorted(set(summary.hb_emits)):
                if kind not in known_hb:
                    yield Violation(
                        rule=self.id, path=summary.path, line=line, col=0,
                        message=(
                            f"hb record kind `{kind!r}` is emitted but "
                            "unknown to the HB checker"
                        ),
                        hint=self.hint,
                    )

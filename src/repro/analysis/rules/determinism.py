"""Determinism rules: DET001-DET004.

These encode the repo's core contract: a run is a pure function of
``(mesh, partition, seed)``.  Anything that lets the host environment
(wall clock, process hash seed, object addresses, global RNG state)
leak into event ordering or numerics breaks golden fingerprints,
chaos-campaign replay, and bitwise-exact recovery.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..engine import ModuleInfo, Violation
from .base import Rule, called_functions, dotted_name, walk_functions

__all__ = [
    "WallClockRule",
    "UnseededRngRule",
    "SetIterationOrderRule",
    "IdentitySortKeyRule",
]

#: Wall-clock reads: any of these inside the package makes a run a
#: function of the host, not of its seed.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "date.today",
}


class WallClockRule(Rule):
    """DET001: wall-clock reads inside the simulation package."""

    id = "DET001"
    title = "wall-clock read"
    hint = (
        "virtual time comes from the Simulator's event clock; pass `now` "
        "down from the event loop instead of reading the host clock "
        "(timestamps for reports belong in the caller, outside src/repro)"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _WALL_CLOCK:
                yield self.violation(
                    mod, node, f"wall-clock read `{name}()`"
                )


#: Module-level RNG entry points of `random` (global, unseeded state).
_GLOBAL_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "getrandbits", "triangular", "vonmisesvariate",
    "random.seed",
}

#: Legacy numpy global-state RNG entry points.
_NUMPY_GLOBAL = {
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "standard_normal",
    "seed", "binomial", "poisson", "exponential",
}


class UnseededRngRule(Rule):
    """DET002: RNG draws that do not flow from an explicit seed."""

    id = "DET002"
    title = "unseeded RNG"
    hint = (
        "all randomness must flow from one explicitly seeded generator: "
        "`rng = np.random.default_rng(seed)` threaded through as a "
        "parameter (see FaultInjector / random_fault_plan)"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            norm = name.replace("np.", "numpy.", 1)
            # Seedable constructors: flag only the no-argument form.
            if norm in (
                "numpy.random.default_rng",
                "numpy.random.RandomState",
                "numpy.random.Generator",
                "random.Random",
            ):
                if not node.args and not node.keywords:
                    yield self.violation(
                        mod, node,
                        f"`{name}()` without a seed draws entropy from "
                        "the OS",
                    )
                continue
            # Global-state draws are unseeded by construction.
            if name.startswith("random.") and (
                name.split(".", 1)[1] in _GLOBAL_RANDOM
            ):
                yield self.violation(
                    mod, node,
                    f"global-state RNG call `{name}()`",
                )
            elif norm.startswith("numpy.random.") and (
                norm.rsplit(".", 1)[1] in _NUMPY_GLOBAL
            ):
                yield self.violation(
                    mod, node,
                    f"legacy numpy global RNG call `{name}()`",
                )


#: Call names that feed the event-ordered machinery: the simulator
#: heap, the transport wire, scheduler queues, and trace/commit paths.
_EVENT_SINKS = {
    "push", "send", "enqueue", "schedule", "transmit", "dispatch",
    "heappush", "note", "commit",
}


def _is_sorted_wrapped(node: ast.expr) -> bool:
    """True for ``sorted(...)`` or ``list/tuple(sorted(...))``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id == "sorted":
            return True
        if node.func.id in ("list", "tuple") and node.args:
            return _is_sorted_wrapped(node.args[0])
    return False


def _set_expr(node: ast.expr, set_names: set[str],
              set_attrs: set[str]) -> str | None:
    """Describe why ``node`` iterates in set order, or None."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return f"`{node.func.id}(...)`"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"the set `{node.id}`"
    if isinstance(node, ast.Attribute):
        name = dotted_name(node)
        if name is not None and name in set_attrs:
            return f"the set attribute `{name}`"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        # d.values()/d.keys() where d is a dict comprehension keyed by
        # iterating a set: the dict inherits the set's order.
        and node.func.attr in ("values", "keys", "items")
    ):
        base = node.func.value
        if isinstance(base, ast.Name) and base.id in set_names:
            return (
                f"`{base.id}.{node.func.attr}()` of a set-ordered mapping"
            )
    return None


def _collect_set_names(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Local names provably bound to sets (or set-keyed dicts)."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if isinstance(tgt, ast.Name) and _binds_set(node.value):
                names.add(tgt.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and _set_annotation(node.annotation)
        ):
            names.add(node.target.id)
    for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
        if arg.annotation is not None and _set_annotation(arg.annotation):
            names.add(arg.arg)
    return names


def _binds_set(value: ast.expr) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(value, ast.DictComp):
        # {k: ... for k in <set-expr>}: dict keyed in set order.
        return _binds_set(value.generators[0].iter)
    return False


def _set_annotation(ann: ast.expr) -> bool:
    name = dotted_name(ann.value if isinstance(ann, ast.Subscript) else ann)
    return name in ("set", "frozenset", "Set", "FrozenSet",
                    "typing.Set", "typing.FrozenSet")


def _collect_set_attrs(tree: ast.Module) -> set[str]:
    """``self.x`` attributes assigned a set in any ``__init__``."""
    attrs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    tgt = sub.targets[0]
                    if (
                        isinstance(tgt, ast.Attribute)
                        and _binds_set(sub.value)
                    ):
                        name = dotted_name(tgt)
                        if name is not None:
                            attrs.add(name)
                elif (
                    isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Attribute)
                    and _set_annotation(sub.annotation)
                ):
                    name = dotted_name(sub.target)
                    if name is not None:
                        attrs.add(name)
    return attrs


class SetIterationOrderRule(Rule):
    """DET003: set-order iteration feeding event-ordered machinery.

    Python set iteration order depends on element hashes, and hashes
    of str-bearing keys depend on ``PYTHONHASHSEED``: a loop over a
    set whose body schedules events, sends messages, or pushes onto
    shared queues makes *event order* a function of the interpreter's
    hash seed.  The check is interprocedural over one call hop: a loop
    body that calls a same-module function reaching a sink is flagged
    too.  Wrapping the iterable in ``sorted(...)`` normalizes the
    order and silences the rule.
    """

    id = "DET003"
    title = "set-order iteration into event machinery"
    hint = (
        "iterate `sorted(the_set)` (or keep a deterministically-ordered "
        "list alongside the set) before scheduling events, sending "
        "messages, or pushing onto shared queues"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        set_attrs = _collect_set_attrs(mod.tree)
        for fn, _cls in walk_functions(mod.tree):
            set_names = _collect_set_names(fn)
            for node in ast.walk(fn):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if _is_sorted_wrapped(node.iter):
                    continue
                why = _set_expr(node.iter, set_names, set_attrs)
                if why is None:
                    continue
                sink = self._find_sink(node.body, mod)
                if sink is None:
                    continue
                yield self.violation(
                    mod, node,
                    f"iteration over {why} reaches event sink "
                    f"`{sink}` - event order now depends on "
                    "PYTHONHASHSEED",
                )

    def _find_sink(
        self, body: list[ast.stmt], mod: ModuleInfo
    ) -> str | None:
        direct = self._sink_in(body)
        if direct is not None:
            return direct
        for fn in called_functions(body, mod):
            hop = self._sink_in(fn.body)
            if hop is not None:
                return f"{fn.name}() -> {hop}"
        return None

    @staticmethod
    def _sink_in(body: list[ast.stmt]) -> str | None:
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                if isinstance(node.func, ast.Attribute):
                    if node.func.attr in _EVENT_SINKS:
                        return node.func.attr
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _EVENT_SINKS
                ):
                    return node.func.id
        return None


class IdentitySortKeyRule(Rule):
    """DET004: sort/min/max keyed on object identity."""

    id = "DET004"
    title = "identity-based sort key"
    hint = (
        "`id()` is an address: it changes run to run. Sort on a stable "
        "domain key (program id, patch index, sequence number) instead"
    )

    def check(self, mod: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            if name not in ("sorted", "sort", "min", "max", "heapify"):
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if self._uses_id(kw.value):
                    yield self.violation(
                        mod, node,
                        f"`{name}(..., key=...)` keyed on `id()` "
                        "(object identity)",
                    )

    @staticmethod
    def _uses_id(key: ast.expr) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        for node in ast.walk(key):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                return True
        return False

"""Rule registry: every shipped lint rule, in id order.

Adding a rule: subclass :class:`~repro.analysis.rules.base.Rule` in a
module here, give it an ``id``/``title``/``hint``, and append an
instance to :data:`ALL_RULES`.  Fixture coverage is enforced by
``tests/test_analysis_lint.py`` - each rule must ship a triggering
fixture, a clean fixture, and a suppression fixture.
"""

from __future__ import annotations

from .base import Rule
from .des import RealWorldCallbackRule
from .determinism import (
    IdentitySortKeyRule,
    SetIterationOrderRule,
    UnseededRngRule,
    WallClockRule,
)
from .persist import SnapshotCodecRule
from .protocol import (
    COUNTER_OWNERS,
    SERVICE_FACADE_ALLOWED,
    CounterOwnershipRule,
    ServiceFacadeRule,
    TransportBypassRule,
)

__all__ = [
    "ALL_RULES",
    "COUNTER_OWNERS",
    "SERVICE_FACADE_ALLOWED",
    "Rule",
    "rule_table",
]

ALL_RULES: list[Rule] = [
    WallClockRule(),
    UnseededRngRule(),
    SetIterationOrderRule(),
    IdentitySortKeyRule(),
    RealWorldCallbackRule(),
    TransportBypassRule(),
    CounterOwnershipRule(),
    ServiceFacadeRule(),
    SnapshotCodecRule(),
]


def rule_table() -> list[dict]:
    """The shipped rules as rows (docs and ``--rules`` output)."""
    return [
        {"id": r.id, "title": r.title, "hint": r.hint} for r in ALL_RULES
    ]

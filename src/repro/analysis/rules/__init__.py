"""Rule registry: every shipped lint rule, in id order.

Adding a rule: subclass :class:`~repro.analysis.rules.base.Rule` in a
module here, give it an ``id``/``title``/``hint``, and append an
instance to :data:`ALL_RULES`.  Fixture coverage is enforced by
``tests/test_analysis_lint.py`` - each rule must ship a triggering
fixture, a clean fixture, and a suppression fixture.
"""

from __future__ import annotations

from .base import Rule
from .des import RealWorldCallbackRule
from .determinism import (
    IdentitySortKeyRule,
    SetIterationOrderRule,
    UnseededRngRule,
    WallClockRule,
)
from .interproc import (
    EventProtocolRule,
    SnapshotCompletenessRule,
    TransitiveCallbackIoRule,
    TransitiveCounterRule,
    TransitiveRngRule,
    TransitiveSetIterationRule,
    TransitiveWallClockRule,
    TransitiveWireRule,
)
from .persist import SnapshotCodecRule
from .protocol import (
    COUNTER_OWNERS,
    SERVICE_FACADE_ALLOWED,
    CounterOwnershipRule,
    ServiceFacadeRule,
    TransportBypassRule,
)

__all__ = [
    "ALL_RULES",
    "INTERPROC_RULES",
    "COUNTER_OWNERS",
    "SERVICE_FACADE_ALLOWED",
    "Rule",
    "rule_table",
    "rules_for",
]

ALL_RULES: list[Rule] = [
    WallClockRule(),
    UnseededRngRule(),
    SetIterationOrderRule(),
    IdentitySortKeyRule(),
    RealWorldCallbackRule(),
    TransportBypassRule(),
    CounterOwnershipRule(),
    ServiceFacadeRule(),
    SnapshotCodecRule(),
]

#: Whole-program rules, active only under ``lint --interprocedural``:
#: the effect-inference re-hosts of DET/DES/PROTO (same ids, deeper
#: reach) plus the two program-only families.
INTERPROC_RULES: list[Rule] = [
    TransitiveWallClockRule(),
    TransitiveRngRule(),
    TransitiveSetIterationRule(),
    TransitiveCallbackIoRule(),
    TransitiveWireRule(),
    TransitiveCounterRule(),
    SnapshotCompletenessRule(),
    EventProtocolRule(),
]


def rules_for(interprocedural: bool = False) -> list[Rule]:
    """The active rule set for a lint run."""
    if interprocedural:
        return ALL_RULES + INTERPROC_RULES
    return list(ALL_RULES)


def rule_table(interprocedural: bool = False) -> list[dict]:
    """The shipped rules as rows (docs and ``--rules`` output)."""
    seen: set[tuple[str, str]] = set()
    rows = []
    for r in rules_for(interprocedural):
        key = (r.id, r.title)
        if key in seen:
            continue
        seen.add(key)
        rows.append({"id": r.id, "title": r.title, "hint": r.hint})
    return rows

"""Vector-clock happens-before checker over the runtime's event trace.

The dynamic sanitizer (S20) checks *values*: exactly-once uids,
monotone counters, balanced edge sets.  What it cannot see is
*ordering*: a commit that lands with the right value but without a
causal path from the events that justify it is a race that only
happened to go well under this schedule.  This checker rebuilds
causality from the structured ``hb_*`` records the runtime emits when
tracing is armed (see :meth:`repro.runtime.simulator.Simulator.note`)
and verifies that every state transition is anchored by a
happens-before edge:

* a delivered message has a matching send, and each stamped uid is
  delivered at most once (``orphan-delivery`` / ``duplicate-delivery``);
* a workload commit in a post-failover epoch happens-after the
  migration that installed that epoch (``unanchored-epoch-commit`` /
  ``commit-not-after-migration``);
* a migration happens-after the crash, demotion or suspicion of the
  process it drains - or targets a process whose rejoin justifies
  pulling work from healthy donors (``migration-without-cause``);
* a rejoin happens-after the state transfer that caught the process
  up, and every commit on a rejoined rank is causally anchored to
  that transfer - i.e. to the new incarnation, never the old life
  (``rejoin-without-transfer`` / ``commit-not-after-rejoin``);
* a restart announcement names a process that actually crashed
  (``restart-without-crash``);
* two same-epoch commits to one program from different processes are
  happens-before ordered unless they are the two legs of a
  speculative first-completion-wins pair (``concurrent-commit``);
* a speculated serial commits at most once, and the commit is the
  trace-first completion (``double-commit`` / ``late-commit``).

The happens-before model: every simulated process is a node, plus one
``"ctl"`` node for the failure-control plane (crash detection,
failover orchestration, health probes).  Each record ticks its node's
clock component; ``hb_recv`` joins the sender's clock at send time,
``hb_requeue`` joins the control plane's clock at migration time, and
a backup completion joins the primary's clock at speculation-launch
time.  Record vocabulary (all fields JSON-scalar)::

    hb_send     (wid, src_proc, dst_proc, uid)   physical copy launched
    hb_recv     (wid, proc, delivered, uid)      arrival processed
    hb_spec     (serial, src_proc, dst_proc)     backup execution booked
    hb_complete (pid, proc, serial, is_backup, committed)
    hb_commit   (pid, proc, epoch, serial)       workload commit offered
    hb_crash    (proc,)                          crash detected   [ctl]
    hb_demote   (proc,)                          demotion decided [ctl]
    hb_migrate  (pid, old_proc, new_proc, epoch) program re-homed [ctl]
    hb_requeue  (pid, proc, epoch)               re-install done (optional:
                                                 the runtime folds this into
                                                 hb_migrate's eager join)
    hb_suspect  (proc, inc)                      fenced on missed beats [ctl]
    hb_restart  (proc,)                          crashed proc came back [ctl]
    hb_xfer     (proc, inc, nprogs)              state transfer begun   [ctl]
    hb_rejoin   (proc, inc)                      incarnation live again [ctl]
    hb_promote  (proc,)                          demotion reversed      [ctl]
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

__all__ = [
    "HbRace",
    "HbChecker",
    "check_trace",
    "check_report",
    "dump_hb_json",
    "load_hb_json",
]

#: Node id of the failure-control plane in the vector clocks.
CTL = "ctl"

Clock = dict  # node -> int


def _leq(a: Clock, b: Clock) -> bool:
    """``a`` happens-before-or-equals ``b`` componentwise."""
    return all(v <= b.get(k, 0) for k, v in a.items())


@dataclass(frozen=True)
class HbRace:
    """One happens-before violation (a race or a broken anchor)."""

    kind: str  # e.g. "concurrent-commit"
    time: float  # virtual time of the offending record
    subject: str  # what the race is about (program id, uid, ...)
    message: str  # full human diagnosis, names the offending commit

    def format(self) -> str:
        return f"[{self.kind}] t={self.time:.6g} {self.subject}: {self.message}"


@dataclass
class _Commit:
    pid: str
    proc: Any
    epoch: int
    serial: int
    time: float
    vc: Clock


class HbChecker:
    """Feed ``(time, kind, detail)`` records, then :meth:`finish`."""

    def __init__(self) -> None:
        self._clocks: dict[Any, Clock] = {}
        self._sends: dict[Any, tuple[Clock, Any, float]] = {}
        self._delivered_uids: dict[Any, float] = {}
        #: serial -> (launcher clock snapshot, launching proc)
        self._spec: dict[Any, tuple[Clock, Any]] = {}
        self._migrations: dict[tuple[str, int], tuple[Clock, float]] = {}
        self._failed_procs: set[Any] = set()  # crashed, demoted or suspected
        self._rejoined: set[Any] = set()  # rebalance targets (rejoin/promote)
        #: (proc, inc) -> (state-transfer clock, time)
        self._xfers: dict[tuple[Any, int], tuple[Clock, float]] = {}
        #: proc -> (transfer clock, time, inc) of the latest rejoin
        self._rejoin_anchor: dict[Any, tuple[Clock, float, int]] = {}
        #: (pid, epoch) -> {proc: last commit} for concurrency checks
        self._last_commit: dict[tuple[str, int], dict[Any, _Commit]] = {}
        #: serial -> list of (time, committed, pid, proc, is_backup)
        self._completes: dict[Any, list[tuple]] = {}
        self.races: list[HbRace] = []
        self.records = 0

    # -- clock plumbing -------------------------------------------------------------

    def _tick(self, node: Any) -> Clock:
        c = self._clocks.setdefault(node, {})
        c[node] = c.get(node, 0) + 1
        return c

    def _join(self, node: Any, other: Clock) -> None:
        c = self._clocks.setdefault(node, {})
        for k, v in other.items():
            if v > c.get(k, 0):
                c[k] = v

    def _snap(self, node: Any) -> Clock:
        return dict(self._clocks.get(node, {}))

    # -- record ingestion -----------------------------------------------------------

    def feed(self, time: float, kind: str, detail: tuple) -> None:
        handler = getattr(self, "_on_" + kind[3:], None) if kind.startswith(
            "hb_"
        ) else None
        if handler is None:
            return  # not an HB record: ignore
        self.records += 1
        handler(time, *detail)

    def _on_send(self, t: float, wid, src_proc, dst_proc, uid=None) -> None:
        self._tick(src_proc)
        self._sends[wid] = (self._snap(src_proc), uid, t)

    def _on_recv(self, t: float, wid, proc, delivered, uid=None) -> None:
        self._tick(proc)
        sent = self._sends.get(wid)
        if sent is None:
            self.races.append(HbRace(
                "orphan-delivery", t, f"wid={wid!r}",
                f"message copy {wid!r} processed on proc {proc} with no "
                "recorded send: the delivery is not anchored by any "
                "happens-before edge",
            ))
        else:
            # Any physical arrival is a causal edge - even a copy the
            # receiver discards (duplicate, corrupted, forwarded on)
            # was read by ``proc``; ``delivered`` only gates the
            # exactly-once accounting below.
            self._join(proc, sent[0])
        if delivered and uid is not None:
            first = self._delivered_uids.get(uid)
            if first is not None:
                self.races.append(HbRace(
                    "duplicate-delivery", t, f"uid={uid!r}",
                    f"uid {uid!r} delivered twice (first at t={first:.6g}, "
                    f"again on proc {proc}): exactly-once broken upstream "
                    "of the sanitizer",
                ))
            else:
                self._delivered_uids[uid] = t

    def _on_spec(self, t: float, serial, src_proc, dst_proc) -> None:
        self._tick(src_proc)
        self._spec[serial] = (self._snap(src_proc), src_proc)

    def _on_complete(
        self, t: float, pid, proc, serial, is_backup, committed
    ) -> None:
        launch = self._spec.get(serial)
        if is_backup and launch is not None:
            # The backup inherited the primary's inputs at launch time.
            self._join(proc, launch[0])
        self._tick(proc)
        if is_backup and committed and launch is not None:
            # First-completion-wins handoff: the owning (launching)
            # process observes the backup's result - the program is
            # requeued on the owner, so later runs there happen-after
            # this completion.
            self._join(launch[1], self._snap(proc))
        self._completes.setdefault(serial, []).append(
            (t, bool(committed), pid, proc, bool(is_backup))
        )

    def _on_commit(self, t: float, pid, proc, epoch, serial) -> None:
        self._tick(proc)
        vc = self._snap(proc)
        launch = self._spec.get(serial)
        if launch is not None and launch[1] != proc:
            # A winning backup's commit is part of the result handoff:
            # the owner observes it before re-running the program.
            self._join(launch[1], vc)
        commit = _Commit(pid, proc, int(epoch), serial, t, vc)
        anchor = self._rejoin_anchor.get(proc)
        if anchor is not None and not _leq(anchor[0], vc):
            self.races.append(HbRace(
                "commit-not-after-rejoin", t, pid,
                f"commit of {pid} on rejoined proc {proc} (serial "
                f"{serial}, t={t:.6g}) is concurrent with the state "
                f"transfer that installed incarnation {anchor[2]} "
                f"(t={anchor[1]:.6g}): the commit is anchored to the "
                "old life, not the new incarnation",
            ))
        if commit.epoch > 0:
            mig = self._migrations.get((pid, commit.epoch))
            if mig is None:
                self.races.append(HbRace(
                    "unanchored-epoch-commit", t, pid,
                    f"commit of {pid} on proc {proc} in epoch "
                    f"{commit.epoch} (serial {serial}) has no recorded "
                    "migration installing that epoch",
                ))
            elif not _leq(mig[0], vc):
                self.races.append(HbRace(
                    "commit-not-after-migration", t, pid,
                    f"commit of {pid} on proc {proc} in epoch "
                    f"{commit.epoch} (serial {serial}, t={t:.6g}) is "
                    "concurrent with the migration that installed epoch "
                    f"{commit.epoch} (t={mig[1]:.6g}): the committing "
                    "execution never observed the re-install",
                ))
        peers = self._last_commit.setdefault((pid, commit.epoch), {})
        for other_proc, prev in peers.items():
            if other_proc == proc or prev.serial == serial:
                continue  # same node is trace-ordered; same serial is
                # the speculative pair, policed by first-wins below
            if not _leq(prev.vc, vc):
                self.races.append(HbRace(
                    "concurrent-commit", t, pid,
                    f"commit of {pid} in epoch {commit.epoch} on proc "
                    f"{proc} (serial {serial}, t={t:.6g}) is concurrent "
                    f"with the commit on proc {prev.proc} (serial "
                    f"{prev.serial}, t={prev.time:.6g}): same-epoch "
                    "writes to one program state with no delivery edge "
                    "between them",
                ))
        peers[proc] = commit

    def _on_crash(self, t: float, proc) -> None:
        self._tick(CTL)
        self._failed_procs.add(proc)

    def _on_demote(self, t: float, proc) -> None:
        self._tick(CTL)
        self._failed_procs.add(proc)

    def _on_migrate(self, t: float, pid, old_proc, new_proc, epoch) -> None:
        self._tick(CTL)
        if (
            old_proc not in self._failed_procs
            and new_proc not in self._rejoined
        ):
            self.races.append(HbRace(
                "migration-without-cause", t, pid,
                f"migration of {pid} from proc {old_proc} to proc "
                f"{new_proc} (epoch {epoch}) precedes any crash, "
                f"demotion or suspicion of proc {old_proc} and proc "
                f"{new_proc} never rejoined",
            ))
        self._migrations[(pid, int(epoch))] = (self._snap(CTL), t)
        # The install runs synchronously on the new owner's master
        # timeline, so the new owner observes the migration here - not
        # only at the requeue event (a delivery can reactivate the
        # program before the requeue pops).
        self._join(new_proc, self._snap(CTL))

    def _on_requeue(self, t: float, pid, proc, epoch) -> None:
        mig = self._migrations.get((pid, int(epoch)))
        if mig is not None:
            self._join(proc, mig[0])
        self._tick(proc)

    # -- membership plane (DESIGN.md §14) -------------------------------------------

    def _on_suspect(self, t: float, proc, inc) -> None:
        # Fencing is the control plane deciding the proc failed: it
        # justifies draining migrations exactly like a crash does.
        self._tick(CTL)
        self._failed_procs.add(proc)

    def _on_restart(self, t: float, proc) -> None:
        self._tick(CTL)
        if proc not in self._failed_procs:
            self.races.append(HbRace(
                "restart-without-crash", t, f"proc={proc}",
                f"restart announcement for proc {proc} precedes any "
                "recorded crash or suspicion of it",
            ))

    def _on_xfer(self, t: float, proc, inc, nprogs) -> None:
        self._tick(CTL)
        self._xfers[(proc, int(inc))] = (self._snap(CTL), t)

    def _on_rejoin(self, t: float, proc, inc) -> None:
        self._tick(CTL)
        xfer = self._xfers.get((proc, int(inc)))
        if xfer is None:
            self.races.append(HbRace(
                "rejoin-without-transfer", t, f"proc={proc}",
                f"proc {proc} rejoined as incarnation {inc} with no "
                "recorded state transfer for that incarnation: the new "
                "life is not anchored to the checkpoint/delivery-log "
                "catch-up",
            ))
        else:
            self._rejoin_anchor[proc] = (xfer[0], t, int(inc))
        self._rejoined.add(proc)
        self._failed_procs.discard(proc)

    def _on_promote(self, t: float, proc) -> None:
        # A promoted proc never lost state: no transfer anchor, but it
        # becomes a legitimate rebalance target and is healthy again.
        self._tick(CTL)
        self._rejoined.add(proc)
        self._failed_procs.discard(proc)

    # -- end-of-trace checks --------------------------------------------------------

    def finish(self) -> list[HbRace]:
        for serial, comps in self._completes.items():
            if len(comps) < 2 and serial not in self._spec:
                continue
            committed = [c for c in comps if c[1]]
            if len(committed) > 1:
                t, _, pid, proc, _ = committed[1]
                self.races.append(HbRace(
                    "double-commit", t, pid,
                    f"speculated serial {serial} of {pid} committed "
                    f"{len(committed)} times (second on proc {proc}): "
                    "first-completion-wins broken",
                ))
            if committed and comps and committed[0] is not comps[0]:
                t, _, pid, proc, is_backup = committed[0]
                leg = "backup" if is_backup else "primary"
                self.races.append(HbRace(
                    "late-commit", t, pid,
                    f"speculated serial {serial} of {pid}: the {leg} "
                    f"completion on proc {proc} committed at t={t:.6g} "
                    "although it was not the first completion - "
                    "first-completion-wins resolved the race backwards",
                ))
        return self.races


def _normalize(events) -> list[tuple[float, str, tuple]]:
    out = []
    for e in events:
        if hasattr(e, "kind"):  # TraceEvent
            detail = getattr(e, "detail", None) or ()
            out.append((e.time, e.kind, tuple(detail)))
        else:  # (time, kind, detail) triple
            t, kind, detail = e
            out.append((float(t), str(kind), tuple(detail)))
    return out


def check_trace(events) -> list[HbRace]:
    """Run the checker over a trace (TraceEvents or raw triples)."""
    chk = HbChecker()
    for t, kind, detail in _normalize(events):
        chk.feed(t, kind, detail)
    return chk.finish()


def check_report(report) -> list[HbRace]:
    """Check one RunReport's recorded HB stream (requires trace=True)."""
    return check_trace(report.hb_events)


def dump_hb_json(events, path: str) -> int:
    """Write the HB records of a trace as JSON; returns record count."""
    records = [
        {"t": t, "kind": kind, "detail": list(detail)}
        for t, kind, detail in _normalize(events)
        if kind.startswith("hb_")
    ]
    with open(path, "w") as fh:
        json.dump({"hb_version": 1, "events": records}, fh, indent=1)
    return len(records)


def load_hb_json(path: str) -> list[tuple[float, str, tuple]]:
    """Load a trace written by :func:`dump_hb_json` (or hand-crafted)."""
    with open(path) as fh:
        doc = json.load(fh)
    events = doc["events"] if isinstance(doc, dict) else doc
    return [
        (float(e["t"]), str(e["kind"]), tuple(e["detail"])) for e in events
    ]

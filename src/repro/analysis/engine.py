"""The lint engine: file loading, suppression parsing, rule dispatch.

The engine is deliberately small: it turns each Python file into a
:class:`ModuleInfo` (source, AST, comment-level suppressions, logical
module name, and a one-hop function index), hands it to every rule,
and filters the returned :class:`Violation`\\ s against the
``# repro: allow[RULE]`` suppressions.  Rules live in
:mod:`repro.analysis.rules` and know nothing about files or comments.

Every file is parsed exactly once per run: the engine loads all
:class:`ModuleInfo` objects up front and shares the AST (and, in
interprocedural mode, the whole-program call graph and effect
database, see :mod:`repro.analysis.callgraph` /
:mod:`repro.analysis.effects`) across all rules.

Suppression syntax::

    x = time.time()  # repro: allow[DET001]
    # repro: allow[DET003, PROTO001]   <- alone on a line: covers the
    for p in procs: ...                   next line

``allow[*]`` suppresses every rule on the covered line.  An ``allow``
placed on a ``def``/``class`` header line (or one of its decorator
lines) covers the whole declaration body - the way to bless a short
annotated helper without sprinkling per-line pragmas.

Two more pragmas::

    # repro: module=repro.runtime.scheduler   <- fixture files claim a
                                                 logical module identity
    self._cache = {}  # repro: transient      <- the attribute is rebuilt
                                                 at composition; PERSIST002
                                                 does not require it in
                                                 state_dict()
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .callgraph import ModuleSummary, Program
    from .rules import Rule

__all__ = [
    "Violation",
    "ModuleInfo",
    "LintEngine",
    "lint_paths",
    "load_module",
    "render",
    "render_sarif",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s]+)\]")
_MODULE_RE = re.compile(r"#\s*repro:\s*module=([A-Za-z0-9_.]+)")
_TRANSIENT_RE = re.compile(r"#\s*repro:\s*transient\b")

#: Files parsed since import (the single-parse regression test pins
#: that one lint run parses each file exactly once, rules included).
_parse_count = 0


def parse_count() -> int:
    return _parse_count


@dataclass(frozen=True)
class Violation:
    """One rule finding, with enough context to act on it.

    ``chain`` is only populated by the interprocedural rules: the
    call-propagation path from the flagged call site down to the
    direct effect site (each entry ``"qualified.name (file:line)"``).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str
    chain: tuple[str, ...] = ()

    def format(self) -> str:
        out = (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.message}\n    hint: {self.hint}"
        )
        if self.chain:
            out += "\n    via: " + " -> ".join(self.chain)
        return out

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "chain": list(self.chain),
        }

    @staticmethod
    def from_dict(d: dict) -> "Violation":
        return Violation(
            rule=d["rule"],
            path=d["path"],
            line=int(d["line"]),
            col=int(d["col"]),
            message=d["message"],
            hint=d["hint"],
            chain=tuple(d.get("chain", ())),
        )


@dataclass
class ModuleInfo:
    """Everything a rule may want to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: logical dotted module name ("repro.runtime.transport"); inferred
    #: from the path or overridden by a ``# repro: module=`` pragma.
    module: str
    #: line -> set of rule ids allowed ("*" = all) on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: (start, end, rules) ranges from allow[] on def/class headers.
    suppression_blocks: list[tuple[int, int, frozenset[str]]] = field(
        default_factory=list
    )
    #: lines carrying a ``# repro: transient`` pragma (PERSIST002).
    transient_lines: frozenset[int] = frozenset()
    #: "name" and "Class.name" -> FunctionDef, for one-hop call lookup.
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: sha256 of the source text (incremental-cache identity).
    digest: str = ""
    #: whole-program context, set by the engine in interprocedural
    #: mode; None under the classic per-file run.
    program: "Program | None" = None
    #: this module's phase-1 summary (interprocedural mode only).
    summary: "ModuleSummary | None" = None

    def suppressed(self, rule: str, line: int) -> bool:
        allowed = self.suppressions.get(line, ())
        if rule in allowed or "*" in allowed:
            return True
        for start, end, rules in self.suppression_blocks:
            if start <= line <= end and (rule in rules or "*" in rules):
                return True
        return False


def _logical_module(path: Path) -> str:
    """Dotted module name from a file path (best effort)."""
    parts = list(path.with_suffix("").parts)
    parts = parts[parts.index("repro"):] if "repro" in parts else parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _scan_comments(
    source: str,
) -> tuple[dict[int, set[str]], str | None, frozenset[int]]:
    """Extract suppressions, the module pragma and transient lines."""
    suppressions: dict[int, set[str]] = {}
    module: str | None = None
    transient: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:
        return suppressions, module, frozenset(transient)
    code_lines = {
        t.start[0]
        for t in tokens
        if t.type
        not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
    }

    def _covered(line: int) -> int | None:
        if line in code_lines:
            return line
        # Comment alone on its line: covers the next code line.
        return min((ln for ln in code_lines if ln > line), default=None)

    for t in tokens:
        if t.type != tokenize.COMMENT:
            continue
        m = _MODULE_RE.search(t.string)
        if m:
            module = m.group(1)
        if _TRANSIENT_RE.search(t.string):
            line = _covered(t.start[0])
            if line is not None:
                transient.add(line)
        m = _ALLOW_RE.search(t.string)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        line = _covered(t.start[0])
        if line is not None:
            suppressions.setdefault(line, set()).update(rules)
    return suppressions, module, frozenset(transient)


def _suppression_blocks(
    tree: ast.Module, suppressions: dict[int, set[str]]
) -> list[tuple[int, int, frozenset[str]]]:
    """Expand allow[] pragmas sitting on def/class headers to blocks.

    A suppression whose covered line is a ``def``/``class`` statement's
    header (or one of its decorator lines) applies to the whole
    declaration - findings inside short annotated bodies can then be
    suppressed at the declaration instead of per line.
    """
    if not suppressions:
        return []
    blocks: list[tuple[int, int, frozenset[str]]] = []
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        header_lines = {node.lineno}
        header_lines.update(d.lineno for d in node.decorator_list)
        rules: set[str] = set()
        for ln in header_lines:
            rules.update(suppressions.get(ln, ()))
        if rules and node.end_lineno is not None:
            blocks.append((node.lineno, node.end_lineno, frozenset(rules)))
    return blocks


def _index_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Map plain and class-qualified names to their FunctionDefs."""
    index: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            index[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, ast.FunctionDef):
                    index[f"{node.name}.{sub.name}"] = sub
                    # Unqualified fallback: one-hop `self.foo()` lookup
                    # does not track the receiver's class.
                    index.setdefault(sub.name, sub)
    return index


def load_module(path: str | Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    global _parse_count
    p = Path(path)
    source = p.read_text()
    _parse_count += 1
    tree = ast.parse(source, filename=str(p))
    suppressions, pragma, transient = _scan_comments(source)
    return ModuleInfo(
        path=str(p),
        source=source,
        tree=tree,
        module=pragma if pragma is not None else _logical_module(p),
        suppressions=suppressions,
        suppression_blocks=_suppression_blocks(tree, suppressions),
        transient_lines=transient,
        functions=_index_functions(tree),
        digest=hashlib.sha256(source.encode()).hexdigest(),
    )


def _sort_key(v: Violation) -> tuple:
    return (v.path, v.line, v.col, v.rule, v.message)


class LintEngine:
    """Run a rule set over files and directories.

    ``interprocedural=True`` additionally links all loaded modules into
    a whole-program :class:`~repro.analysis.callgraph.Program`, runs
    fixed-point effect inference over its call graph, and enables the
    interprocedural rules (multi-hop DET/DES/PROTO re-hosts, PERSIST002
    snapshot completeness, PROTO004 event-protocol exhaustiveness).
    """

    def __init__(
        self,
        rules: "list[Rule] | None" = None,
        interprocedural: bool = False,
    ):
        if rules is None:
            from .rules import rules_for

            rules = rules_for(interprocedural)
        self.rules = list(rules)
        self.interprocedural = interprocedural

    def collect_files(self, paths: list[str | Path]) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                files.extend(
                    f for f in sorted(p.rglob("*.py"))
                    if "__pycache__" not in f.parts
                )
            else:
                files.append(p)
        return files

    # -- loading / program linkage ---------------------------------------------------

    def load_modules(self, paths: list[str | Path]) -> list[ModuleInfo]:
        """Parse every file once; link the program when interprocedural."""
        mods = [load_module(f) for f in self.collect_files(paths)]
        if self.interprocedural:
            self.link_program(mods)
        return mods

    def link_program(self, mods: list[ModuleInfo]) -> "Program":
        """Summarize + link ``mods`` into a Program, attach it to each."""
        from .callgraph import Program, extract_summary

        for mod in mods:
            if mod.summary is None:
                mod.summary = extract_summary(mod)
        program = Program([m.summary for m in mods])
        for mod in mods:
            mod.program = program
        return program

    # -- linting ---------------------------------------------------------------------

    def lint_file(self, path: str | Path) -> list[Violation]:
        return self.lint_paths([path])

    def lint_module(self, mod: ModuleInfo) -> list[Violation]:
        """Per-module rule pass (program-scope rules excluded)."""
        out: list[Violation] = []
        for rule in self.rules:
            if getattr(rule, "scope", "module") != "module":
                continue
            for v in rule.check(mod):
                if not mod.suppressed(v.rule, v.line):
                    out.append(v)
        out.sort(key=_sort_key)
        return out

    def lint_program(self, mods: list[ModuleInfo]) -> list[Violation]:
        """Program-scope rule pass (PROTO004-style whole-program checks)."""
        if not self.interprocedural or not mods:
            return []
        program = mods[0].program
        by_path = {m.path: m for m in mods}
        out: list[Violation] = []
        for rule in self.rules:
            if getattr(rule, "scope", "module") != "program":
                continue
            for v in rule.check_program(program):
                owner = by_path.get(v.path)
                if owner is None or not owner.suppressed(v.rule, v.line):
                    out.append(v)
        out.sort(key=_sort_key)
        return out

    def lint_paths(self, paths: list[str | Path]) -> list[Violation]:
        mods = self.load_modules(paths)
        out: list[Violation] = []
        for mod in mods:
            out.extend(self.lint_module(mod))
        out.extend(self.lint_program(mods))
        out.sort(key=_sort_key)
        return out


def lint_paths(
    paths: list[str | Path],
    rules: "list[Rule] | None" = None,
    interprocedural: bool = False,
    cache: "str | Path | None" = None,
) -> list[Violation]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default all).

    ``cache`` names an incremental-cache file (see
    :mod:`repro.analysis.cache`): unchanged modules reuse their cached
    findings; only the reverse-dependency cone of edited modules is
    re-analyzed.  Results are byte-identical to a cold run.
    """
    if cache is not None:
        from .cache import cached_lint

        return cached_lint(
            paths, cache, rules=rules, interprocedural=interprocedural
        )
    return LintEngine(rules, interprocedural=interprocedural).lint_paths(paths)


def render(violations: list[Violation], as_json: bool = False) -> str:
    """Human or JSON rendering of a violation list."""
    if as_json:
        return json.dumps(
            {"violations": [v.to_dict() for v in violations],
             "count": len(violations)},
            indent=1,
        )
    if not violations:
        return "repro.analysis: clean"
    lines = [v.format() for v in violations]
    lines.append(f"repro.analysis: {len(violations)} violation(s)")
    return "\n".join(lines)


def render_sarif(
    violations: list[Violation], rules: "list[Rule] | None" = None
) -> str:
    """SARIF 2.1.0 rendering (GitHub code-scanning annotations).

    One run, one result per violation; rule metadata (title + fix
    hint) rides in the driver's rule table so the annotations carry
    the hint text inline.
    """
    if rules is None:
        from .rules import ALL_RULES

        rules = ALL_RULES
    rule_meta = [
        {
            "id": r.id,
            "name": r.__class__.__name__,
            "shortDescription": {"text": r.title},
            "help": {"text": r.hint},
            "defaultConfiguration": {"level": "error"},
        }
        for r in rules
    ]
    index = {r.id: i for i, r in enumerate(rules)}
    results: list[dict[str, Any]] = []
    for v in violations:
        message = v.message
        if v.chain:
            message += " [via: " + " -> ".join(v.chain) + "]"
        results.append({
            "ruleId": v.rule,
            "ruleIndex": index.get(v.rule, -1),
            "level": "error",
            "message": {"text": message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": v.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": v.line,
                        "startColumn": max(v.col + 1, 1),
                    },
                },
            }],
        })
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.analysis",
                    "informationUri": "https://example.invalid/repro",
                    "rules": rule_meta,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(doc, indent=1)

"""The lint engine: file loading, suppression parsing, rule dispatch.

The engine is deliberately small: it turns each Python file into a
:class:`ModuleInfo` (source, AST, comment-level suppressions, logical
module name, and a one-hop function index), hands it to every rule,
and filters the returned :class:`Violation`\\ s against the
``# repro: allow[RULE]`` suppressions.  Rules live in
:mod:`repro.analysis.rules` and know nothing about files or comments.

Suppression syntax::

    x = time.time()  # repro: allow[DET001]
    # repro: allow[DET003, PROTO001]   <- alone on a line: covers the
    for p in procs: ...                   next line

``allow[*]`` suppresses every rule on the covered line.

Fixture files (which do not live under ``src/repro``) can claim a
logical module identity for the module-scoped PROTO rules with::

    # repro: module=repro.runtime.scheduler
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .rules import Rule

__all__ = ["Violation", "ModuleInfo", "LintEngine", "lint_paths"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s]+)\]")
_MODULE_RE = re.compile(r"#\s*repro:\s*module=([A-Za-z0-9_.]+)")


@dataclass(frozen=True)
class Violation:
    """One rule finding, with enough context to act on it."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.message}\n    hint: {self.hint}"
        )

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass
class ModuleInfo:
    """Everything a rule may want to know about one source file."""

    path: str
    source: str
    tree: ast.Module
    #: logical dotted module name ("repro.runtime.transport"); inferred
    #: from the path or overridden by a ``# repro: module=`` pragma.
    module: str
    #: line -> set of rule ids allowed ("*" = all) on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    #: "name" and "Class.name" -> FunctionDef, for one-hop call lookup.
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)

    def suppressed(self, rule: str, line: int) -> bool:
        allowed = self.suppressions.get(line, ())
        return rule in allowed or "*" in allowed


def _logical_module(path: Path) -> str:
    """Dotted module name from a file path (best effort)."""
    parts = list(path.with_suffix("").parts)
    parts = parts[parts.index("repro"):] if "repro" in parts else parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _scan_comments(source: str) -> tuple[dict[int, set[str]], str | None]:
    """Extract suppression lines and the module pragma from comments."""
    suppressions: dict[int, set[str]] = {}
    module: str | None = None
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenError:
        return suppressions, module
    code_lines = {
        t.start[0]
        for t in tokens
        if t.type
        not in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
        )
    }
    for t in tokens:
        if t.type != tokenize.COMMENT:
            continue
        m = _MODULE_RE.search(t.string)
        if m:
            module = m.group(1)
        m = _ALLOW_RE.search(t.string)
        if not m:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        line = t.start[0]
        if line in code_lines:
            suppressions.setdefault(line, set()).update(rules)
        else:
            # Comment alone on its line: covers the next code line.
            nxt = min((ln for ln in code_lines if ln > line), default=None)
            if nxt is not None:
                suppressions.setdefault(nxt, set()).update(rules)
    return suppressions, module


def _index_functions(tree: ast.Module) -> dict[str, ast.FunctionDef]:
    """Map plain and class-qualified names to their FunctionDefs."""
    index: dict[str, ast.FunctionDef] = {}
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            index[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, ast.FunctionDef):
                    index[f"{node.name}.{sub.name}"] = sub
                    # Unqualified fallback: one-hop `self.foo()` lookup
                    # does not track the receiver's class.
                    index.setdefault(sub.name, sub)
    return index


def load_module(path: str | Path) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises SyntaxError)."""
    p = Path(path)
    source = p.read_text()
    tree = ast.parse(source, filename=str(p))
    suppressions, pragma = _scan_comments(source)
    return ModuleInfo(
        path=str(p),
        source=source,
        tree=tree,
        module=pragma if pragma is not None else _logical_module(p),
        suppressions=suppressions,
        functions=_index_functions(tree),
    )


class LintEngine:
    """Run a rule set over files and directories."""

    def __init__(self, rules: "list[Rule] | None" = None):
        if rules is None:
            from .rules import ALL_RULES

            rules = ALL_RULES
        self.rules = list(rules)

    def collect_files(self, paths: list[str | Path]) -> list[Path]:
        files: list[Path] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                files.extend(
                    f for f in sorted(p.rglob("*.py"))
                    if "__pycache__" not in f.parts
                )
            else:
                files.append(p)
        return files

    def lint_file(self, path: str | Path) -> list[Violation]:
        mod = load_module(path)
        return self.lint_module(mod)

    def lint_module(self, mod: ModuleInfo) -> list[Violation]:
        out: list[Violation] = []
        for rule in self.rules:
            for v in rule.check(mod):
                if not mod.suppressed(v.rule, v.line):
                    out.append(v)
        out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
        return out

    def lint_paths(self, paths: list[str | Path]) -> list[Violation]:
        out: list[Violation] = []
        for f in self.collect_files(paths):
            out.extend(self.lint_file(f))
        return out


def lint_paths(
    paths: list[str | Path], rules: "list[Rule] | None" = None
) -> list[Violation]:
    """Convenience wrapper: lint ``paths`` with ``rules`` (default all)."""
    return LintEngine(rules).lint_paths(paths)


def render(violations: list[Violation], as_json: bool = False) -> str:
    """Human or JSON rendering of a violation list."""
    if as_json:
        return json.dumps(
            {"violations": [v.to_dict() for v in violations],
             "count": len(violations)},
            indent=1,
        )
    if not violations:
        return "repro.analysis: clean"
    lines = [v.format() for v in violations]
    lines.append(f"repro.analysis: {len(violations)} violation(s)")
    return "\n".join(lines)

"""Fixed-point transitive effect inference over the call graph.

Phase-1 summaries (:mod:`repro.analysis.callgraph`) record each
function's *direct* effect atoms.  This module closes them over the
resolved call graph with a reverse-worklist fixed point, so that every
function carries the effects of everything it can reach:

* **External effects** - ``wall`` / ``rng`` / ``io`` / ``sink`` /
  ``wire`` / ``counter`` - propagate through every resolved edge: a
  caller of an impure function is impure.
* **Counter-on-parameter** (``cparam``) remaps through argument
  positions: if the call site passes one of the caller's own params,
  the caller gets a ``cparam`` on that param; if it passes a run
  report (``report`` / ``rep`` / ``self.report``), the caller itself
  becomes a counter writer (``counter``) - the laundering case
  PROTO002 exists for.
* **Self-state effects** - ``swrite`` / ``sread`` - propagate only
  through same-receiver edges (``self.m()`` calls), plus callee
  ``pwrite`` atoms at positions where the caller passes ``self``.
  This is what lets PERSIST002 resolve a class's mutable surface
  through its helper methods.

Every inferred effect carries a provenance chain - the call path from
the carrying function down to the direct site - rendered by the
``effects`` CLI command and embedded in interprocedural findings.

Termination: the atom space is finite (direct atoms, plus param
remappings bounded by each function's arity), effects only grow, and
each (function, atom) pair is added once - the worklist drains.
"""

from __future__ import annotations

from dataclasses import dataclass

from .callgraph import CallSite, FunctionSummary, Program

__all__ = ["Effect", "EffectDB", "EXTERNAL_KINDS", "effect_db"]

#: Atom kinds that propagate through *every* resolved call edge.
EXTERNAL_KINDS = frozenset({"wall", "rng", "io", "sink", "wire", "counter"})

#: Atom kinds surfaced by the ``effects`` explain command, with the
#: rule family each one feeds.
KIND_LABELS = {
    "wall": ("wall-clock read", "DET001"),
    "rng": ("unseeded RNG", "DET002"),
    "io": ("real I/O / host blocking", "DES001"),
    "sink": ("event-sink push", "DET003"),
    "wire": ("wire-kind push outside transport", "PROTO001"),
    "counter": ("report-counter write", "PROTO002"),
    "cparam": ("counter write on a parameter", "PROTO002"),
    "swrite": ("self-state mutation", "PERSIST002"),
    "sread": ("self-state read", "PERSIST002"),
    "pwrite": ("parameter-state mutation", "PERSIST002"),
}


@dataclass(frozen=True)
class Effect:
    """One inferred effect on one function.

    ``line`` is where the effect enters *this* function: the direct
    site, or the call site it propagated through.  ``chain`` is the
    full provenance path, topmost carrier first, each entry
    ``"qualified.name (path:line)"``; a direct effect has a one-entry
    chain.
    """

    atom: tuple
    line: int
    chain: tuple[str, ...]

    @property
    def direct(self) -> bool:
        return len(self.chain) == 1


def _entry(fn: FunctionSummary, line: int) -> str:
    return f"{fn.qname} ({fn.path}:{line})"


def origin_site(eff: Effect) -> tuple[str, int]:
    """(path, line) of the direct site at the bottom of the chain."""
    loc = eff.chain[-1].rsplit(" (", 1)[1].rstrip(")")
    path, _, line = loc.rpartition(":")
    return path, int(line)


def effect_db(program: Program) -> EffectDB:
    """The program's effect database, computed once and memoized."""
    db = getattr(program, "_effectdb", None)
    if db is None:
        db = EffectDB(program)
        program._effectdb = db
    return db


def _is_method(fn: FunctionSummary) -> bool:
    return "." in fn.name


class EffectDB:
    """Transitive effects for every function in a linked program."""

    def __init__(self, program: Program):
        self.program = program
        #: qname -> {atom: Effect}
        self.effects: dict[str, dict[tuple, Effect]] = {
            q: {} for q in program.functions
        }
        #: callee qname -> [(caller qname, CallSite)]
        self._rev: dict[str, list[tuple[str, CallSite]]] = {}
        for caller, edges in program.calls.items():
            for site, targets in edges:
                for t in targets:
                    self._rev.setdefault(t, []).append((caller, site))
        self._solve()

    # -- fixed point ----------------------------------------------------------------

    def _solve(self) -> None:
        worklist: list[str] = []
        for q, fn in self.program.functions.items():
            table = self.effects[q]
            for atom, line in fn.atoms:
                if atom not in table:
                    table[atom] = Effect(atom, line, (_entry(fn, line),))
            if table:
                worklist.append(q)
        while worklist:
            callee = worklist.pop()
            for caller, site in self._rev.get(callee, ()):
                if self._flow(caller, callee, site):
                    worklist.append(caller)

    def _flow(self, caller_q: str, callee_q: str, site: CallSite) -> bool:
        """Propagate callee's effects to the caller through one site.

        Returns True when the caller gained at least one new atom.
        """
        caller = self.program.functions[caller_q]
        callee = self.program.functions[callee_q]
        table = self.effects[caller_q]
        # Implicit-receiver calls shift arg positions by one: call arg
        # i binds callee param i+1 (param 0 is `self`).
        offset = 1 if (
            _is_method(callee) and site.kind in ("self", "sattr", "typed", "dyn")
        ) else 0
        same_receiver = site.kind == "self" and _is_method(caller)
        param_map = dict(site.param_args)  # call arg pos -> caller param
        gained = False
        for atom, eff in list(self.effects[callee_q].items()):
            for new in self._remap(
                atom, site, offset, same_receiver, param_map
            ):
                if new in table:
                    continue
                table[new] = Effect(
                    new, site.line, (_entry(caller, site.line), *eff.chain)
                )
                gained = True
        return gained

    @staticmethod
    def _remap(
        atom: tuple,
        site: CallSite,
        offset: int,
        same_receiver: bool,
        param_map: dict[int, int],
    ) -> list[tuple]:
        kind = atom[0]
        if kind in EXTERNAL_KINDS:
            return [atom]
        if kind in ("swrite", "sread"):
            return [atom] if same_receiver else []
        if kind == "cparam":
            _, pidx, name = atom
            pos = pidx - offset
            if pos in site.report_args:
                return [("counter", name)]
            if pos in param_map:
                return [("cparam", param_map[pos], name)]
            return []
        if kind == "pwrite":
            _, pidx, attr = atom
            pos = pidx - offset
            if pos in site.self_args:
                return [("swrite", attr)]
            if pos in param_map:
                return [("pwrite", param_map[pos], attr)]
            return []
        return []

    # -- queries --------------------------------------------------------------------

    def of(self, qname: str) -> dict[tuple, Effect]:
        return self.effects.get(qname, {})

    def with_kind(self, qname: str, kind: str) -> list[Effect]:
        return sorted(
            (e for a, e in self.of(qname).items() if a[0] == kind),
            key=lambda e: (e.line, e.atom),
        )

    def class_swrites(self, classref: str) -> dict[str, Effect]:
        """attr -> Effect: the class's transitive mutable surface.

        Union over every hierarchy-resolved method except the
        constructor (compose-time state) and the snapshot pair
        (``load_state_dict`` writes *are* the coverage set,
        ``state_dict`` must not write at all - PERSIST001's concern).
        """
        out: dict[str, Effect] = {}
        seen: set[str] = set()
        for cls in self.program.mro(classref):
            for meth in cls.methods:
                if meth in seen:
                    continue  # overridden lower in the hierarchy
                seen.add(meth)
                if meth in ("__init__", "state_dict", "load_state_dict"):
                    continue
                q = f"{cls.qname}.{meth}"
                for atom, eff in self.of(q).items():
                    if atom[0] == "swrite":
                        out.setdefault(atom[1], eff)
        return out

    def class_covered(self, classref: str) -> set[str]:
        """Attrs the snapshot round trip covers: ``state_dict`` reads
        union ``load_state_dict`` writes (both transitive)."""
        covered: set[str] = set()
        sd = self.program.resolve_method(classref, "state_dict")
        if sd is not None:
            covered.update(
                a[1] for a in self.of(sd) if a[0] in ("sread", "swrite")
            )
        ld = self.program.resolve_method(classref, "load_state_dict")
        if ld is not None:
            covered.update(a[1] for a in self.of(ld) if a[0] == "swrite")
        return covered

    def class_transient(self, classref: str) -> set[str]:
        out: set[str] = set()
        for cls in self.program.mro(classref):
            out.update(cls.transient_attrs)
            # Module-wide pragmas cover helper-mediated writes.
            summary = self.program.modules.get(cls.module)
            if summary is not None:
                out.update(summary.transient_attrs)
        return out

    # -- explain (the `effects` CLI command) -----------------------------------------

    def lookup(self, name: str) -> list[str]:
        """qnames matching ``name`` (exact, suffix, or substring)."""
        if name in self.effects:
            return [name]
        suffix = [
            q for q in sorted(self.effects)
            if q.endswith("." + name) or q.split(".")[-1] == name
        ]
        if suffix:
            return suffix
        return [q for q in sorted(self.effects) if name in q]

    def explain(self, qname: str) -> str:
        fn = self.program.functions.get(qname)
        if fn is None:
            return f"{qname}: unknown function"
        lines = [f"{qname} ({fn.path}:{fn.line})"]
        if fn.is_callback:
            lines.append("  [simulated callback: runs in virtual time]")
        table = self.of(qname)
        if not table:
            lines.append("  effect-free")
            return "\n".join(lines)
        by_kind: dict[str, list[Effect]] = {}
        for atom, eff in table.items():
            by_kind.setdefault(atom[0], []).append(eff)
        for kind in KIND_LABELS:
            effs = by_kind.get(kind)
            if not effs:
                continue
            label, rule = KIND_LABELS[kind]
            lines.append(f"  {kind} ({label}, {rule}):")
            for eff in sorted(effs, key=lambda e: (e.atom, e.line)):
                detail = ", ".join(str(x) for x in eff.atom[1:])
                origin = "direct" if eff.direct else f"{len(eff.chain) - 1} hop(s)"
                lines.append(f"    {detail}  [{origin}]")
                if not eff.direct:
                    for i, entry in enumerate(eff.chain):
                        lines.append(f"      {'  ' * i}-> {entry}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON form of the whole database (the nightly artifact)."""
        out: dict[str, list[dict]] = {}
        for q in sorted(self.effects):
            table = self.effects[q]
            if not table:
                continue
            out[q] = [
                {
                    "atom": list(eff.atom),
                    "line": eff.line,
                    "chain": list(eff.chain),
                }
                for _, eff in sorted(
                    table.items(), key=lambda kv: (kv[0][0], str(kv[0][1:]))
                )
            ]
        return {
            "functions": len(self.effects),
            "with_effects": len(out),
            "unresolved_dynamic": self.program.unresolved_dynamic,
            "effects": out,
        }

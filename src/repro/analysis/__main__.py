"""``python -m repro.analysis`` - lint and HB-check the repo.

Subcommands::

    lint [PATHS...] [--json | --sarif] [--rules] [--interprocedural]
         [--cache FILE]
        Run the determinism/DES/protocol lint rules over Python
        sources (default: src/).  ``--interprocedural`` links the
        whole-program call graph, runs fixed-point effect inference
        and enables the transitive DET/DES/PROTO re-hosts plus
        PERSIST002 (snapshot completeness) and PROTO004 (event-kind
        exhaustiveness).  ``--cache FILE`` keeps a content-hash
        incremental cache: unchanged modules are neither re-parsed
        nor re-checked.  Exit 1 on findings.

    effects NAME... [--json] [--dump FILE]
        Explain a function's inferred effect set: direct and
        transitive atoms with the call-propagation chain down to each
        direct site.  NAME matches a qualified name, a suffix, or a
        substring.  ``--dump FILE`` writes the whole effects database
        as JSON (the nightly artifact) - NAMEs become optional.

    check-trace FILES... [--json]
        Replay happens-before record streams (written by
        ``dump_hb_json`` or a benchmark's ``--check-hb``) through the
        vector-clock checker.  Exit 1 on races.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import render, render_sarif
from .hb import check_trace, load_hb_json
from .rules import rule_table, rules_for


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.rules:
        rows = rule_table(interprocedural=True)
        if args.json:
            print(json.dumps({"rules": rows}, indent=1))
        else:
            for r in rows:
                print(f"{r['id']:10s} {r['title']}")
        return 0
    from .engine import lint_paths

    rules = rules_for(args.interprocedural)
    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    violations = lint_paths(
        paths,
        rules=rules,
        interprocedural=args.interprocedural,
        cache=args.cache,
    )
    if args.sarif:
        print(render_sarif(violations, rules=rules))
    else:
        print(render(violations, as_json=args.json))
    return 1 if violations else 0


def _cmd_effects(args: argparse.Namespace) -> int:
    from .effects import effect_db
    from .engine import LintEngine

    engine = LintEngine(rules=[], interprocedural=True)
    mods = engine.load_modules(args.paths or ["src"])
    if not mods:
        print("no modules found", file=sys.stderr)
        return 1
    db = effect_db(mods[0].program)
    if args.dump:
        with open(args.dump, "w") as fh:
            json.dump(db.to_dict(), fh, indent=1, sort_keys=True)
        print(f"effects database -> {args.dump}")
        if not args.names:
            return 0
    if not args.names:
        print("name one or more functions (or use --dump)", file=sys.stderr)
        return 1
    status = 0
    payload = []
    for name in args.names:
        matches = db.lookup(name)
        if not matches:
            if args.json:
                payload.append({"query": name, "matches": []})
            else:
                print(f"{name}: no matching function")
            status = 1
            continue
        for q in matches:
            if args.json:
                payload.append({
                    "query": name,
                    "function": q,
                    "effects": [
                        {
                            "atom": list(eff.atom),
                            "line": eff.line,
                            "direct": eff.direct,
                            "chain": list(eff.chain),
                        }
                        for _, eff in sorted(
                            db.of(q).items(),
                            key=lambda kv: (kv[0][0], str(kv[0][1:])),
                        )
                    ],
                })
            else:
                print(db.explain(q))
    if args.json:
        print(json.dumps({"results": payload}, indent=1))
    return status


def _cmd_check_trace(args: argparse.Namespace) -> int:
    results = []
    total = 0
    for path in args.files:
        races = check_trace(load_hb_json(path))
        total += len(races)
        results.append((path, races))
    if args.json:
        print(json.dumps({
            "files": [
                {
                    "path": path,
                    "races": [
                        {
                            "kind": r.kind,
                            "time": r.time,
                            "subject": r.subject,
                            "message": r.message,
                        }
                        for r in races
                    ],
                }
                for path, races in results
            ],
            "count": total,
        }, indent=1))
    else:
        for path, races in results:
            if not races:
                print(f"{path}: race-free")
                continue
            print(f"{path}: {len(races)} race(s)")
            for r in races:
                print("  " + r.format())
    return 1 if total else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_lint = sub.add_parser("lint", help="run the lint rules")
    p_lint.add_argument("paths", nargs="*", help="files/dirs (default: src)")
    p_lint.add_argument("--json", action="store_true")
    p_lint.add_argument(
        "--sarif", action="store_true",
        help="emit SARIF 2.1.0 (GitHub code scanning)",
    )
    p_lint.add_argument(
        "--rules", action="store_true", help="list the shipped rules"
    )
    p_lint.add_argument(
        "--interprocedural", action="store_true",
        help="whole-program call graph + effect inference rules",
    )
    p_lint.add_argument(
        "--cache", metavar="FILE", default=None,
        help="content-hash incremental cache file",
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_eff = sub.add_parser(
        "effects", help="explain inferred effect sets"
    )
    p_eff.add_argument(
        "names", nargs="*",
        help="function names (qualified, suffix, or substring)",
    )
    p_eff.add_argument(
        "--paths", nargs="*", default=None,
        help="files/dirs to analyze (default: src)",
    )
    p_eff.add_argument("--json", action="store_true")
    p_eff.add_argument(
        "--dump", metavar="FILE", default=None,
        help="write the whole effects database as JSON",
    )
    p_eff.set_defaults(fn=_cmd_effects)

    p_hb = sub.add_parser(
        "check-trace", help="happens-before check recorded HB traces"
    )
    p_hb.add_argument("files", nargs="+", help="HB trace JSON files")
    p_hb.add_argument("--json", action="store_true")
    p_hb.set_defaults(fn=_cmd_check_trace)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. piped into `head`): exit
        # quietly instead of dumping a traceback.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""``python -m repro.analysis`` - lint and HB-check the repo.

Subcommands::

    lint [PATHS...] [--json] [--rules]
        Run the determinism/DES/protocol lint rules over Python
        sources (default: src/).  Exit 1 on findings.

    check-trace FILES... [--json]
        Replay happens-before record streams (written by
        ``dump_hb_json`` or a benchmark's ``--check-hb``) through the
        vector-clock checker.  Exit 1 on races.
"""

from __future__ import annotations

import argparse
import json
import sys

from .engine import render
from .hb import check_trace, load_hb_json
from .rules import ALL_RULES, rule_table


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.rules:
        rows = rule_table()
        if args.json:
            print(json.dumps({"rules": rows}, indent=1))
        else:
            for r in rows:
                print(f"{r['id']:9s} {r['title']}")
        return 0
    from .engine import lint_paths

    paths = args.paths or ["src"]
    violations = lint_paths(paths, rules=ALL_RULES)
    print(render(violations, as_json=args.json))
    return 1 if violations else 0


def _cmd_check_trace(args: argparse.Namespace) -> int:
    results = []
    total = 0
    for path in args.files:
        races = check_trace(load_hb_json(path))
        total += len(races)
        results.append((path, races))
    if args.json:
        print(json.dumps({
            "files": [
                {
                    "path": path,
                    "races": [
                        {
                            "kind": r.kind,
                            "time": r.time,
                            "subject": r.subject,
                            "message": r.message,
                        }
                        for r in races
                    ],
                }
                for path, races in results
            ],
            "count": total,
        }, indent=1))
    else:
        for path, races in results:
            if not races:
                print(f"{path}: race-free")
                continue
            print(f"{path}: {len(races)} race(s)")
            for r in races:
                print("  " + r.format())
    return 1 if total else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_lint = sub.add_parser("lint", help="run the lint rules")
    p_lint.add_argument("paths", nargs="*", help="files/dirs (default: src)")
    p_lint.add_argument("--json", action="store_true")
    p_lint.add_argument(
        "--rules", action="store_true", help="list the shipped rules"
    )
    p_lint.set_defaults(fn=_cmd_lint)

    p_hb = sub.add_parser(
        "check-trace", help="happens-before check recorded HB traces"
    )
    p_hb.add_argument("files", nargs="+", help="HB trace JSON files")
    p_hb.add_argument("--json", action="store_true")
    p_hb.set_defaults(fn=_cmd_check_trace)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())

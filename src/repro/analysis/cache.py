"""Content-hash incremental cache for the lint engine.

The interprocedural pass parses and summarizes every module in
``src/repro``; on a pre-commit hook or a blocking CI job that cost is
paid on every run even though almost nothing changed.  This cache
makes the common case cheap without ever changing the answer:

* Each module's cache entry is keyed by the sha256 **digest of its
  source text** and stores its phase-1
  :class:`~repro.analysis.callgraph.ModuleSummary` plus its per-module
  findings.
* On a warm run, only the **reverse-dependency cone** of the edited
  modules is re-parsed and re-checked: the edited files, plus every
  module that (transitively) imports one of them - import edges bound
  call edges, so anything whose inferred effects could have changed is
  inside the cone.  Modules whose cached findings carry a provenance
  chain through an edited file are pulled in too (covers the bounded
  dynamic-dispatch edges, which may cross modules without imports).
* Unchanged modules contribute their cached summaries to the program
  link (so the whole-program view is complete without re-parsing) and
  their cached findings verbatim.
* Program-scope findings (PROTO004) are recomputed whenever *anything*
  changed - cross-module findings may land outside the cone - and
  reused verbatim on a full hit.
* The cache self-invalidates on a version bump or a different rule
  set/mode, and a corrupt or unreadable file degrades to a cold run.

Warm results are byte-identical to a cold run - pinned by
``tests/test_analysis_cache.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .engine import LintEngine, ModuleInfo, Violation, _sort_key, load_module

__all__ = ["cached_lint", "CACHE_VERSION"]

CACHE_VERSION = 1


def _signature(rules, interprocedural: bool) -> dict:
    return {
        "version": CACHE_VERSION,
        "interprocedural": bool(interprocedural),
        "rules": sorted({f"{r.id}:{type(r).__name__}" for r in rules}),
    }


def _load(cache_path: Path) -> dict | None:
    try:
        data = json.loads(cache_path.read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(data, dict) or "modules" not in data:
        return None
    return data


def _store(cache_path: Path, data: dict) -> None:
    tmp = cache_path.with_suffix(cache_path.suffix + ".tmp")
    try:
        tmp.write_text(json.dumps(data, indent=1, sort_keys=True))
        os.replace(tmp, cache_path)
    except OSError:
        pass  # an unwritable cache is a perf bug, not a lint failure


def _chain_paths(entry: dict) -> set[str]:
    """Source paths referenced by the entry's finding chains."""
    out: set[str] = set()
    for v in entry.get("findings", ()):
        for link in v.get("chain", ()):
            loc = link.rsplit(" (", 1)
            if len(loc) == 2:
                out.add(loc[1].rstrip(")").rpartition(":")[0])
    return out


def cached_lint(
    paths,
    cache_path,
    rules=None,
    interprocedural: bool = False,
) -> list[Violation]:
    """Lint ``paths`` through the incremental cache at ``cache_path``."""
    from .rules import rules_for

    if rules is None:
        rules = rules_for(interprocedural)
    engine = LintEngine(rules, interprocedural=interprocedural)
    cache_file = Path(cache_path)
    files = [str(f) for f in engine.collect_files(list(paths))]
    current = set(files)

    sig = _signature(rules, interprocedural)
    data = _load(cache_file)
    if data is not None and data.get("signature") != sig:
        data = None
    cached: dict[str, dict] = dict(data["modules"]) if data else {}

    digests = {p: _digest(p) for p in files}
    changed = {
        p for p in files
        if p not in cached or cached[p].get("digest") != digests[p]
    }
    removed = set(cached) - current

    # Full hit: no parsing at all, cached findings verbatim.
    if data is not None and not changed and not removed:
        out = [
            Violation.from_dict(v)
            for p in files
            for v in cached[p].get("findings", ())
        ]
        out.extend(
            Violation.from_dict(v)
            for v in data.get("program_findings", ())
        )
        out.sort(key=_sort_key)
        return out

    cone = _cone(changed, removed, cached, current, interprocedural)

    mods: list[ModuleInfo] = [load_module(p) for p in files if p in cone]
    summaries = []
    if interprocedural:
        from .callgraph import ModuleSummary, Program, extract_summary

        for mod in mods:
            mod.summary = extract_summary(mod)
        summaries = [m.summary for m in mods] + [
            ModuleSummary.from_dict(cached[p]["summary"])
            for p in files
            if p not in cone and cached[p].get("summary")
        ]
        program = Program(summaries)
        for mod in mods:
            mod.program = program

    findings: dict[str, list[Violation]] = {}
    for mod in mods:
        findings[mod.path] = engine.lint_module(mod)
    for p in files:
        if p not in cone:
            findings[p] = [
                Violation.from_dict(v)
                for v in cached[p].get("findings", ())
            ]

    program_findings: list[Violation] = []
    if interprocedural and summaries:
        by_path = {s.path: s for s in summaries}
        for rule in engine.rules:
            if getattr(rule, "scope", "module") != "program":
                continue
            for v in rule.check_program(program):
                owner = by_path.get(v.path)
                if owner is None or not owner.suppressed(v.rule, v.line):
                    program_findings.append(v)
        program_findings.sort(key=_sort_key)

    # Write back: fresh entries for the cone, carried-over for the rest.
    entries: dict[str, dict] = {}
    by_mod = {m.path: m for m in mods}
    for p in files:
        if p in cone:
            m = by_mod[p]
            entries[p] = {
                "digest": m.digest,
                "summary": m.summary.to_dict() if m.summary else None,
                "findings": [v.to_dict() for v in findings[p]],
            }
        else:
            entries[p] = cached[p]
    _store(cache_file, {
        "signature": sig,
        "modules": entries,
        "program_findings": [v.to_dict() for v in program_findings],
    })

    out = [v for vs in findings.values() for v in vs]
    out.extend(program_findings)
    out.sort(key=_sort_key)
    return out


def _digest(path: str) -> str:
    try:
        source = Path(path).read_text()
    except OSError:
        return ""
    return hashlib.sha256(source.encode()).hexdigest()


def _cone(
    changed: set[str],
    removed: set[str],
    cached: dict[str, dict],
    current: set[str],
    interprocedural: bool,
) -> set[str]:
    """Paths whose findings must be recomputed.

    Single-file mode: just the edited files.  Interprocedural mode:
    the reverse-import closure of the edited/removed modules, plus any
    module whose cached finding chains pass through an edited file.
    """
    cone = set(changed)
    if not interprocedural:
        return cone
    name_of = {
        p: e["summary"]["module"]
        for p, e in cached.items()
        if e.get("summary")
    }
    dirty_names = {
        name_of[p] for p in (changed | removed) if p in name_of
    }
    dirty_paths = set(changed) | removed
    grew = True
    while grew:
        grew = False
        for p, e in cached.items():
            if p in cone or p not in current:
                continue
            summary = e.get("summary")
            deps = set(summary["deps"]) if summary else set()
            if deps & dirty_names or _chain_paths(e) & dirty_paths:
                cone.add(p)
                if p in name_of:
                    dirty_names.add(name_of[p])
                dirty_paths.add(p)
                grew = True
    return cone

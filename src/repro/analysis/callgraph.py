"""Whole-program module summaries and the call graph (phase 1 + link).

The interprocedural rules (DESIGN.md §15) need to see past a single
file: determinism sinks reached through helpers, counter writes
laundered through methods, snapshot coverage resolved through the
methods a ``state_dict`` actually calls.  This module supplies that
view in two phases:

**Phase 1 - per-module extraction** (:func:`extract_summary`): each
:class:`~repro.analysis.engine.ModuleInfo` is reduced to a
JSON-serializable :class:`ModuleSummary` - function definitions with
their *direct* effect atoms and raw call descriptors, class
definitions with their base refs, attribute types and method sets,
plus the event-kind pushes / pop-dispatch comparisons and ``hb_*``
emissions the protocol rules consume.  Everything cross-module is
left symbolic (absolute dotted refs resolved from the import table);
nothing in a summary depends on any other module, which is what makes
summaries cacheable per content digest.

**Link phase** (:class:`Program`): all summaries are joined into one
program - class hierarchy (linearized base-class order), def-site
resolution for plain calls, receiver typing for method calls
(``self.x.push(...)`` resolves through the attribute types recorded
in phase 1, e.g. ``self.sim = sim`` with an annotated parameter), and
a *bounded* fallback for dynamic dispatch: an unresolvable
``obj.meth(...)`` links to every class shipping ``meth`` when there
are at most :data:`DYNAMIC_FALLBACK_BOUND` candidates, and to nothing
(recorded as unresolved) beyond that - false negatives beat wrong
edges for a repo-local analysis.

Direct effect atoms (the vocabulary the fixed-point engine in
:mod:`repro.analysis.effects` propagates)::

    ("wall", api)          wall-clock read            (DET001 sites)
    ("rng", api)           unseeded RNG               (DET002 sites)
    ("io", api)            real I/O / host blocking   (DES001 sites)
    ("sink", name)         event-sink push            (DET003 sinks)
    ("wire", kind)         wire-kind push outside the transport (PROTO001)
    ("counter", name)      report-counter write outside its owner (PROTO002)
    ("cparam", i, name)    report-counter write on parameter i
    ("swrite", attr)       assignment to self.<attr>
    ("sread", attr)        read of self.<attr>
    ("pwrite", i, attr)    assignment to <param i>.<attr>

Atoms whose direct site carries the matching ``# repro: allow[RULE]``
suppression are *not* generated: a blessed site does not propagate,
so one suppression at the source silences the whole caller cone.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .engine import ModuleInfo
from .rules.base import dotted_name
from .rules.des import _BLOCKING_DOTTED, _BLOCKING_NAMES
from .rules.determinism import _EVENT_SINKS, _GLOBAL_RANDOM, _NUMPY_GLOBAL, _WALL_CLOCK
from .rules.protocol import _REPORT_BASES, _TRANSPORT_MODULE, _WIRE_KINDS, COUNTER_OWNERS

__all__ = [
    "DYNAMIC_FALLBACK_BOUND",
    "CallSite",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "Program",
    "extract_summary",
]

#: Max same-name method candidates a receiver-less call may fan out to.
DYNAMIC_FALLBACK_BOUND = 3

#: Call-capable push entry points whose second argument is the kind.
_PUSH_NAMES = {"push", "_push"}

#: Seedable RNG constructors: only the no-argument form is unseeded.
_SEEDABLE = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
    "random.Random",
}


@dataclass(frozen=True)
class CallSite:
    """One call expression, classified but unresolved (phase 1)."""

    line: int
    #: "plain" name() | "abs" imported dotted ref | "self" self.m() |
    #: "sattr" self.<attr>.m() | "typed" <known-class var>.m() |
    #: "dyn" unresolved receiver
    kind: str
    target: tuple  # payload, per kind (see _classify_call)
    self_args: tuple[int, ...] = ()  # positions receiving `self`
    param_args: tuple[tuple[int, int], ...] = ()  # (position, caller param idx)
    report_args: tuple[int, ...] = ()  # positions receiving a report base

    def to_list(self) -> list:
        return [
            self.line, self.kind, list(self.target),
            list(self.self_args),
            [list(p) for p in self.param_args],
            list(self.report_args),
        ]

    @staticmethod
    def from_list(raw: list) -> "CallSite":
        return CallSite(
            line=raw[0], kind=raw[1], target=tuple(raw[2]),
            self_args=tuple(raw[3]),
            param_args=tuple(tuple(p) for p in raw[4]),
            report_args=tuple(raw[5]),
        )


@dataclass
class FunctionSummary:
    """One function/method: params, direct effects, raw call sites."""

    name: str  # "func" or "Class.meth"
    module: str
    path: str
    line: int
    params: tuple[str, ...]
    is_callback: bool  # has a `now` parameter or is an on_* handler
    #: direct effect atoms with their source line: [(atom, line), ...]
    atoms: list[tuple[tuple, int]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)

    @property
    def qname(self) -> str:
        return f"{self.module}.{self.name}"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "params": list(self.params),
            "is_callback": self.is_callback,
            "atoms": [[list(a), ln] for a, ln in self.atoms],
            "calls": [c.to_list() for c in self.calls],
        }

    @staticmethod
    def from_dict(d: dict, module: str, path: str) -> "FunctionSummary":
        return FunctionSummary(
            name=d["name"], module=module, path=path, line=d["line"],
            params=tuple(d["params"]), is_callback=d["is_callback"],
            atoms=[(tuple(a), ln) for a, ln in d["atoms"]],
            calls=[CallSite.from_list(c) for c in d["calls"]],
        )


@dataclass
class ClassSummary:
    """One class: bases, receiver types, methods, snapshot coverage."""

    name: str
    module: str
    path: str
    line: int
    bases: tuple[str, ...]  # local name or absolute dotted ref
    #: attribute -> class ref (receiver typing for self.<attr>.m())
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: tuple[str, ...] = ()
    #: attributes excused from snapshot coverage (# repro: transient)
    transient_attrs: tuple[str, ...] = ()
    has_state_dict: bool = False

    @property
    def qname(self) -> str:
        return f"{self.module}.{self.name}"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "line": self.line,
            "bases": list(self.bases),
            "attr_types": dict(self.attr_types),
            "methods": list(self.methods),
            "transient_attrs": list(self.transient_attrs),
            "has_state_dict": self.has_state_dict,
        }

    @staticmethod
    def from_dict(d: dict, module: str, path: str) -> "ClassSummary":
        return ClassSummary(
            name=d["name"], module=module, path=path, line=d["line"],
            bases=tuple(d["bases"]), attr_types=dict(d["attr_types"]),
            methods=tuple(d["methods"]),
            transient_attrs=tuple(d["transient_attrs"]),
            has_state_dict=d["has_state_dict"],
        )


@dataclass
class ModuleSummary:
    """Phase-1 digest of one module: everything the link phase needs."""

    module: str
    path: str
    digest: str
    is_package: bool
    #: absolute module names this module imports (cache invalidation).
    deps: tuple[str, ...] = ()
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: event kinds pushed into a simulator/service heap: [(kind, line)]
    pushed: list[tuple[str, int]] = field(default_factory=list)
    #: event kinds string-compared in a pop-bound dispatch: [(kind, line)]
    handled: list[tuple[str, int]] = field(default_factory=list)
    #: hb_* record kinds emitted via note(): [(kind, line)]
    hb_emits: list[tuple[str, int]] = field(default_factory=list)
    #: attrs marked ``# repro: transient`` on *any* assignment in this
    #: module (covers helper-mediated writes: `win.x = ..` in a
    #: module-level function flows to a class via the call graph, so
    #: the pragma must be honored at the helper site too).
    transient_attrs: tuple[str, ...] = ()
    #: line -> suppressed rule ids (mirrors ModuleInfo for cached runs)
    suppressions: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: (start, end, rules) def/class-header blocks (cached runs too)
    suppression_blocks: list[tuple[int, int, tuple[str, ...]]] = field(
        default_factory=list
    )

    def suppressed(self, rule: str, line: int) -> bool:
        """Same semantics as ModuleInfo.suppressed, off the summary."""
        allowed = self.suppressions.get(line, ())
        if rule in allowed or "*" in allowed:
            return True
        for start, end, rules in self.suppression_blocks:
            if start <= line <= end and (rule in rules or "*" in rules):
                return True
        return False

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "digest": self.digest,
            "is_package": self.is_package,
            "deps": list(self.deps),
            "functions": [f.to_dict() for f in self.functions.values()],
            "classes": [c.to_dict() for c in self.classes.values()],
            "pushed": [list(p) for p in self.pushed],
            "handled": [list(p) for p in self.handled],
            "hb_emits": [list(p) for p in self.hb_emits],
            "transient_attrs": list(self.transient_attrs),
            "suppressions": {
                str(k): list(v) for k, v in self.suppressions.items()
            },
            "suppression_blocks": [
                [s, e, list(r)] for s, e, r in self.suppression_blocks
            ],
        }

    @staticmethod
    def from_dict(d: dict) -> "ModuleSummary":
        module, path = d["module"], d["path"]
        fns = [FunctionSummary.from_dict(f, module, path)
               for f in d["functions"]]
        classes = [ClassSummary.from_dict(c, module, path)
                   for c in d["classes"]]
        return ModuleSummary(
            module=module, path=path, digest=d["digest"],
            is_package=d["is_package"], deps=tuple(d["deps"]),
            functions={f.name: f for f in fns},
            classes={c.name: c for c in classes},
            pushed=[(k, ln) for k, ln in d["pushed"]],
            handled=[(k, ln) for k, ln in d["handled"]],
            hb_emits=[(k, ln) for k, ln in d["hb_emits"]],
            transient_attrs=tuple(d.get("transient_attrs", ())),
            suppressions={
                int(k): tuple(v) for k, v in d["suppressions"].items()
            },
            suppression_blocks=[
                (s, e, tuple(r)) for s, e, r in d.get(
                    "suppression_blocks", ()
                )
            ],
        )


# -- phase 1: extraction ---------------------------------------------------------------


class _Imports:
    """The module's import table: names -> absolute dotted targets."""

    def __init__(self, module: str, is_package: bool):
        self.package = module if is_package else module.rpartition(".")[0]
        self.modules: dict[str, str] = {}  # alias -> absolute module
        self.symbols: dict[str, str] = {}  # name  -> absolute dotted ref
        self.deps: set[str] = set()

    def _resolve_relative(self, level: int, target: str | None) -> str | None:
        if level == 0:
            return target
        parts = self.package.split(".") if self.package else []
        drop = level - 1
        if drop > len(parts):
            return None
        base = parts[: len(parts) - drop]
        if target:
            base = base + target.split(".")
        return ".".join(base) if base else None

    def add(self, node: ast.Import | ast.ImportFrom) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.deps.add(alias.name)
                name = alias.asname or alias.name.split(".")[0]
                self.modules[name] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    self.modules[alias.asname] = alias.name
            return
        base = self._resolve_relative(node.level, node.module)
        if base is None:
            return
        self.deps.add(base)
        for alias in node.names:
            if alias.name == "*":
                continue
            self.symbols[alias.asname or alias.name] = f"{base}.{alias.name}"
            # `from pkg import submodule` depends on the submodule too;
            # non-module symbols add a dep no file matches (harmless).
            self.deps.add(f"{base}.{alias.name}")

    def resolve(self, name: str) -> str | None:
        """Absolute dotted ref for a top-level name, if imported."""
        if name in self.symbols:
            return self.symbols[name]
        if name in self.modules:
            return self.modules[name]
        return None


def _is_report_base(expr: ast.expr) -> bool:
    name = dotted_name(expr)
    return name is not None and name in _REPORT_BASES


def _const_str(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _push_kind(node: ast.Call) -> tuple[str | None, bool]:
    """(kind, interned) of a push(t, kind, ...) / kind_id(kind) call.

    ``interned`` marks ``kind_id`` interning sites: a module interning
    a kind participates in that kind's protocol from *either* side
    (transport interns to push via ``push_id``, fastloop interns to
    dispatch), so PROTO004 counts those toward both sets.
    """
    fname = None
    if isinstance(node.func, ast.Attribute):
        fname = node.func.attr
    elif isinstance(node.func, ast.Name):
        fname = node.func.id
    if fname in _PUSH_NAMES and len(node.args) >= 2:
        return _const_str(node.args[1]), False
    if fname == "kind_id" and len(node.args) >= 1:
        return _const_str(node.args[0]), True
    if fname in _PUSH_NAMES:
        for kw in node.keywords:
            if kw.arg == "kind":
                return _const_str(kw.value), False
    return None, False


class _FunctionScanner:
    """Extract one function's atoms, calls and protocol facts."""

    def __init__(
        self,
        mod: ModuleInfo,
        imports: _Imports,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: ast.ClassDef | None,
        toplevel: set[str],
        local_classes: set[str],
    ):
        self.mod = mod
        self.imports = imports
        self.fn = fn
        self.cls = cls
        self.toplevel = toplevel
        self.local_classes = local_classes
        args = fn.args
        self.params = tuple(
            a.arg
            for a in list(args.posonlyargs) + list(args.args)
        )
        self.param_index = {p: i for i, p in enumerate(self.params)}
        self.kwonly = {a.arg for a in args.kwonlyargs}
        #: local var -> class ref (receiver typing inside the body)
        self.var_types: dict[str, str] = {}
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            ref = self._annotation_ref(a.annotation)
            if ref is not None:
                self.var_types[a.arg] = ref
        self.atoms: list[tuple[tuple, int]] = []
        self.calls: list[CallSite] = []
        self.pushed: list[tuple[str, int]] = []
        self.hb_emits: list[tuple[str, int]] = []
        self.handled: list[tuple[str, int]] = []
        self._pop_bound: set[str] = set()

    # -- helpers --------------------------------------------------------------------

    def _annotation_ref(self, ann: ast.expr | None) -> str | None:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            # Optional[X] / X | None do not type a *receiver* safely;
            # plain names and dotted refs do.
            return None
        if isinstance(ann, ast.BinOp):
            return None
        name = dotted_name(ann)
        if name is None:
            return None
        return self._class_ref(name)

    def _class_ref(self, name: str) -> str | None:
        """Absolute ref for a class name visible in this module."""
        head, _, rest = name.partition(".")
        if not rest and name in self.local_classes:
            return f"{self.mod.module}.{name}"
        resolved = self.imports.resolve(head)
        if resolved is None:
            return None
        return f"{resolved}.{rest}" if rest else resolved

    def _suppressed(self, rule: str, line: int) -> bool:
        return self.mod.suppressed(rule, line)

    def _emit(self, atom: tuple, line: int, rule: str | None) -> None:
        if rule is not None and self._suppressed(rule, line):
            return
        self.atoms.append((atom, line))

    # -- the walk -------------------------------------------------------------------

    def scan(self) -> FunctionSummary:
        # `self.meth(...)` is a call edge, not a state read: skip the
        # func position of every Call when collecting sread atoms.
        func_nodes = {
            id(node.func)
            for node in ast.walk(self.fn)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(self.fn):
            if isinstance(node, ast.Call):
                self._scan_call(node)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                self._scan_assign(node)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ) and id(node) not in func_nodes:
                base = node.value
                if isinstance(base, ast.Name) and base.id == "self":
                    self._emit(("sread", node.attr), node.lineno, None)
            elif isinstance(node, ast.Compare):
                self._scan_compare(node)
        is_callback = (
            "now" in self.params
            or "now" in self.kwonly
            or self.fn.name.startswith("on_")
        )
        name = (
            f"{self.cls.name}.{self.fn.name}" if self.cls is not None
            else self.fn.name
        )
        return FunctionSummary(
            name=name,
            module=self.mod.module,
            path=self.mod.path,
            line=self.fn.lineno,
            params=self.params,
            is_callback=is_callback,
            atoms=self.atoms,
            calls=self.calls,
        )

    def _scan_call(self, node: ast.Call) -> None:
        line = node.lineno
        name = dotted_name(node.func)
        # Direct external effects (DET001/DET002/DES001 vocabularies).
        if name is not None:
            if name in _WALL_CLOCK:
                self._emit(("wall", name), line, "DET001")
            norm = name.replace("np.", "numpy.", 1)
            if norm in _SEEDABLE and not node.args and not node.keywords:
                self._emit(("rng", name), line, "DET002")
            elif name.startswith("random.") and (
                name.split(".", 1)[1] in _GLOBAL_RANDOM
            ):
                self._emit(("rng", name), line, "DET002")
            elif norm.startswith("numpy.random.") and (
                norm.rsplit(".", 1)[1] in _NUMPY_GLOBAL
            ):
                self._emit(("rng", name), line, "DET002")
            if name in _BLOCKING_DOTTED:
                self._emit(("io", name), line, "DES001")
        if isinstance(node.func, ast.Name) and node.func.id in _BLOCKING_NAMES:
            self._emit(("io", node.func.id), line, "DES001")
        # Event machinery: sink pushes, wire kinds, protocol facts.
        attr = node.func.attr if isinstance(node.func, ast.Attribute) else (
            node.func.id if isinstance(node.func, ast.Name) else None
        )
        if attr in _EVENT_SINKS:
            self._emit(("sink", attr), line, "DET003")
        kind, interned = _push_kind(node)
        if kind is not None:
            self.pushed.append((kind, line))
            if interned:
                self.handled.append((kind, line))
            elif kind in _WIRE_KINDS and self.mod.module != _TRANSPORT_MODULE:
                self._emit(("wire", kind), line, "PROTO001")
        if attr == "note" and len(node.args) >= 2:
            nkind = _const_str(node.args[1])
            if nkind is not None and nkind.startswith("hb_"):
                self.hb_emits.append((nkind, line))
        self._classify_call(node, attr, line)

    def _classify_call(
        self, node: ast.Call, attr: str | None, line: int
    ) -> None:
        self_args = tuple(
            i for i, a in enumerate(node.args)
            if isinstance(a, ast.Name) and a.id == "self"
        )
        param_args = tuple(
            (i, self.param_index[a.id])
            for i, a in enumerate(node.args)
            if isinstance(a, ast.Name) and a.id in self.param_index
            and a.id != "self"
        )
        report_args = tuple(
            i for i, a in enumerate(node.args) if _is_report_base(a)
        )

        kind: str | None = None
        target: tuple = ()
        if isinstance(node.func, ast.Name):
            n = node.func.id
            if n in self.toplevel or n in self.local_classes:
                kind, target = "plain", (n,)
            else:
                ref = self.imports.resolve(n)
                if ref is not None:
                    kind, target = "abs", (ref,)
        elif isinstance(node.func, ast.Attribute):
            base = node.func.value
            bname = dotted_name(base)
            if bname == "self":
                kind, target = "self", (attr,)
            elif bname is not None and bname.startswith("self."):
                kind, target = "sattr", (bname[5:], attr)
            elif bname is not None:
                head = bname.split(".")[0]
                if head in self.var_types and "." not in bname:
                    kind, target = "typed", (self.var_types[bname], attr)
                elif self.imports.resolve(head) is not None:
                    ref = self.imports.resolve(head)
                    rest = bname[len(head):].lstrip(".")
                    full = f"{ref}.{rest}" if rest else ref
                    kind, target = "abs", (f"{full}.{attr}",)
                elif bname in self.local_classes:
                    kind, target = "typed", (f"{self.mod.module}.{bname}", attr)
                else:
                    kind, target = "dyn", (attr,)
            else:
                kind, target = "dyn", (attr,)
        if kind is None:
            return
        self.calls.append(CallSite(
            line=line, kind=kind, target=target,
            self_args=self_args, param_args=param_args,
            report_args=report_args,
        ))

    def _scan_assign(
        self, node: ast.Assign | ast.AugAssign | ast.AnnAssign
    ) -> None:
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        line = node.lineno
        value = getattr(node, "value", None)
        for tgt in targets:
            if isinstance(tgt, ast.Tuple):
                # Tuple unpack: record attr writes + pop-bound names.
                for el in tgt.elts:
                    self._assign_target(el, None, line)
                if value is not None:
                    self._scan_pop_bind(tgt, value)
            else:
                self._assign_target(tgt, value, line)
        # Receiver typing from plain local binds: v = ClassName(...).
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(value, ast.Call)
        ):
            cname = dotted_name(value.func)
            if cname is not None:
                ref = self._class_ref(cname)
                if ref is not None:
                    self.var_types[node.targets[0].id] = ref

    def _assign_target(
        self, tgt: ast.expr, value: ast.expr | None, line: int
    ) -> None:
        if not isinstance(tgt, ast.Attribute):
            return
        base = tgt.value
        if isinstance(base, ast.Name) and base.id == "self":
            self._emit(("swrite", tgt.attr), line, None)
        elif isinstance(base, ast.Name) and base.id in self.param_index:
            self._emit(
                ("pwrite", self.param_index[base.id], tgt.attr), line, None
            )
            if tgt.attr in COUNTER_OWNERS:
                self._emit(
                    ("cparam", self.param_index[base.id], tgt.attr),
                    line, "PROTO002",
                )
        bname = dotted_name(tgt)
        if bname is not None and tgt.attr in COUNTER_OWNERS:
            rbase = bname.rsplit(".", 1)[0]
            if rbase in _REPORT_BASES:
                owner = COUNTER_OWNERS[tgt.attr]
                owners = (owner,) if isinstance(owner, str) else owner
                if self.mod.module not in owners:
                    self._emit(("counter", tgt.attr), line, "PROTO002")

    def _scan_pop_bind(self, tgt: ast.Tuple, value: ast.expr) -> None:
        """Record names tuple-bound from an event-pop expression."""
        if not isinstance(value, ast.Call):
            return
        fname = None
        if isinstance(value.func, ast.Attribute):
            fname = value.func.attr
        elif isinstance(value.func, ast.Name):
            fname = value.func.id
        if fname not in ("pop", "pop_batch", "heappop"):
            return
        for el in tgt.elts:
            if isinstance(el, ast.Name):
                self._pop_bound.add(el.id)

    def _scan_compare(self, node: ast.Compare) -> None:
        """Dispatch comparisons: ``kind == "x"`` / ``kind in (...)``."""
        left = node.left
        if not (
            isinstance(left, ast.Name) and left.id in self._pop_bound
        ):
            return
        if len(node.ops) != 1 or not isinstance(
            node.ops[0], (ast.Eq, ast.In, ast.NotEq, ast.NotIn)
        ):
            return
        comp = node.comparators[0]
        consts: list[tuple[str, int]] = []
        if isinstance(comp, (ast.Tuple, ast.List, ast.Set)):
            for el in comp.elts:
                s = _const_str(el)
                if s is not None:
                    consts.append((s, node.lineno))
        else:
            s = _const_str(comp)
            if s is not None:
                consts.append((s, node.lineno))
        self.handled.extend(consts)


def _class_attr_types(
    cls: ast.ClassDef, scanner_factory
) -> dict[str, str]:
    """``self.x`` -> class ref, from constructor-call / typed-param
    assignments in any method (``__init__`` wins on conflict order)."""
    out: dict[str, str] = {}
    for sub in cls.body:
        if not isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        sc = scanner_factory(sub)
        for node in ast.walk(sub):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
            ):
                continue
            tgt = node.targets[0]
            if not (
                isinstance(tgt.value, ast.Name) and tgt.value.id == "self"
            ):
                continue
            ref: str | None = None
            if isinstance(node.value, ast.Call):
                cname = dotted_name(node.value.func)
                if cname is not None:
                    ref = sc._class_ref(cname)
            elif isinstance(node.value, ast.Name):
                ref = sc.var_types.get(node.value.id)
            if ref is not None:
                out.setdefault(tgt.attr, ref)
    return out


def extract_summary(mod: ModuleInfo) -> ModuleSummary:
    """Phase 1: reduce one parsed module to its cacheable summary."""
    is_package = mod.path.endswith("__init__.py")
    imports = _Imports(mod.module, is_package)
    toplevel: set[str] = set()
    local_classes: set[str] = set()
    for node in mod.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            imports.add(node)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            toplevel.add(node.name)
        elif isinstance(node, ast.ClassDef):
            local_classes.add(node.name)
    # Imports may appear below module level (lazy imports in functions).
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and node not in (
            mod.tree.body
        ):
            imports.add(node)

    summary = ModuleSummary(
        module=mod.module,
        path=mod.path,
        digest=mod.digest,
        is_package=is_package,
        deps=tuple(sorted(imports.deps)),
        suppressions={
            ln: tuple(sorted(rules))
            for ln, rules in mod.suppressions.items()
        },
        suppression_blocks=[
            (s, e, tuple(sorted(r)))
            for s, e, r in mod.suppression_blocks
        ],
    )

    module_transient: set[str] = set()

    def scan_fn(fn, cls):
        sc = _FunctionScanner(
            mod, imports, fn, cls, toplevel, local_classes
        )
        fs = sc.scan()
        summary.functions[fs.name] = fs
        summary.pushed.extend(sc.pushed)
        summary.handled.extend(sc.handled)
        summary.hb_emits.extend(sc.hb_emits)
        for atom, line in fs.atoms:
            if atom[0] in ("swrite", "pwrite") and (
                line in mod.transient_lines
            ):
                module_transient.add(atom[-1])
        return sc

    for node in mod.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scan_fn(node, None)
        elif isinstance(node, ast.ClassDef):
            methods = []
            transient: set[str] = set()
            scanners = {}
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    sc = scan_fn(sub, node)
                    scanners[sub.name] = sc
                    methods.append(sub.name)
                    for atom, line in sc.atoms:
                        if atom[0] == "swrite" and (
                            line in mod.transient_lines
                        ):
                            transient.add(atom[1])
                elif (
                    isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Name)
                    and sub.lineno in mod.transient_lines
                ):
                    transient.add(sub.target.id)
            bases = []
            for b in node.bases:
                bname = dotted_name(b)
                if bname is None:
                    continue
                if bname in local_classes:
                    bases.append(f"{mod.module}.{bname}")
                else:
                    head, _, rest = bname.partition(".")
                    resolved = imports.resolve(head)
                    if resolved is not None:
                        bases.append(
                            f"{resolved}.{rest}" if rest else resolved
                        )
                    else:
                        bases.append(bname)
            attr_types = _class_attr_types(
                node,
                lambda sub: _FunctionScanner(
                    mod, imports, sub, node, toplevel, local_classes
                ),
            )
            summary.classes[node.name] = ClassSummary(
                name=node.name,
                module=mod.module,
                path=mod.path,
                line=node.lineno,
                bases=tuple(bases),
                attr_types=attr_types,
                methods=tuple(methods),
                transient_attrs=tuple(sorted(transient)),
                has_state_dict="state_dict" in methods,
            )
    summary.transient_attrs = tuple(sorted(module_transient))
    return summary


# -- link phase ------------------------------------------------------------------------


class Program:
    """All module summaries linked into one resolvable call graph."""

    def __init__(self, summaries: list[ModuleSummary]):
        self.modules: dict[str, ModuleSummary] = {}
        for s in sorted(summaries, key=lambda s: s.path):
            self.modules[s.module] = s
        #: "module.func" / "module.Class.meth" -> FunctionSummary
        self.functions: dict[str, FunctionSummary] = {}
        #: "module.Class" -> ClassSummary
        self.classes: dict[str, ClassSummary] = {}
        #: method name -> sorted qnames (bounded dynamic fallback)
        self._by_method: dict[str, list[str]] = {}
        for s in self.modules.values():
            for f in s.functions.values():
                self.functions[f.qname] = f
                short = f.name.rpartition(".")[2]
                self._by_method.setdefault(short, []).append(f.qname)
            for c in s.classes.values():
                self.classes[c.qname] = c
        for lst in self._by_method.values():
            lst.sort()
        #: resolved edges: caller qname -> [(CallSite, (target qnames))]
        self.calls: dict[str, list[tuple[CallSite, tuple[str, ...]]]] = {}
        #: (path, line) -> target qnames (AST-side lookups, e.g. DET003)
        self.calls_at: dict[tuple[str, int], list[str]] = {}
        self.unresolved_dynamic = 0
        for f in self.functions.values():
            edges = []
            for site in f.calls:
                targets = self._resolve(f, site)
                edges.append((site, targets))
                if targets:
                    self.calls_at.setdefault(
                        (f.path, site.line), []
                    ).extend(targets)
            self.calls[f.qname] = edges

    # -- hierarchy ------------------------------------------------------------------

    def mro(self, classref: str) -> list[ClassSummary]:
        """Linearized base order (DFS, first-seen wins)."""
        out: list[ClassSummary] = []
        seen: set[str] = set()
        stack = [classref]
        while stack:
            ref = stack.pop(0)
            if ref in seen:
                continue
            seen.add(ref)
            cls = self.classes.get(ref)
            if cls is None:
                continue
            out.append(cls)
            stack.extend(cls.bases)
        return out

    def resolve_method(self, classref: str, meth: str) -> str | None:
        """Def-site of ``meth`` on ``classref``, hierarchy-aware."""
        for cls in self.mro(classref):
            if meth in cls.methods:
                return f"{cls.qname}.{meth}"
        return None

    def subclasses(self, classref: str) -> list[ClassSummary]:
        return [
            c for c in self.classes.values()
            if classref in {b.qname for b in self.mro(c.qname)[1:]}
        ]

    # -- call resolution ------------------------------------------------------------

    def _resolve(
        self, caller: FunctionSummary, site: CallSite
    ) -> tuple[str, ...]:
        kind = site.kind
        if kind == "plain":
            (name,) = site.target
            q = f"{caller.module}.{name}"
            if q in self.functions:
                return (q,)
            if q in self.classes:
                init = self.resolve_method(q, "__init__")
                return (init,) if init else ()
            return ()
        if kind == "abs":
            (ref,) = site.target
            if ref in self.functions:
                return (ref,)
            if ref in self.classes:
                init = self.resolve_method(ref, "__init__")
                return (init,) if init else ()
            # Constructor via re-exporting package: X imported from a
            # package __init__ that re-exports the real class.
            mod, _, name = ref.rpartition(".")
            for cref, cls in self.classes.items():
                if cls.name == name and cref.startswith(mod.split(".")[0]):
                    if mod in self.modules and name in {
                        s.rpartition(".")[2]
                        for s in self.modules[mod].deps
                    }:
                        pass
                    init = self.resolve_method(cref, "__init__")
                    if init and self._unique_class_name(name):
                        return (init,)
                    break
            return ()
        if kind == "self":
            (meth,) = site.target
            cref = self._enclosing_class(caller)
            if cref is None:
                return ()
            q = self.resolve_method(cref, meth)
            return (q,) if q else self._dynamic(meth)
        if kind == "sattr":
            attr, meth = site.target
            cref = self._enclosing_class(caller)
            if cref is not None:
                for cls in self.mro(cref):
                    tref = cls.attr_types.get(attr)
                    if tref is not None:
                        q = self.resolve_method(tref, meth)
                        if q:
                            return (q,)
            return self._dynamic(meth)
        if kind == "typed":
            cref, meth = site.target
            q = self.resolve_method(cref, meth)
            return (q,) if q else self._dynamic(meth)
        if kind == "dyn":
            (meth,) = site.target
            return self._dynamic(meth)
        return ()

    def _unique_class_name(self, name: str) -> bool:
        return sum(1 for c in self.classes.values() if c.name == name) == 1

    def _enclosing_class(self, fn: FunctionSummary) -> str | None:
        cls, _, _meth = fn.name.rpartition(".")
        if not cls:
            return None
        return f"{fn.module}.{cls}"

    def _dynamic(self, meth: str | None) -> tuple[str, ...]:
        """Bounded fallback: link to every same-name *method* when the
        candidate set is small; drop the edge (and count it) beyond."""
        if meth is None:
            return ()
        cands = [
            q for q in self._by_method.get(meth, ())
            if q.rpartition(".")[0] in self.classes
        ]
        if not cands:
            return ()
        if len(cands) > DYNAMIC_FALLBACK_BOUND:
            self.unresolved_dynamic += 1
            return ()
        return tuple(cands)

    # -- protocol facts --------------------------------------------------------------

    def pushed_kinds(self) -> dict[str, list[tuple[str, int]]]:
        """kind -> [(path, line), ...] of every push site."""
        out: dict[str, list[tuple[str, int]]] = {}
        for s in self.modules.values():
            for kind, line in s.pushed:
                out.setdefault(kind, []).append((s.path, line))
        return out

    def handled_kinds(self) -> dict[str, list[tuple[str, int]]]:
        out: dict[str, list[tuple[str, int]]] = {}
        for s in self.modules.values():
            for kind, line in s.handled:
                out.setdefault(kind, []).append((s.path, line))
        return out

    def hb_known_kinds(self) -> set[str]:
        """Record kinds the HB checker understands (``_on_*`` methods
        of any ``*HbChecker`` class in the program)."""
        known: set[str] = set()
        for cls in self.classes.values():
            if not cls.name.endswith("HbChecker"):
                continue
            for meth in cls.methods:
                if meth.startswith("_on_"):
                    known.add("hb_" + meth[4:])
        return known

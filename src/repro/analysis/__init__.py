"""Static analysis for the reproduction: determinism lints + HB races.

Every guarantee the runtime makes - bitwise-exact recovery under chaos
campaigns, golden fingerprints across refactors, the data-driven
schedule being a pure function of ``(mesh, partition, seed)`` - rests
on two properties the dynamic test tiers can only sample:

1. the *source* contains no hidden nondeterminism (wall-clock reads,
   unseeded RNG, set-iteration order leaking into event ordering), and
2. the *protocols* never commit state that is not happens-before
   ordered by a delivery edge.

This package enforces both statically:

* :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` - a
  custom AST lint engine with repo-specific determinism (DET), DES
  and protocol (PROTO) rules, ``# repro: allow[RULE]`` suppressions
  and machine-readable output;
* :mod:`repro.analysis.hb` - a vector-clock happens-before checker
  over the structured event trace the simulator emits, flagging
  commit/migration/speculation races the runtime sanitizer's
  exactly-once checks cannot see.

Run both from the CLI::

    python -m repro.analysis lint src/
    python -m repro.analysis check-trace trace.json
"""

from __future__ import annotations

from .engine import LintEngine, ModuleInfo, Violation, lint_paths
from .hb import (
    HbChecker,
    HbRace,
    check_report,
    check_trace,
    dump_hb_json,
    load_hb_json,
)
from .rules import ALL_RULES, rule_table

__all__ = [
    "ALL_RULES",
    "HbChecker",
    "HbRace",
    "LintEngine",
    "ModuleInfo",
    "Violation",
    "check_report",
    "check_trace",
    "dump_hb_json",
    "lint_paths",
    "load_hb_json",
    "rule_table",
]

"""The patch-program interface and its state machine (Sec. III-A).

A patch-program encodes the data-driven logic executed on one patch
for one task.  It is *fully reentrant*: the runtime may schedule it any
number of times (partial computation), and the program keeps whatever
local context it needs between runs.  The five primitive functions
mirror Fig. 6 of the paper:

``init``          one-time local-context initialization
``input``         consume one received stream
``compute``       perform (part of) the local computation
``output``        emit the next pending outgoing stream (None = drained)
``vote_to_halt``  True when no ready work remains locally

The two-state machine of Fig. 7 is owned by the engine/runtime, not by
the program: a program deactivates when it votes to halt and
reactivates when a stream arrives.
"""

from __future__ import annotations

import copy
import enum
from abc import ABC, abstractmethod
from collections.abc import Hashable

from .stream import ProgramId, Stream

__all__ = ["ProgramState", "PatchProgram"]


class ProgramState(enum.Enum):
    """Fig. 7: every program is either active or inactive."""

    ACTIVE = "active"
    INACTIVE = "inactive"


class PatchProgram(ABC):
    """Base class for data-driven patch-programs.

    Subclasses implement the five primitives; the engine applies the
    Alg. 1 execution semantics.  Programs must tolerate arbitrary
    interleavings of ``input`` and ``compute`` calls across runs -
    that is the partial-computation contract.
    """

    def __init__(self, patch: int, task: Hashable):
        self.id = ProgramId(patch, task)

    @property
    def patch(self) -> int:
        return self.id.patch

    @property
    def task(self) -> Hashable:
        return self.id.task

    # -- the five primitives (Fig. 6) ------------------------------------------

    def init(self) -> None:
        """Initialize local context; called exactly once, before any run."""

    @abstractmethod
    def input(self, stream: Stream) -> None:
        """Consume one received stream."""

    @abstractmethod
    def compute(self) -> None:
        """Perform (part of) the local computation on ready work."""

    @abstractmethod
    def output(self) -> Stream | None:
        """Return the next pending outgoing stream, or None when drained."""

    @abstractmethod
    def vote_to_halt(self) -> bool:
        """True when the program has no ready work left."""

    # -- optional hooks used by the runtime --------------------------------------

    def drain_outputs(self) -> list[Stream]:
        """All pending outgoing streams, in emission (FIFO) order.

        Semantically ``[s for s in iter(self.output, None)]``; programs
        that buffer emissions in a list override this to hand the
        buffer over wholesale instead of popping one stream per call.
        """
        out: list[Stream] = []
        while (s := self.output()) is not None:
            out.append(s)
        return out

    def remaining_workload(self) -> int | None:
        """Remaining work units, when known a priori (sweeps: un-solved
        vertices).  Enables the no-negotiation termination fast path of
        Sec. III-B; return None when unknown."""
        return None

    def priority(self) -> float:
        """Dynamic scheduling priority; larger runs earlier."""
        return 0.0

    # -- fault-tolerance hooks ----------------------------------------------------
    #
    # A fault-tolerant runtime periodically snapshots each program's
    # local context and, after a process crash, restores the snapshot
    # on a surviving process and replays the streams delivered since.
    # Replay may re-batch emissions differently than the lost
    # execution, so exact recovery additionally requires *idempotent*
    # input (duplicate items must be discarded); programs that provide
    # it set ``resilient_input`` to True.

    #: True when ``input`` discards duplicate payload items, making the
    #: program safe to re-execute from a checkpoint after a crash.
    resilient_input: bool = False

    def checkpoint_shared(self) -> tuple[str, ...]:
        """Names of attributes excluded from checkpoints: immutable
        topology and resources shared with the host (graphs, solve
        callbacks writing into global arrays)."""
        return ()

    def checkpoint(self):
        """Deep snapshot of the mutable local context.

        The default copies every instance attribute not named by
        :meth:`checkpoint_shared`; override for a leaner snapshot.
        """
        shared = set(self.checkpoint_shared())
        return copy.deepcopy(
            {k: v for k, v in self.__dict__.items() if k not in shared}
        )

    def restore(self, snapshot) -> None:
        """Restore local context from a :meth:`checkpoint` snapshot.

        The snapshot itself is left untouched (it may be restored again
        after a second failure).
        """
        self.__dict__.update(copy.deepcopy(snapshot))

    # -- cost-model hooks (all zero-cost by default) -------------------------------
    #
    # The DES runtime charges virtual time based on what a run actually
    # did; programs report the raw work counters of their *last* run
    # (e.g. vertices solved, edges relaxed, stream items packed) and the
    # runtime's CostModel maps them to virtual seconds.

    def last_run_counters(self) -> dict[str, int]:
        """Raw work counters for the most recent run."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}{self.id!r}"

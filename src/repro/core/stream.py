"""Streams: the unit of inter-patch-program communication (Fig. 6).

A stream carries user-defined data between two patch-programs, each
identified by a ``(patch, task)`` pair.  Streams are self-describing
(they carry their source and target program ids), which is what makes
them *routable*: the runtime can deliver any stream by looking up the
target program in its route table, locally or across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable
from typing import Any

__all__ = ["ProgramId", "Stream"]


@dataclass(frozen=True, order=True)
class ProgramId:
    """Identifier of a patch-program: ``(patch, task)``.

    ``task`` is application-defined; the Sn sweep component uses the
    sweeping-angle index, giving patch-angle parallelism for free.

    Program ids key every hot dictionary of the runtime (route table,
    run state, priority queues, workload tracker), so the field-tuple
    hash the dataclass machinery would generate per lookup is cached
    once at construction instead.
    """

    patch: int
    task: Hashable

    def __post_init__(self):
        object.__setattr__(self, "_hash", hash((self.patch, self.task)))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if other.__class__ is ProgramId:
            return self.patch == other.patch and self.task == other.task
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.patch},{self.task})"


@dataclass
class Stream:
    """A routable message between two patch-programs.

    ``payload`` is opaque to the runtime; ``nbytes`` is the modeled
    wire size used by communication cost accounting, and ``items`` the
    logical item count used by pack/unpack accounting.

    ``seq`` and ``epoch`` are stamped by a fault-tolerant runtime when
    the stream crosses processes: ``(src, seq)`` is the message's
    globally unique id (the key of ack/retransmit bookkeeping and of
    receiver-side duplicate discard), and ``epoch`` is the execution
    epoch of the emitting program (bumped each time the program is
    re-executed on a new owner after a crash).  Both are None/0 on
    reliable paths and do not affect stream semantics.

    ``checksum`` is an end-to-end payload integrity code (CRC32),
    stamped at send time on reliable paths; receivers recompute it and
    NACK on mismatch, turning silent in-flight corruption into a fast
    retransmit.  ``None`` means integrity checking is off.

    ``dsti`` caches the runtime's dense index of ``dst`` (see
    ``Router.index_of``); it is stamped on first routing so repeated
    hops skip the id-keyed lookup.  ``-1`` means not yet resolved.

    ``inc`` is the incarnation tag ``(sender_proc, incarnation)``
    stamped when elastic membership is armed: receivers fence traffic
    whose incarnation is older than the sender process's current life
    (DESIGN.md §14).  ``None`` means membership is off.  Like ``seq``
    and ``epoch`` it is delivery bookkeeping, not stream content, and
    is excluded from the end-to-end checksum.
    """

    src: ProgramId
    dst: ProgramId
    payload: Any = None
    items: int = 1
    nbytes: int = 0
    seq: int | None = None
    epoch: int = 0
    checksum: int | None = None
    dsti: int = -1
    inc: tuple[int, int] | None = None

    def __post_init__(self):
        if self.items < 0 or self.nbytes < 0:
            raise ValueError("stream items/nbytes must be non-negative")

    @property
    def uid(self) -> tuple | None:
        """Globally unique message id ``(src, seq)``, or None if unstamped."""
        if self.seq is None:
            return None
        return (self.src, self.seq)

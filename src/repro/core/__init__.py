"""Patch-centric data-driven abstraction (the paper's contribution, S7-S8)."""

from .engine import EngineStats, SerialEngine
from .patch_program import PatchProgram, ProgramState
from .stream import ProgramId, Stream
from .termination import MisraMarkerRing, WorkloadTracker

__all__ = [
    "ProgramId",
    "Stream",
    "PatchProgram",
    "ProgramState",
    "SerialEngine",
    "EngineStats",
    "WorkloadTracker",
    "MisraMarkerRing",
]

"""Distributed termination detection (Sec. III-B, IV-C).

Two mechanisms, as in the paper:

* :class:`WorkloadTracker` - the no-negotiation fast path.  Data-driven
  numerical algorithms know their workload in advance (sweeps: the
  number of (cell, angle) pairs), so each patch-program *commits* its
  remaining workload to a structure shared by the process's master and
  workers, and the process only joins distributed negotiation when its
  committed workload is zero.

* :class:`MisraMarkerRing` - the general consensus protocol [14]: a
  marker circulates a ring of processes; a process is *black* if it
  has sent or received an application message since the marker last
  visited.  The marker must complete a full circuit of white, idle
  processes for termination to be declared.  The DES runtime drives
  this through the event API below; tests drive it manually.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .._util import ReproError
from .patch_program import ProgramState

__all__ = ["WorkloadTracker", "MisraMarkerRing", "verify_quiescent"]


class WorkloadTracker:
    """Shared remaining-workload registry (per process or global).

    Commits are idempotent under re-execution: each key carries the
    *execution epoch* of the committing run (bumped when a program is
    re-assigned to a new owner after a crash), and a commit from a
    superseded epoch is ignored.  This keeps the fast path correct when
    a stale run's commit races a migrated program's fresh commits.
    """

    def __init__(self):
        self._remaining: dict = {}
        self._epoch: dict = {}

    def commit(self, key, remaining: int, epoch: int = 0) -> bool:
        """Commit the remaining workload of ``key`` (e.g. a program id).

        Returns True when applied, False when ignored as a stale-epoch
        duplicate of a superseded execution.
        """
        if remaining < 0:
            raise ReproError("negative workload")
        last = self._epoch.get(key)
        if last is not None and epoch < last:
            return False
        self._epoch[key] = epoch
        if remaining == 0:
            self._remaining.pop(key, None)
        else:
            self._remaining[key] = int(remaining)
        return True

    def epoch_of(self, key) -> int | None:
        """Latest committed epoch of ``key`` (None before any commit)."""
        return self._epoch.get(key)

    def total(self) -> int:
        return sum(self._remaining.values())

    def is_done(self) -> bool:
        return not self._remaining

    def pending_keys(self) -> list:
        return list(self._remaining.keys())

    # -- durability (snapshot/restore) -----------------------------------

    def state_dict(self) -> dict:
        """Codec-ready tracker state (dict insertion order preserved)."""
        return {
            "remaining": dict(self._remaining),
            "epoch": dict(self._epoch),
        }

    def load_state_dict(self, d: dict) -> None:
        self._remaining = dict(d["remaining"])
        self._epoch = dict(d["epoch"])


@dataclass
class MisraMarkerRing:
    """Misra's marker algorithm on a logical ring of ``nprocs`` processes.

    The caller reports application-level events (`on_send`, `on_receive`,
    `on_idle`, `on_busy`); `step()` advances the marker by one hop when
    the holding process is idle, and returns True once the marker has
    seen ``nprocs`` consecutive white idle processes.  ``hops`` counts
    marker messages, the negotiation cost the paper's fast path avoids.
    """

    nprocs: int
    holder: int = 0
    hops: int = 0
    rounds_clean: int = 0
    finished: bool = False
    _black: list = field(default_factory=list)
    _idle: list = field(default_factory=list)

    def __post_init__(self):
        if self.nprocs <= 0:
            raise ReproError("nprocs must be positive")
        self._black = [True] * self.nprocs  # start conservative
        self._idle = [False] * self.nprocs

    # -- application events ----------------------------------------------------

    def on_send(self, proc: int) -> None:
        self._black[proc] = True

    def on_receive(self, proc: int) -> None:
        self._black[proc] = True
        self._idle[proc] = False

    def on_busy(self, proc: int) -> None:
        self._idle[proc] = False

    def on_idle(self, proc: int) -> None:
        self._idle[proc] = True

    # -- marker movement -----------------------------------------------------------

    def step(self) -> bool:
        """Advance the marker one hop if possible; True when terminated."""
        if self.finished:
            return True
        p = self.holder
        if not self._idle[p]:
            return False  # marker waits until the holder quiesces
        if self._black[p]:
            self.rounds_clean = 0
            self._black[p] = False  # whiten and restart the count
        else:
            self.rounds_clean += 1
        if self.rounds_clean >= self.nprocs:
            self.finished = True
            return True
        self.holder = (p + 1) % self.nprocs
        self.hops += 1
        return False

    @classmethod
    def all_idle_hops(cls, nprocs: int) -> int:
        """Hops the marker needs to certify termination when every
        process is already idle (the quiesced-cluster negotiation)."""
        ring = cls(nprocs)
        for p in range(nprocs):
            ring.on_idle(p)
        return ring.run_to_completion()

    def run_to_completion(self, max_hops: int = 10_000_000) -> int:
        """Drive the marker until termination, assuming no further events.

        Returns the number of hops used.  Raises if the system cannot
        terminate (some process never idles).
        """
        if not all(self._idle):
            raise ReproError("cannot complete: some process is busy")
        start = self.hops
        while not self.step():
            if self.hops - start > max_hops:
                raise ReproError("marker did not converge")
        return self.hops - start


def verify_quiescent(pids, progs, states, tracker: WorkloadTracker) -> None:
    """Post-run invariant: quiescence must mean *completion*.

    ``pids``, ``progs`` and ``states`` are parallel sequences (the
    runtime's dense-index program arrays).  Every program must be
    INACTIVE with zero remaining workload, and the shared workload
    ledger drained - an empty event heap with any of these violated
    means the run silently lost work.
    """
    for pid, prog, state in zip(pids, progs, states):
        if state is not ProgramState.INACTIVE:
            raise ReproError(f"{pid!r} still active at quiescence")
        rem = prog.remaining_workload()
        if rem is not None and rem != 0:
            raise ReproError(f"{pid!r} finished with {rem} work remaining")
    if not tracker.is_done():
        raise ReproError(
            f"workload tracker not drained: {tracker.pending_keys()!r}"
        )

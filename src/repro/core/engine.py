"""Serial data-driven engine: the Alg. 1 reference executor.

Runs a collection of patch-programs to global termination in one
process, delivering streams immediately.  This is the correctness
reference for the DES runtime: both apply identical execution
semantics, so a solver must produce identical numerics under either.

The engine owns the Fig. 7 state machine: a program deactivates when it
votes to halt and reactivates when a stream arrives.  Scheduling order
follows program priorities (a max-heap), which is how the multi-level
priority strategies of Sec. V-D take effect even in serial runs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .._util import ReproError
from .patch_program import PatchProgram, ProgramState
from .stream import ProgramId, Stream

__all__ = ["EngineStats", "SerialEngine"]


@dataclass
class EngineStats:
    """Counters describing one engine run."""

    executions: int = 0
    streams: int = 0
    stream_items: int = 0
    stream_bytes: int = 0
    activations: int = 0
    max_queue: int = 0


class SerialEngine:
    """Serial executor for patch-programs with Alg. 1 semantics."""

    def __init__(self, max_executions: int = 100_000_000):
        self.max_executions = max_executions
        self.programs: dict[ProgramId, PatchProgram] = {}
        self._state: dict[ProgramId, ProgramState] = {}
        self._inbox: dict[ProgramId, list[Stream]] = {}
        self._inited: set[ProgramId] = set()
        self._heap: list = []
        self._queued: set[ProgramId] = set()
        self._seq = 0
        self.stats = EngineStats()

    # -- registration -------------------------------------------------------------

    def add_program(self, prog: PatchProgram) -> None:
        if prog.id in self.programs:
            raise ReproError(f"duplicate program {prog.id!r}")
        self.programs[prog.id] = prog
        self._state[prog.id] = ProgramState.ACTIVE  # all start active
        self._inbox[prog.id] = []

    def state(self, pid: ProgramId) -> ProgramState:
        return self._state[pid]

    # -- internals -----------------------------------------------------------------

    def _push(self, pid: ProgramId) -> None:
        if pid in self._queued:
            return
        self._queued.add(pid)
        self._seq += 1
        heapq.heappush(
            self._heap, (-self.programs[pid].priority(), self._seq, pid)
        )
        self.stats.max_queue = max(self.stats.max_queue, len(self._heap))

    def _deliver(self, s: Stream) -> None:
        if s.dst not in self.programs:
            raise ReproError(f"stream to unknown program {s.dst!r}")
        self._inbox[s.dst].append(s)
        self.stats.streams += 1
        self.stats.stream_items += s.items
        self.stats.stream_bytes += s.nbytes
        # Receiving a stream activates the target (Fig. 7).
        if self._state[s.dst] is ProgramState.INACTIVE:
            self._state[s.dst] = ProgramState.ACTIVE
            self.stats.activations += 1
        self._push(s.dst)

    def _execute(self, pid: ProgramId) -> None:
        prog = self.programs[pid]
        if self._state[pid] is not ProgramState.ACTIVE:
            raise ReproError(f"executing inactive program {pid!r}")
        if pid not in self._inited:
            prog.init()
            self._inited.add(pid)
        inbox = self._inbox[pid]
        while inbox:
            prog.input(inbox.pop(0))
        prog.compute()
        while (s := prog.output()) is not None:
            if s.src != pid:
                raise ReproError(
                    f"program {pid!r} emitted a stream claiming src {s.src!r}"
                )
            self._deliver(s)
        self.stats.executions += 1
        if prog.vote_to_halt() and not self._inbox[pid]:
            self._state[pid] = ProgramState.INACTIVE
        else:
            self._push(pid)

    # -- driver ------------------------------------------------------------------------

    def run(self) -> EngineStats:
        """Execute until global termination (no active programs)."""
        for pid in self.programs:
            self._push(pid)
        while self._heap:
            if self.stats.executions > self.max_executions:
                raise ReproError("engine exceeded max_executions; livelock?")
            _, _, pid = heapq.heappop(self._heap)
            self._queued.discard(pid)
            if self._state[pid] is ProgramState.ACTIVE:
                self._execute(pid)
        self._check_termination()
        return self.stats

    def _check_termination(self) -> None:
        for pid, prog in self.programs.items():
            if self._state[pid] is not ProgramState.INACTIVE:
                raise ReproError(f"program {pid!r} still active at termination")
            if self._inbox[pid]:
                raise ReproError(f"undelivered streams for {pid!r}")
            rem = prog.remaining_workload()
            if rem is not None and rem != 0:
                raise ReproError(
                    f"program {pid!r} terminated with workload {rem} remaining"
                )

"""The general master event loop (Alg. 1, full-featured variant).

The fastloop module owns the batched lean loop fault-free fresh runs
take; every other run - fault-tolerant, deadline-budgeted,
snapshot-armed, or resumed from a snapshot - is driven here, one
event at a time.  The two loops are bitwise-equivalent on the event
sequences both can execute (the golden-fingerprint and durability
suites pin this), so arming snapshots or resuming is
observation-free.

Layering: sits beside ``engine_des`` (imported by it); the runtime
instance rides along for the cost model, layout and snapshot schema.
"""

from __future__ import annotations

from types import SimpleNamespace

from .._util import ReproError
from ..core.patch_program import ProgramState
from .checkpoint import HostKilled, save_snapshot
from .metrics import DeadlineExceeded

__all__ = ["general_loop"]


def general_loop(rt, ctx: SimpleNamespace, deadline: float | None) -> None:
    """Drive ``ctx`` to quiescence (or deadline / injected host crash)."""
    sim, st, router = ctx.sim, ctx.st, ctx.router
    sched, transport, rec, inj = ctx.sched, ctx.transport, ctx.rec, ctx.inj
    report, bd, slow, ft = ctx.report, ctx.bd, ctx.slow, ctx.ft
    persist = ctx.persist
    lay = rt.layout
    cm = rt.cost
    while sim:
        if persist is not None:
            # Snapshot BEFORE popping: the saved heap still holds the
            # event the resumed run will pop first, so the cut falls
            # between two handler executions and the state is
            # crash-consistent by construction.
            if ctx.popped >= ctx.next_snap:
                save_snapshot(rt, ctx)
                ctx.next_snap = ctx.popped + persist.every
            if persist.kill_at is not None and ctx.popped == persist.kill_at:
                raise HostKilled(ctx.popped)
            ctx.popped += 1
        now, kind, data = sim.pop()

        if deadline is not None and now > deadline:
            # Events pop in time order: first past the budget ends the run.
            report.makespan = sim.makespan
            bd.finalize_idle(sim.makespan, sched.cores())
            raise DeadlineExceeded(deadline, now, report)

        # Control-plane events never advance the makespan.
        if kind in ("ack", "nack", "timer", "hedge"):
            getattr(transport, "on_" + kind)(data, now)
            continue
        if kind in ("hbeat", "hback", "restart"):
            # The elastic-membership plane (DESIGN.md §14) is control
            # traffic too: probes, replies and restarts never advance
            # the makespan or count as progress.  The handlers gate on
            # quiescence themselves (a heartbeat tick must keep running
            # while an undetected crash or pending restart holds work).
            if kind == "hbeat":
                rec.on_hbeat(now)
            else:
                getattr(rec, "on_" + kind)(data, now)
            continue

        # Staleness filtering (only faults ever trigger these).
        if kind in ("run_start", "run_end"):
            if sched.stale_run(data, now):
                continue
        elif kind == "msg_arrive" and data[0] in router.dead:
            continue  # receiver is down; the sender will retry
        elif kind == "requeue":
            pid, ep = data
            if ep != st.epoch[st.index[pid]] or router.proc_of[pid] in router.dead:
                continue
        elif kind in ("crash", "ckpt", "health") and (
            data in router.dead or rec.quiescent()
        ):
            continue  # double fault on one proc, or the job already done

        sim.observe(now)
        report.events += 1

        if kind == "run_start":
            sched.execute(data, now)
        elif kind == "run_end":
            sched.complete(data, now)
        elif kind == "msg_arrive":
            p, s, wid = data
            if not transport.receive(s, p, now, wid):
                sim.retract_progress()  # nothing was delivered
                continue
            dur = cm.unpack_cost(1, s.items) * slow(p, now)
            _, end = sched.masters[p].book(now, dur)
            bd.add(sched.masters[p].core, "unpack", dur)
            sim.push(end, "deliver", (s.dsti if s.dsti >= 0 else st.index[s.dst], s))
        elif kind == "deliver":
            i, s = data
            st.inbox[i].append(s)
            if ft:
                rec.log_delivery(st.pids[i], s)
            if st.state[i] is ProgramState.INACTIVE:
                st.state[i] = ProgramState.ACTIVE
            if i not in sched.running:
                sched.enqueue(i)
                sched.dispatch(router.proc_idx[i], now)
        elif kind == "crash":
            rec.on_crash(data, now)
            if data in ctx.cascaded:
                report.cascade_crashes += 1
            elif ctx.plan is not None:
                # A planned flapping crash schedules its comeback
                # (cascade followers carry no fault object and never
                # restart; the lookup key (proc, time) is exact).
                ra = ctx.plan.restart_delay(data, now)
                if ra > 0:
                    rec.expect_restart()
                    sim.push(now + ra, "restart", data)
            if inj is not None:
                # Correlated failure: seeded survivors follow suit.
                alive = [q for q in range(lay.nprocs)
                         if q not in router.dead]
                for q, t_q in inj.cascade_after(data, alive, now):
                    ctx.cascaded.add(q)
                    sim.push(t_q, "crash", q)
        elif kind == "failover":
            rec.on_failover(data, now)
        elif kind == "requeue":
            i = st.index[data[0]]
            sched.enqueue(i)
            sched.dispatch(router.proc_idx[i], now)
        elif kind == "ckpt":
            rec.on_ckpt(data, now)
        elif kind == "health":
            rec.on_health(now)
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown event kind {kind!r}")

"""Virtual-time cost model for the simulated cluster.

The DES executes the *real* data-driven algorithm; this model maps the
raw work counters each patch-program run reports (vertices solved,
edges relaxed, items packed...) to virtual seconds, split into the
categories of the paper's Fig. 16 breakdown:

``kernel``     user numerical computation on vertices
``graph_op``   DAG bookkeeping: heap pops, counter updates
``pack``       serializing outgoing remote streams
``unpack``     deserializing incoming remote streams
``sched``      master-thread program dispatch
``comm``       master-thread stream routing and message handling
``recovery``   fault-tolerance machinery: checkpoints, failover installs
``idle``       core time with no work available

Default constants are calibrated so that a JSNT-S-like run reproduces
the paper's observed proportions (~23% graph+pack overhead, 13-19%
comm, large idle at scale); absolute values are arbitrary but
self-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostModel", "CATEGORIES"]

CATEGORIES = (
    "kernel", "graph_op", "pack", "unpack", "sched", "comm", "recovery", "idle"
)


@dataclass(frozen=True)
class CostModel:
    """Per-operation virtual costs, in seconds."""

    t_vertex: float = 1.0e-6  # kernel per (cell, angle) vertex per group
    t_edge: float = 60.0e-9  # per relaxed dependency edge
    t_pop: float = 90.0e-9  # per ready-queue pop/push pair
    t_input_item: float = 45.0e-9  # per received item (counter update)
    t_pack_fixed: float = 1.2e-6  # per outgoing remote stream
    t_pack_item: float = 25.0e-9  # per packed item
    t_unpack_fixed: float = 1.0e-6  # per incoming remote stream
    t_unpack_item: float = 25.0e-9
    t_sched: float = 1.2e-6  # shared-queue pop per program run (worker)
    t_route: float = 0.2e-6  # master routing of one local stream
    t_exec_fixed: float = 1.5e-6  # per-run fixed overhead on the worker
    groups: int = 1  # energy groups swept together

    def run_cost_parts(
        self, counters: dict[str, int], remote_streams: int, remote_items: int
    ) -> tuple[float, float, float, float]:
        """``(kernel, graph_op, pack, fixed)`` of one worker run.

        The tuple form of :meth:`run_cost` (which wraps it): the
        scheduler's hot path sums the four parts directly instead of
        building and re-iterating a dict per execution.
        """
        v = counters.get("vertices", 0)
        e = counters.get("edges", 0)
        inp = counters.get("input_items", 0)
        # Ready-queue pops default to one per vertex; coarsened-graph
        # programs pop whole clusters and report the coarse count.
        pops = counters.get("pops", v)
        return (
            v * self.t_vertex * self.groups,
            e * self.t_edge + pops * self.t_pop + inp * self.t_input_item,
            remote_streams * self.t_pack_fixed
            + remote_items * self.t_pack_item * self.groups,
            self.t_exec_fixed,
        )

    def run_cost(
        self, counters: dict[str, int], remote_streams: int, remote_items: int
    ) -> dict[str, float]:
        """Virtual-time breakdown of one worker run of a patch-program."""
        kernel, graph_op, pack, fixed = self.run_cost_parts(
            counters, remote_streams, remote_items
        )
        return {
            "kernel": kernel,
            "graph_op": graph_op,
            "pack": pack,
            "fixed": fixed,
        }

    def unpack_cost(self, streams: int, items: int) -> float:
        return (
            streams * self.t_unpack_fixed
            + items * self.t_unpack_item * self.groups
        )

"""Route table and owner map (S9 routing plane, paper Sec. IV-B).

Streams are self-describing and therefore *routable*: the runtime
resolves any stream's destination program to its owning process
through the route table kept here.  The router owns

* ``proc_of``   - program id -> current owning process (the route table
  proper; consulted on every stream emission and queue pop),
* ``patch_owner`` - patch -> process (the mutable patch-level owner
  map behind it),
* ``owned``     - process -> resident program ids,
* ``dead``      - the set of crashed processes,

and implements the dynamic owner re-assignment of the fault-tolerance
extension (S20): on failover, a dead process's patches are re-assigned
round-robin over the survivors and every resident program's route is
updated, so in-flight and future streams chase the migrated programs.

Construction validates the user-supplied ``patch_proc`` table outright
(shape, range, program coverage, duplicates) so malformed route tables
fail fast rather than obscurely mid-simulation.

This layer sits directly above :mod:`repro.runtime.simulator` and
knows nothing about transport, scheduling or recovery policy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._util import ReproError
from ..core.stream import ProgramId

__all__ = ["Router"]


class Router:
    """Program/patch owner map with crash-driven re-assignment."""

    def __init__(self, programs: Sequence, patch_proc: np.ndarray, nprocs: int):
        if len(programs) == 0:
            raise ReproError("no programs to run")
        patch_proc = np.asarray(patch_proc)
        if patch_proc.ndim != 1:
            raise ReproError("patch_proc must be a one-dimensional array")
        if patch_proc.size == 0:
            raise ReproError("patch_proc is empty")
        if int(patch_proc.min()) < 0:
            raise ReproError(
                f"patch_proc contains negative process id {int(patch_proc.min())}"
            )
        if int(patch_proc.max()) >= nprocs:
            raise ReproError(
                f"patch_proc references proc {int(np.max(patch_proc))} but the "
                f"layout has only {nprocs} processes"
            )
        for prog in programs:
            if not 0 <= prog.id.patch < patch_proc.size:
                raise ReproError(
                    f"program {prog.id!r} references a patch outside "
                    f"patch_proc (length {patch_proc.size})"
                )
        self.nprocs = nprocs
        self.proc_of: dict[ProgramId, int] = {}  # the route table
        # Interned program ids: every program gets a dense index at
        # route-table build, so per-message bookkeeping above (e.g. the
        # transport's per-sender sequence counters) can live in flat
        # arrays keyed by ``index_of[pid]`` instead of per-id dicts.
        self.pids: list[ProgramId] = []
        self.index_of: dict[ProgramId, int] = {}
        #: ``proc_idx[index_of[pid]] == proc_of[pid]`` - the route table
        #: as a flat array over interned indices (the hot-path view;
        #: kept in sync by :meth:`reassign`).
        self.proc_idx: list[int] = []
        for prog in programs:
            if prog.id in self.proc_of:
                raise ReproError(f"duplicate program {prog.id!r}")
            p = int(patch_proc[prog.id.patch])
            self.proc_of[prog.id] = p
            self.index_of[prog.id] = len(self.pids)
            self.pids.append(prog.id)
            self.proc_idx.append(p)
        self.patch_owner = patch_proc.astype(np.int64).copy()
        self.owned: dict[int, list[ProgramId]] = {p: [] for p in range(nprocs)}
        for pid, p in self.proc_of.items():
            self.owned[p].append(pid)
        self.dead: set[int] = set()
        #: Demoted processes: alive but persistently slow; they keep
        #: receiving/forwarding in-flight streams but no longer own
        #: programs and are skipped as re-assignment targets.
        self.demoted: set[int] = set()

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready owner-map state.

        ``owned`` lists are captured verbatim - their order drives the
        recovery layer's per-process checkpoint iteration - while the
        membership-only ``dead``/``demoted`` sets are sorted.  The
        interning tables (``pids``/``index_of``) are construction-time
        facts re-derived from the program list, not state.
        """
        return {
            "proc_idx": list(self.proc_idx),
            "patch_owner": self.patch_owner,
            "owned": {p: list(v) for p, v in self.owned.items()},
            "dead": sorted(self.dead),
            "demoted": sorted(self.demoted),
        }

    def load_state_dict(self, d: dict) -> None:
        self.proc_idx = [int(x) for x in d["proc_idx"]]
        for pid, i in self.index_of.items():
            self.proc_of[pid] = self.proc_idx[i]
        self.patch_owner = np.asarray(d["patch_owner"], dtype=np.int64).copy()
        self.owned = {int(p): list(v) for p, v in d["owned"].items()}
        self.dead = set(d["dead"])
        self.demoted = set(d["demoted"])

    def alive(self) -> list[int]:
        return [q for q in range(self.nprocs) if q not in self.dead]

    def healthy(self) -> list[int]:
        """Alive and not demoted: the eligible re-assignment targets."""
        return [q for q in self.alive() if q not in self.demoted]

    def mark_dead(self, proc: int) -> None:
        self.dead.add(proc)

    def demote(self, proc: int) -> None:
        """Mark a live process degraded (no crash: it stays reachable)."""
        if proc in self.dead:
            raise ReproError(f"cannot demote dead proc {proc}")
        self.demoted.add(proc)

    def reassign(self, proc: int) -> list[ProgramId]:
        """Migrate a dead process's programs to survivors.

        Re-assigns the dead owner's patches round-robin over the
        survivors through the patch owner map, updates the route table
        and residency lists, and returns the migrated program ids in
        deterministic (sorted) order.  Restoring the migrated programs
        is the recovery layer's job, not the router's.

        Also serves degraded-mode demotion: the demoted process is
        alive but excluded (like any other demoted proc) from the
        target set.  Should every survivor be demoted, targets fall
        back to all live procs other than the one being drained.
        """
        alive = [q for q in self.healthy() if q != proc] or [
            q for q in self.alive() if q != proc
        ]
        moved = sorted(self.owned[proc])
        self.owned[proc] = []
        for i, patch in enumerate(sorted({pid.patch for pid in moved})):
            self.patch_owner[patch] = alive[i % len(alive)]
        for pid in moved:
            new_p = int(self.patch_owner[pid.patch])
            self.proc_of[pid] = new_p
            self.proc_idx[self.index_of[pid]] = new_p
            self.owned[new_p].append(pid)
        return moved

"""Route table and owner map (S9 routing plane, paper Sec. IV-B).

Streams are self-describing and therefore *routable*: the runtime
resolves any stream's destination program to its owning process
through the route table kept here.  The router owns

* ``proc_of``   - program id -> current owning process (the route table
  proper; consulted on every stream emission and queue pop),
* ``patch_owner`` - patch -> process (the mutable patch-level owner
  map behind it),
* ``owned``     - process -> resident program ids,
* ``dead``      - the set of crashed processes,
* ``inc``/``fenced`` - per-process incarnation numbers and the fenced
  set: the membership view of the elastic-membership extension
  (DESIGN.md §14).  A process's life is numbered; fencing pre-bumps
  the number (invalidating the old life's traffic) and a rejoin
  *announces* the pre-bumped incarnation,

and implements the dynamic owner re-assignment of the fault-tolerance
extension (S20): on failover, a dead process's patches are re-assigned
round-robin over the survivors and every resident program's route is
updated, so in-flight and future streams chase the migrated programs.
On rejoin, :meth:`rebalance_to` pulls patches back under a bounded
move budget.

Construction validates the user-supplied ``patch_proc`` table outright
(shape, range, program coverage, duplicates) so malformed route tables
fail fast rather than obscurely mid-simulation.

This layer sits directly above :mod:`repro.runtime.simulator` and
knows nothing about transport, scheduling or recovery policy.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .._util import ReproError
from ..core.stream import ProgramId

__all__ = ["Router"]


class Router:
    """Program/patch owner map with crash-driven re-assignment."""

    def __init__(self, programs: Sequence, patch_proc: np.ndarray, nprocs: int):
        if len(programs) == 0:
            raise ReproError("no programs to run")
        patch_proc = np.asarray(patch_proc)
        if patch_proc.ndim != 1:
            raise ReproError("patch_proc must be a one-dimensional array")
        if patch_proc.size == 0:
            raise ReproError("patch_proc is empty")
        if int(patch_proc.min()) < 0:
            raise ReproError(
                f"patch_proc contains negative process id {int(patch_proc.min())}"
            )
        if int(patch_proc.max()) >= nprocs:
            raise ReproError(
                f"patch_proc references proc {int(np.max(patch_proc))} but the "
                f"layout has only {nprocs} processes"
            )
        for prog in programs:
            if not 0 <= prog.id.patch < patch_proc.size:
                raise ReproError(
                    f"program {prog.id!r} references a patch outside "
                    f"patch_proc (length {patch_proc.size})"
                )
        self.nprocs = nprocs
        self.proc_of: dict[ProgramId, int] = {}  # the route table
        # Interned program ids: every program gets a dense index at
        # route-table build, so per-message bookkeeping above (e.g. the
        # transport's per-sender sequence counters) can live in flat
        # arrays keyed by ``index_of[pid]`` instead of per-id dicts.
        self.pids: list[ProgramId] = []
        self.index_of: dict[ProgramId, int] = {}
        #: ``proc_idx[index_of[pid]] == proc_of[pid]`` - the route table
        #: as a flat array over interned indices (the hot-path view;
        #: kept in sync by :meth:`reassign`).
        self.proc_idx: list[int] = []
        for prog in programs:
            if prog.id in self.proc_of:
                raise ReproError(f"duplicate program {prog.id!r}")
            p = int(patch_proc[prog.id.patch])
            self.proc_of[prog.id] = p
            self.index_of[prog.id] = len(self.pids)
            self.pids.append(prog.id)
            self.proc_idx.append(p)
        self.patch_owner = patch_proc.astype(np.int64).copy()
        self.owned: dict[int, list[ProgramId]] = {p: [] for p in range(nprocs)}
        for pid, p in self.proc_of.items():
            self.owned[p].append(pid)
        self.dead: set[int] = set()
        #: Demoted processes: alive but persistently slow; they keep
        #: receiving/forwarding in-flight streams but no longer own
        #: programs and are skipped as re-assignment targets.
        self.demoted: set[int] = set()
        #: Per-process incarnation number: bumped once per life
        #: transition (fence or announce).  Membership view: a fenced
        #: proc's current traffic is from a life already invalidated.
        self.inc: list[int] = [0] * nprocs
        self.fenced: set[int] = set()

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready owner-map state.

        ``owned`` lists are captured verbatim - their order drives the
        recovery layer's per-process checkpoint iteration - while the
        membership-only ``dead``/``demoted`` sets are sorted.  The
        interning tables (``pids``/``index_of``) are construction-time
        facts re-derived from the program list, not state.
        """
        return {
            "proc_idx": list(self.proc_idx),
            "patch_owner": self.patch_owner,
            "owned": {p: list(v) for p, v in self.owned.items()},
            "dead": sorted(self.dead),
            "demoted": sorted(self.demoted),
            "inc": list(self.inc),
            "fenced": sorted(self.fenced),
        }

    def load_state_dict(self, d: dict) -> None:
        self.proc_idx = [int(x) for x in d["proc_idx"]]
        for pid, i in self.index_of.items():
            self.proc_of[pid] = self.proc_idx[i]
        self.patch_owner = np.asarray(d["patch_owner"], dtype=np.int64).copy()
        self.owned = {int(p): list(v) for p, v in d["owned"].items()}
        self.dead = set(d["dead"])
        self.demoted = set(d["demoted"])
        self.inc = [int(x) for x in d.get("inc", [0] * self.nprocs)]
        self.fenced = set(d.get("fenced", ()))

    def alive(self) -> list[int]:
        return [q for q in range(self.nprocs) if q not in self.dead]

    def healthy(self) -> list[int]:
        """Alive, not demoted and not fenced: the eligible
        re-assignment (and rebalance-donor) targets."""
        return [
            q for q in self.alive()
            if q not in self.demoted and q not in self.fenced
        ]

    def mark_dead(self, proc: int) -> None:
        self.dead.add(proc)

    def demote(self, proc: int) -> None:
        """Mark a live process degraded (no crash: it stays reachable)."""
        if proc in self.dead:
            raise ReproError(f"cannot demote dead proc {proc}")
        self.demoted.add(proc)

    def promote(self, proc: int) -> None:
        """Reverse a demotion: the process is healthy again and becomes
        an eligible re-assignment/rebalance target."""
        self.demoted.discard(proc)

    # -- elastic membership (incarnations; DESIGN.md §14) ----------------------------

    def fence(self, proc: int) -> int:
        """Invalidate ``proc``'s current life: pre-bump its incarnation.

        Idempotent per life: fencing an already-fenced proc does not
        bump again.  Traffic stamped with the old incarnation is now
        stale and rejected at receivers.  Returns the new incarnation.
        """
        if proc not in self.fenced:
            self.inc[proc] += 1
            self.fenced.add(proc)
        return self.inc[proc]

    def announce(self, proc: int) -> int:
        """Begin a new life for ``proc``: it is alive, unfenced, and
        speaks with the announced incarnation.

        A fenced proc adopts its pre-bumped number (fence + announce is
        one life transition); an unfenced one (a restart discovered
        before suspicion fired) bumps here.  Returns the incarnation.
        """
        if proc in self.fenced:
            self.fenced.discard(proc)
        else:
            self.inc[proc] += 1
        self.dead.discard(proc)
        return self.inc[proc]

    def reassign(self, proc: int) -> list[ProgramId]:
        """Migrate a dead process's programs to survivors.

        Re-assigns the dead owner's patches round-robin over the
        survivors through the patch owner map, updates the route table
        and residency lists, and returns the migrated program ids in
        deterministic (sorted) order.  Restoring the migrated programs
        is the recovery layer's job, not the router's.

        Also serves degraded-mode demotion: the demoted process is
        alive but excluded (like any other demoted proc) from the
        target set.  Should every survivor be demoted, targets fall
        back to all live procs other than the one being drained.
        """
        alive = [q for q in self.healthy() if q != proc] or [
            q for q in self.alive() if q != proc
        ]
        moved = sorted(self.owned[proc])
        self.owned[proc] = []
        for i, patch in enumerate(sorted({pid.patch for pid in moved})):
            self.patch_owner[patch] = alive[i % len(alive)]
        for pid in moved:
            new_p = int(self.patch_owner[pid.patch])
            self.proc_of[pid] = new_p
            self.proc_idx[self.index_of[pid]] = new_p
            self.owned[new_p].append(pid)
        return moved

    def rebalance_to(
        self, proc: int, budget: int
    ) -> tuple[list[ProgramId], dict[ProgramId, int]]:
        """Pull patches back to a rejoined/re-promoted process.

        Moves up to ``budget`` *patches* (with all their resident
        programs) from the currently most-loaded healthy donors to
        ``proc``, stopping once ``proc`` reaches the mean healthy load
        or donors would drop below it.  Fully deterministic: the donor
        is the max-loaded proc (ties to the lowest id) and the patch
        its highest-numbered one.  Returns the moved program ids in
        sorted order plus each one's donor (the migration source the
        recovery layer records).  Restoring the moved programs is the
        recovery layer's job, not the router's.
        """
        srcs: dict[ProgramId, int] = {}
        if budget <= 0 or proc in self.dead or proc in self.fenced:
            return [], srcs
        pool = self.healthy()
        if proc not in pool:
            return [], srcs
        target = -(-len(self.pids) // len(pool))  # ceil mean load
        while budget > 0 and len(self.owned[proc]) < target:
            donors = [
                q for q in pool
                if q != proc and len(self.owned[q]) > len(self.owned[proc]) + 1
            ]
            if not donors:
                break
            donor = max(donors, key=lambda q: (len(self.owned[q]), -q))
            patch = max(pid.patch for pid in self.owned[donor])
            pids = sorted(p for p in self.owned[donor] if p.patch == patch)
            self.patch_owner[patch] = proc
            for pid in pids:
                self.owned[donor].remove(pid)
                self.proc_of[pid] = proc
                self.proc_idx[self.index_of[pid]] = proc
                self.owned[proc].append(pid)
                srcs[pid] = donor
            budget -= 1
        return sorted(srcs), srcs

"""Program scheduling and execution (S9 dispatch plane, paper Fig. 8).

Per-process shared priority queues, worker pools, and program
execution.  Workers pull from the process's shared active queue
themselves; the master thread is NOT on this path - it only routes
streams - which is precisely the design the paper credits for
scalability.

Core layout is owned by *policy objects* rather than mode branches:

* :class:`HybridPolicy`   - JSweep: a dedicated master core per
  process plus a worker pool, so streams are routed while workers
  compute and intra-process imbalance is absorbed by the pool.
* :class:`MpiOnlyPolicy`  - the manually-parallelized baselines
  (JASMIN/JAUMIN/PSD-b style): one rank per core; the master duties
  and the single worker *share one core's timeline*, so routing,
  unpacking and dispatch compete with computation, and there is no
  intra-process pool to absorb load imbalance.

A policy builds the master/worker :class:`~repro.runtime.simulator.
Resource` timelines outright - ``MpiOnlyPolicy`` returns the same
shared resource as both master and sole worker, labeled as the worker
core, so no resource aliasing is needed anywhere downstream.

Sits above the simulator (events, resources, shared tie-break
sequence), the router (owner lookups, crashed-process checks) and the
transport (remote emissions of completed runs).  The recovery layer,
when armed, is attached afterwards via :attr:`Scheduler.recovery` so
completed runs are marked dirty for incremental checkpointing.

Straggler mitigation (opt-in via :class:`~repro.runtime.faults.
AdaptiveConfig.speculation`): every booked run's scaled duration feeds
a sliding window; a run whose duration exceeds ``spec_factor`` times
the window's ``spec_percentile`` is treated as straggling and a backup
execution is booked on the fastest other process with an idle worker.
Both completions carry the same *serial*; the first to finish commits
(through the epoch-keyed idempotent machinery) and the loser is
discarded, so results stay bitwise-exact.  The backup's core time is
booked under the dynamic ``speculation`` breakdown category.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.patch_program import PatchProgram, ProgramState
from ..core.stream import ProgramId, Stream
from ..core.termination import WorkloadTracker
from .._util import ReproError
from .cluster import Layout
from .costmodel import CostModel
from .metrics import Breakdown, RunReport
from .router import Router
from .simulator import Resource, Simulator
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .faults import AdaptiveConfig
    from .sanitizer import InvariantSanitizer

__all__ = [
    "RunState",
    "SchedulerPolicy",
    "HybridPolicy",
    "MpiOnlyPolicy",
    "make_policy",
    "Scheduler",
]


@dataclass
class RunState:
    """Shared per-run program-execution state (Alg. 1's bookkeeping)."""

    progs: dict[ProgramId, PatchProgram] = field(default_factory=dict)
    state: dict[ProgramId, ProgramState] = field(default_factory=dict)
    inbox: dict[ProgramId, list[Stream]] = field(default_factory=dict)
    inited: set[ProgramId] = field(default_factory=set)
    epoch: dict[ProgramId, int] = field(default_factory=dict)

    def add(self, prog: PatchProgram) -> None:
        self.progs[prog.id] = prog
        self.state[prog.id] = ProgramState.ACTIVE
        self.inbox[prog.id] = []
        self.epoch[prog.id] = 0  # execution epoch (bumped on failover)


class SchedulerPolicy:
    """Core-layout policy: how masters and workers map onto cores."""

    mode: str

    def build_resources(
        self, nprocs: int, layout: Layout
    ) -> tuple[list[Resource], list[list[Resource]]]:
        """Return ``(masters, workers)`` resource timelines per process."""
        raise NotImplementedError


class HybridPolicy(SchedulerPolicy):
    """Dedicated master core + worker pool per process (JSweep)."""

    mode = "hybrid"

    def build_resources(
        self, nprocs: int, layout: Layout
    ) -> tuple[list[Resource], list[list[Resource]]]:
        masters = [Resource(("m", p)) for p in range(nprocs)]
        workers = [
            [Resource(("w", p, w)) for w in range(layout.workers_per_proc)]
            for p in range(nprocs)
        ]
        return masters, workers


class MpiOnlyPolicy(SchedulerPolicy):
    """One rank per core: master duties and the worker share the core."""

    mode = "mpi_only"

    def build_resources(
        self, nprocs: int, layout: Layout
    ) -> tuple[list[Resource], list[list[Resource]]]:
        shared = [Resource(("w", p, 0)) for p in range(nprocs)]
        return shared, [[r] for r in shared]


def make_policy(mode: str) -> SchedulerPolicy:
    if mode == "hybrid":
        return HybridPolicy()
    if mode == "mpi_only":
        return MpiOnlyPolicy()
    raise ReproError(f"unknown runtime mode {mode!r}")


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    s = sorted(values)
    k = max(1, -(-len(s) * q // 100))  # ceil without importing math
    return s[int(k) - 1]


class Scheduler:
    """Shared-queue dispatch and worker-side program execution."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        policy: SchedulerPolicy,
        layout: Layout,
        st: RunState,
        cm: CostModel,
        report: RunReport,
        bd: Breakdown,
        slow: Callable[[int, float], float],
        transport: Transport,
        tracker: WorkloadTracker,
        sanitizer: InvariantSanitizer | None = None,
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        self.sim = sim
        self.router = router
        self.policy = policy
        self.st = st
        self.cm = cm
        self.report = report
        self.bd = bd
        self.slow = slow
        self.transport = transport
        self.tracker = tracker
        self.san = sanitizer
        self.recovery = None  # attached by the recovery layer when armed
        nprocs = router.nprocs
        self.masters, self.workers = policy.build_resources(nprocs, layout)
        self.idle_workers: list[list[int]] = [
            list(range(len(self.workers[p])))[::-1] for p in range(nprocs)
        ]
        self.pq: list[list] = [[] for _ in range(nprocs)]
        self.queued: set[ProgramId] = set()
        self.running: set[ProgramId] = set()
        # -- adaptive straggler machinery (dormant when ``adaptive`` is
        # None or speculation/demotion are off) --------------------------
        self.acfg = adaptive
        self._run_serial = 0  # unique id per booked execution
        self._spec: set[int] = set()  # serials with a backup in flight
        self._done: set[int] = set()  # speculated serials already landed
        self._recent: deque[float] = deque(maxlen=128)  # scaled durations
        #: EWMA of each process's observed slowdown factor; the
        #: recovery layer's health probe reads this for demotion.
        self.proc_slow_ewma: list[float] = [1.0] * nprocs

    # -- queueing and dispatch -----------------------------------------------------

    def enqueue(self, pid: ProgramId) -> None:
        """Push a program onto its owner's shared priority queue."""
        if pid in self.queued or pid in self.running:
            return
        self.queued.add(pid)
        seq = self.sim.next_seq()
        heapq.heappush(
            self.pq[self.router.proc_of[pid]],
            (-self.st.progs[pid].priority(), seq, pid),
        )

    def dispatch(self, p: int, now: float) -> None:
        """Hand queued programs to idle workers of process ``p``.

        Workers pull from the shared active queue themselves (Fig. 8);
        the pop cost is charged to the worker as part of the run.
        """
        if p in self.router.dead:
            return
        while self.idle_workers[p] and self.pq[p]:
            _, _, pid = heapq.heappop(self.pq[p])
            if self.router.proc_of[pid] != p:
                continue  # stale entry: the program migrated away
            self.queued.discard(pid)
            if self.st.state[pid] is not ProgramState.ACTIVE or pid in self.running:
                continue
            w = self.idle_workers[p].pop()
            self.running.add(pid)
            self.sim.push(now, "run_start", (p, w, pid, self.st.epoch[pid]))

    def release(self, p: int, w: int, now: float) -> None:
        """Return worker ``w`` to the idle pool and re-dispatch."""
        self.idle_workers[p].append(w)
        self.dispatch(p, now)

    def drop(self, pid: ProgramId) -> None:
        """Forget a migrating program's queue/run residue (failover)."""
        self.running.discard(pid)
        self.queued.discard(pid)

    def stale_run(self, data: tuple, now: float) -> bool:
        """Filter superseded run events (only faults ever trigger this)."""
        p, w, pid, ep = data[0], data[1], data[2], data[-1]
        if p in self.router.dead:
            return True  # executed on a crashed process: lost
        if ep != self.st.epoch[pid]:
            # Superseded execution on a live process (defensive;
            # reachable only through failover races): free the worker,
            # drop the run.
            self.release(p, w, now)
            return True
        return False

    # -- worker-side execution (Alg. 1 inner loop) ---------------------------------

    def execute(self, data: tuple, now: float) -> None:
        """Run one program on its assigned worker; books virtual time."""
        p, w, pid, ep = data
        st = self.st
        prog = st.progs[pid]
        sf = self.slow(p, now)
        if ep > 0:
            self.report.reexecutions += 1
        if pid not in st.inited:
            prog.init()
            st.inited.add(pid)
        box = st.inbox[pid]
        if box:
            for s in box:
                prog.input(s)
            box.clear()
        prog.compute()
        outputs: list[Stream] = []
        while (s := prog.output()) is not None:
            outputs.append(s)
        counters = prog.last_run_counters()
        self.report.vertices_solved += counters.get("vertices", 0)
        remote = [s for s in outputs if self.router.proc_of[s.dst] != p]
        cost = self.cm.run_cost(
            counters,
            remote_streams=len(remote),
            remote_items=sum(s.items for s in remote),
        )
        duration = sum(cost.values())
        duration += self.cm.t_sched  # queue pop / dispatch, on the worker
        wres = self.workers[p][w]
        start, end = wres.book(now, duration * sf)
        if self.san is not None:
            self.san.on_booking(wres.core, start, end)
        self.bd.add(wres.core, "kernel", cost["kernel"] * sf)
        self.bd.add(wres.core, "graph_op", (cost["graph_op"] + cost["fixed"]) * sf)
        self.bd.add(wres.core, "pack", cost["pack"] * sf)
        self.bd.add(wres.core, "sched", self.cm.t_sched * sf)
        self.report.executions += 1
        self._run_serial += 1
        serial = self._run_serial
        self.sim.push(end, "run_end", (p, w, pid, outputs, serial, False, ep))
        a = self.acfg
        if a is not None and (a.speculation or a.demotion):
            # Slowdown telemetry: cheap EWMA per process, fed to the
            # recovery layer's health probe for demotion decisions.
            self.proc_slow_ewma[p] = 0.8 * self.proc_slow_ewma[p] + 0.2 * sf
        if a is not None and a.speculation:
            self._maybe_speculate(
                p, pid, outputs, serial, ep, duration, duration * sf, end, now
            )
            self._recent.append(duration * sf)

    def _maybe_speculate(
        self, p, pid, outputs, serial, ep, duration, scaled, end, now
    ) -> None:
        """Book a backup execution when this run looks like a straggler.

        The detector compares the run's scaled duration against a
        percentile of the recent-durations window; mitigation re-books
        the *same* outputs on the fastest other healthy process with an
        idle worker, but only when the backup's projected finish beats
        the primary's.  First completion wins (see :meth:`complete`).
        """
        a = self.acfg
        if len(self._recent) < a.spec_min_samples:
            return
        if scaled <= a.spec_factor * _percentile(
            self._recent, a.spec_percentile
        ):
            return
        best = None
        for q in range(self.router.nprocs):
            if q == p or q in self.router.dead or q in self.router.demoted:
                continue
            if not self.idle_workers[q]:
                continue
            sf_q = self.slow(q, now)
            if best is None or sf_q < best[1]:
                best = (q, sf_q)
        if best is None:
            return
        q, sf_q = best
        wres = self.workers[q][self.idle_workers[q][-1]]
        if max(now, wres.free) + duration * sf_q >= end:
            return  # the backup would not finish before the primary
        w_q = self.idle_workers[q].pop()
        start, end_q = wres.book(now, duration * sf_q)
        if self.san is not None:
            self.san.on_booking(wres.core, start, end_q)
        self.bd.add(wres.core, "speculation", duration * sf_q)
        self.report.speculative_launches += 1
        self._spec.add(serial)
        if self.sim.note_hook is not None:
            self.sim.note(now, "hb_spec", (serial, p, q))
        self.sim.push(
            end_q, "run_end", (q, w_q, pid, outputs, serial, True, ep)
        )

    def complete(self, data: tuple, now: float) -> None:
        """Finish one run: route emissions, commit workload, requeue.

        For a speculated run both the primary and its backup arrive
        here under the same serial: the first completion commits, the
        second only frees its worker (its outputs are byte-identical,
        so dropping them is safe and keeps results bitwise-exact).
        """
        p, w, pid, outputs, serial, is_backup, ep = data
        note = self.sim.note_hook is not None
        if serial in self._spec:
            if serial in self._done:
                # The race's loser: the winner already routed/committed.
                if is_backup:
                    self.report.speculative_wasted += 1
                if note:
                    self.sim.note(
                        now, "hb_complete",
                        (str(pid), p, serial, is_backup, False),
                    )
                self.release(p, w, now)
                return
            self._done.add(serial)
            if is_backup:
                self.report.speculative_wins += 1
        if note:
            self.sim.note(
                now, "hb_complete", (str(pid), p, serial, is_backup, True)
            )
        st = self.st
        prog = st.progs[pid]
        for s in outputs:
            self.report.stream_items += s.items
            dst_p = self.router.proc_of[s.dst]
            if dst_p == p:
                # Local routing through the master thread.
                dur = self.cm.t_route * self.slow(p, now)
                start, end = self.masters[p].book(now, dur)
                if self.san is not None:
                    self.san.on_booking(self.masters[p].core, start, end)
                self.bd.add(self.masters[p].core, "comm", dur)
                self.report.local_streams += 1
                self.sim.push(end, "deliver", (s.dst, s))
            else:
                self.transport.send(s, pid, ep, now, p, dst_p)
        self.running.discard(pid)
        if self.recovery is not None:
            self.recovery.mark_dirty(pid)
        rem = prog.remaining_workload()
        if rem is not None:
            # Workload-commit fast path; epoch-keyed so a stale
            # execution cannot overwrite a migrated program's fresher
            # commit.
            if self.san is not None:
                self.san.on_commit(pid, rem, ep)
            if note:
                self.sim.note(now, "hb_commit", (str(pid), p, ep, serial))
            self.tracker.commit(pid, rem, epoch=ep)
        if prog.vote_to_halt() and not st.inbox[pid]:
            st.state[pid] = ProgramState.INACTIVE
        else:
            st.state[pid] = ProgramState.ACTIVE
            self.enqueue(pid)
        self.release(p, w, now)

    # -- reporting -----------------------------------------------------------------

    def cores(self) -> list[tuple]:
        """Every core timeline of the layout (masters may share with
        workers under ``mpi_only``; the set dedupes)."""
        nprocs = self.router.nprocs
        return sorted(
            {r.core for p in range(nprocs) for r in self.workers[p]}
            | {self.masters[p].core for p in range(nprocs)}
        )

"""Program scheduling and execution (S9 dispatch plane, paper Fig. 8).

Per-process shared priority queues, worker pools, and program
execution.  Workers pull from the process's shared active queue
themselves; the master thread is NOT on this path - it only routes
streams - which is precisely the design the paper credits for
scalability.

Core layout is owned by *policy objects* rather than mode branches:

* :class:`HybridPolicy`   - JSweep: a dedicated master core per
  process plus a worker pool, so streams are routed while workers
  compute and intra-process imbalance is absorbed by the pool.
* :class:`MpiOnlyPolicy`  - the manually-parallelized baselines
  (JASMIN/JAUMIN/PSD-b style): one rank per core; the master duties
  and the single worker *share one core's timeline*, so routing,
  unpacking and dispatch compete with computation, and there is no
  intra-process pool to absorb load imbalance.

A policy builds the master/worker :class:`~repro.runtime.simulator.
Resource` timelines outright - ``MpiOnlyPolicy`` returns the same
shared resource as both master and sole worker, labeled as the worker
core, so no resource aliasing is needed anywhere downstream.

Sits above the simulator (events, resources, shared tie-break
sequence), the router (owner lookups, crashed-process checks) and the
transport (remote emissions of completed runs).  The recovery layer,
when armed, is attached afterwards via :attr:`Scheduler.recovery` so
completed runs are marked dirty for incremental checkpointing.

Straggler mitigation (opt-in via :class:`~repro.runtime.faults.
AdaptiveConfig.speculation`): every booked run's scaled duration feeds
a sliding window; a run whose duration exceeds ``spec_factor`` times
the window's ``spec_percentile`` is treated as straggling and a backup
execution is booked on the fastest other process with an idle worker.
Both completions carry the same *serial*; the first to finish commits
(through the epoch-keyed idempotent machinery) and the loser is
discarded, so results stay bitwise-exact.  The backup's core time is
booked under the dynamic ``speculation`` breakdown category.
"""

from __future__ import annotations

import heapq
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.patch_program import PatchProgram, ProgramState
from ..core.stream import ProgramId, Stream
from ..core.termination import WorkloadTracker
from .._util import ReproError
from .cluster import Layout
from .costmodel import CostModel
from .metrics import Breakdown, RunReport
from .router import Router
from .simulator import Resource, Simulator
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .faults import AdaptiveConfig
    from .sanitizer import InvariantSanitizer

__all__ = [
    "RunState",
    "SchedulerPolicy",
    "HybridPolicy",
    "MpiOnlyPolicy",
    "make_policy",
    "Scheduler",
]


@dataclass
class RunState:
    """Shared per-run program-execution state (Alg. 1's bookkeeping).

    All fields are parallel arrays over the *dense program index*
    minted by :meth:`add` in registration order - the same order the
    :class:`~repro.runtime.router.Router` interns ``index_of``, so the
    scheduler, router and transport agree on every index.  Hot-path
    bookkeeping (state machine, inboxes, epochs) is therefore flat list
    indexing; ``index`` maps a :class:`ProgramId` back to its slot for
    cold-path callers (recovery, requeue handling, reports).
    """

    pids: list[ProgramId] = field(default_factory=list)
    index: dict[ProgramId, int] = field(default_factory=dict)
    progs: list[PatchProgram] = field(default_factory=list)
    state: list[ProgramState] = field(default_factory=list)
    inbox: list[list[Stream]] = field(default_factory=list)
    inited: list[bool] = field(default_factory=list)
    epoch: list[int] = field(default_factory=list)  # bumped on failover

    def add(self, prog: PatchProgram) -> None:
        self.index[prog.id] = len(self.pids)
        self.pids.append(prog.id)
        self.progs.append(prog)
        self.state.append(ProgramState.ACTIVE)
        self.inbox.append([])
        self.inited.append(False)
        self.epoch.append(0)

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready execution state, program contexts included.

        Each initialized program contributes its ``checkpoint()`` dict
        (shared topology excluded, exactly like recovery snapshots);
        never-initialized programs are in their pristine constructed
        state and need nothing.  ``pids`` rides along purely as a
        restore-time consistency check.
        """
        return {
            "pids": list(self.pids),
            "state": [s.value for s in self.state],
            "inbox": [list(b) for b in self.inbox],
            "inited": list(self.inited),
            "epoch": [int(e) for e in self.epoch],
            "progs": [
                (p.checkpoint() if self.inited[i] else None)
                for i, p in enumerate(self.progs)
            ],
        }

    def load_state_dict(self, d: dict) -> None:
        if list(d["pids"]) != self.pids:
            raise ReproError(
                "snapshot program set does not match this composition"
            )
        self.state = [ProgramState(v) for v in d["state"]]
        self.inbox = [list(b) for b in d["inbox"]]
        self.inited = [bool(v) for v in d["inited"]]
        self.epoch = [int(e) for e in d["epoch"]]
        for prog, snap, inited in zip(self.progs, d["progs"], self.inited):
            if inited and snap is not None:
                prog.restore(snap)


class SchedulerPolicy:
    """Core-layout policy: how masters and workers map onto cores."""

    mode: str

    def build_resources(
        self, nprocs: int, layout: Layout
    ) -> tuple[list[Resource], list[list[Resource]]]:
        """Return ``(masters, workers)`` resource timelines per process."""
        raise NotImplementedError


class HybridPolicy(SchedulerPolicy):
    """Dedicated master core + worker pool per process (JSweep)."""

    mode = "hybrid"

    def build_resources(
        self, nprocs: int, layout: Layout
    ) -> tuple[list[Resource], list[list[Resource]]]:
        masters = [Resource(("m", p)) for p in range(nprocs)]
        workers = [
            [Resource(("w", p, w)) for w in range(layout.workers_per_proc)]
            for p in range(nprocs)
        ]
        return masters, workers


class MpiOnlyPolicy(SchedulerPolicy):
    """One rank per core: master duties and the worker share the core."""

    mode = "mpi_only"

    def build_resources(
        self, nprocs: int, layout: Layout
    ) -> tuple[list[Resource], list[list[Resource]]]:
        shared = [Resource(("w", p, 0)) for p in range(nprocs)]
        return shared, [[r] for r in shared]


def make_policy(mode: str) -> SchedulerPolicy:
    if mode == "hybrid":
        return HybridPolicy()
    if mode == "mpi_only":
        return MpiOnlyPolicy()
    raise ReproError(f"unknown runtime mode {mode!r}")


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    s = sorted(values)
    k = max(1, -(-len(s) * q // 100))  # ceil without importing math
    return s[int(k) - 1]


class Scheduler:
    """Shared-queue dispatch and worker-side program execution."""

    def __init__(
        self,
        sim: Simulator,
        router: Router,
        policy: SchedulerPolicy,
        layout: Layout,
        st: RunState,
        cm: CostModel,
        report: RunReport,
        bd: Breakdown,
        slow: Callable[[int, float], float],
        transport: Transport,
        tracker: WorkloadTracker,
        sanitizer: InvariantSanitizer | None = None,
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        self.sim = sim
        self.router = router
        self.policy = policy
        self.st = st
        self.cm = cm
        self.report = report
        self.bd = bd
        self.slow = slow
        self.transport = transport
        self.tracker = tracker
        self.san = sanitizer
        self.recovery = None  # attached by the recovery layer when armed
        nprocs = router.nprocs
        self.masters, self.workers = policy.build_resources(nprocs, layout)
        self.idle_workers: list[list[int]] = [
            list(range(len(self.workers[p])))[::-1] for p in range(nprocs)
        ]
        self.pq: list[list] = [[] for _ in range(nprocs)]
        # Queue/run membership over dense program indices (see RunState).
        self.queued: set[int] = set()
        self.running: set[int] = set()
        # -- adaptive straggler machinery (dormant when ``adaptive`` is
        # None or speculation/demotion are off) --------------------------
        self.acfg = adaptive
        self._run_serial = 0  # unique id per booked execution
        self._spec: set[int] = set()  # serials with a backup in flight
        self._done: set[int] = set()  # speculated serials already landed
        self._recent: deque[float] = deque(maxlen=128)  # scaled durations
        #: EWMA of each process's observed slowdown factor; the
        #: recovery layer's health probe reads this for demotion.
        self.proc_slow_ewma: list[float] = [1.0] * nprocs
        # -- hot-path caches ---------------------------------------------
        #: Set by the composition root when the slowdown hook is the
        #: constant 1.0 (no fault injector): execute/complete then skip
        #: the per-run hook call and the ``* 1.0`` scalings, which are
        #: bitwise no-ops on IEEE doubles.
        self.unit_slow = False
        self._k_run_start = sim.kind_id("run_start")
        self._k_run_end = sim.kind_id("run_end")
        self._k_deliver = sim.kind_id("deliver")

    # -- queueing and dispatch -----------------------------------------------------

    def enqueue(self, i: int) -> None:
        """Push a program (by dense index) onto its owner's queue."""
        if i in self.queued or i in self.running:
            return
        self.queued.add(i)
        seq = self.sim.next_seq()
        heapq.heappush(
            self.pq[self.router.proc_idx[i]],
            (-self.st.progs[i].priority(), seq, i),
        )

    def dispatch(self, p: int, now: float) -> None:
        """Hand queued programs to idle workers of process ``p``.

        Workers pull from the shared active queue themselves (Fig. 8);
        the pop cost is charged to the worker as part of the run.
        """
        if p in self.router.dead:
            return
        while self.idle_workers[p] and self.pq[p]:
            _, _, i = heapq.heappop(self.pq[p])
            if self.router.proc_idx[i] != p:
                continue  # stale entry: the program migrated away
            self.queued.discard(i)
            if self.st.state[i] is not ProgramState.ACTIVE or i in self.running:
                continue
            w = self.idle_workers[p].pop()
            self.running.add(i)
            self.sim.push_id(
                now, self._k_run_start, (p, w, i, self.st.epoch[i])
            )

    def release(self, p: int, w: int, now: float) -> None:
        """Return worker ``w`` to the idle pool and re-dispatch."""
        self.idle_workers[p].append(w)
        self.dispatch(p, now)

    def drop(self, i: int) -> None:
        """Forget a migrating program's queue/run residue (failover)."""
        self.running.discard(i)
        self.queued.discard(i)

    def revive(self, p: int) -> None:
        """Rebuild a restarted process's idle worker pool (rejoin).

        Workers running at crash time are never released - their
        run_end events are filtered as dead-proc residue - so a
        rejoining incarnation would otherwise dispatch into an empty
        pool forever.  All of the old life's programs migrated away at
        suspicion, so the full roster is exactly the idle set.
        """
        self.idle_workers[p] = list(range(len(self.workers[p])))[::-1]

    def stale_run(self, data: tuple, now: float) -> bool:
        """Filter superseded run events (only faults ever trigger this)."""
        p, w, i, ep = data[0], data[1], data[2], data[-1]
        if p in self.router.dead:
            return True  # executed on a crashed process: lost
        if ep != self.st.epoch[i]:
            # Superseded execution on a live process (defensive;
            # reachable only through failover races): free the worker,
            # drop the run.  A run that straddled a crash+rejoin may
            # find its worker already back in the revived pool.
            if w not in self.idle_workers[p]:
                self.release(p, w, now)
            return True
        return False

    # -- worker-side execution (Alg. 1 inner loop) ---------------------------------

    def execute(self, data: tuple, now: float) -> None:
        """Run one program on its assigned worker; books virtual time."""
        p, w, i, ep = data
        st = self.st
        prog = st.progs[i]
        unit = self.unit_slow
        sf = 1.0 if unit else self.slow(p, now)
        report = self.report
        if ep > 0:
            report.reexecutions += 1
        if not st.inited[i]:
            prog.init()
            st.inited[i] = True
        box = st.inbox[i]
        if box:
            for s in box:
                prog.input(s)
            box.clear()
        prog.compute()
        outputs = prog.drain_outputs()
        counters = prog.last_run_counters()
        report.vertices_solved += counters.get("vertices", 0)
        index_of = self.router.index_of
        proc_idx = self.router.proc_idx
        remote_streams = remote_items = 0
        for s in outputs:
            di = s.dsti
            if di < 0:
                di = index_of[s.dst]
                s.dsti = di
            if proc_idx[di] != p:
                remote_streams += 1
                remote_items += s.items
        cm = self.cm
        kernel, graph_op, pack, fixed = cm.run_cost_parts(
            counters, remote_streams, remote_items
        )
        t_sched = cm.t_sched
        # Left-to-right sum in the parts' (dict-insertion) order, then
        # the queue pop / dispatch charge: the same float-accumulation
        # sequence as ``sum(run_cost(...).values()) + t_sched``.
        duration = kernel + graph_op + pack + fixed + t_sched
        wres = self.workers[p][w]
        core = wres.core
        if unit:
            start, end = wres.book(now, duration)
            if self.san is not None:
                self.san.on_booking(core, start, end)
            self.bd.add_run(core, kernel, graph_op + fixed, pack, t_sched)
        else:
            start, end = wres.book(now, duration * sf)
            if self.san is not None:
                self.san.on_booking(core, start, end)
            self.bd.add_run(
                core, kernel * sf, (graph_op + fixed) * sf, pack * sf,
                t_sched * sf,
            )
        report.executions += 1
        self._run_serial += 1
        serial = self._run_serial
        self.sim.push_id(
            end, self._k_run_end, (p, w, i, outputs, serial, False, ep)
        )
        a = self.acfg
        if a is not None and (a.speculation or a.demotion):
            # Slowdown telemetry: cheap EWMA per process, fed to the
            # recovery layer's health probe for demotion decisions.
            self.proc_slow_ewma[p] = 0.8 * self.proc_slow_ewma[p] + 0.2 * sf
        if a is not None and a.speculation:
            self._maybe_speculate(
                p, i, outputs, serial, ep, duration, duration * sf, end, now
            )
            self._recent.append(duration * sf)

    def _maybe_speculate(
        self, p, i, outputs, serial, ep, duration, scaled, end, now
    ) -> None:
        """Book a backup execution when this run looks like a straggler.

        The detector compares the run's scaled duration against a
        percentile of the recent-durations window; mitigation re-books
        the *same* outputs on the fastest other healthy process with an
        idle worker, but only when the backup's projected finish beats
        the primary's.  First completion wins (see :meth:`complete`).
        """
        a = self.acfg
        if len(self._recent) < a.spec_min_samples:
            return
        if scaled <= a.spec_factor * _percentile(
            self._recent, a.spec_percentile
        ):
            return
        best = None
        for q in range(self.router.nprocs):
            if q == p or q in self.router.dead or q in self.router.demoted:
                continue
            if not self.idle_workers[q]:
                continue
            sf_q = self.slow(q, now)
            if best is None or sf_q < best[1]:
                best = (q, sf_q)
        if best is None:
            return
        q, sf_q = best
        wres = self.workers[q][self.idle_workers[q][-1]]
        if max(now, wres.free) + duration * sf_q >= end:
            return  # the backup would not finish before the primary
        w_q = self.idle_workers[q].pop()
        start, end_q = wres.book(now, duration * sf_q)
        if self.san is not None:
            self.san.on_booking(wres.core, start, end_q)
        self.bd.add(wres.core, "speculation", duration * sf_q)
        self.report.speculative_launches += 1
        self._spec.add(serial)
        if self.sim.note_hook is not None:
            self.sim.note(now, "hb_spec", (serial, p, q))
        self.sim.push(
            end_q, "run_end", (q, w_q, i, outputs, serial, True, ep)
        )

    def complete(self, data: tuple, now: float) -> None:
        """Finish one run: route emissions, commit workload, requeue.

        For a speculated run both the primary and its backup arrive
        here under the same serial: the first completion commits, the
        second only frees its worker (its outputs are byte-identical,
        so dropping them is safe and keeps results bitwise-exact).
        """
        p, w, i, outputs, serial, is_backup, ep = data
        st = self.st
        note = self.sim.note_hook is not None
        if serial in self._spec:
            if serial in self._done:
                # The race's loser: the winner already routed/committed.
                if is_backup:
                    self.report.speculative_wasted += 1
                if note:
                    self.sim.note(
                        now, "hb_complete",
                        (str(st.pids[i]), p, serial, is_backup, False),
                    )
                self.release(p, w, now)
                return
            self._done.add(serial)
            if is_backup:
                self.report.speculative_wins += 1
        if note:
            self.sim.note(
                now, "hb_complete",
                (str(st.pids[i]), p, serial, is_backup, True),
            )
        prog = st.progs[i]
        unit = self.unit_slow
        proc_idx = self.router.proc_idx
        master = self.masters[p]
        for s in outputs:
            self.report.stream_items += s.items
            dst_p = proc_idx[s.dsti]
            if dst_p == p:
                # Local routing through the master thread.
                dur = (
                    self.cm.t_route if unit
                    else self.cm.t_route * self.slow(p, now)
                )
                start, end = master.book(now, dur)
                if self.san is not None:
                    self.san.on_booking(master.core, start, end)
                self.bd.add(master.core, "comm", dur)
                self.report.local_streams += 1
                self.sim.push_id(end, self._k_deliver, (s.dsti, s))
            else:
                self.transport.send(s, st.pids[i], ep, now, p, dst_p)
        self.running.discard(i)
        if self.recovery is not None:
            self.recovery.mark_dirty(st.pids[i])
        rem = prog.remaining_workload()
        if rem is not None:
            # Workload-commit fast path; epoch-keyed so a stale
            # execution cannot overwrite a migrated program's fresher
            # commit.  Tracker keys are the dense indices.
            if self.san is not None:
                self.san.on_commit(st.pids[i], rem, ep)
            if note:
                self.sim.note(
                    now, "hb_commit", (str(st.pids[i]), p, ep, serial)
                )
            self.tracker.commit(i, rem, epoch=ep)
        if prog.vote_to_halt() and not st.inbox[i]:
            st.state[i] = ProgramState.INACTIVE
        else:
            st.state[i] = ProgramState.ACTIVE
            if not self.pq[p] and proc_idx[i] == p and p not in self.router.dead:
                # Queue bypass: the freed worker immediately re-runs the
                # only runnable program of its process.  Equivalent to
                # enqueue + release: dispatch would pop exactly this
                # entry and hand it exactly this worker (the idle pool
                # is LIFO and ``w`` would be the most recent append),
                # and renumbering the sequence counter over the skipped
                # queue entry preserves every relative event order.
                self.running.add(i)
                self.sim.push_id(
                    now, self._k_run_start, (p, w, i, st.epoch[i])
                )
                return
            self.enqueue(i)
        self.release(p, w, now)

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready dispatch state.

        The shared priority queues and the LIFO idle pools are captured
        *verbatim* (a heap is just a list with the heap invariant; the
        idle pools' order decides which worker runs next), while the
        membership-only queue/run/speculation sets are sorted.  Resource
        timelines reduce to their ``free`` horizon - bookings in the
        past are immutable history already folded into the breakdown.
        """
        return {
            "masters_free": [r.free for r in self.masters],
            "workers_free": [[r.free for r in row] for row in self.workers],
            "idle_workers": [list(x) for x in self.idle_workers],
            "pq": [list(q) for q in self.pq],
            "queued": sorted(self.queued),
            "running": sorted(self.running),
            "run_serial": self._run_serial,
            "spec": sorted(self._spec),
            "done": sorted(self._done),
            "recent": list(self._recent),
            "proc_slow_ewma": list(self.proc_slow_ewma),
        }

    def load_state_dict(self, d: dict) -> None:
        # Workers first, masters second: under ``mpi_only`` each master
        # *is* its process's sole worker (same Resource object), and
        # this order makes the aliased double-write idempotent.
        for row, frees in zip(self.workers, d["workers_free"]):
            for r, f in zip(row, frees):
                r.free = float(f)
        for r, f in zip(self.masters, d["masters_free"]):
            r.free = float(f)
        self.idle_workers = [list(x) for x in d["idle_workers"]]
        self.pq = [[tuple(e) for e in q] for q in d["pq"]]
        self.queued = set(d["queued"])
        self.running = set(d["running"])
        self._run_serial = int(d["run_serial"])
        self._spec = set(d["spec"])
        self._done = set(d["done"])
        self._recent = deque(d["recent"], maxlen=128)
        self.proc_slow_ewma = [float(x) for x in d["proc_slow_ewma"]]

    # -- reporting -----------------------------------------------------------------

    def cores(self) -> list[tuple]:
        """Every core timeline of the layout (masters may share with
        workers under ``mpi_only``; the set dedupes)."""
        nprocs = self.router.nprocs
        return sorted(
            {r.core for p in range(nprocs) for r in self.workers[p]}
            | {self.masters[p].core for p in range(nprocs)}
        )

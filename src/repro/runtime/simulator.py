"""Discrete-event simulator core (S10): the substitute for Tianhe-2.

The bottom layer of the runtime stack (paper Sec. IV / Fig. 8's
"virtual machine"): an event heap ordered by ``(virtual time, push
sequence)``, serial :class:`Resource` timelines (one per simulated
core), the virtual clock, and the quiescence counter that recognizes
when no forward-progress event is outstanding.  Everything above -
transport, routing, scheduling, recovery, and the runtimes themselves
(data-driven, BSP, KBA) - runs on this one substrate, so every runtime
variant shares a single cost model and time axis, as the paper's
Table I caveat requests.

This layer knows nothing about patch-programs, streams, processes or
faults: event *kinds* are opaque strings and event *data* is opaque to
the heap.  The one sequence counter is shared between the event heap
and any external priority queues (via :meth:`Simulator.next_seq`), so
tie-breaking is globally deterministic across all queues of a run.

The optional trace hook fires once per popped event with a structured
:class:`TraceEvent`; the ``trace_fields`` callable (supplied by the
layer that defines the event vocabulary) extracts the proc/core/
program fields from each event's opaque data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from .._util import ReproError

__all__ = [
    "Resource",
    "ResourceBank",
    "BankedResource",
    "Simulator",
    "TraceEvent",
    "WaitEdge",
    "StallReport",
    "StallError",
]


class Resource:
    """A serial server (one core's timeline)."""

    __slots__ = ("free", "core")

    def __init__(self, core: tuple):
        self.free = 0.0
        self.core = core

    def book(self, now: float, duration: float) -> tuple[float, float]:
        start = max(now, self.free)
        end = start + duration
        self.free = end
        return start, end


class ResourceBank:
    """Struct-of-arrays backing store for a family of serial timelines.

    One bank per run holds every core's free-time in a flat array
    (``free[slot]``) with the core label alongside; :class:`
    BankedResource` views share the storage, so two views of the same
    slot alias one timeline (how ``mpi_only`` shares a core between
    master duties and the worker).  Standalone :class:`Resource`
    remains for callers that need a single detached timeline.
    """

    __slots__ = ("free", "cores")

    def __init__(self):
        self.free: list[float] = []
        self.cores: list[tuple] = []

    def add(self, core: tuple) -> int:
        """Reserve one timeline slot; returns its index."""
        slot = len(self.free)
        self.free.append(0.0)
        self.cores.append(core)
        return slot

    def view(self, slot: int) -> "BankedResource":
        return BankedResource(self, slot)


class BankedResource:
    """A serial server whose timeline lives in a shared ResourceBank.

    Same contract as :class:`Resource` (``book``, ``free``, ``core``);
    booking arithmetic is kept textually identical so swapping the
    backing store cannot perturb virtual times.
    """

    __slots__ = ("bank", "slot", "core")

    def __init__(self, bank: ResourceBank, slot: int):
        self.bank = bank
        self.slot = slot
        self.core = bank.cores[slot]

    @property
    def free(self) -> float:
        return self.bank.free[self.slot]

    def book(self, now: float, duration: float) -> tuple[float, float]:
        free = self.bank.free
        start = max(now, free[self.slot])
        end = start + duration
        free[self.slot] = end
        return start, end


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record: what the event loop processed.

    ``detail`` is only populated on out-of-band notes (see
    :meth:`Simulator.note`): a flat tuple of JSON-scalar fields whose
    schema is keyed by ``kind`` (e.g. the ``hb_*`` happens-before
    records consumed by :mod:`repro.analysis.hb`).
    """

    time: float
    kind: str
    proc: int | None
    core: tuple | None
    program: str | None
    detail: tuple | None = None


@dataclass(frozen=True)
class WaitEdge:
    """One blocked dependency in a stall's wait-for graph: ``waiter``
    cannot make progress until ``holder`` supplies the named stream."""

    waiter: str  # destination program id (who is starved)
    holder: str  # source program id (who owes the stream)
    src_proc: int
    dst_proc: int
    retries: int
    reason: str  # e.g. "link 0->1 partitioned (never heals)"

    def to_dict(self) -> dict:
        return {
            "waiter": self.waiter,
            "holder": self.holder,
            "src_proc": self.src_proc,
            "dst_proc": self.dst_proc,
            "retries": self.retries,
            "reason": self.reason,
        }

    @staticmethod
    def from_dict(d: dict) -> "WaitEdge":
        return WaitEdge(
            waiter=d["waiter"],
            holder=d["holder"],
            src_proc=int(d["src_proc"]),
            dst_proc=int(d["dst_proc"]),
            retries=int(d["retries"]),
            reason=d["reason"],
        )


@dataclass(frozen=True)
class StallReport:
    """Structured diagnosis of a no-progress stall.

    Produced by the liveness watchdog when retransmit timers keep
    circulating but nothing useful has committed for a full horizon:
    the wait-for graph snapshot names who is blocked on whom and why,
    plus any dependency cycle found in it.
    """

    now: float  # virtual time of detection
    last_progress: float  # virtual time of the last progress event
    horizon: float  # configured no-progress horizon
    pending_events: int  # events still on the heap at detection
    waiting: tuple[WaitEdge, ...] = ()
    lost: tuple[WaitEdge, ...] = ()  # edges that can never be satisfied
    cycle: tuple[str, ...] = ()  # program ids forming a wait cycle

    def describe(self) -> str:
        lines = [
            f"no progress for {self.now - self.last_progress:.6f}s of "
            f"virtual time (horizon {self.horizon:.6f}s) at t="
            f"{self.now:.6f}s with {self.pending_events} pending events"
        ]
        for e in self.lost:
            lines.append(
                f"  LOST  {e.waiter} <- {e.holder} "
                f"(proc {e.src_proc}->{e.dst_proc}, {e.retries} retries): "
                f"{e.reason}"
            )
        for e in self.waiting:
            if e not in self.lost:
                lines.append(
                    f"  WAIT  {e.waiter} <- {e.holder} "
                    f"(proc {e.src_proc}->{e.dst_proc}, {e.retries} "
                    f"retries): {e.reason}"
                )
        if self.cycle:
            lines.append("  CYCLE " + " -> ".join(self.cycle))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready view of the report (``math.inf`` survives the
        round-trip because JSON's ``Infinity`` literal does).

        Consumers that only render text keep :meth:`describe`; the
        service layer and trace tooling attach this dict to job
        failures and exported traces instead of exception prose.
        """
        return {
            "now": self.now,
            "last_progress": self.last_progress,
            "horizon": self.horizon,
            "pending_events": self.pending_events,
            "waiting": [e.to_dict() for e in self.waiting],
            "lost": [e.to_dict() for e in self.lost],
            "cycle": list(self.cycle),
        }

    @staticmethod
    def from_dict(d: dict) -> "StallReport":
        return StallReport(
            now=float(d["now"]),
            last_progress=float(d["last_progress"]),
            horizon=float(d["horizon"]),
            pending_events=int(d["pending_events"]),
            waiting=tuple(WaitEdge.from_dict(e) for e in d["waiting"]),
            lost=tuple(WaitEdge.from_dict(e) for e in d["lost"]),
            cycle=tuple(d["cycle"]),
        )


class StallError(ReproError):
    """Raised by the watchdog instead of letting a wedged run spin."""

    def __init__(self, report: StallReport):
        self.report = report
        super().__init__("liveness watchdog: " + report.describe())


class Simulator:
    """Event heap + virtual clock + quiescence counter.

    ``progress_kinds`` names the event kinds that represent actual
    forward progress of a run; :attr:`live` counts how many of them are
    outstanding, which lets higher layers recognize quiescence (e.g.
    checkpoint/crash events scheduled after a job finished are inert).

    :meth:`arm_watchdog` adds a virtual-time liveness check on top of
    the same counters: when a watched control event (a retransmit
    timer) pops with *zero* progress events outstanding and more than
    ``horizon`` virtual seconds since the last progress event was
    processed, the run has stopped doing useful work while the control
    plane keeps spinning - the watchdog asks the owning layer for a
    wait-for snapshot and raises :class:`StallError` if the snapshot
    confirms a genuine stall (a ``None`` snapshot means the timers are
    stale and the heap will drain; the watchdog stays quiet).
    """

    __slots__ = ("_events", "_seq", "live", "makespan", "_progress",
                 "trace_hook", "trace_fields", "note_hook",
                 "last_progress", "_prev_progress", "_wd_horizon",
                 "_wd_snapshot", "_wd_kinds",
                 "_slab_time", "_slab_seq", "_slab_kind", "_slab_data",
                 "_free", "_kind_ids", "_kind_names", "_progress_mask",
                 "_wd_mask", "_pop_counts", "peak_heap",
                 "_turn_t", "_turn_batch")

    def __init__(
        self,
        progress_kinds: frozenset = frozenset(),
        trace_hook: Callable[[TraceEvent], None] | None = None,
        trace_fields: Callable[[str, Any], tuple] | None = None,
        note_hook: Callable[[TraceEvent], None] | None = None,
    ):
        self._events: list = []
        self._seq = 0
        self.live = 0  # outstanding progress events (quiescence detector)
        self.makespan = 0.0
        self._progress = frozenset(progress_kinds)
        self.trace_hook = trace_hook
        self.trace_fields = trace_fields
        self.note_hook = note_hook
        self.last_progress = 0.0  # virtual time of last progress pop
        self._prev_progress = 0.0  # pre-pop value (for retraction)
        self._wd_horizon = 0.0  # 0 = watchdog disarmed
        self._wd_snapshot: Callable[[float], StallReport | None] | None = None
        self._wd_kinds: frozenset = frozenset()
        # Slab storage: heap entries are scalar 3-tuples (t, seq, slot);
        # kind/data live in struct-of-arrays slabs indexed by slot, and
        # popped slots are recycled through the free list.  Event kinds
        # are interned to dense integer ids; the progress / watchdog
        # frozensets are projected onto per-id masks so the hot loop
        # tests a list index instead of a set membership.
        self._slab_time: list[float] = []
        self._slab_seq: list[int] = []
        self._slab_kind: list[int] = []
        self._slab_data: list[Any] = []
        self._free: list[int] = []
        self._kind_ids: dict[str, int] = {}
        self._kind_names: list[str] = []
        self._progress_mask: list[bool] = []
        self._wd_mask: list[bool] = []
        self._pop_counts: list[int] = []
        self.peak_heap = 0  # high-water heap occupancy (perf_summary)
        # Same-time turnaround (armed by pop_batch, cleared by its
        # callers): while the batch for timestamp ``_turn_t`` is being
        # processed the heap holds no events at that time, so a push
        # at exactly ``_turn_t`` would be popped next in push order
        # anyway - it joins the in-flight batch without touching the
        # heap or the slab.
        self._turn_t = -1.0
        self._turn_batch: list | None = None

    def arm_watchdog(
        self,
        horizon: float,
        snapshot: Callable[[float], StallReport | None],
        watch_kinds: frozenset = frozenset(("timer",)),
    ) -> None:
        """Arm the no-progress detector.

        ``snapshot(now)`` is called on suspicion; it must return a
        :class:`StallReport` to confirm the stall (raised wrapped in
        :class:`StallError`) or ``None`` to wave it off.
        """
        # Watchdog config is re-armed by the composition root on every
        # run (engine_des), restore included; the snapshot hook is a
        # bound callback and cannot round-trip through a codec anyway.
        self._wd_horizon = horizon  # repro: transient
        self._wd_snapshot = snapshot  # repro: transient
        self._wd_kinds = frozenset(watch_kinds)  # repro: transient
        self._wd_mask = [k in self._wd_kinds for k in self._kind_names]

    def kind_id(self, kind: str) -> int:
        """Intern an event kind, minting a dense id on first sight.

        Ids are stable for the simulator's lifetime; the progress and
        watchdog masks are extended in lock-step so id-indexed checks
        agree with the string-set semantics of :meth:`push`/:meth:`pop`.
        """
        kid = self._kind_ids.get(kind)
        if kid is None:
            kid = len(self._kind_names)
            self._kind_ids[kind] = kid
            self._kind_names.append(kind)
            self._progress_mask.append(kind in self._progress)
            self._wd_mask.append(kind in self._wd_kinds)
            self._pop_counts.append(0)
        return kid

    def note(self, t: float, kind: str, detail: tuple) -> None:
        """Record one out-of-band structured note (e.g. an ``hb_*``
        happens-before record) on the note stream.

        Notes are pure observation: they never touch the event heap or
        the shared tie-break sequence, so arming the note hook cannot
        perturb event ordering - golden fingerprints are bitwise
        identical with and without it.  Callers on hot paths should
        guard on :attr:`note_hook` before building ``detail``.
        """
        if self.note_hook is not None:
            self.note_hook(
                TraceEvent(t, kind, None, None, None, tuple(detail))
            )

    def next_seq(self) -> int:
        """Next tie-break sequence number, shared with external queues."""
        self._seq += 1
        return self._seq

    def push(self, t: float, kind: str, data: Any) -> None:
        """Schedule one event at virtual time ``t``."""
        self.push_id(t, self.kind_id(kind), data)

    def push_id(self, t: float, kid: int, data: Any) -> None:
        """Schedule one event by interned kind id (hot path).

        Callers that push the same kind repeatedly intern it once via
        :meth:`kind_id` and skip the per-push dict lookup.
        """
        if t == self._turn_t:
            # Turnaround: join the in-flight same-timestamp batch in
            # push order (== the order heap tie-breaking would yield;
            # skipping a sequence tick renumbers but never reorders).
            # Push/pop quiescence accounting cancels; pop accounting
            # (counts, progress clock, trace) runs here instead.
            self._pop_counts[kid] += 1
            if self._progress_mask[kid]:
                self._prev_progress = self.last_progress
                self.last_progress = t
            if self.trace_hook is not None:
                proc = core = program = None
                kind = self._kind_names[kid]
                if self.trace_fields is not None:
                    proc, core, program = self.trace_fields(kind, data)
                self.trace_hook(TraceEvent(t, kind, proc, core, program))
            self._turn_batch.append((kid, data))
            return
        self._seq += 1
        seq = self._seq
        if self._progress_mask[kid]:
            self.live += 1
        free = self._free
        if free:
            slot = free.pop()
            self._slab_time[slot] = t
            self._slab_seq[slot] = seq
            self._slab_kind[slot] = kid
            self._slab_data[slot] = data
        else:
            slot = len(self._slab_kind)
            self._slab_time.append(t)
            self._slab_seq.append(seq)
            self._slab_kind.append(kid)
            self._slab_data.append(data)
        heapq.heappush(self._events, (t, seq, slot))

    def pop(self) -> tuple[float, str, Any]:
        """Pop the earliest event; fires the trace hook when armed."""
        events = self._events
        n = len(events)
        if n > self.peak_heap:
            self.peak_heap = n
        t, _, slot = heapq.heappop(events)
        kid = self._slab_kind[slot]
        data = self._slab_data[slot]
        self._slab_data[slot] = None
        self._free.append(slot)
        self._pop_counts[kid] += 1
        kind = self._kind_names[kid]
        if self._progress_mask[kid]:
            self.live -= 1
            self._prev_progress = self.last_progress
            self.last_progress = t
        elif (
            self._wd_horizon > 0.0
            and self._wd_mask[kid]
            and self.live == 0
            and t - self.last_progress > self._wd_horizon
        ):
            # Control plane still ticking, data plane silent past the
            # horizon: suspect a stall and ask the owner to confirm.
            report = self._wd_snapshot(t)
            if report is not None:
                raise StallError(report)
        if self.trace_hook is not None:
            proc = core = program = None
            if self.trace_fields is not None:
                proc, core, program = self.trace_fields(kind, data)
            self.trace_hook(TraceEvent(t, kind, proc, core, program))
        return t, kind, data

    def pop_batch(self) -> tuple[float, list[tuple[int, Any]]]:
        """Drain every event sharing the earliest timestamp (hot path).

        Returns ``(t, [(kind_id, data), ...])`` in exact pop order.
        Safe to batch because events pushed while the batch is being
        *processed* carry strictly larger sequence numbers, so they
        sort after every event already drained here even at the same
        timestamp - the interleaving is identical to one-at-a-time
        :meth:`pop`.  Per-event accounting (progress clock, quiescence
        counter, watchdog, trace hook, pop counts) runs per drained
        event, in pop order, exactly as :meth:`pop` would.  The batch
        also advances the makespan high-water mark to ``t``, replacing
        the caller's per-event :meth:`observe`.
        """
        events = self._events
        n = len(events)
        if n > self.peak_heap:
            self.peak_heap = n
        heappop = heapq.heappop
        slab_kind = self._slab_kind
        slab_data = self._slab_data
        free = self._free
        append_free = free.append
        counts = self._pop_counts
        pmask = self._progress_mask
        trace = self.trace_hook
        wd = self._wd_horizon > 0.0
        t0, _, slot = heappop(events)
        batch: list[tuple[int, Any]] = []
        append_batch = batch.append
        nprog = 0
        while True:
            kid = slab_kind[slot]
            data = slab_data[slot]
            slab_data[slot] = None
            append_free(slot)
            counts[kid] += 1
            if pmask[kid]:
                nprog += 1
            elif (
                wd
                and self._wd_mask[kid]
                and self.live - nprog == 0
                and t0 - (t0 if nprog else self.last_progress) > self._wd_horizon
            ):
                report = self._wd_snapshot(t0)
                if report is not None:
                    raise StallError(report)
            if trace is not None:
                proc = core = program = None
                kind = self._kind_names[kid]
                if self.trace_fields is not None:
                    proc, core, program = self.trace_fields(kind, data)
                trace(TraceEvent(t0, kind, proc, core, program))
            append_batch((kid, data))
            if not events or events[0][0] != t0:
                break
            _, _, slot = heappop(events)
        if nprog:
            self.live -= nprog
            self._prev_progress = t0 if nprog > 1 else self.last_progress
            self.last_progress = t0
        if t0 > self.makespan:
            self.makespan = t0
        self._turn_t = t0
        self._turn_batch = batch
        return t0, batch

    def peek_time(self) -> float:
        """Virtual time of the earliest pending event (heap non-empty)."""
        return self._events[0][0]

    # -- durability (snapshot/restore) ---------------------------------------------

    def state_dict(self) -> dict:
        """Codec-ready view of the heap, clock and interning tables.

        The heap list and the slabs are captured *verbatim* (heap
        entries are tuples, slab payloads are the live event data):
        restoring them re-establishes the exact pop order, tie-break
        sequences included.  ``kind_names`` is the id mapping itself -
        its order must round-trip bit-for-bit.  Only taken between
        events (the turnaround scratch is always idle then).
        """
        return {
            "events": list(self._events),
            "seq": self._seq,
            "live": self.live,
            "makespan": self.makespan,
            "last_progress": self.last_progress,
            "prev_progress": self._prev_progress,
            "slab_time": list(self._slab_time),
            "slab_seq": list(self._slab_seq),
            "slab_kind": list(self._slab_kind),
            "slab_data": list(self._slab_data),
            "free": list(self._free),
            "kind_names": list(self._kind_names),
            "pop_counts": list(self._pop_counts),
            "peak_heap": self.peak_heap,
        }

    def load_state_dict(self, d: dict) -> None:
        """Restore :meth:`state_dict`; derived masks are rebuilt from
        the progress/watchdog kind sets armed at composition."""
        names = list(d["kind_names"])
        self._kind_names = names
        self._kind_ids = {k: i for i, k in enumerate(names)}
        self._progress_mask = [k in self._progress for k in names]
        self._wd_mask = [k in self._wd_kinds for k in names]
        self._events = list(d["events"])
        self._seq = d["seq"]
        self.live = d["live"]
        self.makespan = d["makespan"]
        self.last_progress = d["last_progress"]
        self._prev_progress = d["prev_progress"]
        self._slab_time = list(d["slab_time"])
        self._slab_seq = list(d["slab_seq"])
        self._slab_kind = list(d["slab_kind"])
        self._slab_data = list(d["slab_data"])
        self._free = list(d["free"])
        self._pop_counts = list(d["pop_counts"])
        self.peak_heap = d["peak_heap"]
        self._turn_t = -1.0
        self._turn_batch = None

    def event_counts(self) -> dict[str, int]:
        """Events processed so far, by kind (perf accounting)."""
        return {
            k: c
            for k, c in zip(self._kind_names, self._pop_counts)
            if c
        }

    def retract_progress(self) -> None:
        """Undo the last pop's progress stamp.

        Called by the owning layer when a popped progress-kind event
        turns out to be no progress at all - a duplicate, corrupted or
        mis-routed delivery that was discarded.  Without the retraction
        a livelock (e.g. retransmissions endlessly re-delivering an
        already-seen message whose acks are black-holed) refreshes the
        progress clock on every retry and the watchdog never fires.
        """
        self.last_progress = self._prev_progress

    def observe(self, t: float) -> None:
        """Advance the virtual clock's high-water mark (the makespan)."""
        if t > self.makespan:
            self.makespan = t

    def __bool__(self) -> bool:
        return bool(self._events)

    def __len__(self) -> int:
        return len(self._events)

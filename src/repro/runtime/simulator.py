"""Discrete-event simulator core (S10): the substitute for Tianhe-2.

The bottom layer of the runtime stack (paper Sec. IV / Fig. 8's
"virtual machine"): an event heap ordered by ``(virtual time, push
sequence)``, serial :class:`Resource` timelines (one per simulated
core), the virtual clock, and the quiescence counter that recognizes
when no forward-progress event is outstanding.  Everything above -
transport, routing, scheduling, recovery, and the runtimes themselves
(data-driven, BSP, KBA) - runs on this one substrate, so every runtime
variant shares a single cost model and time axis, as the paper's
Table I caveat requests.

This layer knows nothing about patch-programs, streams, processes or
faults: event *kinds* are opaque strings and event *data* is opaque to
the heap.  The one sequence counter is shared between the event heap
and any external priority queues (via :meth:`Simulator.next_seq`), so
tie-breaking is globally deterministic across all queues of a run.

The optional trace hook fires once per popped event with a structured
:class:`TraceEvent`; the ``trace_fields`` callable (supplied by the
layer that defines the event vocabulary) extracts the proc/core/
program fields from each event's opaque data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from .._util import ReproError

__all__ = [
    "Resource",
    "Simulator",
    "TraceEvent",
    "WaitEdge",
    "StallReport",
    "StallError",
]


class Resource:
    """A serial server (one core's timeline)."""

    __slots__ = ("free", "core")

    def __init__(self, core: tuple):
        self.free = 0.0
        self.core = core

    def book(self, now: float, duration: float) -> tuple[float, float]:
        start = max(now, self.free)
        end = start + duration
        self.free = end
        return start, end


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record: what the event loop processed.

    ``detail`` is only populated on out-of-band notes (see
    :meth:`Simulator.note`): a flat tuple of JSON-scalar fields whose
    schema is keyed by ``kind`` (e.g. the ``hb_*`` happens-before
    records consumed by :mod:`repro.analysis.hb`).
    """

    time: float
    kind: str
    proc: int | None
    core: tuple | None
    program: str | None
    detail: tuple | None = None


@dataclass(frozen=True)
class WaitEdge:
    """One blocked dependency in a stall's wait-for graph: ``waiter``
    cannot make progress until ``holder`` supplies the named stream."""

    waiter: str  # destination program id (who is starved)
    holder: str  # source program id (who owes the stream)
    src_proc: int
    dst_proc: int
    retries: int
    reason: str  # e.g. "link 0->1 partitioned (never heals)"

    def to_dict(self) -> dict:
        return {
            "waiter": self.waiter,
            "holder": self.holder,
            "src_proc": self.src_proc,
            "dst_proc": self.dst_proc,
            "retries": self.retries,
            "reason": self.reason,
        }

    @staticmethod
    def from_dict(d: dict) -> "WaitEdge":
        return WaitEdge(
            waiter=d["waiter"],
            holder=d["holder"],
            src_proc=int(d["src_proc"]),
            dst_proc=int(d["dst_proc"]),
            retries=int(d["retries"]),
            reason=d["reason"],
        )


@dataclass(frozen=True)
class StallReport:
    """Structured diagnosis of a no-progress stall.

    Produced by the liveness watchdog when retransmit timers keep
    circulating but nothing useful has committed for a full horizon:
    the wait-for graph snapshot names who is blocked on whom and why,
    plus any dependency cycle found in it.
    """

    now: float  # virtual time of detection
    last_progress: float  # virtual time of the last progress event
    horizon: float  # configured no-progress horizon
    pending_events: int  # events still on the heap at detection
    waiting: tuple[WaitEdge, ...] = ()
    lost: tuple[WaitEdge, ...] = ()  # edges that can never be satisfied
    cycle: tuple[str, ...] = ()  # program ids forming a wait cycle

    def describe(self) -> str:
        lines = [
            f"no progress for {self.now - self.last_progress:.6f}s of "
            f"virtual time (horizon {self.horizon:.6f}s) at t="
            f"{self.now:.6f}s with {self.pending_events} pending events"
        ]
        for e in self.lost:
            lines.append(
                f"  LOST  {e.waiter} <- {e.holder} "
                f"(proc {e.src_proc}->{e.dst_proc}, {e.retries} retries): "
                f"{e.reason}"
            )
        for e in self.waiting:
            if e not in self.lost:
                lines.append(
                    f"  WAIT  {e.waiter} <- {e.holder} "
                    f"(proc {e.src_proc}->{e.dst_proc}, {e.retries} "
                    f"retries): {e.reason}"
                )
        if self.cycle:
            lines.append("  CYCLE " + " -> ".join(self.cycle))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready view of the report (``math.inf`` survives the
        round-trip because JSON's ``Infinity`` literal does).

        Consumers that only render text keep :meth:`describe`; the
        service layer and trace tooling attach this dict to job
        failures and exported traces instead of exception prose.
        """
        return {
            "now": self.now,
            "last_progress": self.last_progress,
            "horizon": self.horizon,
            "pending_events": self.pending_events,
            "waiting": [e.to_dict() for e in self.waiting],
            "lost": [e.to_dict() for e in self.lost],
            "cycle": list(self.cycle),
        }

    @staticmethod
    def from_dict(d: dict) -> "StallReport":
        return StallReport(
            now=float(d["now"]),
            last_progress=float(d["last_progress"]),
            horizon=float(d["horizon"]),
            pending_events=int(d["pending_events"]),
            waiting=tuple(WaitEdge.from_dict(e) for e in d["waiting"]),
            lost=tuple(WaitEdge.from_dict(e) for e in d["lost"]),
            cycle=tuple(d["cycle"]),
        )


class StallError(ReproError):
    """Raised by the watchdog instead of letting a wedged run spin."""

    def __init__(self, report: StallReport):
        self.report = report
        super().__init__("liveness watchdog: " + report.describe())


class Simulator:
    """Event heap + virtual clock + quiescence counter.

    ``progress_kinds`` names the event kinds that represent actual
    forward progress of a run; :attr:`live` counts how many of them are
    outstanding, which lets higher layers recognize quiescence (e.g.
    checkpoint/crash events scheduled after a job finished are inert).

    :meth:`arm_watchdog` adds a virtual-time liveness check on top of
    the same counters: when a watched control event (a retransmit
    timer) pops with *zero* progress events outstanding and more than
    ``horizon`` virtual seconds since the last progress event was
    processed, the run has stopped doing useful work while the control
    plane keeps spinning - the watchdog asks the owning layer for a
    wait-for snapshot and raises :class:`StallError` if the snapshot
    confirms a genuine stall (a ``None`` snapshot means the timers are
    stale and the heap will drain; the watchdog stays quiet).
    """

    __slots__ = ("_events", "_seq", "live", "makespan", "_progress",
                 "trace_hook", "trace_fields", "note_hook",
                 "last_progress", "_prev_progress", "_wd_horizon",
                 "_wd_snapshot", "_wd_kinds")

    def __init__(
        self,
        progress_kinds: frozenset = frozenset(),
        trace_hook: Callable[[TraceEvent], None] | None = None,
        trace_fields: Callable[[str, Any], tuple] | None = None,
        note_hook: Callable[[TraceEvent], None] | None = None,
    ):
        self._events: list = []
        self._seq = 0
        self.live = 0  # outstanding progress events (quiescence detector)
        self.makespan = 0.0
        self._progress = frozenset(progress_kinds)
        self.trace_hook = trace_hook
        self.trace_fields = trace_fields
        self.note_hook = note_hook
        self.last_progress = 0.0  # virtual time of last progress pop
        self._prev_progress = 0.0  # pre-pop value (for retraction)
        self._wd_horizon = 0.0  # 0 = watchdog disarmed
        self._wd_snapshot: Callable[[float], StallReport | None] | None = None
        self._wd_kinds: frozenset = frozenset()

    def arm_watchdog(
        self,
        horizon: float,
        snapshot: Callable[[float], StallReport | None],
        watch_kinds: frozenset = frozenset(("timer",)),
    ) -> None:
        """Arm the no-progress detector.

        ``snapshot(now)`` is called on suspicion; it must return a
        :class:`StallReport` to confirm the stall (raised wrapped in
        :class:`StallError`) or ``None`` to wave it off.
        """
        self._wd_horizon = horizon
        self._wd_snapshot = snapshot
        self._wd_kinds = frozenset(watch_kinds)

    def note(self, t: float, kind: str, detail: tuple) -> None:
        """Record one out-of-band structured note (e.g. an ``hb_*``
        happens-before record) on the note stream.

        Notes are pure observation: they never touch the event heap or
        the shared tie-break sequence, so arming the note hook cannot
        perturb event ordering - golden fingerprints are bitwise
        identical with and without it.  Callers on hot paths should
        guard on :attr:`note_hook` before building ``detail``.
        """
        if self.note_hook is not None:
            self.note_hook(
                TraceEvent(t, kind, None, None, None, tuple(detail))
            )

    def next_seq(self) -> int:
        """Next tie-break sequence number, shared with external queues."""
        self._seq += 1
        return self._seq

    def push(self, t: float, kind: str, data: Any) -> None:
        """Schedule one event at virtual time ``t``."""
        self._seq += 1
        if kind in self._progress:
            self.live += 1
        heapq.heappush(self._events, (t, self._seq, kind, data))

    def pop(self) -> tuple[float, str, Any]:
        """Pop the earliest event; fires the trace hook when armed."""
        t, _, kind, data = heapq.heappop(self._events)
        if kind in self._progress:
            self.live -= 1
            self._prev_progress = self.last_progress
            self.last_progress = t
        elif (
            self._wd_horizon > 0.0
            and kind in self._wd_kinds
            and self.live == 0
            and t - self.last_progress > self._wd_horizon
        ):
            # Control plane still ticking, data plane silent past the
            # horizon: suspect a stall and ask the owner to confirm.
            report = self._wd_snapshot(t)
            if report is not None:
                raise StallError(report)
        if self.trace_hook is not None:
            proc = core = program = None
            if self.trace_fields is not None:
                proc, core, program = self.trace_fields(kind, data)
            self.trace_hook(TraceEvent(t, kind, proc, core, program))
        return t, kind, data

    def retract_progress(self) -> None:
        """Undo the last pop's progress stamp.

        Called by the owning layer when a popped progress-kind event
        turns out to be no progress at all - a duplicate, corrupted or
        mis-routed delivery that was discarded.  Without the retraction
        a livelock (e.g. retransmissions endlessly re-delivering an
        already-seen message whose acks are black-holed) refreshes the
        progress clock on every retry and the watchdog never fires.
        """
        self.last_progress = self._prev_progress

    def observe(self, t: float) -> None:
        """Advance the virtual clock's high-water mark (the makespan)."""
        if t > self.makespan:
            self.makespan = t

    def __bool__(self) -> bool:
        return bool(self._events)

    def __len__(self) -> int:
        return len(self._events)

"""Discrete-event simulator core (S10): the substitute for Tianhe-2.

The bottom layer of the runtime stack (paper Sec. IV / Fig. 8's
"virtual machine"): an event heap ordered by ``(virtual time, push
sequence)``, serial :class:`Resource` timelines (one per simulated
core), the virtual clock, and the quiescence counter that recognizes
when no forward-progress event is outstanding.  Everything above -
transport, routing, scheduling, recovery, and the runtimes themselves
(data-driven, BSP, KBA) - runs on this one substrate, so every runtime
variant shares a single cost model and time axis, as the paper's
Table I caveat requests.

This layer knows nothing about patch-programs, streams, processes or
faults: event *kinds* are opaque strings and event *data* is opaque to
the heap.  The one sequence counter is shared between the event heap
and any external priority queues (via :meth:`Simulator.next_seq`), so
tie-breaking is globally deterministic across all queues of a run.

The optional trace hook fires once per popped event with a structured
:class:`TraceEvent`; the ``trace_fields`` callable (supplied by the
layer that defines the event vocabulary) extracts the proc/core/
program fields from each event's opaque data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Resource", "Simulator", "TraceEvent"]


class Resource:
    """A serial server (one core's timeline)."""

    __slots__ = ("free", "core")

    def __init__(self, core: tuple):
        self.free = 0.0
        self.core = core

    def book(self, now: float, duration: float) -> tuple[float, float]:
        start = max(now, self.free)
        end = start + duration
        self.free = end
        return start, end


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record: what the event loop processed."""

    time: float
    kind: str
    proc: int | None
    core: tuple | None
    program: str | None


class Simulator:
    """Event heap + virtual clock + quiescence counter.

    ``progress_kinds`` names the event kinds that represent actual
    forward progress of a run; :attr:`live` counts how many of them are
    outstanding, which lets higher layers recognize quiescence (e.g.
    checkpoint/crash events scheduled after a job finished are inert).
    """

    __slots__ = ("_events", "_seq", "live", "makespan", "_progress",
                 "trace_hook", "trace_fields")

    def __init__(
        self,
        progress_kinds: frozenset = frozenset(),
        trace_hook: Callable[[TraceEvent], None] | None = None,
        trace_fields: Callable[[str, Any], tuple] | None = None,
    ):
        self._events: list = []
        self._seq = 0
        self.live = 0  # outstanding progress events (quiescence detector)
        self.makespan = 0.0
        self._progress = frozenset(progress_kinds)
        self.trace_hook = trace_hook
        self.trace_fields = trace_fields

    def next_seq(self) -> int:
        """Next tie-break sequence number, shared with external queues."""
        self._seq += 1
        return self._seq

    def push(self, t: float, kind: str, data: Any) -> None:
        """Schedule one event at virtual time ``t``."""
        self._seq += 1
        if kind in self._progress:
            self.live += 1
        heapq.heappush(self._events, (t, self._seq, kind, data))

    def pop(self) -> tuple[float, str, Any]:
        """Pop the earliest event; fires the trace hook when armed."""
        t, _, kind, data = heapq.heappop(self._events)
        if kind in self._progress:
            self.live -= 1
        if self.trace_hook is not None:
            proc = core = program = None
            if self.trace_fields is not None:
                proc, core, program = self.trace_fields(kind, data)
            self.trace_hook(TraceEvent(t, kind, proc, core, program))
        return t, kind, data

    def observe(self, t: float) -> None:
        """Advance the virtual clock's high-water mark (the makespan)."""
        if t > self.makespan:
            self.makespan = t

    def __bool__(self) -> bool:
        return bool(self._events)

    def __len__(self) -> int:
        return len(self._events)

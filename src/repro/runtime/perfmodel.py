"""Analytic sweep performance model (Mathis-Kerbyson style).

The sweep-performance literature the paper builds on (e.g. [21],
Mathis & Kerbyson, "A General Performance Model of Structured and
Unstructured Mesh Particle Transport Computations") predicts sweep
time from two competing terms:

* useful work per worker:  ``V * t_vertex * groups / workers``, and
* pipeline fill along the critical path: the longest chain of
  patch-level dependencies, each hop paying a block compute plus a
  message.

This module provides that closed-form estimate for any PatchSet +
quadrature, which serves three purposes: sanity-checking the DES
(trend agreement is tested), extrapolating to core counts too large to
simulate, and locating the strong-scaling knee analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .._util import ReproError
from ..sweep.dag import SweepTopology
from .cluster import Machine, TIANHE2
from .costmodel import CostModel

__all__ = ["SweepModelPrediction", "SweepPerformanceModel"]


@dataclass
class SweepModelPrediction:
    """Closed-form estimate of one sweep's parallel runtime."""

    time: float
    work_term: float
    pipeline_term: float
    critical_path_patches: int
    total_vertices: int

    @property
    def pipeline_bound(self) -> bool:
        return self.pipeline_term > self.work_term


class SweepPerformanceModel:
    """Analytic model over a sweep topology.

    ``predict(total_cores)`` returns the max of the work term and the
    pipeline term - the standard two-regime sweep model.  The patch
    critical path is measured on the real patch-level DAG (condensed
    over strongly connected components for the interleaved-dependency
    case), weighted by patch cell counts.
    """

    def __init__(
        self,
        topology: SweepTopology,
        machine: Machine = TIANHE2,
        cost: CostModel | None = None,
    ):
        self.topology = topology
        self.machine = machine
        self.cost = cost if cost is not None else CostModel()
        self._critical = self._critical_path()

    def _critical_path(self) -> tuple[int, float]:
        """(hops, weighted cells) of the longest patch chain, maximized
        over angles.  Computed on the SCC condensation so interleaved
        patch dependencies (Fig. 4) are handled."""
        pset = self.topology.pset
        sizes = np.array([p.num_cells for p in pset.patches], dtype=float)
        best_hops, best_cells = 0, 0.0
        for a, edges in self.topology.patch_dag.items():
            g = nx.DiGraph()
            g.add_nodes_from(range(pset.num_patches))
            g.add_edges_from(map(tuple, edges.tolist()))
            cond = nx.condensation(g)
            hops: dict[int, int] = {}
            cells: dict[int, float] = {}
            for c in nx.topological_sort(cond):
                members = cond.nodes[c]["members"]
                own = float(sizes[list(members)].sum()) / max(1, len(members))
                h0, c0 = 0, 0.0
                for p_ in cond.predecessors(c):
                    if hops[p_] + 1 > h0:
                        h0 = hops[p_] + 1
                    if cells[p_] > c0:
                        c0 = cells[p_]
                hops[c] = h0
                cells[c] = c0 + own
            if hops:
                h = max(hops.values()) + 1
                w = max(cells.values())
                if w > best_cells:
                    best_hops, best_cells = h, w
        return best_hops, best_cells

    def predict(self, total_cores: int, mode: str = "hybrid") -> SweepModelPrediction:
        lay = self.machine.layout(total_cores, mode)
        cm = self.cost
        topo = self.topology
        v_total = topo.num_vertices
        t_vertex_eff = cm.t_vertex * cm.groups + cm.t_edge * 4 + cm.t_pop
        work = v_total * t_vertex_eff / lay.total_workers

        hops, path_cells = self._critical
        # One pipeline stage = compute the upwind patch's share for one
        # angle, then ship a face message downwind.
        per_hop_msg = self.machine.latency_inter + cm.t_unpack_fixed
        pipeline = (
            path_cells * t_vertex_eff  # the chain's own compute
            + hops * per_hop_msg
        )
        return SweepModelPrediction(
            time=max(work, pipeline),
            work_term=work,
            pipeline_term=pipeline,
            critical_path_patches=hops,
            total_vertices=v_total,
        )

    def knee_cores(self, mode: str = "hybrid", max_cores: int = 10**7) -> int:
        """Smallest core count at which the pipeline term dominates -
        the analytic strong-scaling knee."""
        cores = self.machine.cores_per_proc if mode == "hybrid" else 1
        while cores < max_cores:
            if self.predict(cores, mode).pipeline_bound:
                return cores
            cores *= 2
        raise ReproError("no knee below max_cores")

"""Simulated-cluster data-driven runtime (systems S9-S10).

The stand-in for the paper's MPI+threads runtime on Tianhe-2: a
discrete-event simulation that executes the real patch-programs and
reports virtual makespan plus the Fig. 16 time breakdown.
"""

from .cluster import TIANHE2, Layout, Machine
from .costmodel import CATEGORIES, CostModel
from .engine_des import DataDrivenRuntime
from .faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    RecoveryConfig,
    StragglerWindow,
)
from .metrics import Breakdown, RunReport
from .perfmodel import SweepModelPrediction, SweepPerformanceModel

__all__ = [
    "Machine",
    "Layout",
    "TIANHE2",
    "CostModel",
    "CATEGORIES",
    "DataDrivenRuntime",
    "RunReport",
    "Breakdown",
    "CrashFault",
    "StragglerWindow",
    "FaultPlan",
    "FaultInjector",
    "RecoveryConfig",
    "SweepPerformanceModel",
    "SweepModelPrediction",
]

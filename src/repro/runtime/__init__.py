"""Simulated-cluster data-driven runtime (systems S9-S10, S20).

The stand-in for the paper's MPI+threads runtime on Tianhe-2: a
discrete-event simulation that executes the real patch-programs and
reports virtual makespan plus the Fig. 16 time breakdown.

Layered substrate (each layer its own module; no layer imports one
above it): :mod:`~repro.runtime.simulator` (DES core) <
:mod:`~repro.runtime.router` (route table) <
:mod:`~repro.runtime.transport` (reliable delivery) <
:mod:`~repro.runtime.scheduler` (dispatch policies, worker pools) <
:mod:`~repro.runtime.recovery` (checkpoints, failover) <
:mod:`~repro.runtime.engine_des` (composition root).
"""

from .cluster import TIANHE2, Layout, Machine
from .costmodel import CATEGORIES, CostModel
from .engine_des import (
    SNAPSHOT_VERSION,
    DataDrivenRuntime,
    DeadlineExceeded,
    HostKilled,
)
from .faults import (
    AdaptiveConfig,
    CrashFault,
    FaultInjector,
    FaultPlan,
    LinkPartition,
    MembershipConfig,
    RecoveryConfig,
    StragglerWindow,
)
from .metrics import Breakdown, RunReport
from .perfmodel import SweepModelPrediction, SweepPerformanceModel
from .router import Router
from .sanitizer import InvariantSanitizer, SanitizerError
from .scheduler import HybridPolicy, MpiOnlyPolicy, Scheduler, SchedulerPolicy
from .simulator import (
    Resource,
    Simulator,
    StallError,
    StallReport,
    TraceEvent,
    WaitEdge,
)
from .transport import Transport, stream_checksum

__all__ = [
    "Machine",
    "Layout",
    "TIANHE2",
    "CostModel",
    "CATEGORIES",
    "DataDrivenRuntime",
    "DeadlineExceeded",
    "HostKilled",
    "SNAPSHOT_VERSION",
    "RunReport",
    "Breakdown",
    "CrashFault",
    "StragglerWindow",
    "LinkPartition",
    "FaultPlan",
    "FaultInjector",
    "RecoveryConfig",
    "AdaptiveConfig",
    "MembershipConfig",
    "SweepPerformanceModel",
    "SweepModelPrediction",
    "Simulator",
    "Resource",
    "TraceEvent",
    "WaitEdge",
    "StallReport",
    "StallError",
    "InvariantSanitizer",
    "SanitizerError",
    "Router",
    "Transport",
    "stream_checksum",
    "Scheduler",
    "SchedulerPolicy",
    "HybridPolicy",
    "MpiOnlyPolicy",
]
